//! Tier-1 test: the repository itself must be lint-clean. This is the same
//! check `cargo run -p nm-lint` performs in CI, run as a test so plain
//! `cargo test` enforces the invariants too.

#[test]
fn repository_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = nm_lint::lint_workspace(&root);
    assert!(
        findings.is_empty(),
        "nm-lint found {} violation(s):\n{}",
        findings.len(),
        findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
}
