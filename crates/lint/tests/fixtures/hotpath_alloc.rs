// Fixture: trips `hotpath` exactly once — a per-item allocation inside a
// marked hotpath region.

pub fn sum_batches(batches: &[&[u64]]) -> u64 {
    let mut acc = 0u64;
    // nm-lint: hotpath
    for batch in batches {
        let copy = batch.to_vec();
        acc += copy.iter().sum::<u64>();
    }
    // nm-lint: end-hotpath
    acc
}

pub fn setup(n: usize) -> Vec<u64> {
    // Outside the marked region allocation is fine.
    (0..n as u64).collect()
}
