// Fixture: trips `missing-safety` exactly once — an unsafe block with no
// `// SAFETY:` rationale in the comment block above it.

pub fn read_first(xs: &[u32]) -> u32 {
    // fast path, bounds already checked by the caller
    unsafe { *xs.get_unchecked(0) }
}

pub fn read_last(xs: &[u32]) -> u32 {
    // SAFETY: caller guarantees xs is non-empty.
    unsafe { *xs.get_unchecked(xs.len() - 1) }
}
