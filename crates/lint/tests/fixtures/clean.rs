// Fixture: trips no rule — the conventions followed correctly.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(counter: &AtomicUsize) -> usize {
    counter.fetch_add(1, Ordering::AcqRel)
}

pub fn read_first(xs: &[u32]) -> Option<u32> {
    if xs.is_empty() {
        return None;
    }
    // SAFETY: emptiness was checked above, so index 0 is in bounds.
    Some(unsafe { *xs.get_unchecked(0) })
}

pub fn sum_batches(batches: &[&[u64]]) -> u64 {
    let mut acc = 0u64;
    // nm-lint: hotpath
    for batch in batches {
        for v in *batch {
            acc = acc.wrapping_add(*v);
        }
    }
    // nm-lint: end-hotpath
    acc
}
