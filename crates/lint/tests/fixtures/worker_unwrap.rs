// Fixture: trips `worker-panic` exactly once when linted under a
// crates/core/src/system/runtime/ relative path — an unwrap in worker
// thread code.

use std::sync::Mutex;

pub fn drain(queue: &Mutex<Vec<u32>>) -> Vec<u32> {
    let mut guard = queue.lock().unwrap();
    std::mem::take(&mut *guard)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_tests_is_fine() {
        let q = Mutex::new(vec![1, 2, 3]);
        assert_eq!(drain(&q).len(), 3);
        assert!(q.lock().unwrap().is_empty());
    }
}
