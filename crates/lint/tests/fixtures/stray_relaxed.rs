// Fixture: trips `stray-relaxed` exactly once — an Ordering::Relaxed load
// at a site that no lint-allow.toml entry covers.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn peek(counter: &AtomicUsize) -> usize {
    counter.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_in_tests_is_fine() {
        let c = AtomicUsize::new(7);
        // Test code is exempt from stray-relaxed.
        assert_eq!(c.load(Ordering::Relaxed), 7);
    }
}
