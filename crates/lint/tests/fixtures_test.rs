//! Each fixture under `tests/fixtures/` trips exactly the rule it is named
//! after (and nothing else); the clean fixture trips none. Fixtures are fed
//! through `lint_source` with synthetic workspace-relative paths so the
//! scope-sensitive rules (worker-panic) see the path shape they key on.

use std::collections::HashSet;

use nm_lint::{lint_source, Allowlist, Finding};

fn run(relpath: &str, fixture: &str) -> Vec<Finding> {
    let src = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(fixture),
    )
    .expect("fixture readable");
    let mut used = HashSet::new();
    lint_source(relpath, &src, &Allowlist::default(), &mut used)
}

fn rules(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn missing_safety_fixture_trips_only_that_rule() {
    let f = run("crates/common/src/fixture.rs", "missing_safety.rs");
    assert_eq!(rules(&f), ["missing-safety"], "{f:#?}");
    assert_eq!(f[0].line, 6);
}

#[test]
fn stray_relaxed_fixture_trips_only_that_rule() {
    let f = run("crates/common/src/fixture.rs", "stray_relaxed.rs");
    assert_eq!(rules(&f), ["stray-relaxed"], "{f:#?}");
    assert_eq!(f[0].line, 7, "the cfg(test) Relaxed must be exempt: {f:#?}");
}

#[test]
fn stray_relaxed_fixture_passes_with_allowlist_entry() {
    let src = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/stray_relaxed.rs"),
    )
    .unwrap();
    let (allow, errors) = Allowlist::parse(
        "[[relaxed]]\nfile = \"crates/common/src/fixture.rs\"\nline = 7\nreason = \"monitoring peek, no ordering needed\"\n",
    );
    assert!(errors.is_empty(), "{errors:#?}");
    let mut used = HashSet::new();
    let f = lint_source("crates/common/src/fixture.rs", &src, &allow, &mut used);
    assert!(f.is_empty(), "{f:#?}");
    assert_eq!(used.len(), 1, "the entry must be marked used");
}

#[test]
fn hotpath_fixture_trips_only_that_rule() {
    let f = run("crates/core/src/rqrmi/fixture.rs", "hotpath_alloc.rs");
    assert_eq!(rules(&f), ["hotpath"], "{f:#?}");
    assert_eq!(f[0].line, 8);
}

#[test]
fn worker_unwrap_fixture_trips_only_in_worker_scope() {
    let f = run("crates/core/src/system/runtime/fixture.rs", "worker_unwrap.rs");
    assert_eq!(rules(&f), ["worker-panic"], "{f:#?}");
    assert_eq!(f[0].line, 8, "the cfg(test) unwrap must be exempt: {f:#?}");

    // The same code outside runtime/serve is not worker code.
    let f = run("crates/common/src/fixture.rs", "worker_unwrap.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn clean_fixture_trips_nothing() {
    let f = run("crates/core/src/system/runtime/fixture.rs", "clean.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn allowlist_rejects_malformed_entries() {
    let (_, errors) = Allowlist::parse("[[relaxed]]\nfile = \"a.rs\"\n");
    assert_eq!(errors.len(), 1, "missing line/reason must error: {errors:#?}");

    let (_, errors) = Allowlist::parse("[[relaxed]]\nfile = \"a.rs\"\nline = 3\nreason = \"\"\n");
    assert_eq!(errors.len(), 1, "empty reason must error: {errors:#?}");

    let (list, errors) = Allowlist::parse(
        "# comment\n[[relaxed]]\nfile = \"a.rs\"\nline = 3\nreason = \"fine\"  # trailing\n",
    );
    assert!(errors.is_empty(), "{errors:#?}");
    assert_eq!(list.relaxed.len(), 1);
    assert_eq!(list.relaxed[0].reason, "fine");
}
