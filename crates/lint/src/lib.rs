//! Source-level static analysis for the workspace's repo invariants.
//!
//! A small hand-rolled Rust lexer (no syn, no network deps) walks every
//! crate source and enforces the conventions the architecture notes state
//! in prose:
//!
//! * **missing-safety** — every `unsafe` block, `unsafe fn` and
//!   `unsafe impl` carries a `// SAFETY:` rationale (a `/// # Safety` doc
//!   section counts for `unsafe fn`);
//! * **stray-relaxed** — `Ordering::Relaxed` is forbidden outside the
//!   per-site allowlist `lint-allow.toml`, so generation/epoch publication
//!   can't silently decay to unordered atomics;
//! * **worker-panic** — no `unwrap`/`expect`/`panic!`-family calls in the
//!   worker/reader thread bodies (`crates/core/src/system/runtime`,
//!   `crates/core/src/system/serve`), where a panic would poison a shard
//!   instead of failing a request;
//! * **hotpath** — no `Instant::now`/heap allocation inside regions marked
//!   `// nm-lint: hotpath` … `// nm-lint: end-hotpath` (the per-packet
//!   batch loops);
//! * **shim-drift** — the offline shims keep the API names of the real
//!   crates they mirror, so swapping the registry versions back in stays a
//!   manifest-only change.
//!
//! `#[cfg(test)]`-gated code is exempt from stray-relaxed and worker-panic
//! (tests may take shortcuts; shipped code may not).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashSet};
use std::fmt;
use std::path::Path;

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule identifier (e.g. `missing-safety`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Punct(char),
    Lit,
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
}

/// Tokens plus per-line comment text (doc and regular, concatenated).
struct Lexed {
    tokens: Vec<Token>,
    comments: BTreeMap<usize, String>,
}

fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut tokens = Vec::new();
    let mut comments: BTreeMap<usize, String> = BTreeMap::new();
    let n = b.len();
    let mut note_comment = |line: usize, text: &str| {
        let e = comments.entry(line).or_default();
        e.push_str(text);
        e.push(' ');
    };
    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && b[i + 1] == '/' => {
                let start = i;
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                note_comment(line, &b[start..i].iter().collect::<String>());
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                let start_line = line;
                let start = i;
                i += 2;
                let mut depth = 1;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    if i + 1 < n && b[i] == '/' && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == '*' && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                note_comment(start_line, &b[start..i.min(n)].iter().collect::<String>());
            }
            '"' => {
                i += 1;
                while i < n {
                    match b[i] {
                        // An escape may be a `\<newline>` continuation —
                        // the newline still advances the line counter.
                        '\\' => {
                            if i + 1 < n && b[i + 1] == '\n' {
                                line += 1;
                            }
                            i += 2;
                        }
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                tokens.push(Token { tok: Tok::Lit, line });
            }
            'r' | 'b' if is_raw_or_byte_string(&b, i) => {
                // r"", r#""#, br"", b"" — scan past the prefix, count
                // hashes, then find the matching close quote + hashes.
                let tok_line = line;
                while i < n && (b[i] == 'r' || b[i] == 'b') {
                    i += 1;
                }
                let mut hashes = 0;
                while i < n && b[i] == '#' {
                    hashes += 1;
                    i += 1;
                }
                if i < n && b[i] == '\'' {
                    // b'x' byte char
                    i += 1;
                    while i < n && b[i] != '\'' {
                        if b[i] == '\\' {
                            i += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                } else {
                    i += 1; // opening quote
                    'scan: while i < n {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        if b[i] == '"' {
                            let mut k = 0;
                            while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break 'scan;
                            }
                        }
                        i += 1;
                    }
                }
                tokens.push(Token { tok: Tok::Lit, line: tok_line });
            }
            '\'' => {
                // Char literal vs lifetime.
                if i + 1 < n && b[i + 1] == '\\' {
                    i += 2;
                    while i < n && b[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                    tokens.push(Token { tok: Tok::Lit, line });
                } else if i + 2 < n && b[i + 2] == '\'' {
                    i += 3;
                    tokens.push(Token { tok: Tok::Lit, line });
                } else {
                    // Lifetime: consume the tick and the identifier.
                    i += 1;
                    while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    tokens.push(Token { tok: Tok::Lit, line });
                }
            }
            c if c.is_ascii_digit() => {
                i += 1;
                while i < n {
                    let d = b[i];
                    let in_number = d.is_alphanumeric()
                        || d == '_'
                        || (d == '.' && i + 1 < n && b[i + 1].is_ascii_digit() && b[i - 1] != '.');
                    if in_number {
                        i += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token { tok: Tok::Lit, line });
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                tokens.push(Token { tok: Tok::Ident(b[start..i].iter().collect()), line });
            }
            c => {
                tokens.push(Token { tok: Tok::Punct(c), line });
                i += 1;
            }
        }
    }
    Lexed { tokens, comments }
}

fn is_raw_or_byte_string(b: &[char], i: usize) -> bool {
    // Lone identifiers starting with r/b are handled by the ident arm; this
    // only claims r/b(r)?#*" and b' prefixes.
    let n = b.len();
    let mut j = i;
    while j < n && (b[j] == 'r' || b[j] == 'b') && j - i < 2 {
        j += 1;
    }
    while j < n && b[j] == '#' {
        j += 1;
    }
    j < n && (b[j] == '"' || (b[j] == '\'' && b[i] == 'b'))
}

// ---------------------------------------------------------------------------
// Allowlist (lint-allow.toml)
// ---------------------------------------------------------------------------

/// One `[[relaxed]]` entry of `lint-allow.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `Relaxed` token.
    pub line: usize,
    /// One-line justification (must be non-empty).
    pub reason: String,
}

/// Parsed allowlist plus parse errors as findings.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Justified `Relaxed` sites.
    pub relaxed: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses the minimal TOML subset used by `lint-allow.toml`:
    /// `[[relaxed]]` tables with `file`/`line`/`reason` keys.
    pub fn parse(src: &str) -> (Allowlist, Vec<Finding>) {
        let mut list = Allowlist::default();
        let mut errors = Vec::new();
        let mut cur: Option<AllowEntry> = None;
        fn err(errors: &mut Vec<Finding>, line: usize, message: String) {
            errors.push(Finding {
                file: "lint-allow.toml".into(),
                line,
                rule: "allowlist",
                message,
            });
        }
        let mut flush = |cur: &mut Option<AllowEntry>, lineno: usize, errors: &mut Vec<Finding>| {
            if let Some(e) = cur.take() {
                if e.file.is_empty() || e.line == 0 || e.reason.trim().is_empty() {
                    errors.push(Finding {
                        file: "lint-allow.toml".into(),
                        line: lineno,
                        rule: "allowlist",
                        message: "entry needs non-empty `file`, `line` and `reason`".into(),
                    });
                } else {
                    list.relaxed.push(e);
                }
            }
        };
        for (idx, raw) in src.lines().enumerate() {
            let lineno = idx + 1;
            let lstr = raw.split('#').next().unwrap_or("").trim();
            if lstr.is_empty() {
                continue;
            }
            if lstr == "[[relaxed]]" {
                flush(&mut cur, lineno, &mut errors);
                cur = Some(AllowEntry { file: String::new(), line: 0, reason: String::new() });
            } else if lstr.starts_with('[') {
                flush(&mut cur, lineno, &mut errors);
                err(
                    &mut errors,
                    lineno,
                    format!("unknown table `{lstr}` (only [[relaxed]] is supported)"),
                );
            } else if let Some((k, v)) = lstr.split_once('=') {
                let (k, v) = (k.trim(), v.trim());
                let Some(e) = cur.as_mut() else {
                    err(&mut errors, lineno, format!("key `{k}` outside a [[relaxed]] table"));
                    continue;
                };
                match k {
                    "file" => e.file = v.trim_matches('"').to_string(),
                    "line" => {
                        e.line = v.parse().unwrap_or(0);
                        if e.line == 0 {
                            err(
                                &mut errors,
                                lineno,
                                format!("`line` must be a positive integer, got `{v}`"),
                            );
                        }
                    }
                    "reason" => e.reason = v.trim_matches('"').to_string(),
                    _ => err(&mut errors, lineno, format!("unknown key `{k}`")),
                }
            } else {
                err(&mut errors, lineno, format!("unparsable line `{lstr}`"));
            }
        }
        flush(&mut cur, src.lines().count(), &mut errors);
        (list, errors)
    }
}

// ---------------------------------------------------------------------------
// Per-file rules
// ---------------------------------------------------------------------------

/// Directories whose non-test code runs on worker/reader threads, where a
/// panic poisons a shard instead of failing one request.
const WORKER_SCOPES: [&str; 2] =
    ["crates/core/src/system/runtime/", "crates/core/src/system/serve/"];

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Identifier pairs (`A::b` or `.b(`) that allocate or take a timestamp —
/// forbidden inside `// nm-lint: hotpath` regions.
const HOTPATH_PATHS: [(&str, &str); 8] = [
    ("Instant", "now"),
    ("SystemTime", "now"),
    ("Box", "new"),
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
];
const HOTPATH_METHODS: [&str; 4] = ["to_vec", "to_string", "to_owned", "collect"];
const HOTPATH_MACROS: [&str; 2] = ["vec", "format"];

/// Token-index ranges gated behind `#[cfg(test)]` / `#[test]`.
fn test_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].tok != Tok::Punct('#') {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks[j].tok == Tok::Punct('!') {
            j += 1; // inner attribute #![...]
        }
        if j >= toks.len() || toks[j].tok != Tok::Punct('[') {
            i += 1;
            continue;
        }
        // Scan the attribute body to its matching ']'.
        let mut depth = 0usize;
        let mut idents: Vec<&str> = Vec::new();
        let attr_start = j;
        let mut end = None;
        for (k, t) in toks.iter().enumerate().skip(attr_start) {
            match &t.tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(k);
                        break;
                    }
                }
                Tok::Ident(id) => idents.push(id),
                _ => {}
            }
        }
        let Some(end) = end else { break };
        let gated = match idents.first().copied() {
            Some("test") => true,
            Some("cfg") => {
                let mut has_test = false;
                for (k, w) in idents.windows(2).enumerate() {
                    let _ = k;
                    if w[1] == "test" && w[0] == "not" {
                        has_test = false;
                        break;
                    }
                    if w[1] == "test" {
                        has_test = true;
                    }
                }
                has_test
            }
            _ => false,
        };
        if !gated {
            i = end + 1;
            continue;
        }
        // Skip any further attributes, then cover the following item: up to
        // the matching '}' of its first brace, or a terminating ';'.
        let mut k = end + 1;
        loop {
            if k + 1 < toks.len()
                && toks[k].tok == Tok::Punct('#')
                && toks[k + 1].tok == Tok::Punct('[')
            {
                let mut d = 0usize;
                let mut advanced = false;
                for (m, t) in toks.iter().enumerate().skip(k + 1) {
                    match t.tok {
                        Tok::Punct('[') => d += 1,
                        Tok::Punct(']') => {
                            d -= 1;
                            if d == 0 {
                                k = m + 1;
                                advanced = true;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                if !advanced {
                    break;
                }
                continue;
            }
            break;
        }
        let mut close = toks.len().saturating_sub(1);
        let mut d = 0usize;
        for (m, t) in toks.iter().enumerate().skip(k) {
            match t.tok {
                Tok::Punct(';') if d == 0 => {
                    close = m;
                    break;
                }
                Tok::Punct('{') => d += 1,
                Tok::Punct('}') => {
                    d = d.saturating_sub(1);
                    if d == 0 {
                        close = m;
                        break;
                    }
                }
                _ => {}
            }
        }
        ranges.push((i, close));
        i = close + 1;
    }
    ranges
}

fn in_ranges(ranges: &[(usize, usize)], idx: usize) -> bool {
    ranges.iter().any(|&(a, b)| idx >= a && idx <= b)
}

/// Whether the contiguous comment/attribute block above `line` (or the line
/// itself) carries a `SAFETY:` rationale (or a `# Safety` doc section).
fn has_safety_rationale(lines: &[&str], comments: &BTreeMap<usize, String>, line: usize) -> bool {
    let mentions = |l: usize| {
        comments.get(&l).is_some_and(|t| t.contains("SAFETY:") || t.contains("# Safety"))
    };
    if mentions(line) {
        return true;
    }
    let mut l = line.saturating_sub(1);
    while l >= 1 {
        let text = lines.get(l - 1).map_or("", |s| s.trim());
        let is_comment = text.starts_with("//");
        let is_attr = text.starts_with("#[") || text.starts_with("#![");
        // Multi-line attributes / signatures end the walk conservatively.
        if !(is_comment || is_attr) {
            return false;
        }
        if is_comment && mentions(l) {
            return true;
        }
        l -= 1;
    }
    false
}

/// Hotpath line ranges marked by `// nm-lint: hotpath` comments.
fn hotpath_ranges(
    comments: &BTreeMap<usize, String>,
    findings: &mut Vec<Finding>,
    file: &str,
) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut open: Option<usize> = None;
    for (&line, text) in comments {
        // Markers must be standalone comment lines — prose that merely
        // mentions them (like these docs) must not open a region.
        let text = text.trim();
        if text == "// nm-lint: end-hotpath" {
            match open.take() {
                Some(start) => ranges.push((start, line)),
                None => findings.push(Finding {
                    file: file.into(),
                    line,
                    rule: "hotpath",
                    message: "end-hotpath marker without a matching hotpath marker".into(),
                }),
            }
        } else if text == "// nm-lint: hotpath" {
            if open.is_some() {
                findings.push(Finding {
                    file: file.into(),
                    line,
                    rule: "hotpath",
                    message: "nested hotpath marker (previous region still open)".into(),
                });
            }
            open = Some(line);
        }
    }
    if let Some(start) = open {
        findings.push(Finding {
            file: file.into(),
            line: start,
            rule: "hotpath",
            message: "hotpath region never closed with `// nm-lint: end-hotpath`".into(),
        });
    }
    ranges
}

/// Lints one file's source. `used_allow` collects the allowlist entries the
/// file consumed (for staleness reporting by the workspace pass).
pub fn lint_source(
    file: &str,
    src: &str,
    allow: &Allowlist,
    used_allow: &mut HashSet<usize>,
) -> Vec<Finding> {
    let lines: Vec<&str> = src.lines().collect();
    let Lexed { tokens, comments } = lex(src);
    let tests = test_ranges(&tokens);
    let mut findings = Vec::new();
    let hot = hotpath_ranges(&comments, &mut findings, file);
    let in_worker_scope = WORKER_SCOPES.iter().any(|s| file.starts_with(s));

    for (i, t) in tokens.iter().enumerate() {
        let Tok::Ident(id) = &t.tok else { continue };
        let next = tokens.get(i + 1).map(|t| &t.tok);
        let prev = i.checked_sub(1).map(|p| &tokens[p].tok);

        // missing-safety: unsafe blocks, fns, impls (everywhere, tests
        // included — unsafe is unsafe).
        if id == "unsafe" {
            let kind = match next {
                Some(Tok::Punct('{')) => Some("block"),
                Some(Tok::Ident(k)) if k == "impl" => Some("impl"),
                Some(Tok::Ident(k)) if k == "fn" => {
                    // `unsafe fn name` is a declaration needing a
                    // rationale; `unsafe fn(` is a pointer type.
                    match tokens.get(i + 2).map(|t| &t.tok) {
                        Some(Tok::Ident(_)) => Some("fn"),
                        _ => None,
                    }
                }
                _ => None,
            };
            if let Some(kind) = kind {
                if !has_safety_rationale(&lines, &comments, t.line) {
                    findings.push(Finding {
                        file: file.into(),
                        line: t.line,
                        rule: "missing-safety",
                        message: format!(
                            "unsafe {kind} without a `// SAFETY:` rationale in the comment block above"
                        ),
                    });
                }
            }
        }

        // stray-relaxed (non-test code only).
        if id == "Relaxed" && !in_ranges(&tests, i) {
            match allow
                .relaxed
                .iter()
                .position(|e| e.file == file && e.line == t.line)
            {
                Some(pos) => {
                    used_allow.insert(pos);
                }
                None => findings.push(Finding {
                    file: file.into(),
                    line: t.line,
                    rule: "stray-relaxed",
                    message: "Ordering::Relaxed outside lint-allow.toml — justify the site there or use an ordered access".into(),
                }),
            }
        }

        // worker-panic (runtime/serve non-test code only).
        if in_worker_scope && !in_ranges(&tests, i) {
            let is_macro =
                PANIC_MACROS.contains(&id.as_str()) && matches!(next, Some(Tok::Punct('!')));
            let is_method = PANIC_METHODS.contains(&id.as_str())
                && matches!(prev, Some(Tok::Punct('.')))
                && matches!(next, Some(Tok::Punct('(')));
            if is_macro || is_method {
                findings.push(Finding {
                    file: file.into(),
                    line: t.line,
                    rule: "worker-panic",
                    message: format!(
                        "`{id}` in worker/reader thread code — propagate the error or use a poison-tolerant lock instead"
                    ),
                });
            }
        }

        // hotpath (inside marked regions only).
        if hot.iter().any(|&(a, b)| t.line > a && t.line < b) {
            let second = matches!(prev, Some(Tok::Punct(':')))
                && i >= 2
                && tokens[i - 2].tok == Tok::Punct(':');
            let path_hit = second
                && i >= 3
                && HOTPATH_PATHS
                    .iter()
                    .any(|(a, b)| b == id && matches!(&tokens[i - 3].tok, Tok::Ident(x) if x == a));
            let method_hit =
                HOTPATH_METHODS.contains(&id.as_str()) && matches!(prev, Some(Tok::Punct('.')));
            let macro_hit =
                HOTPATH_MACROS.contains(&id.as_str()) && matches!(next, Some(Tok::Punct('!')));
            if path_hit || method_hit || macro_hit {
                findings.push(Finding {
                    file: file.into(),
                    line: t.line,
                    rule: "hotpath",
                    message: format!(
                        "`{id}` allocates or reads the clock inside a `// nm-lint: hotpath` region"
                    ),
                });
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Shim drift
// ---------------------------------------------------------------------------

/// Required API names per shim: the std/crates.io surface each offline
/// stand-in mirrors. A missing name means the shim drifted and swapping the
/// real crate back in would break.
const SHIM_SURFACES: [(&str, &[&str]); 6] = [
    ("arc-swap", &["ArcSwap", "new", "from_pointee", "load", "load_full", "store", "swap"]),
    (
        "crossbeam",
        &[
            "channel", "bounded", "Sender", "Receiver", "send", "recv", "try_recv", "scope",
            "spawn", "join",
        ],
    ),
    ("parking_lot", &["Mutex", "MutexGuard", "lock"]),
    ("bytes", &["Buf", "BufMut"]),
    (
        "criterion",
        &[
            "Criterion",
            "Bencher",
            "BenchmarkId",
            "benchmark_group",
            "bench_function",
            "black_box",
            "criterion_group",
            "criterion_main",
        ],
    ),
    (
        "proptest",
        &[
            "Strategy",
            "ProptestConfig",
            "proptest",
            "prop_assert",
            "prop_assert_eq",
            "prop_assume",
            "prelude",
        ],
    ),
];

/// Checks one shim's collected identifiers against its required surface.
pub fn shim_drift(shim: &str, idents: &HashSet<String>) -> Vec<Finding> {
    let Some((_, required)) = SHIM_SURFACES.iter().find(|(s, _)| *s == shim) else {
        return Vec::new();
    };
    required
        .iter()
        .filter(|r| !idents.contains(**r))
        .map(|r| Finding {
            file: format!("shims/{shim}/src/lib.rs"),
            line: 1,
            rule: "shim-drift",
            message: format!("shim no longer defines `{r}`, an API name of the crate it mirrors"),
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(rd) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            collect_rs(&p, out);
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

/// Lints the whole workspace rooted at `root`. Returns every finding,
/// sorted by file and line.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let allow_path = root.join("lint-allow.toml");
    let (allow, mut allow_errors) = match std::fs::read_to_string(&allow_path) {
        Ok(src) => Allowlist::parse(&src),
        Err(_) => (Allowlist::default(), Vec::new()),
    };
    findings.append(&mut allow_errors);

    let mut files = Vec::new();
    for top in ["crates", "shims", "tests"] {
        collect_rs(&root.join(top), &mut files);
    }
    let mut used_allow: HashSet<usize> = HashSet::new();
    let mut shim_idents: BTreeMap<String, HashSet<String>> = BTreeMap::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let Ok(src) = std::fs::read_to_string(path) else {
            findings.push(Finding {
                file: rel.clone(),
                line: 1,
                rule: "io",
                message: "file could not be read".into(),
            });
            continue;
        };
        if let Some(shim) = rel.strip_prefix("shims/").and_then(|r| r.split('/').next()) {
            let idents = shim_idents.entry(shim.to_string()).or_default();
            for t in lex(&src).tokens {
                if let Tok::Ident(id) = t.tok {
                    idents.insert(id);
                }
            }
        }
        findings.extend(lint_source(&rel, &src, &allow, &mut used_allow));
    }
    for (shim, idents) in &shim_idents {
        findings.extend(shim_drift(shim, idents));
    }
    for (pos, e) in allow.relaxed.iter().enumerate() {
        if !used_allow.contains(&pos) {
            findings.push(Finding {
                file: "lint-allow.toml".into(),
                line: 1,
                rule: "allowlist",
                message: format!(
                    "stale entry: {}:{} has no Relaxed token (remove or update it)",
                    e.file, e.line
                ),
            });
        }
    }
    findings.sort();
    findings
}
