//! `cargo run -p nm-lint` — walks the workspace sources and enforces the
//! repo invariants described in `nm_lint`'s crate docs. Exits nonzero with
//! one line per finding.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = workspace_root();
    let findings = nm_lint::lint_workspace(&root);
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("nm-lint: workspace clean");
        ExitCode::SUCCESS
    } else {
        println!("nm-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: `$CARGO_MANIFEST_DIR/../..` when run via cargo,
/// else the current directory.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir).join("../.."),
        None => PathBuf::from("."),
    }
}
