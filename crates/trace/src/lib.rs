//! # nm-trace — packet-trace synthesis
//!
//! The paper's methodology (§5.1.1) evaluates every classifier on 700K-packet
//! traces of three kinds, all derived from the rule-set under test:
//!
//! * **Uniform** — "access all matching rules uniformly to evaluate the
//!   worst-case memory access pattern": every packet picks a rule uniformly
//!   and carries a header drawn from inside its box ([`uniform_trace`]).
//! * **Zipf-skewed** — flow popularity follows a Zipf distribution with the
//!   skew parameterised by "how much traffic the 3% most frequent flows
//!   account for" (80%→α1.05 … 95%→α1.25) ([`zipf_trace`],
//!   [`zipf_alpha_for_top3`]).
//! * **CAIDA-like** — the paper rewrites a real CAIDA trace so each packet
//!   maps to a generated five-tuple "while maintaining a consistent mapping
//!   between the original and the generated one", preserving only the
//!   locality profile. CAIDA is not redistributable, so [`caida_like_trace`]
//!   synthesises the locality profile directly: Zipf flow popularity plus
//!   geometric packet trains (bursts of consecutive packets from the active
//!   flow), which reproduces the temporal locality the experiment consumes
//!   (DESIGN.md §2 records the substitution).
//!
//! One *flow* = one generated header per rule, fixed per trace, exactly like
//! the paper's rule→five-tuple mapping.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nm_common::{RuleSet, SplitMix64, TraceBuf};

/// Paper trace length (§5.1.1).
pub const PAPER_TRACE_LEN: usize = 700_000;

/// The Zipf skew settings of Figure 12: (top-3% traffic share, α).
pub const FIG12_SKEWS: &[(f64, f64)] = &[(0.80, 1.05), (0.85, 1.10), (0.90, 1.15), (0.95, 1.25)];

/// Maps the paper's "3% of flows account for `share` of traffic" knob to
/// its Zipf α (the paper's own calibration, Figure 12 captions).
pub fn zipf_alpha_for_top3(share: f64) -> f64 {
    let mut best = FIG12_SKEWS[0];
    for &(s, a) in FIG12_SKEWS {
        if (share - s).abs() < (share - best.0).abs() {
            best = (s, a);
        }
    }
    best.1
}

/// One representative header per rule — the paper's "for each rule, we
/// generate one matching five-tuple".
pub fn flow_headers(set: &RuleSet, seed: u64) -> Vec<Vec<u64>> {
    let mut rng = SplitMix64::new(seed ^ 0x000f_10e5);
    set.rules()
        .iter()
        .map(|r| r.fields.iter().map(|f| rng.range_inclusive(f.lo, f.hi)).collect())
        .collect()
}

/// Uniform trace: each packet targets a uniformly chosen rule, with a fresh
/// header drawn from inside that rule's box (worst-case access pattern — no
/// temporal locality at all).
pub fn uniform_trace(set: &RuleSet, n: usize, seed: u64) -> TraceBuf {
    let stride = set.num_fields();
    let mut trace = TraceBuf::with_capacity(stride, n);
    if set.is_empty() {
        return trace;
    }
    let mut rng = SplitMix64::new(seed ^ 0x0001_71f0);
    let mut key = vec![0u64; stride];
    for _ in 0..n {
        let rule = set.rule_at(rng.below(set.len() as u64) as usize);
        for (d, f) in rule.fields.iter().enumerate() {
            key[d] = rng.range_inclusive(f.lo, f.hi);
        }
        trace.push(&key);
    }
    trace
}

/// Precomputed Zipf sampler over `n` ranks: rank `k` (0-based) has weight
/// `(k+1)^-α`. Sampling is a binary search over the cumulative table.
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the table for `n` ranks with exponent `alpha`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += ((k + 1) as f64).powf(-alpha);
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    /// Samples a rank with a uniform draw `u ∈ [0, 1)`.
    pub fn sample(&self, u: f64) -> usize {
        let target = u * *self.cumulative.last().expect("non-empty");
        self.cumulative.partition_point(|&c| c <= target).min(self.cumulative.len() - 1)
    }

    /// Fraction of probability mass held by the top `frac` of ranks
    /// (validates the paper's "top 3% of flows = X% of traffic" calibration).
    pub fn top_share(&self, frac: f64) -> f64 {
        let n = self.cumulative.len();
        let k = ((n as f64 * frac).ceil() as usize).clamp(1, n);
        self.cumulative[k - 1] / self.cumulative[n - 1]
    }
}

/// Zipf-skewed trace: flow ranks map to rules through a seeded shuffle, so
/// popularity is independent of priority order.
pub fn zipf_trace(set: &RuleSet, n: usize, alpha: f64, seed: u64) -> TraceBuf {
    let stride = set.num_fields();
    let mut trace = TraceBuf::with_capacity(stride, n);
    if set.is_empty() {
        return trace;
    }
    let flows = flow_headers(set, seed);
    let mut order: Vec<usize> = (0..flows.len()).collect();
    let mut rng = SplitMix64::new(seed ^ 0x21bf);
    // Fisher-Yates.
    for i in (1..order.len()).rev() {
        let j = rng.below((i + 1) as u64) as usize;
        order.swap(i, j);
    }
    let zipf = ZipfSampler::new(flows.len(), alpha);
    for _ in 0..n {
        let rank = zipf.sample(rng.f64());
        trace.push(&flows[order[rank]]);
    }
    trace
}

/// Knobs for the CAIDA-like locality synthesiser.
#[derive(Clone, Copy, Debug)]
pub struct CaidaLikeConfig {
    /// Zipf exponent for flow popularity (measured backbone traces sit
    /// around 1.1–1.3).
    pub alpha: f64,
    /// Mean packet-train length (geometric); CAIDA-style traces show short
    /// back-to-back bursts per flow at a link.
    pub mean_train: f64,
}

impl Default for CaidaLikeConfig {
    fn default() -> Self {
        Self { alpha: 1.2, mean_train: 4.0 }
    }
}

/// CAIDA-like trace: Zipf flow popularity plus geometric packet trains —
/// each draw emits a burst of consecutive packets from one flow.
pub fn caida_like_trace(set: &RuleSet, n: usize, cfg: CaidaLikeConfig, seed: u64) -> TraceBuf {
    let stride = set.num_fields();
    let mut trace = TraceBuf::with_capacity(stride, n);
    if set.is_empty() {
        return trace;
    }
    let flows = flow_headers(set, seed);
    let zipf = ZipfSampler::new(flows.len(), cfg.alpha);
    let mut rng = SplitMix64::new(seed ^ 0x000c_a1da);
    let p = (1.0 / cfg.mean_train).clamp(1e-6, 1.0);
    while trace.len() < n {
        let flow = &flows[zipf.sample(rng.f64())];
        // Geometric train length ≥ 1.
        let mut train = 1usize;
        while rng.f64() > p && train < 64 {
            train += 1;
        }
        for _ in 0..train.min(n - trace.len()) {
            trace.push(flow);
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_classbench::{generate, AppKind};

    fn small_set() -> RuleSet {
        generate(AppKind::Acl, 500, 1)
    }

    #[test]
    fn uniform_packets_match_their_source_rule_family() {
        let set = small_set();
        let trace = uniform_trace(&set, 2_000, 7);
        assert_eq!(trace.len(), 2_000);
        // Every packet must match *some* rule (it was drawn inside one; a
        // higher-priority rule may shadow it, but a match must exist).
        for key in trace.iter().take(300) {
            assert!(set.classify_scan(key).is_some(), "unmatched key {key:?}");
        }
    }

    #[test]
    fn zipf_calibration_matches_paper_knobs() {
        // α = 1.25 should put ≈95% of traffic on the top 3% of 500K flows;
        // α = 1.05 ≈ 80% (paper Figure 12 calibration, large-n regime).
        let z = ZipfSampler::new(500_000, 1.25);
        let share = z.top_share(0.03);
        assert!((0.90..=0.99).contains(&share), "α=1.25 top-3% share {share:.3}");
        let z = ZipfSampler::new(500_000, 1.05);
        let share = z.top_share(0.03);
        assert!((0.70..=0.88).contains(&share), "α=1.05 top-3% share {share:.3}");
    }

    #[test]
    fn zipf_trace_is_skewed() {
        let set = small_set();
        let trace = zipf_trace(&set, 10_000, 1.25, 3);
        // Count distinct keys: heavy skew means far fewer distinct than
        // packets, and the top flow dominates.
        use std::collections::HashMap;
        let mut counts: HashMap<&[u64], usize> = HashMap::new();
        for key in trace.iter() {
            *counts.entry(key).or_default() += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max > 10_000 / 50, "top flow should dominate, got {max}");
        assert!(counts.len() < 500);
    }

    #[test]
    fn zipf_alpha_mapping() {
        assert_eq!(zipf_alpha_for_top3(0.80), 1.05);
        assert_eq!(zipf_alpha_for_top3(0.95), 1.25);
        assert_eq!(zipf_alpha_for_top3(0.87), 1.10);
    }

    #[test]
    fn caida_like_has_trains() {
        let set = small_set();
        let trace = caida_like_trace(&set, 5_000, CaidaLikeConfig::default(), 9);
        assert_eq!(trace.len(), 5_000);
        // Count back-to-back repeats: with mean train 4, well over a third
        // of adjacent pairs repeat; a uniform trace would repeat almost never.
        let mut repeats = 0usize;
        let mut prev: Option<&[u64]> = None;
        for key in trace.iter() {
            if prev == Some(key) {
                repeats += 1;
            }
            prev = Some(key);
        }
        assert!(repeats > 5_000 / 3, "only {repeats} adjacent repeats");
    }

    #[test]
    fn deterministic_in_seed() {
        let set = small_set();
        assert_eq!(uniform_trace(&set, 100, 1).raw(), uniform_trace(&set, 100, 1).raw());
        assert_eq!(zipf_trace(&set, 100, 1.1, 2).raw(), zipf_trace(&set, 100, 1.1, 2).raw());
        assert_ne!(uniform_trace(&set, 100, 1).raw(), uniform_trace(&set, 100, 2).raw());
    }

    #[test]
    fn empty_set_gives_empty_trace() {
        let set = RuleSet::new(nm_common::FieldsSpec::five_tuple(), vec![]).unwrap();
        assert!(uniform_trace(&set, 100, 1).is_empty());
        assert!(zipf_trace(&set, 100, 1.1, 1).is_empty());
        assert!(caida_like_trace(&set, 100, CaidaLikeConfig::default(), 1).is_empty());
    }
}
