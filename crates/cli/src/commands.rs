//! Subcommand implementations.

use crate::args::{Args, ParsedCommand};
use nm_analysis::{centrality_1d, diversity, Table};
use nm_classbench::{generate, parse_classbench, AppKind};
use nm_common::memsize::human_bytes;
use nm_common::{fivetuple, Classifier, FiveTuple, LinearSearch, Rule, RuleSet};
use nm_common::{ShardPlanConfig, ShardStrategy};
use nm_common::{UpdateBatch, UpdateOp};
use nm_cutsplit::CutSplit;
use nm_neurocuts::{NeuroCuts, NeuroCutsConfig};
use nm_trace::{caida_like_trace, uniform_trace, zipf_trace, CaidaLikeConfig};
use nm_tuplemerge::{TupleMerge, TupleSpaceSearch};
use nuevomatch::system::parallel::{run_batched, run_sequential};
use nuevomatch::system::runtime::{PinPolicy, Runtime, RuntimeConfig, ShardedClassifier};
use nuevomatch::{
    measure_update_curve, ClassifierHandle, NuevoMatchConfig, ShardedHandle, UpdateBenchConfig,
    UpdatePacer,
};
use nuevomatch::{NuevoMatch, Topology};
use nuevomatch::{OracleTable, ServeClient, ServeConfig, ServePlane, Server, Transport};

/// Usage text.
pub const HELP: &str = "\
nmctl — NuevoMatch reproduction toolkit

USAGE:
  nmctl generate --kind <acl|fw|ipc> [--rules N] [--seed S]        # ClassBench text to stdout
  nmctl inspect  <rules.cb>                                        # structure metrics
  nmctl bench    <rules.cb> [--engine E] [--trace T] [--packets N] [--batch B] [--json true]
                 [--shards S] [--workers W] [--pin true|false]     # sharded worker runtime
  nmctl classify <rules.cb> --key a.b.c.d,a.b.c.d,sport,dport,proto
  nmctl train    <rules.cb> --out <model.rqrmi>                    # persist largest-iSet RQ-RMI
  nmctl serve    <rules.cb> [--seconds S] [--readers K] [--update-rate U]
                 [--retrain-every R] [--batch B] [--json true]     # wire service + live updates
                 [--listen IP:PORT] [--transport udp|tcp|both] [--max-batch N]
                 [--deadline-us D] [--validate-every N]            # micro-batching + oracle
                 [--udp-readers N]                                 # SO_REUSEPORT reader fleet
                 [--shards S] [--pin true|false]                   # sharded handle replicas
  nmctl update-bench <rules.cb> [--seconds S] [--update-rate U] [--retrain-every R]
                 [--batch B] [--json true] [--bench-json PATH]     # measured Figure 7 curve
                 # --bench-json also measures partial vs full retrain latency and
                 # writes a BENCH_update.json-style perf artifact

engines: linear tss tm cs nc nm-tm nm-cs nm-nc     traces: uniform zipf:<alpha> caida
        (tm/cs/nc also accept tuplemerge/cutsplit/neurocuts; with --batch B > 1
         every engine takes its batched pipeline — tm's table-major probe, the
         cs/nc level-synchronous tree descent, nm's phase pipeline)
sharding: --shards S > 1 partitions the rule-set (range steering on an
        auto-picked field, wildcard-heavy rules broadcast) with one engine
        replica per shard; --workers W threads per shard; --pin pins each
        shard's workers to one NUMA node's CPUs (no-op on 1-CPU machines —
        the runtime degrades to unpinned there). bench runs static shards;
        serve fans its update stream across per-shard handle replicas under
        one logical generation.
serving: serve binds real loopback sockets (--listen, port 0 = ephemeral):
        length-prefixed key frames in, (rule, priority, generation) verdicts
        out. Requests micro-batch per reader — flush at --max-batch or after
        --deadline-us, whichever first — and every batch classifies against
        one pinned generation. --udp-readers N serves UDP from N reader
        threads, each on a private SO_REUSEPORT socket with batched
        recvmmsg/sendmmsg I/O (the kernel hashes flows across them; falls
        back to one shared socket where REUSEPORT is unavailable).
        --readers K drives K loopback *client* threads against the service;
        --json reports measured p50/p99/p99.9 wire service latency plus
        syscalls-per-packet and the per-UDP-reader request spread. Debug
        builds replay 1 in --validate-every verdicts against a LinearSearch
        oracle at the pinned generation (mismatches must be 0).
";

/// Runs a parsed command, returning the text to print (errors as `Err`).
pub fn run(cmd: ParsedCommand) -> Result<String, String> {
    match cmd {
        ParsedCommand::Help => Ok(HELP.to_string()),
        ParsedCommand::Generate(a) => cmd_generate(&a),
        ParsedCommand::Inspect(a) => cmd_inspect(&a),
        ParsedCommand::Bench(a) => cmd_bench(&a),
        ParsedCommand::Classify(a) => cmd_classify(&a),
        ParsedCommand::Train(a) => cmd_train(&a),
        ParsedCommand::Serve(a) => cmd_serve(&a),
        ParsedCommand::UpdateBench(a) => cmd_update_bench(&a),
    }
}

fn load_rules(a: &Args) -> Result<RuleSet, String> {
    let path = a.positional.first().ok_or_else(|| "expected a rule file argument".to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_classbench(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn cmd_generate(a: &Args) -> Result<String, String> {
    let kind = match a.get_or("kind", "acl") {
        "acl" => AppKind::Acl,
        "fw" => AppKind::Fw,
        "ipc" => AppKind::Ipc,
        other => return Err(format!("unknown --kind '{other}' (acl|fw|ipc)")),
    };
    let rules: usize = a.num_or("rules", 1_000)?;
    let seed: u64 = a.num_or("seed", 1)?;
    let set = generate(kind, rules, seed);
    Ok(nm_classbench::parse::to_classbench(&set))
}

fn cmd_inspect(a: &Args) -> Result<String, String> {
    let set = load_rules(a)?;
    let mut out = format!("rules: {}   fields: {}\n\n", set.len(), set.num_fields());
    let mut table = Table::new(&["field", "bits", "diversity", "centrality(1-D)"]);
    for d in 0..set.num_fields() {
        table.row(vec![
            set.spec().field(d).name.clone(),
            format!("{}", set.spec().bits(d)),
            format!("{:.3}", diversity(&set, d)),
            format!("{}", centrality_1d(&set, d)),
        ]);
    }
    out.push_str(&table.render());
    // Port-class and protocol census for 5-tuple sets.
    if set.num_fields() == 5 {
        let c = nm_common::stats::PortClassCensus::of(&set, nm_common::DST_PORT);
        out.push_str(&format!(
            "\ndst-port classes: WC {} / HI {} / LO {} / EM {} / AR {}\n",
            c.wildcard, c.high, c.low, c.exact, c.arbitrary
        ));
        let protos = nm_common::stats::protocol_census(&set, nm_common::PROTO);
        let top: Vec<String> = protos
            .iter()
            .take(4)
            .map(|&(p, n)| match p {
                256 => format!("* x{n}"),
                257 => format!("range x{n}"),
                v => format!("{v} x{n}"),
            })
            .collect();
        out.push_str(&format!("protocols: {}\n", top.join(", ")));
    }
    let curve = nuevomatch::iset::coverage_curve(&set, 4);
    out.push_str(&format!(
        "\niSet coverage (1..4): {:.1}% {:.1}% {:.1}% {:.1}%\n",
        curve[0] * 100.0,
        curve[1] * 100.0,
        curve[2] * 100.0,
        curve[3] * 100.0
    ));
    Ok(out)
}

fn build_engine(name: &str, set: &RuleSet) -> Result<Box<dyn Classifier>, String> {
    let nm_cfg = NuevoMatchConfig::default();
    Ok(match name {
        "linear" => Box::new(nm_common::LinearSearch::build(set)),
        "tss" => Box::new(TupleSpaceSearch::build(set)),
        "tm" | "tuplemerge" => Box::new(TupleMerge::build(set)),
        "cs" | "cutsplit" => Box::new(CutSplit::build(set)),
        "nc" | "neurocuts" => Box::new(NeuroCuts::with_config(
            set,
            NeuroCutsConfig { iterations: 12, sample: 2_048, ..Default::default() },
        )),
        "nm-tm" => {
            Box::new(NuevoMatch::build(set, &nm_cfg, TupleMerge::build).map_err(|e| e.to_string())?)
        }
        "nm-cs" => {
            Box::new(NuevoMatch::build(set, &nm_cfg, CutSplit::build).map_err(|e| e.to_string())?)
        }
        "nm-nc" => Box::new(
            NuevoMatch::build(set, &nm_cfg, |rem: &RuleSet| {
                NeuroCuts::with_config(
                    rem,
                    NeuroCutsConfig { iterations: 12, sample: 2_048, ..Default::default() },
                )
            })
            .map_err(|e| e.to_string())?,
        ),
        other => return Err(format!("unknown --engine '{other}'")),
    })
}

fn cmd_bench(a: &Args) -> Result<String, String> {
    let set = load_rules(a)?;
    let engine_name = a.get_or("engine", "nm-tm").to_string();
    let packets: usize = a.num_or("packets", 100_000)?;
    let seed: u64 = a.num_or("seed", 1)?;
    let trace_spec = a.get_or("trace", "uniform");
    let trace = if trace_spec == "uniform" {
        uniform_trace(&set, packets, seed)
    } else if trace_spec == "caida" {
        caida_like_trace(&set, packets, CaidaLikeConfig::default(), seed)
    } else if let Some(alpha) = trace_spec.strip_prefix("zipf:") {
        let alpha: f64 = alpha.parse().map_err(|_| format!("bad zipf alpha '{alpha}'"))?;
        zipf_trace(&set, packets, alpha, seed)
    } else {
        return Err(format!("unknown --trace '{trace_spec}'"));
    };

    let batch: usize = a.num_or("batch", 1)?;
    let json: bool = a.num_or("json", false)?;
    let shards: usize = a.num_or("shards", 1)?;
    let workers: usize = a.num_or("workers", 1)?;
    let pin: bool = a.num_or("pin", true)?;
    if shards == 0 || workers == 0 {
        return Err("--shards and --workers must be >= 1".into());
    }

    // `--shards`/`--workers` route through the worker runtime: one engine
    // replica per shard (range steering, broadcast shard for wildcard-heavy
    // rules), workers pinned per NUMA node unless --pin false. Engines are
    // built per subset up front so an unknown engine name (or a failing
    // build) surfaces as an error, not a panic inside a builder closure.
    if shards > 1 || workers > 1 {
        let t0 = std::time::Instant::now();
        let plan_cfg = ShardPlanConfig { shards, dim: None, strategy: ShardStrategy::Range };
        let plan = nm_common::ShardPlan::build(&set, &plan_cfg).map_err(|e| e.to_string())?;
        let (home_sets, broadcast_set) = plan.subsets(&set);
        let home = home_sets
            .iter()
            .map(|s| build_engine(&engine_name, s))
            .collect::<Result<Vec<_>, _>>()?;
        let broadcast = if broadcast_set.is_empty() {
            None
        } else {
            Some(build_engine(&engine_name, &broadcast_set)?)
        };
        let sharded =
            ShardedClassifier::from_parts(plan, home, broadcast).map_err(|e| e.to_string())?;
        let build_s = t0.elapsed().as_secs_f64();
        let rt = Runtime::new(RuntimeConfig {
            batch: batch.max(1),
            workers_per_shard: workers,
            pin: if pin { PinPolicy::Numa } else { PinPolicy::Never },
            ..Default::default()
        });
        let stats = rt.run(&sharded, &trace).map_err(|e| e.to_string())?;
        if json {
            return Ok(format!(
                "{{\"engine\":\"{}\",\"rules\":{},\"build_s\":{:.3},\"memory_bytes\":{},\
                 \"packets\":{},\"batch\":{},\"pps\":{:.1},\"ns_per_packet\":{:.1},\
                 \"generation\":{},\"update_rate\":0.0,\"shards\":{},\"workers\":{},\
                 \"pinned_workers\":{},\"broadcast_fraction\":{:.4}}}\n",
                engine_name,
                set.len(),
                build_s,
                sharded.memory_bytes(),
                trace.len(),
                batch.max(1),
                stats.pps,
                1e9 / stats.pps.max(1e-9),
                Classifier::generation(&sharded),
                stats.shards,
                stats.workers,
                stats.pinned_workers,
                sharded.plan().broadcast_fraction(),
            ));
        }
        return Ok(format!(
            "engine: {} (sharded runtime)\nrules: {}\nbuild time: {:.2}s\nindex memory: {}\n\
             packets: {}\nbatch: {}\nshards: {} (broadcast {:.1}%)\nworkers: {} ({} pinned)\n\
             throughput: {:.3e} pps ({:.0} ns/packet)\n",
            engine_name,
            set.len(),
            build_s,
            human_bytes(sharded.memory_bytes()),
            trace.len(),
            batch.max(1),
            stats.shards,
            sharded.plan().broadcast_fraction() * 100.0,
            stats.workers,
            stats.pinned_workers,
            stats.pps,
            1e9 / stats.pps.max(1e-9),
        ));
    }

    let t0 = std::time::Instant::now();
    let engine = build_engine(&engine_name, &set)?;
    let build_s = t0.elapsed().as_secs_f64();
    // --batch 1 (default) is the per-key reference loop; larger sizes go
    // through the engine's batched pipeline (`classify_batch`).
    let stats = if batch <= 1 {
        run_sequential(engine.as_ref(), &trace)
    } else {
        run_batched(engine.as_ref(), &trace, batch)
    };
    if json {
        // Machine-readable form, shape-compatible with the `update-bench`
        // samples: static benches report generation 0 and update_rate 0.
        return Ok(format!(
            "{{\"engine\":\"{}\",\"rules\":{},\"build_s\":{:.3},\"memory_bytes\":{},\
             \"packets\":{},\"batch\":{},\"pps\":{:.1},\"ns_per_packet\":{:.1},\
             \"generation\":{},\"update_rate\":0.0,\"shards\":1,\"workers\":1,\
             \"pinned_workers\":0,\"broadcast_fraction\":0.0}}\n",
            engine_name,
            set.len(),
            build_s,
            engine.memory_bytes(),
            trace.len(),
            batch,
            stats.pps,
            1e9 / stats.pps.max(1e-9),
            engine.generation(),
        ));
    }
    Ok(format!(
        "engine: {}\nrules: {}\nbuild time: {:.2}s\nindex memory: {}\npackets: {}\nbatch: {}\nthroughput: {:.3e} pps ({:.0} ns/packet)\ngeneration: {}\n",
        engine_name,
        set.len(),
        build_s,
        human_bytes(engine.memory_bytes()),
        trace.len(),
        batch,
        stats.pps,
        1e9 / stats.pps.max(1e-9),
        engine.generation(),
    ))
}

fn cmd_classify(a: &Args) -> Result<String, String> {
    let set = load_rules(a)?;
    let key = parse_key(a.require("key")?)?;
    let engine = build_engine(a.get_or("engine", "nm-tm"), &set)?;
    Ok(match engine.classify(&key) {
        Some(m) => format!("match: rule {} (priority {})\n", m.rule, m.priority),
        None => "no match\n".to_string(),
    })
}

fn cmd_train(a: &Args) -> Result<String, String> {
    let set = load_rules(a)?;
    let out_path = a.require("out")?;
    let part = nuevomatch::iset::partition_isets(&set, 1, 0.0);
    let iset = part.isets.first().ok_or_else(|| "no iSet could be formed".to_string())?;
    let ranges: Vec<nm_common::FieldRange> =
        iset.rule_ids.iter().map(|&id| set.rule(id).fields[iset.dim]).collect();
    let bits = set.spec().bits(iset.dim);
    let t0 = std::time::Instant::now();
    let model = nuevomatch::train_rqrmi(&ranges, bits, &nuevomatch::RqRmiParams::default())
        .map_err(|e| e.to_string())?;
    let dt = t0.elapsed().as_secs_f64();
    let bytes = nuevomatch::save_rqrmi(&model);
    std::fs::write(out_path, &bytes).map_err(|e| format!("writing {out_path}: {e}"))?;
    Ok(format!(
        "trained RQ-RMI over field '{}' ({} of {} rules, {:.1}% coverage) in {:.2}s\n\
         worst error bound: {}\nmodel: {} -> {}\n",
        set.spec().field(iset.dim).name,
        iset.len(),
        set.len(),
        100.0 * iset.len() as f64 / set.len() as f64,
        dt,
        model.max_error_bound(),
        human_bytes(bytes.len()),
        out_path,
    ))
}

/// Builds the update stream both live-update commands replay: transaction
/// `seq` modifies `ops` existing rules to fresh random dst-port ranges, so
/// every op drifts one rule from its iSet to the remainder (the worst case
/// for §3.9, and the one Figure 7 models).
fn drift_batch(set: &RuleSet, rng: &mut nm_common::SplitMix64, ops: usize) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for _ in 0..ops {
        let rule = set.rule_at(rng.below(set.len() as u64) as usize);
        let lo = rng.below(60_000) as u16;
        batch = batch.modify(
            FiveTuple::new()
                .dst_port_range(lo, lo.saturating_add(200))
                .into_rule(rule.id, rule.priority),
        );
    }
    batch
}

/// The two control planes `nmctl serve` can front: one whole-set handle, or
/// per-shard handle replicas kept in sync by update fan-out.
enum ServeHandle {
    Plain(ClassifierHandle<TupleMerge>),
    Sharded(ShardedHandle<TupleMerge>),
}

impl ServeHandle {
    fn generation(&self) -> u64 {
        match self {
            ServeHandle::Plain(h) => h.generation(),
            ServeHandle::Sharded(h) => h.generation(),
        }
    }

    fn remainder_fraction(&self) -> f64 {
        match self {
            ServeHandle::Plain(h) => h.snapshot().engine().remainder_fraction(),
            ServeHandle::Sharded(h) => h.remainder_fraction(),
        }
    }
}

/// Folds an update batch into the oracle's rule truth (upsert on id).
fn apply_truth(truth: &mut std::collections::HashMap<u32, Rule>, batch: &UpdateBatch) {
    for op in batch.ops() {
        match op {
            UpdateOp::Insert(r) | UpdateOp::Modify(r) => {
                truth.insert(r.id, r.clone());
            }
            UpdateOp::Remove(id) => {
                truth.remove(id);
            }
        }
    }
}

/// Ground truth the serve updater publishes into the validator's
/// [`OracleTable`] whenever the served generation moves.
struct OracleTruth {
    rules: Option<std::collections::HashMap<u32, Rule>>,
    last_published: Option<u64>,
}

impl OracleTruth {
    /// Seeds the truth from the initial rule-set (`None` when sampling is
    /// off — release builds by default).
    fn new(enabled: bool, set: &RuleSet) -> Self {
        let rules = enabled.then(|| set.rules().iter().map(|r| (r.id, r.clone())).collect());
        Self { rules, last_published: None }
    }

    fn absorb(&mut self, batch: &UpdateBatch) {
        if let Some(t) = self.rules.as_mut() {
            apply_truth(t, batch);
        }
    }

    /// Publishes the current truth at `generation` if that generation has
    /// not been published yet. Generations skipped between calls (a pacer
    /// applying several batches per tick) are simply never published — the
    /// validator counts samples at those generations as skipped, never as
    /// mismatches.
    fn publish(&mut self, oracle: &OracleTable, generation: u64) {
        let Some(t) = self.rules.as_ref() else { return };
        if self.last_published == Some(generation) {
            return;
        }
        oracle.publish(generation, LinearSearch::from_rules(t.values().cloned().collect()));
        self.last_published = Some(generation);
    }
}

/// What one wire-serving run produced, for the report.
struct WireOutcome {
    stats: nuevomatch::ServeStats,
    driver_served: u64,
    driver_timeouts: u64,
    updates_applied: u64,
    retrains: u64,
    udp_addr: Option<std::net::SocketAddr>,
    tcp_addr: Option<std::net::SocketAddr>,
    tcp_drivers: usize,
    /// Per-UDP-reader snapshots (taken before shutdown), for the spread
    /// report — a skewed reader is a flow-steering problem percentile
    /// folds would hide.
    udp_reader_stats: Vec<nuevomatch::ServeStats>,
}

/// One loopback load-driver thread: windows of trace keys out, verdicts
/// back, closed-loop. Returns (verdicts received, receive timeouts).
fn drive_clients(
    addr: std::net::SocketAddr,
    udp: bool,
    trace: &nm_common::TraceBuf,
    window: usize,
    stop: &std::sync::atomic::AtomicBool,
) -> (u64, u64) {
    let client = if udp { ServeClient::udp(addr) } else { ServeClient::tcp(addr) };
    let Ok(mut client) = client else { return (0, 0) };
    let (raw, stride, n) = (trace.raw(), trace.stride(), trace.len());
    let window = window.clamp(1, 512);
    let (mut served, mut timeouts) = (0u64, 0u64);
    let mut lo = 0usize;
    'outer: while !stop.load(std::sync::atomic::Ordering::Relaxed) {
        let hi = (lo + window).min(n);
        if client.send_batch(lo as u64, &raw[lo * stride..hi * stride], stride).is_err() {
            break;
        }
        let want = hi - lo;
        let mut got = 0usize;
        while got < want {
            match client.recv(Some(std::time::Duration::from_millis(100))) {
                Ok(frames) if frames.is_empty() => break 'outer, // clean TCP EOF
                Ok(frames) => got += frames.len(),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // Lost datagram (UDP has no delivery guarantee even on
                    // loopback) or a slow flush; resend from the next window.
                    timeouts += 1;
                    break;
                }
                Err(_) => break 'outer,
            }
        }
        served += got as u64;
        lo = if hi >= n { 0 } else { hi };
    }
    (served, timeouts)
}

/// Starts a [`Server`] over `plane`, drives it with `readers` loopback
/// client threads replaying `trace`, and runs `updater` (the update /
/// retrain / oracle-publishing loop, which also decides the duration) on
/// the calling thread. Returns once everything drained.
fn serve_wire<P, U>(
    plane: P,
    scfg: &ServeConfig,
    trace: &nm_common::TraceBuf,
    readers: usize,
    window: usize,
    updater: U,
) -> Result<WireOutcome, String>
where
    P: ServePlane,
    U: FnOnce(&OracleTable) -> (u64, u64),
{
    let server =
        Server::start(plane, scfg).map_err(|e| format!("serve: binding {}: {e}", scfg.listen))?;
    let (udp_addr, tcp_addr) = (server.udp_addr(), server.tcp_addr());
    let oracle = server.oracle();
    let stop = std::sync::atomic::AtomicBool::new(false);
    let mut driver_served = 0u64;
    let mut driver_timeouts = 0u64;
    let mut tcp_drivers = 0usize;
    let mut counts = (0u64, 0u64);
    std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for r in 0..readers.max(1) {
            let use_udp = match scfg.transport {
                Transport::Udp => true,
                Transport::Tcp => false,
                Transport::Both => r % 2 == 0,
            };
            tcp_drivers += usize::from(!use_udp);
            let addr = if use_udp { udp_addr } else { tcp_addr }.expect("transport bound");
            let stop = &stop;
            joins.push(scope.spawn(move || drive_clients(addr, use_udp, trace, window, stop)));
        }
        counts = updater(&oracle);
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
        for j in joins {
            let (s, t) = j.join().expect("load driver panicked");
            driver_served += s;
            driver_timeouts += t;
        }
    });
    let udp_reader_stats = server
        .per_reader_stats()
        .into_iter()
        .filter(|(kind, _)| *kind == nuevomatch::system::serve::ReaderKind::Udp)
        .map(|(_, st)| st)
        .collect();
    let stats = server.shutdown();
    Ok(WireOutcome {
        stats,
        driver_served,
        driver_timeouts,
        updates_applied: counts.0,
        retrains: counts.1,
        udp_addr,
        tcp_addr,
        tcp_drivers,
        udp_reader_stats,
    })
}

fn cmd_serve(a: &Args) -> Result<String, String> {
    let set = load_rules(a)?;
    if set.is_empty() {
        return Err("serve: the rule file holds no rules (nothing to update or classify)".into());
    }
    let seconds: f64 = a.num_or("seconds", 2.0)?;
    let readers: usize = a.num_or("readers", 2)?;
    let update_rate: f64 = a.num_or("update-rate", 1_000.0)?;
    let retrain_every: f64 = a.num_or("retrain-every", 0.0)?;
    let batch: usize = a.num_or("batch", 128)?;
    let packets: usize = a.num_or("packets", 50_000)?;
    let seed: u64 = a.num_or("seed", 1)?;
    let json: bool = a.num_or("json", false)?;
    let shards: usize = a.num_or("shards", 1)?;
    let pin: bool = a.num_or("pin", true)?;
    if shards == 0 {
        return Err("--shards must be >= 1".into());
    }
    let mut scfg = ServeConfig {
        listen: a
            .get_or("listen", "127.0.0.1:0")
            .parse()
            .map_err(|e| format!("bad --listen address: {e}"))?,
        transport: a.get_or("transport", "both").parse()?,
        max_batch: a.num_or("max-batch", 128usize)?.max(1),
        deadline: std::time::Duration::from_micros(a.num_or("deadline-us", 20u64)?),
        stride: set.num_fields(),
        udp_readers: a.num_or("udp-readers", 1usize)?.clamp(1, 64),
        pin,
        ..ServeConfig::default()
    };
    scfg.validate_every = a.num_or("validate-every", scfg.validate_every)?;

    let trace = uniform_trace(&set, packets, seed);
    let t0 = std::time::Instant::now();
    let serve = if shards > 1 {
        let plan = ShardPlanConfig { shards, dim: None, strategy: ShardStrategy::Range };
        ServeHandle::Sharded(
            ShardedHandle::new(&set, &NuevoMatchConfig::default(), &plan, TupleMerge::build)
                .map_err(|e| e.to_string())?,
        )
    } else {
        ServeHandle::Plain(
            ClassifierHandle::new(&set, &NuevoMatchConfig::default(), TupleMerge::build)
                .map_err(|e| e.to_string())?,
        )
    };
    let build_s = t0.elapsed().as_secs_f64();

    let ops_per_batch = 16usize;
    let validate = scfg.validate_every > 0;
    let mut rng = nm_common::SplitMix64::new(seed ^ 0xdead_beef);
    let start = std::time::Instant::now();
    let wire = match &serve {
        // Whole-set handle: the shared pacer (same loop body
        // `measure_update_curve` uses), retrains on background threads.
        ServeHandle::Plain(handle) => {
            serve_wire(handle.clone(), &scfg, &trace, readers, batch, |oracle| {
                let mut truth = OracleTruth::new(validate, &set);
                truth.publish(oracle, handle.generation());
                let mut pacer = UpdatePacer::new(update_rate, ops_per_batch, retrain_every);
                let mut retrain_joins = Vec::new();
                while start.elapsed().as_secs_f64() < seconds {
                    pacer.tick(handle, &mut retrain_joins, |_| {
                        let b = drift_batch(&set, &mut rng, ops_per_batch);
                        truth.absorb(&b);
                        b
                    });
                    truth.publish(oracle, handle.generation());
                }
                let applied = pacer.ops_applied();
                // Wait out every retrain the pacer spawned so the stats
                // below are settled and no trainer is killed by exit; a
                // retrain bumps the generation with the same rule truth.
                UpdatePacer::drain(retrain_joins);
                truth.publish(oracle, handle.generation());
                (applied, handle.retrains_completed())
            })?
        }
        // Sharded replicas: paced fan-out applies; retrains fan across
        // every shard on a background thread, so a multi-second retrain
        // neither stalls this updater loop nor overshoots the requested
        // duration — the serve path keeps pinning coherent epochs.
        ServeHandle::Sharded(sharded) => {
            serve_wire(sharded.clone(), &scfg, &trace, readers, batch, |oracle| {
                let mut truth = OracleTruth::new(validate, &set);
                truth.publish(oracle, sharded.generation());
                let interval = (update_rate > 0.0).then(|| {
                    std::time::Duration::from_secs_f64(ops_per_batch as f64 / update_rate)
                });
                let mut next_fire = std::time::Instant::now();
                let mut last_retrain = std::time::Instant::now();
                let mut retrain_joins = Vec::new();
                let mut applied = 0u64;
                while start.elapsed().as_secs_f64() < seconds {
                    match interval {
                        Some(dt) if std::time::Instant::now() >= next_fire => {
                            let batch = drift_batch(&set, &mut rng, ops_per_batch);
                            applied += batch.len() as u64;
                            truth.absorb(&batch);
                            sharded.apply(&batch);
                            next_fire += dt;
                        }
                        _ => std::thread::sleep(std::time::Duration::from_micros(200)),
                    }
                    let idle =
                        retrain_joins.last().map_or(true, std::thread::JoinHandle::is_finished);
                    if retrain_every > 0.0
                        && idle
                        && last_retrain.elapsed().as_secs_f64() >= retrain_every
                    {
                        last_retrain = std::time::Instant::now();
                        let sharded = sharded.clone();
                        retrain_joins.push(std::thread::spawn(move || sharded.retrain()));
                    }
                    truth.publish(oracle, sharded.generation());
                }
                // Wait out every spawned retrain so the stats below are
                // settled and no trainer is killed by process exit.
                let retrains = retrain_joins
                    .into_iter()
                    .filter_map(|j| j.join().ok())
                    .filter(Result::is_ok)
                    .count() as u64;
                truth.publish(oracle, sharded.generation());
                (applied, retrains)
            })?
        }
    };
    let elapsed = start.elapsed().as_secs_f64();
    let stats = &wire.stats;
    let lat = stats.latency.summary_us();
    // Serve-side reader threads pinned round-robin over the topology: the
    // UDP readers plus one connection thread per TCP driver (no-op and
    // reported 0 on 1-CPU boxes or with --pin false).
    let pinning = pin && Topology::discover().num_cpus() > 1;
    let pinned_readers = if pinning {
        scfg.udp_readers * usize::from(scfg.transport.udp()) + wire.tcp_drivers
    } else {
        0
    };
    let reader_requests_min = wire.udp_reader_stats.iter().map(|r| r.requests).min().unwrap_or(0);
    let reader_requests_max = wire.udp_reader_stats.iter().map(|r| r.requests).max().unwrap_or(0);
    if json {
        return Ok(format!(
            "{{\"engine\":\"nm-tm\",\"rules\":{},\"build_s\":{:.3},\"readers\":{},\"seconds\":{:.3},\
             \"packets\":{},\"pps\":{:.1},\"update_rate\":{:.1},\"updates_applied\":{},\
             \"generation\":{},\"retrains\":{},\"remainder_fraction\":{:.4},\
             \"shards\":{},\"pinned_readers\":{},\"udp_readers\":{},\
             \"transport\":\"{}\",\"max_batch\":{},\"deadline_us\":{},\
             \"served\":{},\"driver_timeouts\":{},\"batches\":{},\"full_flushes\":{},\
             \"deadline_flushes\":{},\"drain_flushes\":{},\"decode_errors\":{},\
             \"recv_calls\":{},\"empty_recv_calls\":{},\"send_calls\":{},\
             \"syscalls_per_packet\":{:.4},\
             \"reader_requests_min\":{},\"reader_requests_max\":{},\
             \"validated\":{},\"oracle_skipped\":{},\"mismatches\":{},\
             \"p50_us\":{:.1},\"p99_us\":{:.1},\"p999_us\":{:.1},\"mean_us\":{:.1}}}\n",
            set.len(),
            build_s,
            readers.max(1),
            elapsed,
            stats.responses,
            stats.responses as f64 / elapsed,
            update_rate,
            wire.updates_applied,
            serve.generation(),
            wire.retrains,
            serve.remainder_fraction(),
            shards,
            pinned_readers,
            scfg.udp_readers,
            scfg.transport,
            scfg.max_batch,
            scfg.deadline.as_micros(),
            wire.driver_served,
            wire.driver_timeouts,
            stats.batches,
            stats.full_flushes,
            stats.deadline_flushes,
            stats.drain_flushes,
            stats.decode_errors,
            stats.recv_calls,
            stats.empty_recv_calls,
            stats.send_calls,
            stats.syscalls_per_packet(),
            reader_requests_min,
            reader_requests_max,
            stats.validated,
            stats.oracle_skipped,
            stats.mismatches,
            lat.p50_us,
            lat.p99_us,
            lat.p999_us,
            lat.mean_us,
        ));
    }
    let addr =
        |a: Option<std::net::SocketAddr>| a.map_or_else(|| "-".to_string(), |sa| sa.to_string());
    Ok(format!(
        "served {} verdicts over {:.2}s on the wire (udp {} / tcp {}, {} shard(s)): {:.3e} pps\n\
         {} loopback drivers, window {}; {} batches ({} full / {} deadline / {} drain), \
         {} decode errors\n\
         syscalls: {} recv + {} send for {} requests = {:.4}/pkt \
         ({} udp reader(s), requests {}..{})\n\
         service latency: p50 {:.1}us  p99 {:.1}us  p99.9 {:.1}us  mean {:.1}us\n\
         updates applied: {} ({:.0}/s target) -> generation {}\n\
         retrains completed: {}   remainder fraction now: {:.1}%\n\
         oracle validation: {} sampled, {} mismatches ({} skipped)\n\
         readers never blocked: every batch classified one pinned generation\n",
        stats.responses,
        elapsed,
        addr(wire.udp_addr),
        addr(wire.tcp_addr),
        shards,
        stats.responses as f64 / elapsed,
        readers.max(1),
        batch.clamp(1, 512),
        stats.batches,
        stats.full_flushes,
        stats.deadline_flushes,
        stats.drain_flushes,
        stats.decode_errors,
        stats.recv_calls,
        stats.send_calls,
        stats.requests,
        stats.syscalls_per_packet(),
        scfg.udp_readers,
        reader_requests_min,
        reader_requests_max,
        lat.p50_us,
        lat.p99_us,
        lat.p999_us,
        lat.mean_us,
        wire.updates_applied,
        update_rate,
        serve.generation(),
        wire.retrains,
        serve.remainder_fraction() * 100.0,
        stats.validated,
        stats.mismatches,
        stats.oracle_skipped,
    ))
}

fn cmd_update_bench(a: &Args) -> Result<String, String> {
    let set = load_rules(a)?;
    if set.is_empty() {
        return Err("update-bench: the rule file holds no rules (nothing to drift)".into());
    }
    let seconds: f64 = a.num_or("seconds", 4.0)?;
    let update_rate: f64 = a.num_or("update-rate", 1_000.0)?;
    let retrain_every: f64 = a.num_or("retrain-every", 1.5)?;
    let batch: usize = a.num_or("batch", 128)?;
    let packets: usize = a.num_or("packets", 50_000)?;
    let seed: u64 = a.num_or("seed", 1)?;
    let json: bool = a.num_or("json", false)?;
    let bench_json = a.get_or("bench-json", "");

    let trace = uniform_trace(&set, packets, seed);
    let handle = ClassifierHandle::new(&set, &NuevoMatchConfig::default(), TupleMerge::build)
        .map_err(|e| e.to_string())?;
    let cfg = UpdateBenchConfig {
        duration_s: seconds,
        sample_every_s: (seconds / 20.0).max(0.05),
        updates_per_s: update_rate,
        ops_per_batch: 16,
        retrain_period_s: retrain_every,
        batch,
    };
    let mut rng = nm_common::SplitMix64::new(seed ^ 0x5eed);
    let curve = measure_update_curve(&handle, &trace, &cfg, |_| drift_batch(&set, &mut rng, 16));
    if !bench_json.is_empty() {
        // Perf-trajectory artifact (CI update-soak job): partial vs full
        // retrain latency (shared methodology:
        // `nuevomatch::measure_retrain_latencies`, same helper the
        // update_bench binary uses), the configured update rate, and the
        // analytic drift floor each publish period enables at tau=2T. The
        // floor is parameterised by the *measured* remainder/fresh
        // throughput ratio, like the bench binary's artifact.
        let lat =
            nuevomatch::measure_retrain_latencies(&handle, &set).map_err(|e| e.to_string())?;
        let tm_pps = run_batched(&TupleMerge::build(&set), &trace, batch.max(1)).pps;
        let fresh_pps = run_batched(&handle, &trace, batch.max(1)).pps;
        let remainder_ratio = (tm_pps / fresh_pps.max(1e-9)).min(1.0);
        let floor = |train_time: f64| {
            nm_analysis::drift_floor(&nm_analysis::UpdateModel {
                rules: set.len() as f64,
                update_rate,
                retrain_period: 2.0 * train_time,
                train_time,
                fresh_throughput: 1.0,
                remainder_throughput: remainder_ratio,
            })
        };
        let artifact = format!(
            "{{\"rules\":{},\"update_rate\":{update_rate:.1},\
             \"retrain_period_s\":{retrain_every:.2},\"train_full_s\":{:.5},\
             \"train_partial_s\":{:.5},\"partial_speedup\":{:.2},\
             \"drift_ops\":{},\"dirty_leaf_fraction\":{:.4},\"drift_floor_full\":{:.4},\
             \"drift_floor_partial\":{:.4},\"curve_points\":{},\
             \"remainder_ratio\":{remainder_ratio:.4},\
             \"partial_retrains\":{},\"retrains\":{},\
             \"batch_p50_us\":{:.3},\"batch_p99_us\":{:.3},\"batch_p999_us\":{:.3}}}\n",
            set.len(),
            lat.full_s,
            lat.partial_s,
            lat.speedup(),
            lat.drift_ops,
            lat.dirty_leaf_fraction,
            floor(lat.full_s),
            floor(lat.partial_s),
            curve.points.len(),
            handle.partial_retrains_completed(),
            handle.retrains_completed(),
            curve.batch_latency.percentile(0.50) / 1e3,
            curve.batch_latency.percentile(0.99) / 1e3,
            curve.batch_latency.percentile(0.999) / 1e3,
        );
        std::fs::write(bench_json, &artifact).map_err(|e| format!("writing {bench_json}: {e}"))?;
    }
    let mut out = String::new();
    if json {
        for p in &curve.points {
            out.push_str(&format!(
                "{{\"t_s\":{:.3},\"pps\":{:.1},\"generation\":{},\"update_rate\":{:.1},\
                 \"remainder_fraction\":{:.4},\"retrains\":{}}}\n",
                p.t_s, p.pps, p.generation, update_rate, p.remainder_fraction, p.retrains
            ));
        }
        let lat = curve.batch_latency.summary_us();
        out.push_str(&format!(
            "{{\"batch_latency_samples\":{},\"batch_p50_us\":{:.3},\"batch_p99_us\":{:.3},\
             \"batch_p999_us\":{:.3},\"batch_mean_us\":{:.3}}}\n",
            lat.count, lat.p50_us, lat.p99_us, lat.p999_us, lat.mean_us
        ));
        return Ok(out);
    }
    out.push_str(&format!(
        "measured Figure 7 curve: {} rules, {:.0} updates/s, retrain every {:.1}s\n\n",
        set.len(),
        update_rate,
        retrain_every
    ));
    out.push_str(&format!(
        "{:>7}  {:>12}  {:>6}  {:>10}  {:>9}  {:>8}\n",
        "t (s)", "pps", "rel", "generation", "rem-frac", "retrains"
    ));
    let peak = curve.points.iter().map(|p| p.pps).fold(0.0f64, f64::max).max(1e-9);
    for p in &curve.points {
        out.push_str(&format!(
            "{:>7.2}  {:>12.3e}  {:>6.2}  {:>10}  {:>9.3}  {:>8}\n",
            p.t_s,
            p.pps,
            p.pps / peak,
            p.generation,
            p.remainder_fraction,
            p.retrains
        ));
    }
    let lat = curve.batch_latency.summary_us();
    out.push_str(&format!(
        "\nper-batch classify latency ({} samples): \
         p50 {:.1}us  p99 {:.1}us  p99.9 {:.1}us  mean {:.1}us\n",
        lat.count, lat.p50_us, lat.p99_us, lat.p999_us, lat.mean_us
    ));
    Ok(out)
}

/// Parses `a.b.c.d,a.b.c.d,sport,dport,proto` into a 5-tuple key.
pub fn parse_key(s: &str) -> Result<[u64; 5], String> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != 5 {
        return Err(format!("--key needs 5 comma-separated values, got {}", parts.len()));
    }
    let ip = |t: &str| -> Result<u64, String> {
        if t.contains('.') {
            let o: Vec<&str> = t.split('.').collect();
            if o.len() != 4 {
                return Err(format!("bad IPv4 '{t}'"));
            }
            let mut b = [0u8; 4];
            for (i, part) in o.iter().enumerate() {
                b[i] = part.parse().map_err(|_| format!("bad octet '{part}'"))?;
            }
            Ok(fivetuple::ipv4(b))
        } else {
            t.parse().map_err(|_| format!("bad numeric field '{t}'"))
        }
    };
    Ok([
        ip(parts[0])?,
        ip(parts[1])?,
        parts[2].parse().map_err(|_| format!("bad port '{}'", parts[2]))?,
        parts[3].parse().map_err(|_| format!("bad port '{}'", parts[3]))?,
        parts[4].parse().map_err(|_| format!("bad proto '{}'", parts[4]))?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse_command;

    fn v(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn help_is_returned_for_no_args() {
        let out = run(parse_command(&v(&[])).unwrap()).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn generate_emits_classbench_text() {
        let cmd = parse_command(&v(&["generate", "--kind", "fw", "--rules", "25"])).unwrap();
        let out = run(cmd).unwrap();
        assert_eq!(out.lines().count(), 25);
        assert!(out.starts_with('@'));
        // And it parses back.
        assert_eq!(parse_classbench(&out).unwrap().len(), 25);
    }

    #[test]
    fn generate_rejects_bad_kind() {
        let cmd = parse_command(&v(&["generate", "--kind", "bogus"])).unwrap();
        assert!(run(cmd).is_err());
    }

    #[test]
    fn full_file_workflow() {
        let dir = std::env::temp_dir().join(format!("nmctl-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rules = dir.join("rules.cb");
        let gen = run(parse_command(&v(&["generate", "--kind", "acl", "--rules", "300"])).unwrap())
            .unwrap();
        std::fs::write(&rules, gen).unwrap();
        let rp = rules.to_str().unwrap();

        let out = run(parse_command(&v(&["inspect", rp])).unwrap()).unwrap();
        assert!(out.contains("rules: 300"));
        assert!(out.contains("iSet coverage"));

        let out =
            run(parse_command(&v(&["bench", rp, "--engine", "tm", "--packets", "2000"])).unwrap())
                .unwrap();
        assert!(out.contains("throughput"));

        let out =
            run(parse_command(&v(&["classify", rp, "--key", "10.0.0.1,10.0.0.2,1,2,6"])).unwrap())
                .unwrap();
        assert!(out.contains("match") || out.contains("no match"));

        let model = dir.join("m.rqrmi");
        let out = run(parse_command(&v(&["train", rp, "--out", model.to_str().unwrap()])).unwrap())
            .unwrap();
        assert!(out.contains("worst error bound"));
        // The persisted model loads back.
        let bytes = std::fs::read(&model).unwrap();
        assert!(nuevomatch::load_rqrmi(&bytes).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batched_bench_covers_tree_engines_with_aliases() {
        let dir = std::env::temp_dir().join(format!("nmctl-batch-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rules = dir.join("rules.cb");
        let gen = run(parse_command(&v(&["generate", "--kind", "fw", "--rules", "200"])).unwrap())
            .unwrap();
        std::fs::write(&rules, gen).unwrap();
        let rp = rules.to_str().unwrap();
        // cs/nc (and their long aliases) run the batched pipeline and emit
        // the same JSON fields as the nm/tm runs.
        for engine in ["cs", "cutsplit", "neurocuts", "tuplemerge"] {
            let out = run(parse_command(&v(&[
                "bench",
                rp,
                "--engine",
                engine,
                "--packets",
                "1500",
                "--batch",
                "128",
                "--json",
                "true",
            ]))
            .unwrap())
            .unwrap();
            for field in ["\"engine\":", "\"batch\":128", "\"pps\":", "\"generation\":"] {
                assert!(out.contains(field), "{engine}: missing {field} in {out}");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_and_update_bench_smoke() {
        let dir = std::env::temp_dir().join(format!("nmctl-serve-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rules = dir.join("rules.cb");
        let gen = run(parse_command(&v(&["generate", "--kind", "acl", "--rules", "300"])).unwrap())
            .unwrap();
        std::fs::write(&rules, gen).unwrap();
        let rp = rules.to_str().unwrap();

        let out = run(parse_command(&v(&[
            "serve",
            rp,
            "--seconds",
            "0.4",
            "--readers",
            "2",
            "--udp-readers",
            "2",
            "--update-rate",
            "500",
            "--retrain-every",
            "0.2",
            "--packets",
            "3000",
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("updates applied"), "{out}");
        assert!(out.contains("retrains completed"), "{out}");
        assert!(out.contains("service latency:"), "{out}");
        // The batched-I/O accounting line: recv/send syscalls plus the
        // per-UDP-reader request spread across the SO_REUSEPORT fleet.
        assert!(out.contains("syscalls:"), "{out}");
        assert!(out.contains("2 udp reader(s)"), "{out}");
        // Debug builds sample served verdicts against the oracle at the
        // pinned generation; any disagreement is a torn generation.
        assert!(out.contains(", 0 mismatches"), "oracle mismatches: {out}");

        let out = run(parse_command(&v(&[
            "update-bench",
            rp,
            "--seconds",
            "0.4",
            "--update-rate",
            "500",
            "--retrain-every",
            "0",
            "--packets",
            "3000",
            "--json",
            "true",
        ]))
        .unwrap())
        .unwrap();
        // JSON samples with the generation/update-rate fields downstream
        // tooling consumes.
        assert!(out.lines().count() >= 2, "{out}");
        assert!(out.contains("\"generation\":"), "{out}");
        assert!(out.contains("\"update_rate\":500.0"), "{out}");

        let out = run(parse_command(&v(&[
            "bench",
            rp,
            "--engine",
            "tm",
            "--packets",
            "2000",
            "--json",
            "true",
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("\"generation\":0"), "{out}");
        assert!(out.contains("\"update_rate\":0.0"), "{out}");

        // --bench-json measures partial vs full retrain latency and writes
        // the perf-trajectory artifact the CI soak job uploads.
        let artifact = dir.join("BENCH_update.json");
        run(parse_command(&v(&[
            "update-bench",
            rp,
            "--seconds",
            "0.3",
            "--update-rate",
            "200",
            "--retrain-every",
            "0",
            "--packets",
            "3000",
            "--bench-json",
            artifact.to_str().unwrap(),
        ]))
        .unwrap())
        .unwrap();
        let blob = std::fs::read_to_string(&artifact).unwrap();
        for key in [
            "\"train_full_s\":",
            "\"train_partial_s\":",
            "\"partial_speedup\":",
            "\"update_rate\":",
            "\"drift_floor_full\":",
            "\"drift_floor_partial\":",
        ] {
            assert!(blob.contains(key), "artifact missing {key}: {blob}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_bench_and_serve_emit_runtime_fields() {
        let dir = std::env::temp_dir().join(format!("nmctl-shard-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rules = dir.join("rules.cb");
        let gen = run(parse_command(&v(&["generate", "--kind", "acl", "--rules", "300"])).unwrap())
            .unwrap();
        std::fs::write(&rules, gen).unwrap();
        let rp = rules.to_str().unwrap();

        // bench through the sharded worker runtime: 2 shards × 2 workers.
        let out = run(parse_command(&v(&[
            "bench",
            rp,
            "--engine",
            "tm",
            "--packets",
            "2000",
            "--batch",
            "64",
            "--shards",
            "2",
            "--workers",
            "2",
            "--json",
            "true",
        ]))
        .unwrap())
        .unwrap();
        for field in [
            "\"shards\":2",
            "\"workers\":4",
            "\"pinned_workers\":",
            "\"broadcast_fraction\":",
            "\"pps\":",
            "\"generation\":",
        ] {
            assert!(out.contains(field), "sharded bench missing {field}: {out}");
        }

        // The unsharded path reports the same fields (trivial values) so
        // downstream JSON consumers see one shape.
        let out = run(parse_command(&v(&[
            "bench",
            rp,
            "--engine",
            "tm",
            "--packets",
            "1000",
            "--json",
            "true",
        ]))
        .unwrap())
        .unwrap();
        assert!(out.contains("\"shards\":1"), "{out}");
        assert!(out.contains("\"workers\":1"), "{out}");

        // serve with per-shard handle replicas: updates fan out, retrains
        // republish one logical generation.
        let out = run(parse_command(&v(&[
            "serve",
            rp,
            "--seconds",
            "0.4",
            "--readers",
            "2",
            "--udp-readers",
            "2",
            "--update-rate",
            "500",
            "--retrain-every",
            "0.2",
            "--packets",
            "3000",
            "--shards",
            "2",
            "--json",
            "true",
        ]))
        .unwrap())
        .unwrap();
        for field in [
            "\"shards\":2",
            "\"pinned_readers\":",
            "\"udp_readers\":2",
            "\"generation\":",
            "\"retrains\":",
            "\"transport\":\"both\"",
            "\"served\":",
            "\"p50_us\":",
            "\"p99_us\":",
            "\"p999_us\":",
            "\"mean_us\":",
            "\"recv_calls\":",
            "\"empty_recv_calls\":",
            "\"send_calls\":",
            "\"syscalls_per_packet\":",
            "\"reader_requests_min\":",
            "\"reader_requests_max\":",
            "\"mismatches\":0",
        ] {
            assert!(out.contains(field), "sharded serve missing {field}: {out}");
        }

        // Bad grids are rejected up front.
        assert!(run(parse_command(&v(&[
            "bench", rp, "--engine", "tm", "--shards", "0", "--json", "true",
        ]))
        .unwrap())
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_key_formats() {
        assert_eq!(parse_key("10.0.0.1,0.0.0.2,80,443,6").unwrap(), [0x0a00_0001, 2, 80, 443, 6]);
        assert_eq!(parse_key("1,2,3,4,5").unwrap(), [1, 2, 3, 4, 5]);
        assert!(parse_key("1,2,3,4").is_err());
        assert!(parse_key("1.2.3,2,3,4,5").is_err());
    }
}
