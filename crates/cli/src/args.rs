//! Minimal flag parser: `--name value` pairs plus positionals.

use std::collections::HashMap;

/// Parsed command line: subcommand, positionals, `--flag value` pairs.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    flags: HashMap<String, String>,
}

/// A recognised subcommand plus its arguments.
#[derive(Debug, Clone)]
pub enum ParsedCommand {
    /// `nmctl generate …`
    Generate(Args),
    /// `nmctl inspect <file>`
    Inspect(Args),
    /// `nmctl bench <file> …`
    Bench(Args),
    /// `nmctl classify <file> --key …`
    Classify(Args),
    /// `nmctl train <file> --out …`
    Train(Args),
    /// `nmctl serve <file> …` — concurrent readers + a live update stream
    /// against a `ClassifierHandle`.
    Serve(Args),
    /// `nmctl update-bench <file> …` — the measured Figure 7 curve.
    UpdateBench(Args),
    /// `nmctl help` or anything unrecognised.
    Help,
}

impl Args {
    /// Parses everything after the subcommand. `--flag value` only (no `=`,
    /// no combined shorts); unknown flags are kept and validated by the
    /// command.
    pub fn parse(raw: &[String]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = raw.iter();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let value = it.next().ok_or_else(|| format!("flag --{name} needs a value"))?;
                if out.flags.insert(name.to_string(), value.clone()).is_some() {
                    return Err(format!("flag --{name} given twice"));
                }
            } else {
                out.positional.push(tok.clone());
            }
        }
        Ok(out)
    }

    /// String flag with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.flags.get(name).map(String::as_str).unwrap_or(default)
    }

    /// Required string flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    /// Numeric flag with a default.
    pub fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{name}: '{v}'")),
        }
    }
}

/// Splits a full argv (excluding the program name) into a command.
pub fn parse_command(argv: &[String]) -> Result<ParsedCommand, String> {
    let Some(cmd) = argv.first() else {
        return Ok(ParsedCommand::Help);
    };
    let rest = Args::parse(&argv[1..])?;
    Ok(match cmd.as_str() {
        "generate" => ParsedCommand::Generate(rest),
        "inspect" => ParsedCommand::Inspect(rest),
        "bench" => ParsedCommand::Bench(rest),
        "classify" => ParsedCommand::Classify(rest),
        "train" => ParsedCommand::Train(rest),
        "serve" => ParsedCommand::Serve(rest),
        "update-bench" => ParsedCommand::UpdateBench(rest),
        _ => ParsedCommand::Help,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = Args::parse(&v(&["rules.cb", "--engine", "nm-tm", "--packets", "100"])).unwrap();
        assert_eq!(a.positional, vec!["rules.cb"]);
        assert_eq!(a.get_or("engine", "x"), "nm-tm");
        assert_eq!(a.num_or("packets", 0usize).unwrap(), 100);
        assert_eq!(a.num_or("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn rejects_missing_value_and_duplicates() {
        assert!(Args::parse(&v(&["--engine"])).is_err());
        assert!(Args::parse(&v(&["--a", "1", "--a", "2"])).is_err());
    }

    #[test]
    fn command_dispatch() {
        assert!(matches!(parse_command(&v(&["generate"])).unwrap(), ParsedCommand::Generate(_)));
        assert!(matches!(parse_command(&v(&["serve", "x"])).unwrap(), ParsedCommand::Serve(_)));
        assert!(matches!(
            parse_command(&v(&["update-bench", "x"])).unwrap(),
            ParsedCommand::UpdateBench(_)
        ));
        assert!(matches!(parse_command(&v(&["nope"])).unwrap(), ParsedCommand::Help));
        assert!(matches!(parse_command(&v(&[])).unwrap(), ParsedCommand::Help));
    }

    #[test]
    fn require_reports_flag_name() {
        let a = Args::parse(&v(&["x"])).unwrap();
        let err = a.require("key").unwrap_err();
        assert!(err.contains("--key"));
    }
}
