//! `nmctl` entry point — all logic lives in the library for testability.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match nm_cli::args::parse_command(&argv).and_then(nm_cli::run) {
        Ok(out) => print!("{out}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `nmctl help` for usage");
            std::process::exit(1);
        }
    }
}
