//! # nm-cli — the `nmctl` command-line front end
//!
//! ```text
//! nmctl generate --kind acl --rules 10000 --seed 1 > rules.cb
//! nmctl inspect  rules.cb
//! nmctl bench    rules.cb --engine nm-tm --trace zipf:1.25 --packets 200000
//! nmctl classify rules.cb --key 10.0.0.1,192.168.1.2,1234,443,6
//! nmctl train    rules.cb --out model.rqrmi
//! ```
//!
//! The logic lives in this library crate so it is unit-testable; `main.rs`
//! is a thin wrapper. Argument parsing is hand-rolled — a flag parser is
//! ~40 lines and the workspace's dependency policy is deliberately tight.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{Args, ParsedCommand};
pub use commands::run;
