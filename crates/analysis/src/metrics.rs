//! Rule-set diversity and centrality (§3.7).
//!
//! These two metrics predict whether NuevoMatch can accelerate a rule-set:
//!
//! * **Diversity** of a field = unique values (ranges) in it / total rules.
//!   "The rule-set diversity is an upper bound on the fraction of rules in
//!   the largest iSet of that field" — low diversity means iSet partitioning
//!   on that field cannot cover much.
//! * **Centrality** = the maximum number of rules that all share a common
//!   point. "The rule-set centrality is a lower bound on the number of iSets
//!   required for full coverage" — all those rules pairwise overlap in every
//!   field, so no two of them fit in the same iSet.

use nm_common::{Rule, RuleSet, SplitMix64};
use std::collections::HashSet;

/// Diversity of field `dim`: distinct ranges divided by rule count.
pub fn diversity(set: &RuleSet, dim: usize) -> f64 {
    if set.is_empty() {
        return 0.0;
    }
    let distinct: HashSet<(u64, u64)> =
        set.rules().iter().map(|r| (r.fields[dim].lo, r.fields[dim].hi)).collect();
    distinct.len() as f64 / set.len() as f64
}

/// Exact 1-D centrality (max stabbing number) of field `dim` via an
/// endpoint sweep: the maximum number of ranges containing one point.
pub fn centrality_1d(set: &RuleSet, dim: usize) -> usize {
    let mut events: Vec<(u64, i32)> = Vec::with_capacity(set.len() * 2);
    for r in set.rules() {
        let f = &r.fields[dim];
        events.push((f.lo, 1));
        events.push((f.hi, -1)); // close processed after opens at same point
    }
    // Opens before closes at equal coordinate: a range [x, x] must count.
    events.sort_by_key(|&(x, d)| (x, -d));
    let mut depth = 0i64;
    let mut best = 0i64;
    for (_, d) in events {
        depth += d as i64;
        best = best.max(depth);
    }
    best.max(0) as usize
}

/// Sampled multi-dimensional centrality: stab counts at rule corner points
/// (the maximum over box corners equals the true maximum for axis-aligned
/// boxes when all corners are enumerated; sampling `samples` corners gives a
/// lower-bound estimate that is exact for small sets).
pub fn centrality_sampled(set: &RuleSet, samples: usize, seed: u64) -> usize {
    if set.is_empty() {
        return 0;
    }
    let rules = set.rules();
    let mut rng = SplitMix64::new(seed);
    let n = rules.len();
    let stab = |point: &[u64]| rules.iter().filter(|r| r.matches(point)).count();
    let mut best = 0usize;
    if n * n <= samples {
        // Small set: every rule's low corner, exhaustively.
        for r in rules {
            best = best.max(stab(&r.witness_key()));
        }
    } else {
        for _ in 0..samples {
            let r = &rules[rng.below(n as u64) as usize];
            best = best.max(stab(&r.witness_key()));
        }
    }
    best
}

/// Centrality restricted to a rule subset (used by tests on hand-built sets).
pub fn stab_at(rules: &[Rule], point: &[u64]) -> usize {
    rules.iter().filter(|r| r.matches(point)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_common::{FieldRange, FieldsSpec, RuleSet};

    fn set_1d(ranges: &[(u64, u64)]) -> RuleSet {
        let rows = ranges.iter().map(|&(lo, hi)| vec![FieldRange::new(lo, hi)]).collect();
        RuleSet::from_ranges(FieldsSpec::single("f", 16), rows).unwrap()
    }

    #[test]
    fn diversity_counts_distinct() {
        let set = set_1d(&[(0, 10), (0, 10), (5, 20), (30, 40)]);
        assert_eq!(diversity(&set, 0), 3.0 / 4.0);
    }

    #[test]
    fn centrality_sweep_exact() {
        // [0,10], [5,20], [7,8], [30,40]: point 7 stabs three ranges.
        let set = set_1d(&[(0, 10), (5, 20), (7, 8), (30, 40)]);
        assert_eq!(centrality_1d(&set, 0), 3);
        // Touching endpoints count: [0,5] and [5,9] share 5.
        let set = set_1d(&[(0, 5), (5, 9)]);
        assert_eq!(centrality_1d(&set, 0), 2);
        // Disjoint.
        let set = set_1d(&[(0, 1), (3, 4), (6, 7)]);
        assert_eq!(centrality_1d(&set, 0), 1);
    }

    #[test]
    fn centrality_lower_bounds_isets() {
        // §3.7: centrality c ⇒ at least c iSets. Build 5 nested ranges
        // (all share point 50) — centrality 5, and indeed 5 iSets needed.
        let set = set_1d(&[(50, 50), (45, 55), (40, 60), (0, 100), (30, 70)]);
        assert_eq!(centrality_1d(&set, 0), 5);
        let parts = nuevomatch_isets(&set);
        assert!(parts >= 5);
    }

    // Tiny local copy of the greedy partition count to avoid a dependency
    // cycle (nuevomatch depends on nothing here; analysis stays lean).
    fn nuevomatch_isets(set: &RuleSet) -> usize {
        let mut remaining: Vec<&nm_common::Rule> = set.rules().iter().collect();
        let mut isets = 0;
        while !remaining.is_empty() {
            let mut by_hi: Vec<&nm_common::Rule> = remaining.clone();
            by_hi.sort_by_key(|r| r.fields[0].hi);
            let mut last: Option<u64> = None;
            let mut picked = std::collections::HashSet::new();
            for r in by_hi {
                if last.map_or(true, |h| r.fields[0].lo > h) {
                    last = Some(r.fields[0].hi);
                    picked.insert(r.id);
                }
            }
            remaining.retain(|r| !picked.contains(&r.id));
            isets += 1;
        }
        isets
    }

    #[test]
    fn sampled_centrality_matches_exact_on_1d() {
        let set = set_1d(&[(0, 10), (5, 20), (7, 8), (30, 40)]);
        assert_eq!(centrality_sampled(&set, 10_000, 1), centrality_1d(&set, 0));
    }

    #[test]
    fn multi_dim_centrality_requires_common_point() {
        // Two rules overlapping in dim0 but not dim1: centrality 1.
        let spec = FieldsSpec::uniform(2, 8);
        let rows = vec![
            vec![FieldRange::new(0, 10), FieldRange::new(0, 10)],
            vec![FieldRange::new(5, 15), FieldRange::new(20, 30)],
        ];
        let set = RuleSet::from_ranges(spec, rows).unwrap();
        assert_eq!(centrality_sampled(&set, 1_000, 2), 1);
    }

    #[test]
    fn empty_set() {
        let set = RuleSet::new(FieldsSpec::single("f", 8), vec![]).unwrap();
        assert_eq!(diversity(&set, 0), 0.0);
        assert_eq!(centrality_1d(&set, 0), 0);
        assert_eq!(centrality_sampled(&set, 100, 3), 0);
    }
}
