//! # nm-analysis — measurement and modelling toolkit
//!
//! Everything in the paper's evaluation that is *about* rule-sets and
//! systems rather than a classifier itself:
//!
//! * [`metrics`] — rule-set **diversity** (upper-bounds the largest iSet of
//!   a field) and **centrality** (lower-bounds the iSets needed for full
//!   coverage), the §3.7 worst-case-input indicators.
//! * [`updates`] — the §3.9 / Figure 7 analytic model of throughput decay
//!   under a sustained update stream with periodic retraining.
//! * [`thrash`] — a cache-polluting background thread standing in for
//!   Intel CAT in the L3-contention experiments (§5.2.1, CAIDA* in
//!   Figure 12); DESIGN.md §2 records the substitution.
//! * [`report`] — small table/geomean helpers shared by the bench binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod report;
pub mod thrash;
pub mod updates;

pub use metrics::{centrality_1d, centrality_sampled, diversity};
pub use report::{geomean, Table};
pub use thrash::CacheThrasher;
pub use updates::{
    drift_floor, sustained_update_rate, throughput_at, throughput_over_time, UpdateModel,
};
