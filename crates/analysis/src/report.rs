//! Report helpers for the bench binaries: aligned text tables and the
//! geometric means the paper aggregates with.

/// Geometric mean of positive values (the paper's "GM" columns). Returns 0
/// for an empty slice; non-positive entries are skipped.
pub fn geomean(values: &[f64]) -> f64 {
    let logs: Vec<f64> = values.iter().filter(|&&v| v > 0.0).map(|v| v.ln()).collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// A minimal aligned text table (the bench binaries print paper-style rows;
/// no external table crates per the dependency policy).
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Adds a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<w$}  ", cell, w = widths[c]));
            }
            line.trim_end().to_string() + "\n"
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push_str(&format!("{}\n", "-".repeat(widths.iter().sum::<usize>() + 2 * cols)));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(geomean(&[0.0, -1.0]), 0.0);
        // Skips non-positive entries.
        assert!((geomean(&[2.0, 8.0, 0.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["set", "speedup"]);
        t.row(vec!["acl1".into(), "2.40x".into()]);
        t.row(vec!["fw1-long-name".into(), "1.1x".into()]);
        let s = t.render();
        assert!(s.contains("set"));
        assert!(s.lines().count() == 4);
        // Columns aligned: both data lines place "speedup" column at the
        // same offset.
        let lines: Vec<&str> = s.lines().collect();
        let col = lines[2].find("2.40x").unwrap();
        let col2 = lines[3].find("1.1x").unwrap();
        assert_eq!(col, col2);
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
