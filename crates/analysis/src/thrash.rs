//! Cache-contention injection (§5.2.1's L3 experiments).
//!
//! The paper restricts the classifier's L3 share with Intel CAT ("CAIDA*",
//! and the 1.5MB-L3 contention experiment). CAT needs root + specific Xeon
//! SKUs; the portable equivalent is an antagonist thread that continuously
//! sweeps a buffer sized like the cache share being stolen, evicting the
//! classifier's lines. Both mechanisms shrink the effective L3; DESIGN.md
//! §2 records the substitution.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A background cache-polluting thread. Dropping the handle stops it.
pub struct CacheThrasher {
    stop: Arc<AtomicBool>,
    sink: Arc<AtomicU64>,
    handle: Option<std::thread::JoinHandle<()>>,
    buffer_bytes: usize,
}

impl CacheThrasher {
    /// Starts a thrasher sweeping `megabytes` MB of memory in cache-line
    /// strides.
    pub fn start(megabytes: usize) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let sink = Arc::new(AtomicU64::new(0));
        let buffer_bytes = megabytes.max(1) * 1024 * 1024;
        let stop2 = stop.clone();
        let sink2 = sink.clone();
        let handle = std::thread::Builder::new()
            .name("cache-thrasher".into())
            .spawn(move || {
                let words = buffer_bytes / 8;
                let mut buf = vec![1u64; words];
                let mut acc = 0u64;
                let mut i = 0usize;
                while !stop2.load(Ordering::Relaxed) {
                    // Stride of 8 words = 64B = one cache line; write to
                    // force ownership, read to defeat store elision.
                    buf[i] = buf[i].wrapping_add(acc | 1);
                    acc = acc.wrapping_add(buf[i]);
                    i += 8;
                    if i >= words {
                        i = 0;
                        sink2.store(acc, Ordering::Relaxed);
                    }
                }
                sink2.store(acc, Ordering::Relaxed);
            })
            .expect("spawn thrasher");
        Self { stop, sink, handle: Some(handle), buffer_bytes }
    }

    /// Buffer size being swept.
    pub fn buffer_bytes(&self) -> usize {
        self.buffer_bytes
    }

    /// Proof-of-work value (also keeps the buffer observable).
    pub fn progress(&self) -> u64 {
        self.sink.load(Ordering::Relaxed)
    }

    /// Stops the thread and waits for it.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for CacheThrasher {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_works_stops() {
        let t = CacheThrasher::start(4);
        assert_eq!(t.buffer_bytes(), 4 * 1024 * 1024);
        std::thread::sleep(std::time::Duration::from_millis(50));
        t.stop();
    }

    #[test]
    fn drop_stops_cleanly() {
        let t = CacheThrasher::start(1);
        std::thread::sleep(std::time::Duration::from_millis(10));
        drop(t);
    }
}
