//! The §3.9 / Figure 7 update model.
//!
//! Updates move rules from the RQ-RMI iSets to the remainder classifier;
//! throughput is "a weighted average between that of NuevoMatch and the
//! remainder implementation, based on the number of rules in each". With
//! updates arriving uniformly at rate `u` over `r` rules, the expected
//! fraction of rules still unmodified after time `t` is `e^(−u·t/r)`.
//! Retraining every `τ` seconds (taking `T` seconds per round) resets the
//! drift — but only for updates that arrived before the retrain *started*.
//!
//! ## Partial retraining (the publish-period term)
//!
//! Incremental leaf-level retraining (`nuevomatch`'s
//! `ClassifierHandle::retrain_partial`) changes exactly one parameter of
//! this model: the **publish period** `T` drops from full-rebuild training
//! time to the partial patch time. The drift accumulated at the worst point
//! of a steady-state cycle is `u·(τ+T)/r`, so [`drift_floor`] rises as `T`
//! shrinks; model a partial-retrain deployment with
//! [`UpdateModel::with_train_time`] carrying the measured partial latency.
//! `nm-bench --bin update_bench` measures both latencies and reports both
//! predicted floors next to the measured curve.

/// Model parameters.
#[derive(Clone, Copy, Debug)]
pub struct UpdateModel {
    /// Total rules `r`.
    pub rules: f64,
    /// Updates per second that move a rule to the remainder (`u`).
    pub update_rate: f64,
    /// Retrain period `τ` (seconds).
    pub retrain_period: f64,
    /// Training duration (seconds; the paper's baseline is ~a minute for
    /// 500K rules).
    pub train_time: f64,
    /// Relative throughput of the build-fresh classifier (normalised 1.0).
    pub fresh_throughput: f64,
    /// Relative throughput of the remainder alone (e.g. 1/speedup; the
    /// update-free speedup is `fresh/remainder`).
    pub remainder_throughput: f64,
}

impl UpdateModel {
    /// The same deployment with a different publish period `T` — the
    /// partial-retraining counterfactual: substitute the measured partial
    /// patch latency for full training time and the drift floor rises
    /// accordingly (everything else in the §3.9 model is unchanged).
    pub fn with_train_time(&self, train_time: f64) -> Self {
        Self { train_time, ..*self }
    }
}

/// The steady-state throughput floor: the weighted average at the worst
/// point of a retrain cycle, just before a retrain that started at `k·τ`
/// publishes at `k·τ + T` — by then the freshest model is `τ + T` old, so
/// the drifted fraction peaks at `1 − e^(−u·(τ+T)/r)`.
///
/// This is the quantity partial retraining exists to lift: `τ` can shrink
/// to just above `T`, and `T` itself drops from full training time to the
/// leaf-patch time, so the floor approaches the fresh throughput.
pub fn drift_floor(m: &UpdateModel) -> f64 {
    let unmodified = (-m.update_rate * (m.retrain_period + m.train_time) / m.rules).exp();
    unmodified * m.fresh_throughput + (1.0 - unmodified) * m.remainder_throughput
}

/// Throughput at elapsed time `t` under the model: the drift accumulated
/// since the last *completed* retrain determines the weighted average.
pub fn throughput_at(m: &UpdateModel, t: f64) -> f64 {
    // Retrains start at k·τ and land at k·τ + T. The freshest model at time
    // t was trained on the state at time s = the latest k·τ with
    // k·τ + T ≤ t (0 if none). Updates since s sit in the remainder.
    let k = ((t - m.train_time) / m.retrain_period).floor();
    let s = if k >= 1.0 { k * m.retrain_period } else { 0.0 };
    let drift_time = t - s;
    let unmodified = (-m.update_rate * drift_time / m.rules).exp();
    unmodified * m.fresh_throughput + (1.0 - unmodified) * m.remainder_throughput
}

/// Samples the Figure 7 curve: `points` samples over `[0, horizon]`.
pub fn throughput_over_time(m: &UpdateModel, horizon: f64, points: usize) -> Vec<(f64, f64)> {
    (0..points)
        .map(|i| {
            let t = horizon * i as f64 / (points.max(2) - 1) as f64;
            (t, throughput_at(m, t))
        })
        .collect()
}

/// The paper's sustained-rate estimate (§3.9): the update rate at which the
/// *average* throughput over a retrain period equals `target_fraction` of
/// the update-free speedup (they quote ≈4K updates/s for 500K rules at half
/// speedup with minute-long training). Solved by bisection on the rate.
pub fn sustained_update_rate(
    rules: f64,
    retrain_period: f64,
    train_time: f64,
    fresh_throughput: f64,
    remainder_throughput: f64,
    target_fraction: f64,
) -> f64 {
    let avg_for = |rate: f64| -> f64 {
        let m = UpdateModel {
            rules,
            update_rate: rate,
            retrain_period,
            train_time,
            fresh_throughput,
            remainder_throughput,
        };
        // Average over one steady-state period after the first retrain.
        let t0 = retrain_period + train_time;
        let samples = 64;
        (0..samples)
            .map(|i| throughput_at(&m, t0 + retrain_period * i as f64 / samples as f64))
            .sum::<f64>()
            / samples as f64
    };
    let target = target_fraction * fresh_throughput;
    let (mut lo, mut hi) = (0.0f64, rules); // r updates/s redoes the whole set
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        if avg_for(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> UpdateModel {
        UpdateModel {
            rules: 500_000.0,
            update_rate: 4_000.0,
            retrain_period: 120.0,
            train_time: 60.0,
            fresh_throughput: 1.0,
            remainder_throughput: 1.0 / 2.6, // paper's tm-scale speedup
        }
    }

    #[test]
    fn throughput_decays_between_retrains() {
        let m = model();
        let t0 = throughput_at(&m, 0.0);
        let t1 = throughput_at(&m, 60.0);
        assert!(t1 < t0, "{t0} -> {t1}");
        assert!(t1 > m.remainder_throughput, "never below remainder floor");
    }

    #[test]
    fn retrain_restores_throughput() {
        let m = model();
        // Just before the first retrain lands (t = τ + T) vs just after.
        let before = throughput_at(&m, m.retrain_period + m.train_time - 1.0);
        let after = throughput_at(&m, m.retrain_period + m.train_time + 1.0);
        assert!(after > before, "retrain must help: {before} -> {after}");
    }

    #[test]
    fn slower_training_means_lower_floor() {
        // Figure 7's message: the slower the training, the worse the dips.
        let fast = UpdateModel { train_time: 10.0, ..model() };
        let slow = UpdateModel { train_time: 110.0, ..model() };
        let probe = 240.0;
        assert!(throughput_at(&fast, probe) >= throughput_at(&slow, probe));
    }

    #[test]
    fn drift_floor_bounds_the_curve_and_rises_with_partial_retraining() {
        let m = model();
        let floor = drift_floor(&m);
        // The floor bounds the steady-state curve from below...
        for i in 0..200 {
            let t = m.retrain_period + m.train_time + i as f64 * 3.0;
            assert!(throughput_at(&m, t) >= floor - 1e-12, "t={t}");
        }
        // ...is approached just before a steady-state publish...
        let worst = throughput_at(&m, 2.0 * m.retrain_period + m.train_time - 1e-6);
        assert!((worst - floor).abs() < 0.01, "worst {worst} vs floor {floor}");
        // ...and rises when the publish period shrinks (partial retrains).
        let partial = m.with_train_time(m.train_time / 20.0);
        assert!(drift_floor(&partial) > floor);
        assert!(partial.retrain_period == m.retrain_period && partial.rules == m.rules);
    }

    #[test]
    fn curve_is_well_formed() {
        let m = model();
        let curve = throughput_over_time(&m, 600.0, 100);
        assert_eq!(curve.len(), 100);
        assert!(curve.iter().all(|&(_, y)| y > 0.0 && y <= 1.0));
        assert_eq!(curve[0].0, 0.0);
    }

    #[test]
    fn sustained_rate_is_thousands_for_500k() {
        // The §3.9 claim: ≈4K updates/s sustains about half the update-free
        // speedup for 500K rules with minute-long training. Our model should
        // land in the same order of magnitude.
        let rate = sustained_update_rate(500_000.0, 120.0, 60.0, 1.0, 1.0 / 2.6, 0.75);
        assert!(
            (500.0..50_000.0).contains(&rate),
            "sustained rate {rate:.0} not in the paper's ballpark"
        );
    }
}
