//! The 1×H×1 ReLU MLP (paper Definition 3.1).

use nm_common::SplitMix64;

/// Largest `f32` strictly below 1.0. The paper's `H(·)` trims the submodel
/// output into `[0, 1)`; clamping to this value guarantees
/// `floor(M(x) · W) ≤ W − 1` for any stage width `W` that fits in f32.
pub const ONE_MINUS_EPS: f32 = 0.999_999_94;

/// A fully-connected 1 → `H` → 1 network with ReLU activation.
///
/// `N(x) = Σ_j w2[j] · relu(w1[j]·x + b1[j]) + b2`, and the submodel output
/// is `M(x) = clamp(N(x), 0, 1⁻)` ([`Mlp::forward_clamped`]).
///
/// Weights are `f32` — the paper stores single-precision weights so eight
/// hidden neurons fit one AVX register (§4 "Vectorization").
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Mlp {
    /// Hidden-layer weights, one per neuron.
    pub w1: Vec<f32>,
    /// Hidden-layer biases, one per neuron.
    pub b1: Vec<f32>,
    /// Output-layer weights, one per neuron.
    pub w2: Vec<f32>,
    /// Output bias.
    pub b2: f32,
}

impl Mlp {
    /// Number of hidden neurons used by the paper's submodels.
    pub const PAPER_HIDDEN: usize = 8;

    /// Creates a zero-initialised network with `hidden` neurons.
    pub fn zeros(hidden: usize) -> Self {
        Self { w1: vec![0.0; hidden], b1: vec![0.0; hidden], w2: vec![0.0; hidden], b2: 0.0 }
    }

    /// He-style random initialisation, deterministic in `seed`. Used by the
    /// pure-Adam ("paper-faithful") training mode.
    pub fn random(hidden: usize, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut draw = |scale: f32| (rng.f64() as f32 * 2.0 - 1.0) * scale;
        let s1 = (2.0f32).sqrt(); // fan_in = 1
        let s2 = (2.0f32 / hidden as f32).sqrt();
        Self {
            w1: (0..hidden).map(|_| draw(s1)).collect(),
            b1: (0..hidden).map(|_| draw(0.5)).collect(),
            w2: (0..hidden).map(|_| draw(s2)).collect(),
            b2: 0.0,
        }
    }

    /// Hidden width.
    #[inline]
    pub fn hidden(&self) -> usize {
        self.w1.len()
    }

    /// Raw (un-clamped) network output `N(x)` in `f32` — the reference
    /// inference semantics. SIMD kernels must match this within rounding.
    #[inline]
    pub fn forward(&self, x: f32) -> f32 {
        let mut acc = 0.0f32;
        for j in 0..self.w1.len() {
            let pre = self.w1[j] * x + self.b1[j];
            if pre > 0.0 {
                acc += self.w2[j] * pre;
            }
        }
        acc + self.b2
    }

    /// The submodel output `M(x) = H(N(x))`, clamped into `[0, 1)`.
    #[inline]
    pub fn forward_clamped(&self, x: f32) -> f32 {
        self.forward(x).clamp(0.0, ONE_MINUS_EPS)
    }

    /// `N(x)` evaluated in `f64` from the widened `f32` weights. The
    /// piece-wise-linear analysis runs in `f64` to locate kinks and
    /// transitions precisely; correctness never depends on this matching the
    /// `f32` path exactly (error bounds re-evaluate the real `f32` pipeline
    /// at integer keys and add slack).
    #[inline]
    pub fn forward_f64(&self, x: f64) -> f64 {
        let mut acc = 0.0f64;
        for j in 0..self.w1.len() {
            let pre = self.w1[j] as f64 * x + self.b1[j] as f64;
            if pre > 0.0 {
                acc += self.w2[j] as f64 * pre;
            }
        }
        acc + self.b2 as f64
    }

    /// `M(x)` in `f64` (clamped into `[0, 1)`).
    #[inline]
    pub fn forward_clamped_f64(&self, x: f64) -> f64 {
        self.forward_f64(x).clamp(0.0, ONE_MINUS_EPS as f64)
    }

    /// Mean-squared error against a dataset of `(x, y)` pairs.
    pub fn mse(&self, data: &[(f32, f32)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let sum: f64 = data
            .iter()
            .map(|&(x, y)| {
                let d = (self.forward(x) - y) as f64;
                d * d
            })
            .sum();
        sum / data.len() as f64
    }

    /// Bytes of weight storage — what an RQ-RMI contributes to the memory
    /// footprint (Figure 13). `4·(3H + 1)` bytes: 25 floats × 4 for H = 8.
    pub fn weight_bytes(&self) -> usize {
        (self.w1.len() + self.b1.len() + self.w2.len() + 1) * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-computable network: one neuron, identity-ish.
    fn tiny() -> Mlp {
        Mlp { w1: vec![1.0], b1: vec![-0.25], w2: vec![2.0], b2: 0.1 }
    }

    #[test]
    fn forward_matches_hand_calculation() {
        let m = tiny();
        // x = 0.5: pre = 0.25, relu = 0.25, out = 2*0.25 + 0.1 = 0.6
        assert!((m.forward(0.5) - 0.6).abs() < 1e-6);
        // x = 0.1: pre = -0.15 -> relu 0 -> out = 0.1
        assert!((m.forward(0.1) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn clamp_trims_into_unit_interval() {
        let m = Mlp { w1: vec![1.0], b1: vec![0.0], w2: vec![10.0], b2: -0.5 };
        assert_eq!(m.forward_clamped(1.0), ONE_MINUS_EPS); // raw 9.5
        assert_eq!(m.forward_clamped(0.0), 0.0); // raw -0.5
        assert!(m.forward_clamped(0.06) > 0.0 && m.forward_clamped(0.06) < 1.0);
        assert!((ONE_MINUS_EPS as f64) < 1.0);
    }

    #[test]
    fn f64_path_tracks_f32_path() {
        let m = Mlp::random(8, 7);
        for i in 0..1000 {
            let x = i as f32 / 1000.0;
            let a = m.forward(x) as f64;
            let b = m.forward_f64(x as f64);
            assert!((a - b).abs() < 1e-5, "x={x}: f32 {a} vs f64 {b}");
        }
    }

    #[test]
    fn random_is_deterministic() {
        assert_eq!(Mlp::random(8, 42), Mlp::random(8, 42));
        assert_ne!(Mlp::random(8, 42), Mlp::random(8, 43));
    }

    #[test]
    fn weight_bytes_paper_size() {
        // 8 hidden neurons -> 25 f32 = 100 bytes per submodel.
        assert_eq!(Mlp::zeros(8).weight_bytes(), 100);
    }

    #[test]
    fn mse_zero_on_perfect_fit() {
        let m = tiny();
        let data: Vec<(f32, f32)> = (0..10)
            .map(|i| {
                let x = i as f32 / 10.0;
                (x, m.forward(x))
            })
            .collect();
        assert_eq!(m.mse(&data), 0.0);
        assert!(m.mse(&[(0.5, 0.0)]) > 0.0);
    }
}
