//! Adam optimizer with full-batch MSE gradients (paper §3.5.5).
//!
//! RQ-RMI submodels are trained "using supervised learning and Adam optimizer
//! with a mean squared error loss function". Datasets are small (hundreds to
//! a few thousand sampled key-index pairs), so full-batch gradients are both
//! simpler and faster than mini-batching at this scale.

use crate::mlp::Mlp;

/// Hyper-parameters for [`Adam`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdamConfig {
    /// Step size (default 0.01 — aggressive but fine for 25 parameters).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical fuzz.
    pub eps: f32,
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// Stop early when the epoch-over-epoch loss improvement drops below
    /// this relative threshold (0 disables early stopping).
    pub tol: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self { lr: 0.01, beta1: 0.9, beta2: 0.999, eps: 1e-8, epochs: 400, tol: 1e-7 }
    }
}

/// Adam state for one [`Mlp`]. Parameters are flattened as
/// `[w1.., b1.., w2.., b2]`.
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<f32>,
    v: Vec<f32>,
    t: i32,
}

impl Adam {
    /// Creates optimizer state for a network with `hidden` neurons.
    pub fn new(hidden: usize, cfg: AdamConfig) -> Self {
        let n = 3 * hidden + 1;
        Self { cfg, m: vec![0.0; n], v: vec![0.0; n], t: 0 }
    }

    /// Runs full-batch training of `net` on `data`, returning the final MSE.
    ///
    /// `data` must be non-empty; an empty dataset returns 0 and leaves the
    /// network untouched (the RQ-RMI trainer handles empty responsibilities
    /// upstream).
    pub fn train(net: &mut Mlp, data: &[(f32, f32)], cfg: AdamConfig) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut opt = Adam::new(net.hidden(), cfg);
        let mut prev = f64::INFINITY;
        let mut loss = net.mse(data);
        for _ in 0..cfg.epochs {
            opt.step(net, data);
            loss = net.mse(data);
            if cfg.tol > 0.0 && prev.is_finite() {
                let improve = (prev - loss).abs() / prev.max(1e-30);
                if improve < cfg.tol {
                    break;
                }
            }
            prev = loss;
        }
        loss
    }

    /// One full-batch gradient step.
    pub fn step(&mut self, net: &mut Mlp, data: &[(f32, f32)]) {
        let h = net.hidden();
        let mut grad = vec![0.0f32; 3 * h + 1];
        let scale = 2.0 / data.len() as f32;
        for &(x, y) in data {
            // Forward, keeping pre-activations.
            let mut out = net.b2;
            for j in 0..h {
                let pre = net.w1[j] * x + net.b1[j];
                if pre > 0.0 {
                    out += net.w2[j] * pre;
                }
            }
            let dy = scale * (out - y);
            // Backward.
            for j in 0..h {
                let pre = net.w1[j] * x + net.b1[j];
                if pre > 0.0 {
                    grad[2 * h + j] += dy * pre; // dw2
                    let dh = dy * net.w2[j];
                    grad[j] += dh * x; // dw1
                    grad[h + j] += dh; // db1
                }
            }
            grad[3 * h] += dy; // db2
        }
        self.apply(net, &grad);
    }

    fn apply(&mut self, net: &mut Mlp, grad: &[f32]) {
        let h = net.hidden();
        self.t += 1;
        let b1c = 1.0 - self.cfg.beta1.powi(self.t);
        let b2c = 1.0 - self.cfg.beta2.powi(self.t);
        let mut upd = |idx: usize, g: f32, p: &mut f32| {
            self.m[idx] = self.cfg.beta1 * self.m[idx] + (1.0 - self.cfg.beta1) * g;
            self.v[idx] = self.cfg.beta2 * self.v[idx] + (1.0 - self.cfg.beta2) * g * g;
            let mhat = self.m[idx] / b1c;
            let vhat = self.v[idx] / b2c;
            *p -= self.cfg.lr * mhat / (vhat.sqrt() + self.cfg.eps);
        };
        for (j, w) in net.w1.iter_mut().enumerate() {
            upd(j, grad[j], w);
        }
        for (j, b) in net.b1.iter_mut().enumerate() {
            upd(h + j, grad[h + j], b);
        }
        for (j, w) in net.w2.iter_mut().enumerate() {
            upd(2 * h + j, grad[2 * h + j], w);
        }
        upd(3 * h, grad[3 * h], &mut net.b2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> Vec<(f32, f32)> {
        (0..n)
            .map(|i| {
                let x = i as f32 / n as f32;
                (x, 0.25 + 0.5 * x)
            })
            .collect()
    }

    #[test]
    fn learns_a_line() {
        let data = linear_data(64);
        let mut net = Mlp::random(8, 1);
        let loss = Adam::train(
            &mut net,
            &data,
            AdamConfig { epochs: 2000, tol: 0.0, ..Default::default() },
        );
        assert!(loss < 1e-4, "final loss {loss}");
    }

    #[test]
    fn learns_a_step_like_cdf() {
        // A staircase CDF — the shape RQ-RMI leaves actually face.
        let data: Vec<(f32, f32)> = (0..256)
            .map(|i| {
                let x = i as f32 / 256.0;
                let y = if x < 0.3 {
                    0.2
                } else if x < 0.7 {
                    0.5
                } else {
                    0.9
                };
                (x, y)
            })
            .collect();
        let mut net = Mlp::random(8, 2);
        let before = net.mse(&data);
        let loss = Adam::train(
            &mut net,
            &data,
            AdamConfig { epochs: 3000, tol: 0.0, ..Default::default() },
        );
        // The target has jump discontinuities, so a continuous model bottoms
        // out near the quantisation floor — just require the rough shape.
        assert!(loss < 2e-2, "final loss {loss}");
        assert!(loss < before / 4.0, "no real progress: {before} -> {loss}");
    }

    #[test]
    fn loss_decreases() {
        let data = linear_data(32);
        let mut net = Mlp::random(8, 3);
        let before = net.mse(&data);
        Adam::train(&mut net, &data, AdamConfig { epochs: 50, tol: 0.0, ..Default::default() });
        let after = net.mse(&data);
        assert!(after < before, "loss went {before} -> {after}");
    }

    #[test]
    fn empty_dataset_is_noop() {
        let mut net = Mlp::random(8, 4);
        let copy = net.clone();
        let loss = Adam::train(&mut net, &[], AdamConfig::default());
        assert_eq!(loss, 0.0);
        assert_eq!(net, copy);
    }
}
