//! Closed-form hinge least-squares fitting.
//!
//! A 1×H×1 ReLU MLP with positive unit input weights is exactly a linear
//! spline with `H` knots: `f(x) = b2 + Σ_j w2[j]·relu(x − q_j)`. For the
//! CDF-like targets RQ-RMI submodels learn, fixing the knots `q_j` at input
//! quantiles and solving the output layer by ridge least squares gives an
//! excellent fit *deterministically* and orders of magnitude faster than
//! iterative training. The result is a perfectly ordinary [`Mlp`] — the
//! analysis and inference paths cannot tell how it was trained — and Adam can
//! refine it further when asked.

use crate::mlp::Mlp;

/// Fits a `hidden`-neuron MLP to `(x, y)` data with knots at input quantiles
/// and a ridge least-squares output layer.
///
/// Returns a zero network for empty data. `data` does not need to be sorted.
///
/// The ridge term (`lambda = 1e-6`) keeps the normal equations well-posed
/// when several knots collapse onto the same x (heavily duplicated inputs).
pub fn fit_hinge(hidden: usize, data: &[(f32, f32)]) -> Mlp {
    if data.is_empty() {
        return Mlp::zeros(hidden);
    }
    let mut xs: Vec<f32> = data.iter().map(|&(x, _)| x).collect();
    xs.sort_by(f32::total_cmp);
    let x_min = xs[0];

    // Knots: q_0 at the left edge carries the global linear term
    // (relu(x - x_min) == x - x_min over the whole responsibility);
    // the rest sit at interior quantiles.
    let mut knots = Vec::with_capacity(hidden);
    knots.push(x_min);
    for j in 1..hidden {
        let frac = j as f64 / hidden as f64;
        let idx = ((xs.len() - 1) as f64 * frac).round() as usize;
        knots.push(xs[idx]);
    }
    knots.dedup();
    let k = knots.len();

    // Design matrix columns: [relu(x - q_0), ..., relu(x - q_{k-1}), 1].
    let cols = k + 1;
    let mut ata = vec![0.0f64; cols * cols];
    let mut atb = vec![0.0f64; cols];
    let mut row = vec![0.0f64; cols];
    for &(x, y) in data {
        for (j, &q) in knots.iter().enumerate() {
            row[j] = f64::max((x - q) as f64, 0.0);
        }
        row[k] = 1.0;
        for i in 0..cols {
            if row[i] == 0.0 {
                continue;
            }
            for j in i..cols {
                ata[i * cols + j] += row[i] * row[j];
            }
            atb[i] += row[i] * y as f64;
        }
    }
    // Mirror + ridge.
    for i in 0..cols {
        for j in 0..i {
            ata[i * cols + j] = ata[j * cols + i];
        }
        ata[i * cols + i] += 1e-6;
    }

    let coef = solve_cholesky(&mut ata, &atb, cols);

    let mut net = Mlp::zeros(hidden);
    for (j, &q) in knots.iter().enumerate() {
        net.w1[j] = 1.0;
        net.b1[j] = -q;
        net.w2[j] = coef[j] as f32;
    }
    // Unused neurons (deduped knots) stay at zero weight: w1 = 0, b1 = 0
    // yields pre-activation 0 which ReLU kills for every x.
    net.b2 = coef[k] as f32;
    net
}

/// Solves `A·x = b` for symmetric positive-definite `A` (size `n×n`,
/// row-major, destroyed in place) by Cholesky decomposition.
fn solve_cholesky(a: &mut [f64], b: &[f64], n: usize) -> Vec<f64> {
    // Decompose A = L·Lᵀ, storing L in the lower triangle.
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j];
            for p in 0..j {
                sum -= a[i * n + p] * a[j * n + p];
            }
            if i == j {
                a[i * n + j] = sum.max(1e-30).sqrt();
            } else {
                a[i * n + j] = sum / a[j * n + j];
            }
        }
    }
    // Forward substitution L·y = b.
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut sum = b[i];
        for p in 0..i {
            sum -= a[i * n + p] * y[p];
        }
        y[i] = sum / a[i * n + i];
    }
    // Back substitution Lᵀ·x = y.
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for p in (i + 1)..n {
            sum -= a[p * n + i] * x[p];
        }
        x[i] = sum / a[i * n + i];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_linear_target() {
        let data: Vec<(f32, f32)> = (0..100)
            .map(|i| {
                let x = i as f32 / 100.0;
                (x, 0.1 + 0.8 * x)
            })
            .collect();
        let net = fit_hinge(8, &data);
        assert!(net.mse(&data) < 1e-10, "mse {}", net.mse(&data));
    }

    #[test]
    fn exact_on_piecewise_linear_target() {
        // Target with a kink at 0.5 — needs at least one interior knot.
        let data: Vec<(f32, f32)> = (0..200)
            .map(|i| {
                let x = i as f32 / 200.0;
                let y = if x < 0.5 { 0.2 * x } else { 0.1 + 0.9 * (x - 0.5) };
                (x, y)
            })
            .collect();
        let net = fit_hinge(8, &data);
        assert!(net.mse(&data) < 1e-5, "mse {}", net.mse(&data));
    }

    #[test]
    fn good_on_cdf_staircase() {
        // The real workload: a monotone staircase (scaled rank of x).
        let data: Vec<(f32, f32)> = (0..512)
            .map(|i| {
                let x = i as f32 / 512.0;
                let y = (x * x * 0.9) + 0.05; // convex monotone curve
                (x, y)
            })
            .collect();
        let net = fit_hinge(8, &data);
        assert!(net.mse(&data) < 1e-5, "mse {}", net.mse(&data));
    }

    #[test]
    fn handles_duplicate_inputs() {
        let data = vec![(0.5f32, 0.3f32); 50];
        let net = fit_hinge(8, &data);
        assert!((net.forward(0.5) - 0.3).abs() < 1e-3);
    }

    #[test]
    fn empty_gives_zeros() {
        let net = fit_hinge(8, &[]);
        assert_eq!(net.forward(0.3), 0.0);
    }

    #[test]
    fn single_point() {
        let net = fit_hinge(8, &[(0.2, 0.7)]);
        assert!((net.forward(0.2) - 0.7).abs() < 1e-4);
    }

    #[test]
    fn deterministic() {
        let data: Vec<(f32, f32)> =
            (0..64).map(|i| (i as f32 / 64.0, (i as f32 / 64.0).sqrt())).collect();
        let a = fit_hinge(8, &data);
        let b = fit_hinge(8, &data);
        assert_eq!(a, b);
    }
}
