//! # nm-nn — the neural-network substrate for RQ-RMI
//!
//! The paper's RQ-RMI submodels are 3-layer fully-connected networks with one
//! input, one output, and 8 hidden ReLU neurons (§3.4, Definition 3.1):
//!
//! ```text
//! N(x) = A(x·w1 + b1) × w2 + b2        A = element-wise ReLU
//! M(x) = H(N(x))                        H clamps the output into [0, 1)
//! ```
//!
//! The paper trains these with TensorFlow + Adam; this crate implements the
//! same model family and optimizer from scratch (TensorFlow is famously a
//! poor fit for 25-parameter models — the authors say so themselves in §4),
//! plus two things TensorFlow does not give you:
//!
//! * **Closed-form hinge fitting** ([`hinge`]): ReLU kinks placed at input
//!   quantiles + ridge least-squares for the output layer. Deterministic and
//!   ~100× faster than iterative training for these model sizes; Adam can
//!   refine the result ("paper-faithful" mode keeps pure Adam).
//! * **Piece-wise-linear analysis** ([`piecewise`]): exact extraction of the
//!   clamped model's linear segments, the foundation of the paper's analytic
//!   trigger-input / transition-input / error-bound machinery (§3.5,
//!   Appendix A).
//!
//! The scalar [`Mlp::forward`] is the *reference semantics*: the SIMD kernels
//! in the `nuevomatch` crate must agree with it to within one float ULP
//! cascade, and the RQ-RMI error bounds add a unit of slack to absorb exactly
//! that (see `nuevomatch::rqrmi`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adam;
pub mod hinge;
pub mod mlp;
pub mod piecewise;

pub use adam::{Adam, AdamConfig};
pub use hinge::fit_hinge;
pub use mlp::{Mlp, ONE_MINUS_EPS};
pub use piecewise::{segments, Segment};
