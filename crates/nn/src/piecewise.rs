//! Exact piece-wise-linear decomposition of a clamped MLP.
//!
//! Corollary 3.2 of the paper: a 1×H×1 ReLU network with a clamped output is
//! a piece-wise linear function. Its kinks ("trigger inputs", Definition A.5)
//! come from two places:
//!
//! 1. each hidden neuron's ReLU flips at `x = −b1[j] / w1[j]`;
//! 2. the output clamp `H(·)` kicks in where `N(x)` crosses 0 or 1⁻.
//!
//! [`segments`] returns the exact linear pieces of `M(x) = clamp(N(x))` over
//! a requested interval, computed in `f64` from the widened `f32` weights.
//! Everything analytic in RQ-RMI training — responsibility propagation,
//! transition inputs, error bounds — is built on this decomposition.

use crate::mlp::{Mlp, ONE_MINUS_EPS};

/// One linear piece of the clamped model: for `x ∈ [x0, x1]`,
/// `M(x) = y0 + (x − x0) · (y1 − y0) / (x1 − x0)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Left edge of the piece.
    pub x0: f64,
    /// Right edge of the piece (`x1 >= x0`).
    pub x1: f64,
    /// Model output at `x0` (already clamped).
    pub y0: f64,
    /// Model output at `x1` (already clamped).
    pub y1: f64,
}

impl Segment {
    /// Interpolated model value at `x` (must lie within the piece).
    #[inline]
    pub fn eval(&self, x: f64) -> f64 {
        debug_assert!(x >= self.x0 - 1e-12 && x <= self.x1 + 1e-12);
        if self.x1 == self.x0 {
            return self.y0;
        }
        self.y0 + (x - self.x0) * (self.y1 - self.y0) / (self.x1 - self.x0)
    }

    /// Slope of the piece (0 for degenerate zero-width pieces).
    #[inline]
    pub fn slope(&self) -> f64 {
        if self.x1 == self.x0 {
            0.0
        } else {
            (self.y1 - self.y0) / (self.x1 - self.x0)
        }
    }

    /// Solves `M(x) = y` within the piece, if the piece attains `y`.
    pub fn solve(&self, y: f64) -> Option<f64> {
        let (lo, hi) = if self.y0 <= self.y1 { (self.y0, self.y1) } else { (self.y1, self.y0) };
        if y < lo || y > hi {
            return None;
        }
        let s = self.slope();
        if s == 0.0 {
            // Constant piece: any x attains y (== y0); report the left edge.
            return (y == self.y0).then_some(self.x0);
        }
        Some(self.x0 + (y - self.y0) / s)
    }
}

/// Decomposes `M(x) = clamp(N(x), 0, 1⁻)` into exact linear pieces over
/// `[lo, hi]`.
///
/// Pieces are returned sorted, contiguous (`pieces[i].x1 == pieces[i+1].x0`)
/// and cover exactly `[lo, hi]`. Returns an empty vector when `lo > hi`.
pub fn segments(net: &Mlp, lo: f64, hi: f64) -> Vec<Segment> {
    if lo > hi {
        return Vec::new();
    }
    const CLAMP_HI: f64 = ONE_MINUS_EPS as f64;

    // 1. ReLU kinks inside (lo, hi).
    let mut breaks: Vec<f64> = Vec::with_capacity(net.hidden() + 2);
    breaks.push(lo);
    for j in 0..net.hidden() {
        let w = net.w1[j] as f64;
        if w != 0.0 {
            let x = -(net.b1[j] as f64) / w;
            if x > lo && x < hi {
                breaks.push(x);
            }
        }
    }
    breaks.push(hi);
    breaks.sort_by(f64::total_cmp);
    breaks.dedup();

    // 2. Within each ReLU-linear piece, add clamp crossings, then emit
    //    clamped segments.
    let mut out = Vec::with_capacity(breaks.len());
    for w in breaks.windows(2) {
        let (a, b) = (w[0], w[1]);
        let na = net.forward_f64(a);
        let nb = net.forward_f64(b);
        // Crossings of the raw line with the clamp bounds.
        let mut cuts: Vec<f64> = vec![a];
        if (nb - na).abs() > 0.0 && b > a {
            let slope = (nb - na) / (b - a);
            for bound in [0.0, CLAMP_HI] {
                if slope != 0.0 {
                    let x = a + (bound - na) / slope;
                    if x > a && x < b {
                        cuts.push(x);
                    }
                }
            }
        }
        cuts.push(b);
        cuts.sort_by(f64::total_cmp);
        cuts.dedup();
        for c in cuts.windows(2) {
            let (x0, x1) = (c[0], c[1]);
            let y0 = net.forward_f64(x0).clamp(0.0, CLAMP_HI);
            let y1 = net.forward_f64(x1).clamp(0.0, CLAMP_HI);
            out.push(Segment { x0, x1, y0, y1 });
        }
    }
    if out.is_empty() {
        // Degenerate interval lo == hi.
        let y = net.forward_clamped_f64(lo);
        out.push(Segment { x0: lo, x1: hi, y0: y, y1: y });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_covers(pieces: &[Segment], lo: f64, hi: f64) {
        assert_eq!(pieces.first().unwrap().x0, lo);
        assert_eq!(pieces.last().unwrap().x1, hi);
        for w in pieces.windows(2) {
            assert_eq!(w[0].x1, w[1].x0, "pieces must be contiguous");
        }
    }

    fn assert_matches_model(net: &Mlp, pieces: &[Segment]) {
        // Dense sampling: interpolation must agree with the model.
        for p in pieces {
            for k in 0..=8 {
                let x = p.x0 + (p.x1 - p.x0) * k as f64 / 8.0;
                let want = net.forward_clamped_f64(x);
                let got = p.eval(x);
                assert!((want - got).abs() < 1e-9, "x={x}: model {want} vs segment {got} in {p:?}");
            }
        }
    }

    #[test]
    fn single_neuron_has_one_kink() {
        let net = Mlp { w1: vec![1.0], b1: vec![-0.5], w2: vec![0.8], b2: 0.05 };
        let pieces = segments(&net, 0.0, 1.0);
        assert_covers(&pieces, 0.0, 1.0);
        assert_matches_model(&net, &pieces);
        // Flat before 0.5, rising after.
        assert!(pieces.iter().any(|p| p.slope() == 0.0));
        assert!(pieces.iter().any(|p| p.slope() > 0.0));
    }

    #[test]
    fn clamp_creates_extra_pieces() {
        // Steep line crossing both clamp bounds inside the domain.
        let net = Mlp { w1: vec![1.0], b1: vec![0.0], w2: vec![3.0], b2: -1.0 };
        let pieces = segments(&net, 0.0, 1.0);
        assert_covers(&pieces, 0.0, 1.0);
        assert_matches_model(&net, &pieces);
        // Should have: flat at 0, rising, flat at 1-.
        let flat_lo = pieces.iter().any(|p| p.y0 == 0.0 && p.y1 == 0.0 && p.x1 > p.x0);
        let flat_hi =
            pieces.iter().any(|p| p.y0 == ONE_MINUS_EPS as f64 && p.y1 == p.y0 && p.x1 > p.x0);
        assert!(flat_lo, "missing lower clamp piece: {pieces:?}");
        assert!(flat_hi, "missing upper clamp piece: {pieces:?}");
    }

    #[test]
    fn random_net_decomposition_is_exact() {
        for seed in 0..20 {
            let net = Mlp::random(8, seed);
            let pieces = segments(&net, 0.0, 1.0);
            assert_covers(&pieces, 0.0, 1.0);
            assert_matches_model(&net, &pieces);
        }
    }

    #[test]
    fn sub_interval() {
        let net = Mlp::random(8, 99);
        let pieces = segments(&net, 0.25, 0.75);
        assert_covers(&pieces, 0.25, 0.75);
        assert_matches_model(&net, &pieces);
    }

    #[test]
    fn degenerate_interval() {
        let net = Mlp::random(8, 5);
        let pieces = segments(&net, 0.5, 0.5);
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].y0, net.forward_clamped_f64(0.5));
    }

    #[test]
    fn solve_inverts_eval() {
        let net = Mlp::random(8, 11);
        let pieces = segments(&net, 0.0, 1.0);
        for p in &pieces {
            if p.slope().abs() > 1e-9 {
                let mid_y = (p.y0 + p.y1) / 2.0;
                let x = p.solve(mid_y).expect("mid value attained");
                assert!((p.eval(x) - mid_y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn empty_on_inverted_interval() {
        let net = Mlp::random(8, 1);
        assert!(segments(&net, 1.0, 0.0).is_empty());
    }
}
