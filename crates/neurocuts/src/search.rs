//! Derivative-free policy search (the RL substitute).
//!
//! Random restarts + single-parameter hill climbing over [`ParamPolicy`],
//! scoring each candidate by building trees on a *sample* of the rules and
//! evaluating the NeuroCuts reward. Deterministic in the seed.

use crate::policy::ParamPolicy;
use nm_common::rule::Rule;
use nm_common::ruleset::FieldsSpec;
use nm_common::SplitMix64;
use nm_cutsplit::tree::{DTree, TreeConfig};

/// What the reward penalises (NeuroCuts optimises one or the other; the
/// blend mirrors its combined objective).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RewardKind {
    /// Minimise index bytes.
    Memory,
    /// Minimise mean lookup access cost.
    AccessCount,
    /// `cost = blend · norm_mem + (1 − blend) · norm_access`.
    Blend(f32),
}

/// Search outcome.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// Best policy found.
    pub policy: ParamPolicy,
    /// Its cost (lower is better).
    pub cost: f64,
    /// Costs per iteration (monotone non-increasing best-so-far).
    pub trajectory: Vec<f64>,
}

/// Scores one candidate policy on a rule sample.
fn evaluate(
    policy: &ParamPolicy,
    sample: &[Rule],
    spec: &FieldsSpec,
    tree_cfg: &TreeConfig,
    reward: RewardKind,
    rng: &mut SplitMix64,
) -> f64 {
    if sample.is_empty() {
        return 0.0;
    }
    let tree = DTree::build(sample.to_vec(), spec, policy, tree_cfg);
    let mem = tree.memory_bytes() as f64;
    // Probe cost on keys drawn from the sample's own rules.
    let probes = 64.min(sample.len());
    let mut access = 0.0;
    for _ in 0..probes {
        let rule = &sample[rng.below(sample.len() as u64) as usize];
        let key: Vec<u64> = rule.fields.iter().map(|f| rng.range_inclusive(f.lo, f.hi)).collect();
        access += tree.access_cost(&key) as f64;
    }
    access /= probes as f64;
    match reward {
        RewardKind::Memory => mem,
        RewardKind::AccessCount => access,
        RewardKind::Blend(b) => {
            let b = b as f64;
            // Normalise so neither term dominates by sheer unit size.
            b * (mem / 1024.0) + (1.0 - b) * access
        }
    }
}

/// Runs the search and returns the best policy.
///
/// `iterations` counts candidate evaluations (restart or neighbour each);
/// the NuevoMatch paper gave NeuroCuts a multi-hour hyper-parameter sweep —
/// here a few dozen evaluations on a sample land in the same tree family in
/// milliseconds-to-seconds.
#[allow(clippy::too_many_arguments)]
pub fn policy_search(
    rules: &[Rule],
    spec: &FieldsSpec,
    binth: usize,
    sample_size: usize,
    iterations: usize,
    reward: RewardKind,
    tree_cfg: &TreeConfig,
    seed: u64,
) -> SearchReport {
    let mut rng = SplitMix64::new(seed);
    // Deterministic sample (stride subsample keeps the priority mix).
    let sample: Vec<Rule> = if rules.len() <= sample_size {
        rules.to_vec()
    } else {
        let step = rules.len() / sample_size;
        rules.iter().step_by(step.max(1)).take(sample_size).cloned().collect()
    };

    let mut best = ParamPolicy::neutral(spec.len(), binth);
    let mut best_cost = evaluate(&best, &sample, spec, tree_cfg, reward, &mut rng);
    let mut trajectory = vec![best_cost];

    for i in 0..iterations {
        // Every 8th evaluation restarts randomly; the rest hill-climb.
        let cand = if i % 8 == 7 {
            ParamPolicy::random(spec.len(), binth, &mut rng)
        } else {
            best.neighbour(&mut rng)
        };
        let cost = evaluate(&cand, &sample, spec, tree_cfg, reward, &mut rng);
        if cost < best_cost {
            best = cand;
            best_cost = cost;
        }
        trajectory.push(best_cost);
    }
    SearchReport { policy: best, cost: best_cost, trajectory }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_common::{FieldsSpec, FiveTuple};

    fn rules(n: usize) -> Vec<Rule> {
        let mut rng = SplitMix64::new(3);
        (0..n)
            .map(|i| {
                FiveTuple::new()
                    .src_prefix_raw(rng.next_u64() as u32, 16 + rng.below(17) as u8)
                    .dst_port_exact(rng.below(65_536) as u16)
                    .into_rule(i as u32, i as u32)
            })
            .collect()
    }

    #[test]
    fn search_improves_or_matches_neutral() {
        let spec = FieldsSpec::five_tuple();
        let rs = rules(300);
        let report = policy_search(
            &rs,
            &spec,
            8,
            200,
            24,
            RewardKind::Blend(0.5),
            &TreeConfig::default(),
            42,
        );
        assert_eq!(report.trajectory.len(), 25);
        // Best-so-far must be monotone non-increasing.
        for w in report.trajectory.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert!(report.cost <= report.trajectory[0]);
    }

    #[test]
    fn deterministic_in_seed() {
        let spec = FieldsSpec::five_tuple();
        let rs = rules(200);
        let a =
            policy_search(&rs, &spec, 8, 100, 10, RewardKind::Memory, &TreeConfig::default(), 7);
        let b =
            policy_search(&rs, &spec, 8, 100, 10, RewardKind::Memory, &TreeConfig::default(), 7);
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn reward_kinds_all_run() {
        let spec = FieldsSpec::five_tuple();
        let rs = rules(100);
        for reward in [RewardKind::Memory, RewardKind::AccessCount, RewardKind::Blend(0.3)] {
            let r = policy_search(&rs, &spec, 8, 64, 6, reward, &TreeConfig::default(), 1);
            assert!(r.cost.is_finite());
        }
    }
}
