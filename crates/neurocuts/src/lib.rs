//! # nm-neurocuts — NeuroCuts-style searched decision trees
//!
//! NeuroCuts (Liang, Zhu, Jin, Stoica — SIGCOMM 2019) uses deep
//! reinforcement learning to choose, per tree node, *which dimension to cut
//! and how finely*, optimising either the tree's memory footprint or its
//! memory-access count. The NuevoMatch paper uses the resulting trees as a
//! baseline and remainder engine; its evaluation consumes only the *built
//! tree* (its footprint and traversal cost), never the learning process.
//!
//! **Substitution (documented in DESIGN.md §2):** this crate keeps the
//! NeuroCuts decision space and reward but replaces the RL agent with a
//! derivative-free policy search (random restarts + hill climbing over a
//! parameterised policy). The search evaluates candidate policies by
//! building trees on a rule sample and scoring the same reward
//! (`memory` / `access count` / a blend); the best policy then builds the
//! final trees on the full rule-set. Like the original, *top-mode
//! partitioning* (split the rule-set first, one tree per part) is part of
//! the searched configuration.
//!
//! The tree substrate (arena, cuts, splits, early-termination bounds) is
//! shared with `nm-cutsplit`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod policy;
pub mod search;

mod engine;

pub use engine::{NeuroCuts, NeuroCutsConfig};
pub use policy::ParamPolicy;
pub use search::{policy_search, RewardKind, SearchReport};
