//! The parameterised tree-construction policy (the NeuroCuts action space).
//!
//! At each node NeuroCuts' agent picks a dimension and a cut arity from
//! {2, 4, 8, 16, 32}. Our policy encodes those choices as a flat parameter
//! vector so a derivative-free search can optimise it:
//!
//! * `dim_pref[bucket][dim]` — preference score for cutting `dim` at nodes
//!   in depth bucket `bucket` (0, 1, 2+). The effective score adds a
//!   discriminability term (distinct endpoints) so parameters modulate
//!   rather than fight the data.
//! * `cut_bits[bucket]` — cut arity (log2) per depth bucket.
//! * `split_below` — node size under which the policy switches from cuts to
//!   binary threshold splits (HyperSplit-style finishing, which NeuroCuts'
//!   action space approximates with arity-2 cuts).

use nm_common::SplitMix64;
use nm_cutsplit::tree::{BuildAction, NodeCtx, Policy};

/// Number of depth buckets in the parameterisation.
pub const BUCKETS: usize = 3;

/// A concrete, searchable policy instance.
#[derive(Clone, Debug, PartialEq)]
pub struct ParamPolicy {
    /// Per-bucket, per-dimension cut preference.
    pub dim_pref: Vec<[f32; BUCKETS]>,
    /// Per-bucket cut arity (log2 children), each in 1..=5.
    pub cut_bits: [u8; BUCKETS],
    /// Switch to splits below this node size.
    pub split_below: usize,
}

impl ParamPolicy {
    /// Neutral starting point for `nf` dimensions.
    pub fn neutral(nf: usize, binth: usize) -> Self {
        Self { dim_pref: vec![[0.0; BUCKETS]; nf], cut_bits: [3; BUCKETS], split_below: binth * 4 }
    }

    /// Random policy (search restarts), deterministic in the RNG state.
    pub fn random(nf: usize, binth: usize, rng: &mut SplitMix64) -> Self {
        Self {
            dim_pref: (0..nf)
                .map(|_| {
                    let mut b = [0.0f32; BUCKETS];
                    for v in &mut b {
                        *v = (rng.f64() as f32 - 0.5) * 4.0;
                    }
                    b
                })
                .collect(),
            cut_bits: [1 + rng.below(5) as u8, 1 + rng.below(5) as u8, 1 + rng.below(5) as u8],
            split_below: binth * (1 + rng.below(8) as usize),
        }
    }

    /// One hill-climbing neighbour: perturb a single parameter. Loops until
    /// the perturbation actually changes something (a redrawn cut arity can
    /// coincide with the current one).
    pub fn neighbour(&self, rng: &mut SplitMix64) -> Self {
        loop {
            let mut next = self.clone();
            match rng.below(3) {
                0 => {
                    let d = rng.below(next.dim_pref.len() as u64) as usize;
                    let b = rng.below(BUCKETS as u64) as usize;
                    next.dim_pref[d][b] += (rng.f64() as f32 - 0.5) * 2.0;
                }
                1 => {
                    let b = rng.below(BUCKETS as u64) as usize;
                    next.cut_bits[b] = 1 + rng.below(5) as u8;
                }
                _ => {
                    let delta = rng.below(17) as i64 - 8;
                    next.split_below = (next.split_below as i64 + delta).max(1) as usize;
                }
            }
            if next != *self {
                return next;
            }
        }
    }

    fn bucket(depth: usize) -> usize {
        depth.min(BUCKETS - 1)
    }
}

impl Policy for ParamPolicy {
    fn decide(&self, ctx: &NodeCtx<'_>) -> BuildAction {
        let bucket = Self::bucket(ctx.depth);
        if ctx.rules.len() <= self.split_below {
            // Finishing phase: threshold split on the most discriminating dim.
            let mut best: Option<(usize, usize)> = None;
            for d in 0..ctx.spec.len() {
                let (lo, hi) = ctx.bounds[d];
                if lo == hi {
                    continue;
                }
                let mut endpoints: Vec<u64> =
                    ctx.rules.iter().map(|&id| ctx.all[id as usize].fields[d].hi.min(hi)).collect();
                endpoints.sort_unstable();
                endpoints.dedup();
                if endpoints.len() > 1 && best.map_or(true, |(_, n)| endpoints.len() > n) {
                    best = Some((d, endpoints.len()));
                }
            }
            return match best {
                Some((dim, _)) => BuildAction::Split { dim },
                None => BuildAction::Leaf,
            };
        }

        // Cutting phase: learned preference + data-driven discriminability.
        let mut best: Option<(usize, f32)> = None;
        for d in 0..ctx.spec.len() {
            let (lo, hi) = ctx.bounds[d];
            if lo == hi {
                continue;
            }
            // Distinct low endpoints as a cheap discriminability proxy.
            let mut lows: Vec<u64> = ctx
                .rules
                .iter()
                .take(256)
                .map(|&id| ctx.all[id as usize].fields[d].lo.max(lo))
                .collect();
            lows.sort_unstable();
            lows.dedup();
            let disc = (lows.len() as f32).ln();
            let score = self.dim_pref[d][bucket] + disc;
            if best.map_or(true, |(_, s)| score > s) {
                best = Some((d, score));
            }
        }
        match best {
            Some((dim, _)) => BuildAction::Cut { dim, bits: self.cut_bits[bucket].clamp(1, 5) },
            None => BuildAction::Leaf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neutral_and_random_differ() {
        let mut rng = SplitMix64::new(1);
        let a = ParamPolicy::neutral(5, 8);
        let b = ParamPolicy::random(5, 8, &mut rng);
        assert_ne!(a, b);
        assert!(b.cut_bits.iter().all(|&c| (1..=5).contains(&c)));
    }

    #[test]
    fn neighbour_changes_one_thing() {
        let mut rng = SplitMix64::new(2);
        let base = ParamPolicy::neutral(5, 8);
        let n = base.neighbour(&mut rng);
        assert_ne!(base, n);
    }

    #[test]
    fn neighbour_is_deterministic() {
        let base = ParamPolicy::neutral(5, 8);
        let a = base.neighbour(&mut SplitMix64::new(7));
        let b = base.neighbour(&mut SplitMix64::new(7));
        assert_eq!(a, b);
    }
}
