//! The NeuroCuts classifier: searched policy + final trees.

use crate::policy::ParamPolicy;
use crate::search::{policy_search, RewardKind};
use nm_common::classifier::{Classifier, MatchResult};
use nm_common::rule::Priority;
use nm_common::ruleset::RuleSet;
use nm_cutsplit::partition::partition;
use nm_cutsplit::tree::{DTree, TreeConfig, TreeStats};

/// NeuroCuts parameters.
#[derive(Clone, Copy, Debug)]
pub struct NeuroCutsConfig {
    /// Rules per leaf.
    pub binth: usize,
    /// Policy-search evaluations.
    pub iterations: usize,
    /// Rule sample size for search-time tree builds.
    pub sample: usize,
    /// Objective (the paper sweeps both; §5.1 picks the best per rule-set).
    pub reward: RewardKind,
    /// Top-mode partitioning: build one tree per smallness part instead of
    /// a single tree (the paper's recommended mode).
    pub top_mode: bool,
    /// Search seed.
    pub seed: u64,
    /// Build limits.
    pub tree: TreeConfig,
}

impl Default for NeuroCutsConfig {
    fn default() -> Self {
        Self {
            binth: 8,
            iterations: 24,
            sample: 4_096,
            reward: RewardKind::Blend(0.5),
            top_mode: true,
            seed: 0x6e63, // "nc"
            tree: TreeConfig::default(),
        }
    }
}

/// The NeuroCuts-style classifier.
pub struct NeuroCuts {
    trees: Vec<DTree>,
    order: Vec<(Priority, u32)>,
    total_rules: usize,
    policy: ParamPolicy,
    search_cost: f64,
}

impl NeuroCuts {
    /// Builds with default parameters.
    pub fn build(set: &RuleSet) -> Self {
        Self::with_config(set, NeuroCutsConfig::default())
    }

    /// Builds with explicit parameters: search a policy on a sample, then
    /// build the final trees with it.
    pub fn with_config(set: &RuleSet, cfg: NeuroCutsConfig) -> Self {
        let spec = set.spec();
        let mut tree_cfg = cfg.tree;
        tree_cfg.binth = cfg.binth;

        let report = policy_search(
            set.rules(),
            spec,
            cfg.binth,
            cfg.sample,
            cfg.iterations,
            cfg.reward,
            &tree_cfg,
            cfg.seed,
        );

        let groups: Vec<Vec<nm_common::Rule>> = if cfg.top_mode && spec.len() >= 2 {
            partition(set.rules(), spec, 0, 1, 16)
                .groups
                .into_iter()
                .filter(|g| !g.is_empty())
                .collect()
        } else if set.is_empty() {
            Vec::new()
        } else {
            vec![set.rules().to_vec()]
        };

        let trees: Vec<DTree> =
            groups.into_iter().map(|g| DTree::build(g, spec, &report.policy, &tree_cfg)).collect();
        let mut order: Vec<(Priority, u32)> =
            trees.iter().enumerate().map(|(i, t)| (t.best_priority(), i as u32)).collect();
        order.sort_unstable();
        Self {
            trees,
            order,
            total_rules: set.len(),
            policy: report.policy,
            search_cost: report.cost,
        }
    }

    /// The searched policy (diagnostics).
    pub fn policy(&self) -> &ParamPolicy {
        &self.policy
    }

    /// Final search cost (reward units; diagnostics).
    pub fn search_cost(&self) -> f64 {
        self.search_cost
    }

    /// Per-tree structural statistics.
    pub fn stats(&self) -> Vec<TreeStats> {
        self.trees.iter().map(DTree::stats).collect()
    }
}

impl Classifier for NeuroCuts {
    fn classify(&self, key: &[u64]) -> Option<MatchResult> {
        self.classify_with_floor(key, Priority::MAX)
    }

    fn classify_with_floor(&self, key: &[u64], floor: Priority) -> Option<MatchResult> {
        let mut best: Option<MatchResult> = None;
        for &(tree_best, ti) in &self.order {
            let bound = best.map_or(floor, |b| b.priority.min(floor));
            if bound <= tree_best {
                break;
            }
            best = MatchResult::better(best, self.trees[ti as usize].classify_floor(key, bound));
        }
        best.filter(|m| m.priority < floor)
    }

    /// Level-synchronous batched descent over the searched trees — the same
    /// prefetched-frontier driver as CutSplit (`nm_cutsplit::batched`); the
    /// engines differ only in how their trees were built.
    fn batch_lookup(
        &self,
        keys: &[u64],
        stride: usize,
        floors: Option<&[Priority]>,
        out: &mut [Option<MatchResult>],
    ) {
        nm_cutsplit::batched::classify_forest_batch(
            &self.trees,
            &self.order,
            keys,
            stride,
            floors,
            out,
        );
    }

    fn memory_bytes(&self) -> usize {
        self.trees.iter().map(DTree::memory_bytes).sum::<usize>()
            + self.order.len() * std::mem::size_of::<(Priority, u32)>()
    }

    fn name(&self) -> &'static str {
        "nc"
    }

    fn num_rules(&self) -> usize {
        self.total_rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_common::{FieldsSpec, FiveTuple, LinearSearch, SplitMix64};

    fn mixed_set(seed: u64, n: usize) -> RuleSet {
        let mut rng = SplitMix64::new(seed);
        let rules: Vec<_> = (0..n)
            .map(|i| {
                let mut ft = FiveTuple::new();
                match rng.below(4) {
                    0 => {
                        ft = ft
                            .src_prefix_raw(rng.next_u64() as u32, 24)
                            .dst_prefix_raw(rng.next_u64() as u32, 16 + rng.below(17) as u8);
                    }
                    1 => ft = ft.dst_port_exact(rng.below(65_536) as u16),
                    2 => {
                        let lo = rng.below(50_000) as u16;
                        ft = ft.src_port_range(lo, lo + rng.below(10_000) as u16);
                    }
                    _ => ft = ft.src_prefix_raw(rng.next_u64() as u32, 8).proto_exact(17),
                }
                ft.into_rule(i as u32, i as u32)
            })
            .collect();
        RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap()
    }

    #[test]
    fn agrees_with_oracle() {
        let set = mixed_set(1, 400);
        let fast = NeuroCutsConfig { iterations: 6, sample: 256, ..Default::default() };
        let nc = NeuroCuts::with_config(&set, fast);
        let oracle = LinearSearch::build(&set);
        let mut rng = SplitMix64::new(5);
        for i in 0..1_500 {
            let key = if i % 2 == 0 {
                [
                    rng.next_u64() & 0xffff_ffff,
                    rng.next_u64() & 0xffff_ffff,
                    rng.below(65_536),
                    rng.below(65_536),
                    rng.below(256),
                ]
            } else {
                let rule = set.rule_at(rng.below(set.len() as u64) as usize);
                let mut k = [0u64; 5];
                for (d, f) in rule.fields.iter().enumerate() {
                    k[d] = rng.range_inclusive(f.lo, f.hi);
                }
                k
            };
            assert_eq!(nc.classify(&key), oracle.classify(&key), "key {key:?}");
        }
    }

    #[test]
    fn top_mode_and_single_tree_agree() {
        let set = mixed_set(2, 250);
        let a = NeuroCuts::with_config(
            &set,
            NeuroCutsConfig { iterations: 4, sample: 128, top_mode: true, ..Default::default() },
        );
        let b = NeuroCuts::with_config(
            &set,
            NeuroCutsConfig { iterations: 4, sample: 128, top_mode: false, ..Default::default() },
        );
        let mut rng = SplitMix64::new(9);
        for _ in 0..500 {
            let key = [
                rng.next_u64() & 0xffff_ffff,
                rng.next_u64() & 0xffff_ffff,
                rng.below(65_536),
                rng.below(65_536),
                rng.below(256),
            ];
            assert_eq!(a.classify(&key), b.classify(&key));
        }
    }

    #[test]
    fn floor_equivalence() {
        let set = mixed_set(3, 200);
        let nc = NeuroCuts::with_config(
            &set,
            NeuroCutsConfig { iterations: 4, sample: 128, ..Default::default() },
        );
        let mut rng = SplitMix64::new(11);
        for _ in 0..300 {
            let key = [
                rng.next_u64() & 0xffff_ffff,
                rng.next_u64() & 0xffff_ffff,
                rng.below(65_536),
                rng.below(65_536),
                rng.below(256),
            ];
            let full = nc.classify(&key);
            for floor in [0u32, 80, 199] {
                assert_eq!(
                    nc.classify_with_floor(&key, floor),
                    full.filter(|m| m.priority < floor)
                );
            }
        }
    }

    #[test]
    fn deterministic_build() {
        let set = mixed_set(4, 150);
        let cfg = NeuroCutsConfig { iterations: 6, sample: 128, ..Default::default() };
        let a = NeuroCuts::with_config(&set, cfg);
        let b = NeuroCuts::with_config(&set, cfg);
        assert_eq!(a.policy(), b.policy());
        assert_eq!(a.memory_bytes(), b.memory_bytes());
    }

    #[test]
    fn empty_set() {
        let set = RuleSet::new(FieldsSpec::five_tuple(), vec![]).unwrap();
        let nc = NeuroCuts::with_config(
            &set,
            NeuroCutsConfig { iterations: 2, sample: 16, ..Default::default() },
        );
        assert_eq!(nc.classify(&[0, 0, 0, 0, 0]), None);
    }
}
