//! Model replacements for `std::sync` primitives.
//!
//! Outside an exploration every type delegates straight to its `std`
//! counterpart, so code built with `--cfg nm_model` still behaves normally
//! when not running under [`crate::explore`]. Inside an exploration each
//! access becomes a scheduler decision point with the store-history
//! semantics described in the crate docs.

use std::sync::atomic::{AtomicU64 as StdU64, Ordering};

use crate::scheduler::{RunState, StepResult};
use crate::{ctx, Ctx};

pub use std::sync::Arc;

/// Packs `(run uid, location id + 1)` so a primitive registers itself once
/// per run and re-registers (with fresh history) on the next run. Only the
/// token-holding thread touches the key during a run, so plain SeqCst
/// accesses are race-free.
struct LocKey(StdU64);

impl LocKey {
    const fn new() -> Self {
        LocKey(StdU64::new(0))
    }

    fn get(&self, uid: u64) -> Option<usize> {
        let k = self.0.load(Ordering::SeqCst);
        (k >> 32 == uid && (k & 0xffff_ffff) != 0).then(|| (k & 0xffff_ffff) as usize - 1)
    }

    fn set(&self, uid: u64, loc: usize) {
        self.0.store(uid << 32 | (loc as u64 + 1), Ordering::SeqCst);
    }
}

macro_rules! model_atomic {
    ($name:ident, $std:ty, $raw:ty, $from:expr, $into:expr) => {
        /// Model counterpart of the same-named `std::sync::atomic` type.
        pub struct $name {
            std: $std,
            key: LocKey,
        }

        impl $name {
            /// Creates the atomic holding `v`.
            pub const fn new(v: $raw) -> Self {
                Self { std: <$std>::new(v), key: LocKey::new() }
            }

            fn loc(&self, c: &Ctx, g: &mut RunState) -> usize {
                match self.key.get(c.sched.uid) {
                    Some(loc) => loc,
                    None => {
                        let seed = ($into)(self.std.load(Ordering::SeqCst));
                        let loc = g.register_loc(seed);
                        self.key.set(c.sched.uid, loc);
                        loc
                    }
                }
            }

            /// Mirrors [`std::sync::atomic`] `load`.
            pub fn load(&self, ord: Ordering) -> $raw {
                match ctx() {
                    None => self.std.load(ord),
                    Some(c) => {
                        let v = c.sched.step(
                            c.tid,
                            false,
                            |v| format!("load({ord:?}) = {v}"),
                            |g, me| {
                                let loc = self.loc(&c, g);
                                StepResult::Ready(g.atomic_load(me, loc, ord))
                            },
                        );
                        ($from)(v)
                    }
                }
            }

            /// Mirrors [`std::sync::atomic`] `store`.
            pub fn store(&self, v: $raw, ord: Ordering) {
                match ctx() {
                    None => self.std.store(v, ord),
                    Some(c) => {
                        c.sched.step(
                            c.tid,
                            false,
                            |_: &()| format!("store({ord:?}) {v:?}"),
                            |g, me| {
                                let loc = self.loc(&c, g);
                                g.atomic_store(me, loc, ($into)(v), ord);
                                StepResult::Ready(())
                            },
                        );
                        self.std.store(v, Ordering::SeqCst);
                    }
                }
            }

            /// Mirrors [`std::sync::atomic`] `swap`.
            pub fn swap(&self, v: $raw, ord: Ordering) -> $raw {
                match ctx() {
                    None => self.std.swap(v, ord),
                    Some(c) => {
                        let old = c.sched.step(
                            c.tid,
                            false,
                            |o| format!("swap({ord:?}) -> {o}"),
                            |g, me| {
                                let loc = self.loc(&c, g);
                                StepResult::Ready(g.atomic_rmw(me, loc, ord, |_| ($into)(v)))
                            },
                        );
                        self.std.store(v, Ordering::SeqCst);
                        ($from)(old)
                    }
                }
            }

            /// Mirrors [`std::sync::atomic`] `compare_exchange`.
            pub fn compare_exchange(
                &self,
                current: $raw,
                new: $raw,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$raw, $raw> {
                match ctx() {
                    None => self.std.compare_exchange(current, new, success, failure),
                    Some(c) => {
                        let r = c.sched.step(
                            c.tid,
                            false,
                            |r| format!("cas -> {r:?}"),
                            |g, me| {
                                let loc = self.loc(&c, g);
                                StepResult::Ready(g.atomic_cas(
                                    me,
                                    loc,
                                    ($into)(current),
                                    ($into)(new),
                                    success,
                                    failure,
                                ))
                            },
                        );
                        if r.is_ok() {
                            self.std.store(new, Ordering::SeqCst);
                        }
                        r.map($from).map_err($from)
                    }
                }
            }

            /// Mirrors [`std::sync::atomic`] `compare_exchange_weak` (never
            /// fails spuriously in the model).
            pub fn compare_exchange_weak(
                &self,
                current: $raw,
                new: $raw,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$raw, $raw> {
                self.compare_exchange(current, new, success, failure)
            }
        }
    };
}

macro_rules! model_atomic_int {
    ($name:ident, $std:ty, $raw:ty) => {
        model_atomic!($name, $std, $raw, |v: u64| v as $raw, |v: $raw| v as u64);

        impl $name {
            /// Mirrors [`std::sync::atomic`] `fetch_add` (wrapping).
            pub fn fetch_add(&self, v: $raw, ord: Ordering) -> $raw {
                self.fetch_update_model(ord, |x| x.wrapping_add(v), v, "fetch_add")
            }

            /// Mirrors [`std::sync::atomic`] `fetch_sub` (wrapping).
            pub fn fetch_sub(&self, v: $raw, ord: Ordering) -> $raw {
                self.fetch_update_model(ord, |x| x.wrapping_sub(v), v, "fetch_sub")
            }

            /// Mirrors [`std::sync::atomic`] `fetch_max`.
            pub fn fetch_max(&self, v: $raw, ord: Ordering) -> $raw {
                self.fetch_update_model(ord, |x| x.max(v), v, "fetch_max")
            }

            fn fetch_update_model(
                &self,
                ord: Ordering,
                f: impl Fn($raw) -> $raw,
                arg: $raw,
                name: &str,
            ) -> $raw {
                match ctx() {
                    None => {
                        // Delegate via a CAS loop so one impl serves every op.
                        let mut cur = self.std.load(Ordering::SeqCst);
                        loop {
                            match self.std.compare_exchange_weak(cur, f(cur), ord, Ordering::SeqCst)
                            {
                                Ok(old) => return old,
                                Err(now) => cur = now,
                            }
                        }
                    }
                    Some(c) => {
                        let old = c.sched.step(
                            c.tid,
                            false,
                            |o| format!("{name}({arg}, {ord:?}) -> {o}"),
                            |g, me| {
                                let loc = self.loc(&c, g);
                                StepResult::Ready(
                                    g.atomic_rmw(me, loc, ord, |x| (f(x as $raw)) as u64),
                                )
                            },
                        );
                        let old = old as $raw;
                        self.std.store(f(old), Ordering::SeqCst);
                        old
                    }
                }
            }
        }
    };
}

/// Virtual atomics with acquire/release edge tracking.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::*;

    model_atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    model_atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    model_atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    model_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool, |v: u64| v != 0, |v: bool| v
        as u64);
}

/// Model mutex: blocking is mediated by the scheduler (with deadlock
/// detection), and lock/unlock carry a release/acquire edge exactly like a
/// real mutex.
pub struct Mutex<T> {
    data: std::sync::Mutex<T>,
    key: LocKey,
}

/// Guard returned by [`Mutex::lock`]; releases the model lock on drop.
pub struct MutexGuard<'a, T> {
    model: Option<(Ctx, usize)>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates the mutex holding `v`.
    pub const fn new(v: T) -> Self {
        Self { data: std::sync::Mutex::new(v), key: LocKey::new() }
    }

    fn data_guard(&self) -> std::sync::MutexGuard<'_, T> {
        // A model thread unwinding on an aborted schedule poisons the std
        // mutex; the model-level lock state is what guarantees exclusion,
        // so poison is only a stale flag here.
        self.data.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mirrors `std::sync::Mutex::lock` (panics never propagate poison).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match ctx() {
            None => MutexGuard { model: None, inner: Some(self.data_guard()) },
            Some(c) => {
                let mid = c.sched.with_state(|g| match self.key.get(c.sched.uid) {
                    Some(m) => m,
                    None => {
                        let m = g.register_mutex();
                        self.key.set(c.sched.uid, m);
                        m
                    }
                });
                c.sched.step(
                    c.tid,
                    false,
                    |_: &()| format!("lock m{mid}"),
                    |g, me| g.mutex_try_acquire(me, mid),
                );
                MutexGuard { model: Some((c, mid)), inner: Some(self.data_guard()) }
            }
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock until drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Drop the std guard first, then release the model lock: no other
        // model thread can run between the two (we hold the token and
        // release is not a decision point), and the std mutex must be free
        // before the scheduler lets a blocked thread retry its acquire.
        self.inner = None;
        if let Some((c, mid)) = self.model.take() {
            c.sched.mutex_unlock(c.tid, mid);
        }
    }
}
