//! Model `thread::spawn`/`join`: spawned closures run on real OS threads,
//! but only the scheduler's token holder makes progress, and spawn/join
//! carry the same synchronization edges as `std` (everything the parent saw
//! is visible to the child; everything the child saw is visible after
//! join).

use std::sync::{Arc, Mutex, PoisonError};

use crate::scheduler::Scheduler;
use crate::{ctx, run_model_thread};

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Model {
        sched: Arc<Scheduler>,
        tid: usize,
        slot: Arc<Mutex<Option<T>>>,
        os: std::thread::JoinHandle<()>,
    },
}

/// Handle to a spawned thread; mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T>(Inner<T>);

/// Mirrors `std::thread::spawn`. Inside an exploration the child becomes a
/// model thread scheduled like any other.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match ctx() {
        None => JoinHandle(Inner::Std(std::thread::spawn(f))),
        Some(c) => {
            let tid = c.sched.register_child(c.tid);
            let slot = Arc::new(Mutex::new(None));
            let slot2 = slot.clone();
            let sched2 = c.sched.clone();
            let os = std::thread::spawn(move || {
                run_model_thread(sched2, tid, move || {
                    let v = f();
                    *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(v);
                });
            });
            JoinHandle(Inner::Model { sched: c.sched, tid, slot, os })
        }
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread and returns its result. A panicking child fails
    /// the whole schedule, so unlike `std` this returns `T` directly.
    pub fn join(self) -> T {
        match self.0 {
            Inner::Std(h) => match h.join() {
                Ok(v) => v,
                Err(p) => std::panic::resume_unwind(p),
            },
            Inner::Model { sched, tid, slot, os } => {
                let c = ctx().expect("model join handles are joined on model threads");
                sched.step(
                    c.tid,
                    false,
                    |_: &()| format!("join t{tid}"),
                    |g, me| g.join_try(me, tid),
                );
                // The model thread has exited; the OS thread is past its
                // last decision point and finishes without the token.
                os.join().ok();
                let v = slot.lock().unwrap_or_else(PoisonError::into_inner).take();
                v.expect("joined thread finished without panicking")
            }
        }
    }
}

/// Mirrors `std::thread::yield_now`: a voluntary reschedule point.
pub fn yield_now() {
    crate::hint::spin_loop();
}
