//! [`RaceCell`]: a shared non-atomic storage cell with data-race detection.
//!
//! Models the `UnsafeCell` slots of the lock-free protocols under test. A
//! read must be uniquely determined by the reader's synchronization state:
//! if the reader's coherence floor for the cell is below its latest store —
//! i.e. no acquire edge ordered the last write before this read — more than
//! one store is observable and the run fails as a data race. That check is
//! what catches unsynchronized reclamation (reading a slot a writer may
//! have already overwritten) without any actual undefined behavior.

use std::sync::{Mutex, PoisonError};

use crate::scheduler::StepResult;
use crate::{ctx, Ctx};

/// A shared mutable cell accessed without atomics, like `UnsafeCell`, but
/// safe: under exploration every access is checked for races; outside it
/// the cell is just a mutex-protected value.
pub struct RaceCell<T> {
    /// Store history for the current run; the last element is the live
    /// value, earlier elements are superseded stores still observable by
    /// under-synchronized readers. Indices align with the scheduler's
    /// history for the registered location.
    vals: Mutex<Vec<T>>,
    key: std::sync::atomic::AtomicU64,
}

impl<T: Clone> RaceCell<T> {
    /// Creates the cell holding `v`.
    pub fn new(v: T) -> Self {
        Self { vals: Mutex::new(vec![v]), key: std::sync::atomic::AtomicU64::new(0) }
    }

    fn vals(&self) -> std::sync::MutexGuard<'_, Vec<T>> {
        self.vals.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers (or re-registers, on a new run) the cell with the
    /// scheduler, truncating history to the live value.
    fn loc(&self, c: &Ctx) -> usize {
        use std::sync::atomic::Ordering::SeqCst;
        let k = self.key.load(SeqCst);
        if k >> 32 == c.sched.uid && (k & 0xffff_ffff) != 0 {
            return (k & 0xffff_ffff) as usize - 1;
        }
        let mut vals = self.vals();
        let keep = vals.len() - 1;
        vals.drain(..keep);
        let loc = c.sched.with_state(|g| g.register_loc(0));
        self.key.store(c.sched.uid << 32 | (loc as u64 + 1), SeqCst);
        loc
    }

    /// Reads the cell. Fails the schedule if the read is unsynchronized
    /// (more than one store is observable).
    pub fn get(&self) -> T {
        match ctx() {
            None => self.vals().last().expect("cell is never empty").clone(),
            Some(c) => {
                let loc = self.loc(&c);
                let idx = c.sched.step(
                    c.tid,
                    false,
                    |i| format!("cell read #{i}"),
                    |g, me| match g.cell_read(me, loc) {
                        Ok(idx) => StepResult::Ready(idx),
                        Err(msg) => StepResult::Violation(msg),
                    },
                );
                self.vals()[idx].clone()
            }
        }
    }

    /// Writes the cell (non-atomic store: observable only through a later
    /// acquire edge).
    pub fn set(&self, v: T) {
        match ctx() {
            None => {
                let mut vals = self.vals();
                vals.clear();
                vals.push(v);
            }
            Some(c) => {
                let loc = self.loc(&c);
                let idx = c.sched.step(
                    c.tid,
                    false,
                    |i| format!("cell write #{i}"),
                    |g, me| StepResult::Ready(g.cell_write(me, loc)),
                );
                let mut vals = self.vals();
                debug_assert_eq!(vals.len(), idx);
                vals.push(v);
            }
        }
    }

    /// Writes the cell and returns the previous value, as one un-preempted
    /// operation (the single-threaded read side still race-checks).
    pub fn replace(&self, v: T) -> T {
        match ctx() {
            None => {
                let mut vals = self.vals();
                let old = vals.last().expect("cell is never empty").clone();
                vals.clear();
                vals.push(v);
                old
            }
            Some(c) => {
                let loc = self.loc(&c);
                let (old_idx, new_idx) = c.sched.step(
                    c.tid,
                    false,
                    |(o, n)| format!("cell replace #{o} -> #{n}"),
                    |g, me| match g.cell_read(me, loc) {
                        Ok(old) => StepResult::Ready((old, g.cell_write(me, loc))),
                        Err(msg) => StepResult::Violation(msg),
                    },
                );
                let mut vals = self.vals();
                debug_assert_eq!(vals.len(), new_idx);
                let old = vals[old_idx].clone();
                vals.push(v);
                old
            }
        }
    }
}
