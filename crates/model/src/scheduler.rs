//! The serialized scheduler behind the explorer: one OS thread per model
//! thread, exactly one of which holds the run token at any instant. Every
//! model-level operation (atomic access, mutex acquire, spawn, join, yield)
//! is a *decision point*: the token holder records a choice — which thread
//! runs next, or which store an unordered load observes — and the DFS in
//! [`crate::explore`] enumerates those choices schedule by schedule.

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Panic payload used to unwind model threads when a run aborts. Filtered
/// by the thread wrapper and the panic hook; never reaches user code.
pub(crate) struct ModelAbort;

/// One recorded decision: which branch was taken out of how many.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Choice {
    pub chosen: u32,
    pub n: u32,
}

/// A failed run: the assertion/race message plus the tail of the event log.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Why the schedule failed (assertion message, detected race, deadlock).
    pub message: String,
    /// The last operations performed, oldest first, as `t<id> <op>` lines.
    pub trace: Vec<String>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Block {
    OnMutex(usize),
    OnJoin(usize),
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked(Block),
    Finished,
}

struct ThreadSt {
    status: Status,
    /// Per-location floor: the lowest store index this thread may still
    /// observe. Raised by its own accesses and by acquire joins.
    seen: HashMap<usize, usize>,
    /// Rolling hash of every value this thread has read — two executions
    /// with equal global state and equal local hashes have converged.
    local_hash: u64,
    /// Set by `spin_loop()`, consumed by the next atomic load: a load right
    /// after a spin reads the latest store (eventual-visibility fairness),
    /// so busy-wait loops terminate instead of re-reading a stale flag on
    /// every DFS branch.
    just_spun: bool,
}

pub(crate) struct StoreRec {
    pub value: u64,
    /// Release message: snapshot of the storing thread's `seen` map, joined
    /// into any thread that acquire-loads this store.
    pub msg: Option<Arc<HashMap<usize, usize>>>,
}

pub(crate) struct LocSt {
    pub history: Vec<StoreRec>,
    hash: u64,
}

struct MutexSt {
    holder: Option<usize>,
    /// Backing location carrying the lock's release/acquire edge: unlock
    /// release-stores to it, a successful acquire joins its message.
    loc: usize,
}

/// Outcome of one attempt to perform an announced operation.
pub(crate) enum StepResult<R> {
    Ready(R),
    Block(Block),
    Violation(String),
}

const EVENT_CAP: usize = 200;

pub(crate) struct RunState {
    max_ops: usize,
    prune: bool,
    prefix: Vec<Choice>,
    pub(crate) trace: Vec<Choice>,
    threads: Vec<ThreadSt>,
    locations: Vec<LocSt>,
    mutexes: Vec<MutexSt>,
    active: usize,
    alive: usize,
    preemptions_left: u32,
    ops: usize,
    pub(crate) violation: Option<Violation>,
    pub(crate) abort: bool,
    events: Vec<String>,
    /// Fingerprint -> largest preemption budget this state was explored
    /// with. Persisted across runs by the explorer.
    pub(crate) visited: HashMap<u64, u32>,
}

impl RunState {
    fn log(&mut self, me: usize, what: impl FnOnce() -> String) {
        if self.events.len() == EVENT_CAP {
            self.events.remove(0);
        }
        self.events.push(format!("t{me} {}", what()));
    }

    fn record_violation(&mut self, me: usize, message: String) {
        if self.violation.is_none() {
            self.log(me, || format!("VIOLATION: {message}"));
            self.violation = Some(Violation { message, trace: std::mem::take(&mut self.events) });
        }
        self.abort = true;
    }

    fn replaying(&self) -> bool {
        self.trace.len() < self.prefix.len()
    }

    /// Records one decision with `n` branches and returns the branch taken:
    /// the replayed one inside the prefix, branch 0 beyond it.
    fn choose(&mut self, n: usize) -> usize {
        let pos = self.trace.len();
        if pos < self.prefix.len() {
            let c = self.prefix[pos];
            self.trace.push(c);
            c.chosen as usize
        } else {
            self.trace.push(Choice { chosen: 0, n: n as u32 });
            0
        }
    }

    /// Marks the calling thread as having just spun (see `just_spun`).
    pub(crate) fn mark_spun(&mut self, me: usize) {
        self.threads[me].just_spun = true;
    }

    fn runnable_others(&self, me: usize) -> Vec<usize> {
        (0..self.threads.len())
            .filter(|&t| t != me && self.threads[t].status == Status::Runnable)
            .collect()
    }

    /// Hash of the whole run state, used to cut schedules that re-reach an
    /// already-explored state with no larger preemption budget.
    fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut fold = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        fold(self.active as u64);
        for t in &self.threads {
            fold(match t.status {
                Status::Runnable => 1,
                Status::Blocked(Block::OnMutex(m)) => 0x100 + m as u64,
                Status::Blocked(Block::OnJoin(j)) => 0x10_000 + j as u64,
                Status::Finished => 2,
            });
            fold(t.local_hash);
            fold(t.just_spun as u64);
        }
        for l in &self.locations {
            fold(l.history.len() as u64);
            fold(l.hash);
        }
        for m in &self.mutexes {
            fold(m.holder.map_or(0, |t| t as u64 + 1));
        }
        h
    }

    /// The scheduling decision made by the token holder before its own
    /// operation. `forced` (spin/yield) switches to another runnable thread
    /// without charging the preemption budget.
    fn schedule(&mut self, me: usize, forced: bool) {
        let others = self.runnable_others(me);
        let (options, charge): (Vec<usize>, bool) = if forced {
            if others.is_empty() {
                return; // nothing else to run; the spin just continues
            }
            (others, false)
        } else if self.preemptions_left == 0 || others.is_empty() {
            (vec![me], false)
        } else {
            let mut v = vec![me];
            v.extend(others);
            (v, true)
        };
        let mut n = options.len();
        if n > 1 && self.prune && !self.replaying() {
            let fp = self.fingerprint();
            match self.visited.get(&fp) {
                Some(&budget) if budget >= self.preemptions_left => n = 1,
                _ => {
                    let b = self.preemptions_left;
                    self.visited.insert(fp, b);
                }
            }
        }
        let chosen = self.choose(n);
        let target = options[chosen.min(options.len() - 1)];
        if charge && target != me {
            self.preemptions_left -= 1;
        }
        self.active = target;
    }

    /// Picks any runnable thread after `me` blocked or finished; reports a
    /// deadlock if live threads remain but none can run.
    fn schedule_unblocked(&mut self, me: usize) {
        let others = self.runnable_others(me);
        if others.is_empty() {
            if self.alive > 0 && self.threads.iter().all(|t| !matches!(t.status, Status::Runnable))
            {
                self.record_violation(me, "deadlock: every live thread is blocked".into());
            }
            return;
        }
        let chosen = self.choose(others.len());
        self.active = others[chosen.min(others.len() - 1)];
    }

    // -- location state ----------------------------------------------------

    pub(crate) fn register_loc(&mut self, seed: u64) -> usize {
        let id = self.locations.len();
        self.locations.push(LocSt {
            history: vec![StoreRec { value: seed, msg: None }],
            hash: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        });
        id
    }

    fn floor(&self, me: usize, loc: usize) -> usize {
        self.threads[me].seen.get(&loc).copied().unwrap_or(0)
    }

    fn observe(&mut self, me: usize, loc: usize, idx: usize, acquire: bool) -> u64 {
        let value = self.locations[loc].history[idx].value;
        let msg = self.locations[loc].history[idx].msg.clone();
        let th = &mut self.threads[me];
        let f = th.seen.entry(loc).or_insert(0);
        *f = (*f).max(idx);
        if acquire {
            if let Some(msg) = msg {
                for (&l, &i) in msg.iter() {
                    let f = th.seen.entry(l).or_insert(0);
                    *f = (*f).max(i);
                }
            }
        }
        th.local_hash ^= (loc as u64 + 1)
            .wrapping_mul(0x2545_f491_4f6c_dd1d)
            .wrapping_add(idx as u64)
            .wrapping_add(value.rotate_left(17));
        th.local_hash = th.local_hash.wrapping_mul(0x1000_0000_01b3);
        value
    }

    fn append_store(&mut self, me: usize, loc: usize, value: u64, release: bool) -> usize {
        let idx = self.locations[loc].history.len();
        let th = &mut self.threads[me];
        th.seen.insert(loc, idx);
        let msg = release.then(|| Arc::new(th.seen.clone()));
        let l = &mut self.locations[loc];
        l.history.push(StoreRec { value, msg });
        l.hash = l
            .hash
            .wrapping_mul(0x1000_0000_01b3)
            .wrapping_add(value ^ (idx as u64).rotate_left(32));
        idx
    }

    /// An atomic load. `SeqCst` reads the latest store in modification
    /// order (per-location linearization — stricter than C++ for loads);
    /// `Acquire`/`Relaxed` branch over every store at or above the thread's
    /// coherence floor, and only `Acquire`+ joins the release message. A
    /// load directly after `spin_loop()` also reads the latest store — the
    /// fairness assumption that keeps busy-wait loops finite.
    pub(crate) fn atomic_load(&mut self, me: usize, loc: usize, ord: Ordering) -> u64 {
        let latest = self.locations[loc].history.len() - 1;
        let acquire = !matches!(ord, Ordering::Relaxed);
        let spun = std::mem::take(&mut self.threads[me].just_spun);
        let idx = if spun || matches!(ord, Ordering::SeqCst) {
            latest
        } else {
            let floor = self.floor(me, loc);
            floor + self.choose(latest - floor + 1)
        };
        self.observe(me, loc, idx.min(latest), acquire)
    }

    pub(crate) fn atomic_store(&mut self, me: usize, loc: usize, value: u64, ord: Ordering) {
        let release = !matches!(ord, Ordering::Relaxed);
        self.append_store(me, loc, value, release);
    }

    /// A read-modify-write: always operates on the latest store (RMW
    /// atomicity in modification order); acquire/release effects follow the
    /// ordering.
    pub(crate) fn atomic_rmw(
        &mut self,
        me: usize,
        loc: usize,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let latest = self.locations[loc].history.len() - 1;
        let acquire = matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst);
        let release = matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst);
        let old = self.observe(me, loc, latest, acquire);
        self.append_store(me, loc, f(old), release);
        old
    }

    pub(crate) fn atomic_cas(
        &mut self,
        me: usize,
        loc: usize,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let latest = self.locations[loc].history.len() - 1;
        let v = self.locations[loc].history[latest].value;
        if v == current {
            Ok(self.atomic_rmw(me, loc, success, |_| new))
        } else {
            let acquire = !matches!(failure, Ordering::Relaxed);
            Err(self.observe(me, loc, latest, acquire))
        }
    }

    /// A non-atomic read: it must be uniquely determined — if more than one
    /// store is observable (the thread's floor is below the latest store),
    /// the read is unsynchronized and the run fails as a data race.
    pub(crate) fn cell_read(&mut self, me: usize, loc: usize) -> Result<usize, String> {
        let latest = self.locations[loc].history.len() - 1;
        let floor = self.floor(me, loc);
        if floor < latest {
            return Err(format!(
                "data race: non-atomic read may observe {} different stores (floor {floor}, latest {latest})",
                latest - floor + 1
            ));
        }
        self.observe(me, loc, latest, false);
        Ok(latest)
    }

    pub(crate) fn cell_write(&mut self, me: usize, loc: usize) -> usize {
        let idx = self.locations[loc].history.len();
        self.append_store(me, loc, idx as u64, false);
        idx
    }

    // -- mutexes -----------------------------------------------------------

    pub(crate) fn register_mutex(&mut self) -> usize {
        let loc = self.register_loc(0);
        self.mutexes.push(MutexSt { holder: None, loc });
        self.mutexes.len() - 1
    }

    pub(crate) fn mutex_try_acquire(&mut self, me: usize, m: usize) -> StepResult<()> {
        match self.mutexes[m].holder {
            None => {
                self.mutexes[m].holder = Some(me);
                let loc = self.mutexes[m].loc;
                let latest = self.locations[loc].history.len() - 1;
                self.observe(me, loc, latest, true);
                StepResult::Ready(())
            }
            Some(_) => StepResult::Block(Block::OnMutex(m)),
        }
    }

    fn mutex_release(&mut self, me: usize, m: usize) {
        debug_assert_eq!(self.mutexes[m].holder, Some(me));
        self.mutexes[m].holder = None;
        let loc = self.mutexes[m].loc;
        self.append_store(me, loc, 0, true);
        for t in &mut self.threads {
            if t.status == Status::Blocked(Block::OnMutex(m)) {
                t.status = Status::Runnable;
            }
        }
    }

    pub(crate) fn join_try(&mut self, me: usize, target: usize) -> StepResult<()> {
        if self.threads[target].status == Status::Finished {
            // Joining synchronizes with everything the child observed.
            let child_seen = self.threads[target].seen.clone();
            let th = &mut self.threads[me];
            for (l, i) in child_seen {
                let f = th.seen.entry(l).or_insert(0);
                *f = (*f).max(i);
            }
            StepResult::Ready(())
        } else {
            StepResult::Block(Block::OnJoin(target))
        }
    }
}

/// The per-run scheduler shared by every model thread of one schedule.
pub(crate) struct Scheduler {
    /// Unique id of this run; locations registered under an older uid are
    /// re-registered lazily, which gives every schedule fresh state.
    pub(crate) uid: u64,
    inner: Mutex<RunState>,
    cv: Condvar,
}

static NEXT_UID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

fn relock<'a>(
    g: Result<MutexGuard<'a, RunState>, PoisonError<MutexGuard<'a, RunState>>>,
) -> MutexGuard<'a, RunState> {
    g.unwrap_or_else(PoisonError::into_inner)
}

impl Scheduler {
    pub(crate) fn new(
        preemption_bound: u32,
        max_ops: usize,
        prune: bool,
        prefix: Vec<Choice>,
        visited: HashMap<u64, u32>,
    ) -> Self {
        Scheduler {
            uid: NEXT_UID.fetch_add(1, Ordering::SeqCst),
            inner: Mutex::new(RunState {
                max_ops,
                prune,
                prefix,
                trace: Vec::new(),
                threads: Vec::new(),
                locations: Vec::new(),
                mutexes: Vec::new(),
                active: 0,
                alive: 0,
                preemptions_left: preemption_bound,
                ops: 0,
                violation: None,
                abort: false,
                events: Vec::new(),
                visited,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, RunState> {
        relock(self.inner.lock())
    }

    fn abort_unwind(&self) -> ! {
        self.cv.notify_all();
        std::panic::panic_any(ModelAbort)
    }

    /// Registers the root thread (id 0) as active.
    pub(crate) fn register_root(&self) -> usize {
        let mut g = self.lock();
        g.threads.push(ThreadSt {
            status: Status::Runnable,
            seen: HashMap::new(),
            local_hash: 0,
            just_spun: false,
        });
        g.alive = 1;
        0
    }

    /// Registers a child thread spawned by `parent`; the child inherits the
    /// parent's coherence floors (spawning is a release/acquire edge).
    pub(crate) fn register_child(&self, parent: usize) -> usize {
        let mut g = self.lock();
        let seen = g.threads[parent].seen.clone();
        g.threads.push(ThreadSt {
            status: Status::Runnable,
            seen,
            local_hash: 0,
            just_spun: false,
        });
        g.alive += 1;
        g.threads.len() - 1
    }

    /// Parks a freshly spawned thread until it is scheduled for the first
    /// time.
    pub(crate) fn first_wait(&self, me: usize) {
        let mut g = self.lock();
        while g.active != me && !g.abort {
            g = relock(self.cv.wait(g));
        }
        if g.abort {
            drop(g);
            self.abort_unwind();
        }
    }

    /// One decision point: schedule, wait for the token, then perform the
    /// announced operation (retrying after blocking). `forced_switch` is the
    /// spin/yield hint. Returns the operation's result.
    pub(crate) fn step<R>(
        &self,
        me: usize,
        forced_switch: bool,
        describe: impl Fn(&R) -> String,
        mut perform: impl FnMut(&mut RunState, usize) -> StepResult<R>,
    ) -> R {
        let mut g = self.lock();
        if g.abort {
            drop(g);
            self.abort_unwind();
        }
        g.ops += 1;
        if g.ops > g.max_ops {
            let cap = g.max_ops;
            g.record_violation(
                me,
                format!("run exceeded {cap} operations — livelock or unbounded loop"),
            );
            drop(g);
            self.abort_unwind();
        }
        g.schedule(me, forced_switch);
        self.cv.notify_all();
        loop {
            while !(g.abort || (g.active == me && g.threads[me].status == Status::Runnable)) {
                g = relock(self.cv.wait(g));
            }
            if g.abort {
                drop(g);
                self.abort_unwind();
            }
            match perform(&mut g, me) {
                StepResult::Ready(r) => {
                    g.log(me, || describe(&r));
                    return r;
                }
                StepResult::Violation(msg) => {
                    g.record_violation(me, msg);
                    drop(g);
                    self.abort_unwind();
                }
                StepResult::Block(reason) => {
                    g.threads[me].status = Status::Blocked(reason);
                    g.schedule_unblocked(me);
                    self.cv.notify_all();
                    if g.abort {
                        drop(g);
                        self.abort_unwind();
                    }
                }
            }
        }
    }

    /// Releases a model mutex (guard drop) — a state change, not a decision
    /// point: interleavings after the release are covered by the holder's
    /// next decision.
    pub(crate) fn mutex_unlock(&self, me: usize, m: usize) {
        let mut g = self.lock();
        if g.abort {
            return; // unwinding guards must not re-panic
        }
        g.mutex_release(me, m);
        g.log(me, || format!("unlock m{m}"));
        self.cv.notify_all();
    }

    /// Marks `me` finished; wakes joiners, hands the token on, detects
    /// deadlocks, and records a violation if `panic_msg` is a real panic.
    pub(crate) fn thread_exit(&self, me: usize, panic_msg: Option<String>) {
        let mut g = self.lock();
        g.threads[me].status = Status::Finished;
        g.alive -= 1;
        if let Some(msg) = panic_msg {
            g.record_violation(me, msg);
        } else if !g.abort {
            for t in &mut g.threads {
                if t.status == Status::Blocked(Block::OnJoin(me)) {
                    t.status = Status::Runnable;
                }
            }
            g.log(me, || "exit".to_string());
            g.schedule_unblocked(me);
        }
        self.cv.notify_all();
    }

    /// Blocks the controller until every model thread has exited.
    pub(crate) fn wait_done(&self) {
        let mut g = self.lock();
        while g.alive > 0 {
            g = relock(self.cv.wait(g));
        }
    }

    /// Harvests the run's results: decision trace, violation, visited set.
    pub(crate) fn take_results(&self) -> (Vec<Choice>, Option<Violation>, HashMap<u64, u32>) {
        let mut g = self.lock();
        (std::mem::take(&mut g.trace), g.violation.take(), std::mem::take(&mut g.visited))
    }

    /// Runs `f` with the state locked — used by the sync shims for
    /// registration (the caller must hold the token).
    pub(crate) fn with_state<R>(&self, f: impl FnOnce(&mut RunState) -> R) -> R {
        f(&mut self.lock())
    }
}
