//! `nm-model` — a loom-lite bounded interleaving explorer for the
//! workspace's hand-rolled lock-free protocols (the left-right
//! `shims/arc-swap` cell, `ClassifierHandle` pin/publish, `ShardEpoch`
//! publication).
//!
//! [`explore`] runs a closure under a DFS over thread schedules: every
//! model operation (virtual atomic access, [`cell::RaceCell`] access,
//! mutex acquire, spawn/join, spin) is a decision point where the scheduler
//! picks which thread runs next, bounded by a preemption budget and pruned
//! by a state fingerprint. Within one schedule exactly one thread runs at a
//! time, so user code needs no real synchronization to be explored safely.
//!
//! # Memory model
//!
//! Schedules are sequentially consistent *per location*, with explicit
//! acquire/release edge tracking that makes ordering bugs observable:
//!
//! * every location keeps its full store history for the run; a `Release`
//!   store attaches a message (the writer's coherence floors), an
//!   `Acquire` load of that store joins it;
//! * `Relaxed`/`Acquire` loads branch over **every** store at or above the
//!   reader's floor — a missing release/acquire edge lets a reader observe
//!   stale values, which is exactly how a weakened ordering breaks an
//!   invariant here;
//! * `SeqCst` loads and all read-modify-writes read the latest store in
//!   modification order (stricter than C++ for loads, per-location only);
//! * non-atomic [`cell::RaceCell`] reads must be uniquely determined — if
//!   the reader's floor is below the latest store the read is flagged as a
//!   data race and the schedule fails.
//!
//! # What this does **not** cover
//!
//! * weak-memory reorderings beyond missing acquire/release edges (no store
//!   buffering: two SeqCst loads never both see stale values à la the
//!   classic store-buffer litmus test);
//! * schedules needing more preemptions than the bound
//!   (`NM_MODEL_PREEMPTIONS`, default 2);
//! * runs past the schedule cap (`NM_MODEL_MAX_SCHEDULES`) — [`Outcome`]
//!   reports whether exploration was exhaustive.
//!
//! Outside [`explore`], every virtual primitive delegates to its `std`
//! counterpart, so crates built with `--cfg nm_model` behave normally when
//! not under the checker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Once};

mod scheduler;

pub mod cell;
pub mod sync;
pub mod thread;

pub use scheduler::Violation;

use scheduler::{Choice, ModelAbort, Scheduler};

/// Scheduling hints.
pub mod hint {
    use crate::ctx;
    use crate::scheduler::StepResult;

    /// Mirrors `std::hint::spin_loop`. Under exploration it forces the
    /// scheduler to run a *different* runnable thread when one exists (at
    /// no preemption cost), so busy-wait loops make progress instead of
    /// spinning forever in one schedule.
    pub fn spin_loop() {
        match ctx() {
            None => std::hint::spin_loop(),
            Some(c) => {
                c.sched.step(
                    c.tid,
                    true,
                    |_: &()| "spin".to_string(),
                    |g, me| {
                        g.mark_spun(me);
                        StepResult::Ready(())
                    },
                );
            }
        }
    }
}

/// The current thread's model context (set while it runs under a
/// scheduler).
#[derive(Clone)]
pub(crate) struct Ctx {
    pub(crate) sched: Arc<Scheduler>,
    pub(crate) tid: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn ctx() -> Option<Ctx> {
    CTX.with(|c| c.borrow().clone())
}

/// Exploration limits; read from the environment by [`Config::from_env`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Stop after this many schedules even if not exhaustive
    /// (`NM_MODEL_MAX_SCHEDULES`, default 20 000).
    pub max_schedules: usize,
    /// Preemption budget per schedule (`NM_MODEL_PREEMPTIONS`, default 2).
    pub preemption_bound: u32,
    /// Per-schedule operation cap; exceeding it fails the schedule as a
    /// livelock (`NM_MODEL_MAX_OPS`, default 50 000).
    pub max_ops_per_run: usize,
    /// State-fingerprint pruning (disable with `NM_MODEL_NO_PRUNE=1`).
    pub prune: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config { max_schedules: 20_000, preemption_bound: 2, max_ops_per_run: 50_000, prune: true }
    }
}

impl Config {
    /// The default limits overridden by `NM_MODEL_*` environment variables.
    pub fn from_env() -> Self {
        fn num<T: std::str::FromStr>(key: &str, default: T) -> T {
            std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
        }
        let d = Config::default();
        Config {
            max_schedules: num("NM_MODEL_MAX_SCHEDULES", d.max_schedules),
            preemption_bound: num("NM_MODEL_PREEMPTIONS", d.preemption_bound),
            max_ops_per_run: num("NM_MODEL_MAX_OPS", d.max_ops_per_run),
            prune: std::env::var("NM_MODEL_NO_PRUNE").is_err(),
        }
    }
}

/// Result of an exploration.
#[derive(Debug)]
pub struct Outcome {
    /// Schedules executed.
    pub schedules: usize,
    /// Whether every schedule within the preemption bound was covered
    /// (false when capped by `max_schedules` or stopped by a violation).
    pub complete: bool,
    /// The first violating schedule found, if any.
    pub violation: Option<Violation>,
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "thread panicked".to_string()
    }
}

/// Suppress default panic output for model threads: their panics are
/// reported through [`Violation`] instead.
fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if ctx().is_none() {
                prev(info);
            }
        }));
    });
}

/// Body shared by the root thread and every spawned model thread.
pub(crate) fn run_model_thread(sched: Arc<Scheduler>, tid: usize, body: impl FnOnce()) {
    CTX.with(|c| *c.borrow_mut() = Some(Ctx { sched: sched.clone(), tid }));
    let r = catch_unwind(AssertUnwindSafe(|| {
        sched.first_wait(tid);
        body();
    }));
    CTX.with(|c| *c.borrow_mut() = None);
    let msg = match r {
        Ok(()) => None,
        Err(p) if p.downcast_ref::<ModelAbort>().is_some() => None,
        Err(p) => Some(panic_message(p.as_ref())),
    };
    sched.thread_exit(tid, msg);
}

/// The next DFS prefix: deepest decision with an unexplored branch,
/// incremented; `None` when the tree is exhausted.
fn next_prefix(trace: &[Choice]) -> Option<Vec<Choice>> {
    for i in (0..trace.len()).rev() {
        if trace[i].chosen + 1 < trace[i].n {
            let mut p = trace[..=i].to_vec();
            p[i].chosen += 1;
            return Some(p);
        }
    }
    None
}

/// Runs `f` once per schedule until the DFS is exhausted, a violation is
/// found, or `cfg.max_schedules` is reached.
pub fn explore<F>(cfg: &Config, f: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(ctx().is_none(), "nested explore() is not supported");
    install_panic_hook();
    let f = Arc::new(f);
    let mut prefix: Vec<Choice> = Vec::new();
    let mut visited: HashMap<u64, u32> = HashMap::new();
    let mut schedules = 0usize;
    loop {
        let sched = Arc::new(Scheduler::new(
            cfg.preemption_bound,
            cfg.max_ops_per_run,
            cfg.prune,
            std::mem::take(&mut prefix),
            std::mem::take(&mut visited),
        ));
        let tid = sched.register_root();
        let s2 = sched.clone();
        let f2 = f.clone();
        let root = std::thread::spawn(move || run_model_thread(s2, tid, move || f2()));
        sched.wait_done();
        let _ = root.join();
        schedules += 1;
        let (trace, violation, vis) = sched.take_results();
        visited = vis;
        if violation.is_some() {
            return Outcome { schedules, complete: false, violation };
        }
        match next_prefix(&trace) {
            None => return Outcome { schedules, complete: true, violation: None },
            Some(p) => prefix = p,
        }
        if schedules >= cfg.max_schedules.max(1) {
            return Outcome { schedules, complete: false, violation: None };
        }
    }
}

/// Explores `f` under [`Config::from_env`] and panics (with the violating
/// trace) if any schedule fails. Returns the outcome so callers can also
/// assert exhaustiveness.
pub fn check<F>(name: &str, f: F) -> Outcome
where
    F: Fn() + Send + Sync + 'static,
{
    let out = explore(&Config::from_env(), f);
    if let Some(v) = &out.violation {
        panic!(
            "model check '{name}' failed after {} schedule(s): {}\ntrace:\n  {}",
            out.schedules,
            v.message,
            v.trace.join("\n  ")
        );
    }
    out
}

/// Explores `f` expecting it to fail; returns the violation. Used by the
/// seeded-mutation "teeth" tests: a checker that finds nothing wrong with a
/// deliberately broken protocol is itself broken.
pub fn find_violation<F>(f: F) -> Option<Violation>
where
    F: Fn() + Send + Sync + 'static,
{
    explore(&Config::from_env(), f).violation
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use super::*;

    fn quick(max_schedules: usize) -> Config {
        Config { max_schedules, ..Config::default() }
    }

    #[test]
    fn counter_increments_are_atomic() {
        let out = explore(&quick(10_000), || {
            let n = Arc::new(AtomicUsize::new(0));
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let n = n.clone();
                    thread::spawn(move || {
                        n.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.complete, "expected exhaustive exploration");
        assert!(out.schedules > 1, "expected more than one interleaving");
    }

    #[test]
    fn message_passing_with_release_acquire_passes() {
        let out = explore(&quick(10_000), || {
            let data = Arc::new(cell::RaceCell::new(0u32));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let w = thread::spawn(move || {
                d2.set(42);
                f2.store(1, Ordering::Release);
            });
            let (d3, f3) = (data.clone(), flag.clone());
            let r = thread::spawn(move || {
                if f3.load(Ordering::Acquire) == 1 {
                    assert_eq!(d3.get(), 42, "acquire read must see the published data");
                }
            });
            w.join();
            r.join();
        });
        assert!(out.violation.is_none(), "{:?}", out.violation);
        assert!(out.complete);
    }

    #[test]
    fn message_passing_with_relaxed_flag_is_caught() {
        // The release edge removed: the reader can see flag == 1 while its
        // coherence floor for `data` is still at the initial store, so the
        // non-atomic read races. This is the semantics the seeded-mutation
        // teeth tests rely on.
        let v = find_violation(|| {
            let data = Arc::new(cell::RaceCell::new(0u32));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let w = thread::spawn(move || {
                d2.set(42);
                f2.store(1, Ordering::Relaxed); // BUG: no release edge
            });
            let (d3, f3) = (data.clone(), flag.clone());
            let r = thread::spawn(move || {
                if f3.load(Ordering::Acquire) == 1 {
                    let _ = d3.get();
                }
            });
            w.join();
            r.join();
        });
        let v = v.expect("the relaxed publication must be detected");
        assert!(v.message.contains("data race"), "unexpected violation: {}", v.message);
    }

    #[test]
    fn ab_ba_deadlock_is_detected() {
        let v = find_violation(|| {
            let a = Arc::new(sync::Mutex::new(()));
            let b = Arc::new(sync::Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let t = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            {
                let _gb = b.lock();
                let _ga = a.lock();
            }
            t.join();
        });
        let v = v.expect("AB-BA ordering must deadlock in some schedule");
        assert!(v.message.contains("deadlock"), "unexpected violation: {}", v.message);
    }

    #[test]
    fn spin_wait_terminates_under_forced_yield() {
        let out = explore(&quick(10_000), || {
            let flag = Arc::new(AtomicU64::new(0));
            let f2 = flag.clone();
            let t = thread::spawn(move || {
                f2.store(1, Ordering::Release);
            });
            while flag.load(Ordering::Acquire) != 1 {
                hint::spin_loop();
            }
            t.join();
        });
        assert!(out.violation.is_none(), "{:?}", out.violation);
    }

    #[test]
    fn stale_relaxed_loads_branch_over_history() {
        // A Relaxed load may observe any store at or above its floor; with
        // no synchronization at all, reading 0 after the writer stored 1 is
        // a legal (and explored) outcome — so asserting the fresh value
        // must fail in some schedule.
        let v = find_violation(|| {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = x.clone();
            let t = thread::spawn(move || x2.store(1, Ordering::Relaxed));
            t.join();
            // After join the child's own writes are visible (join edge),
            // so re-read through a second thread with no such edge.
            let x3 = x.clone();
            let r = thread::spawn(move || x3.load(Ordering::Relaxed));
            let _ = r.join();
        });
        assert!(v.is_none(), "join inheritance should make this pass: {v:?}");

        let v = find_violation(|| {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = x.clone();
            let t = thread::spawn(move || x2.store(1, Ordering::Relaxed));
            let got = x.load(Ordering::Relaxed);
            t.join();
            // `got` may legitimately be 0 or 1; claiming it is always 1
            // must be refuted by the explorer.
            assert_eq!(got, 1);
        });
        assert!(v.is_some(), "a stale relaxed read should be explored");
    }

    #[test]
    fn outside_exploration_primitives_delegate_to_std() {
        let n = AtomicUsize::new(3);
        assert_eq!(n.fetch_add(2, Ordering::SeqCst), 3);
        assert_eq!(n.load(Ordering::SeqCst), 5);
        let c = cell::RaceCell::new(7u8);
        assert_eq!(c.replace(9), 7);
        assert_eq!(c.get(), 9);
        let m = sync::Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let h = thread::spawn(|| 11usize);
        assert_eq!(h.join(), 11);
    }
}
