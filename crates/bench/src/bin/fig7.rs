//! Figure 7 — throughput over time under a sustained update stream, for
//! fast vs slow retraining, plus the §3.9 sustained-rate estimate.
//!
//! The paper's illustration: retraining every τ restores throughput; the
//! slower the training, the deeper the valleys. §3.9 estimates NuevoMatch
//! sustains ≈4K updates/s on 500K rules at about half the update-free
//! speedup with minute-long training.

use nm_analysis::{sustained_update_rate, throughput_over_time, UpdateModel};

fn main() {
    let base = UpdateModel {
        rules: 500_000.0,
        update_rate: 4_000.0,
        retrain_period: 120.0,
        train_time: 60.0,
        fresh_throughput: 1.0,
        remainder_throughput: 1.0 / 2.6, // tm-scale update-free speedup
    };
    println!(
        "Figure 7: normalized throughput over time (u = 4K updates/s, 500K rules, tau = 120s)\n"
    );
    println!(
        "{:>8}  {:>14}  {:>14}  {:>14}",
        "t (s)", "fast (T=10s)", "paper-ish (60s)", "slow (T=110s)"
    );
    let fast = UpdateModel { train_time: 10.0, ..base };
    let slow = UpdateModel { train_time: 110.0, ..base };
    let horizon = 600.0;
    let pts = 25;
    let a = throughput_over_time(&fast, horizon, pts);
    let b = throughput_over_time(&base, horizon, pts);
    let c = throughput_over_time(&slow, horizon, pts);
    for i in 0..pts {
        println!("{:>8.0}  {:>14.3}  {:>14.3}  {:>14.3}", a[i].0, a[i].1, b[i].1, c[i].1);
    }

    let rate = sustained_update_rate(500_000.0, 120.0, 60.0, 1.0, 1.0 / 2.6, 0.75);
    println!(
        "\nSustained update rate at ~half the update-free speedup: {rate:.0} updates/s \
         (paper estimate: ~4,000/s)"
    );
}
