//! §5.2.1 — performance under L3 cache contention.
//!
//! Paper: restricting L3 to 1.5MB costs CutSplit ~50% of its throughput but
//! NuevoMatch (w/ cs remainder) only ~30%, because nm's hot index fits the
//! private caches. Intel CAT is substituted by a cache-thrasher antagonist
//! thread (DESIGN.md §2).

use nm_analysis::{CacheThrasher, Table};
use nm_bench::{assert_same_results, measure_seq, nm_cs, scale, suite};
use nm_cutsplit::CutSplit;
use nm_trace::uniform_trace;

fn main() {
    let s = scale();
    let n = *s.sizes.last().unwrap();
    let (name, set) = suite(n, &s).into_iter().next().expect("one set");
    println!("Section 5.2.1 — L3 contention on {name}-{n}, cs vs nm w/ cs\n");

    let cs = CutSplit::build(&set);
    let nm = nm_cs(&set);
    let trace = uniform_trace(&set, s.trace_len, 0x5c21);

    let (cs_free, _, a) = measure_seq(&cs, &trace, s.warmups);
    let (nm_free, _, b) = measure_seq(&nm, &trace, s.warmups);
    assert_same_results("cs", a, "nm", b);

    let thrasher = CacheThrasher::start(12); // sweep ~12MB to evict L3
    let (cs_thr, _, _) = measure_seq(&cs, &trace, s.warmups);
    let (nm_thr, _, _) = measure_seq(&nm, &trace, s.warmups);
    thrasher.stop();

    let mut table = Table::new(&["engine", "free pps", "contended pps", "retained", "paper"]);
    table.row(vec![
        "cs".into(),
        format!("{cs_free:.2e}"),
        format!("{cs_thr:.2e}"),
        format!("{:.0}%", 100.0 * cs_thr / cs_free),
        "~50%".into(),
    ]);
    table.row(vec![
        "nm w/ cs".into(),
        format!("{nm_free:.2e}"),
        format!("{nm_thr:.2e}"),
        format!("{:.0}%", 100.0 * nm_thr / nm_free),
        "~70%".into(),
    ]);
    print!("{}", table.render());
    println!(
        "\nSpeedup free: {:.2}x, contended: {:.2}x (paper: contention increases the speedup).",
        nm_free / cs_free,
        nm_thr / cs_thr
    );
}
