//! Figure 13 — memory footprint: each baseline alone vs NuevoMatch's
//! remainder + RQ-RMI when that baseline indexes the remainder.
//!
//! Paper (500K geomean): NuevoMatch compresses the index 4.9× / 8× / 82× vs
//! CutSplit / NeuroCuts / TupleMerge; the remainder fits L1/L2 while the
//! stand-alone indexes spill to L3. Footprints count index structures only
//! (rules excluded) — §5.2.1.

use nm_analysis::{geomean, Table};
use nm_bench::{nc_config, nm_cs, nm_nc, nm_tm, scale, suite};
use nm_common::memsize::human_bytes;
use nm_common::Classifier;
use nm_cutsplit::CutSplit;
use nm_neurocuts::NeuroCuts;
use nm_tuplemerge::TupleMerge;

fn main() {
    let s = scale();
    println!("Figure 13 — index memory, geomean over {} apps per size\n", s.apps);
    let mut table = Table::new(&[
        "rules",
        "cs",
        "nm-rem+rmi (cs)",
        "nc",
        "nm-rem+rmi (nc)",
        "tm",
        "nm-rem+rmi (tm)",
        "x-cs",
        "x-nc",
        "x-tm",
    ]);

    for &n in &s.sizes {
        let mut bytes: Vec<Vec<f64>> = vec![Vec::new(); 6];
        for (_, set) in suite(n, &s) {
            let cs = CutSplit::build(&set);
            let nmcs = nm_cs(&set);
            let nc = NeuroCuts::with_config(&set, nc_config(!s.full));
            let nmnc = nm_nc(&set, !s.full);
            let tm = TupleMerge::build(&set);
            let nmtm = nm_tm(&set);
            for (i, b) in [
                cs.memory_bytes(),
                nmcs.memory_bytes(),
                nc.memory_bytes(),
                nmnc.memory_bytes(),
                tm.memory_bytes(),
                nmtm.memory_bytes(),
            ]
            .into_iter()
            .enumerate()
            {
                bytes[i].push(b as f64);
            }
        }
        let gm: Vec<f64> = bytes.iter().map(|v| geomean(v)).collect();
        table.row(vec![
            format!("{n}"),
            human_bytes(gm[0] as usize),
            human_bytes(gm[1] as usize),
            human_bytes(gm[2] as usize),
            human_bytes(gm[3] as usize),
            human_bytes(gm[4] as usize),
            human_bytes(gm[5] as usize),
            format!("{:.1}x", gm[0] / gm[1]),
            format!("{:.1}x", gm[2] / gm[3]),
            format!("{:.1}x", gm[4] / gm[5]),
        ]);
    }
    print!("{}", table.render());
    println!("\nPaper 500K compression: 4.9x (cs), 8x (nc), 82x (tm). L1 = 32KB, L2 = 1MB.");
}
