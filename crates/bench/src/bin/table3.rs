//! Table 3 — throughput and single-iSet coverage vs the fraction of
//! low-diversity rules blended into a ClassBench set.
//!
//! Paper (500K, remainder = TupleMerge):
//! 70% low-div → 25% coverage, 1.07× · 50% → 50%, 1.14× · 30% → 70%, 1.60×.
//! The shape: the partitioner segregates low-diversity rules into the
//! remainder (coverage ≈ 1 − fraction), and speedup grows with coverage.

use nm_analysis::Table;
use nm_bench::{measure_seq, nm_tm, scale};
use nm_classbench::{blend_low_diversity, generate, AppKind};
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;

fn main() {
    let s = scale();
    let n = *s.sizes.last().unwrap();
    let base = generate(AppKind::Acl, n, 0x7ab1e3);
    println!("Table 3: low-diversity blends over a {n}-rule ACL set, remainder = tm\n");
    let mut table =
        Table::new(&["% low-diversity", "% coverage (1 iSet)", "speedup (throughput)", "paper"]);

    for &(frac, paper) in &[(0.7, "25% / 1.07x"), (0.5, "50% / 1.14x"), (0.3, "70% / 1.60x")] {
        let blended = blend_low_diversity(&base, frac, 12, 0x10d1);
        let trace = uniform_trace(&blended, s.trace_len, 0x7ace);
        let tm = TupleMerge::build(&blended);
        let nm = nm_tm(&blended);
        let cov = nuevomatch::iset::coverage_curve(&blended, 1)[0];
        let (tm_pps, _, tm_sum) = measure_seq(&tm, &trace, s.warmups);
        let (nm_pps, _, nm_sum) = measure_seq(&nm, &trace, s.warmups);
        nm_bench::assert_same_results("tm", tm_sum, "nm", nm_sum);
        table.row(vec![
            format!("{:.0}%", frac * 100.0),
            format!("{:.0}%", cov * 100.0),
            format!("{:.2}x", nm_pps / tm_pps),
            paper.into(),
        ]);
    }
    print!("{}", table.render());
}
