//! Table 1 — submodel inference time by instruction set.
//!
//! Paper (Xeon Silver 4116): Serial(1) 126 ns, SSE(4) 62 ns, AVX(8) 49 ns.
//! The shape to reproduce: wider vectors → faster single-submodel inference.
//!
//! Honesty note for modern toolchains: rustc/LLVM auto-vectorises the
//! "serial" 8-neuron loop (it if-converts the ReLU branch and emits SIMD),
//! so the 2016-era 2.6× serial→AVX gap largely collapses — the interesting
//! comparison left is SSE vs AVX and the absolute tens-of-ns cost per
//! inference, which this binary measures with a dependent chain (latency,
//! like a staged RQ-RMI walk, not pipelined throughput).

use nm_analysis::Table;
use nm_nn::Mlp;
use nuevomatch::rqrmi::{detect, Isa, Kernel};
use std::hint::black_box;
use std::time::Instant;

fn time_isa(kernel: &Kernel, isa: Isa) -> f64 {
    const ITERS: usize = 2_000_000;
    // Warm up.
    black_box(kernel.latency_chain(0.37, 10_000, isa));
    let t0 = Instant::now();
    black_box(kernel.latency_chain(0.37, ITERS, isa));
    t0.elapsed().as_nanos() as f64 / ITERS as f64
}

fn time_isa_batch8(kernel: &Kernel, isa: Isa) -> f64 {
    const ITERS: usize = 1_000_000;
    black_box(kernel.latency_chain_batch8(0.37, 10_000, isa));
    let t0 = Instant::now();
    black_box(kernel.latency_chain_batch8(0.37, ITERS, isa));
    // Per-packet cost: 8 packets per chained group.
    t0.elapsed().as_nanos() as f64 / (8 * ITERS) as f64
}

fn main() {
    let net = Mlp::random(8, 42);
    let kernel = Kernel::from_mlp(&net);

    let mut table = Table::new(&[
        "Instruction set (width)",
        "Inference time (ns)",
        "batch8 (ns/packet)",
        "paper (ns)",
    ]);
    // The FMA row is this repo's addition: the paper's 2016-era Xeon had no
    // AVX2/FMA, so Table 1 stops at AVX(8). The batch8 column is the
    // cross-packet kernel (one lane per packet; see rqrmi::simd module docs).
    let rows: &[(&str, Isa, &str)] = &[
        ("Serial(1)", Isa::Scalar, "126"),
        ("SSE(4)", Isa::Sse, "62"),
        ("AVX(8)", Isa::Avx, "49"),
        ("AVX2+FMA(8)", Isa::AvxFma, "-"),
    ];
    let best = detect();
    println!("Table 1: submodel inference vs vectorization (detected best: {best:?})\n");
    for &(name, isa, paper) in rows {
        if !isa.available() {
            table.row(vec![name.into(), format!("n/a (no {isa:?})"), "-".into(), paper.into()]);
            continue;
        }
        let ns = time_isa(&kernel, isa);
        let ns8 = time_isa_batch8(&kernel, isa);
        table.row(vec![name.into(), format!("{ns:.1}"), format!("{ns8:.1}"), paper.into()]);
    }
    print!("{}", table.render());
    println!(
        "\nNote: LLVM auto-vectorises the 'serial' loop on modern rustc, so the paper's\n\
         serial/SIMD gap narrows; see the module docs and EXPERIMENTS.md."
    );
}
