//! Batch-size sweep — throughput of the batched lookup pipeline.
//!
//! The paper batches 128 packets for parallelization (§5.1); this binary
//! quantifies what batching buys on a single core: cross-packet AVX
//! inference in stage 0, software-prefetched secondary-search windows, and
//! amortised (monomorphized) dispatch. Sweeps batch sizes 1/8/32/128/512
//! through [`nuevomatch::system::parallel::run_batched`] for NuevoMatch and
//! a baseline engine, on the quick-scale workload (`NM_SCALE=full` for the
//! paper-scale one — see `nm_bench::scale`).
//!
//! Every row's checksum is asserted against the sequential per-key
//! reference, so the sweep double-checks batch/scalar equivalence on the
//! measured trace. Machine-readable `BENCH {...}` json lines accompany the
//! table for the tracking harness.

use nm_analysis::{geomean, Table};
use nm_bench::{measure_seq, nm_tm, scale, suite};
use nm_common::Classifier;
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;
use nuevomatch::system::parallel::run_batched;

const BATCHES: &[usize] = &[1, 8, 32, 128, 512];

#[allow(clippy::too_many_arguments)]
fn sweep(
    name: &str,
    set_name: &str,
    rules: usize,
    c: &dyn Classifier,
    trace: &nm_common::TraceBuf,
    warmups: usize,
    table: &mut Table,
) -> f64 {
    // Sequential per-key reference: the honest batch-size-1 "before" point.
    let (seq_pps, _, seq_sum) = measure_seq(c, trace, warmups);
    let mut row = vec![set_name.to_string(), name.to_string(), format!("{:.2}", seq_pps / 1e6)];
    let mut pps_at = Vec::new();
    for &b in BATCHES {
        for _ in 0..warmups {
            let _ = run_batched(c, trace, b);
        }
        let stats = run_batched(c, trace, b);
        assert_eq!(
            stats.checksum, seq_sum,
            "{name}/{set_name}: batch {b} diverged from the sequential reference"
        );
        pps_at.push((b, stats.pps));
        row.push(format!("{:.2}", stats.pps / 1e6));
    }
    let b1 = pps_at[0].1;
    let b128 = pps_at.iter().find(|&&(b, _)| b == 128).map_or(b1, |&(_, p)| p);
    row.push(format!("{:.2}x", b128 / b1));
    table.row(row);
    for &(b, pps) in &pps_at {
        println!(
            "BENCH {{\"bench\":\"batch\",\"engine\":\"{name}\",\"app\":\"{set_name}\",\
             \"rules\":{rules},\"batch\":{b},\"mpps\":{:.4},\"speedup_vs_b1\":{:.3}}}",
            pps / 1e6,
            pps / b1
        );
    }
    b128 / b1
}

fn main() {
    let s = scale();
    let n = *s.sizes.last().expect("scale has sizes");
    println!("=== Batch-size sweep — {n} rules, uniform traffic, single core ===");
    println!("(columns in Mpps; seq = per-key classify loop; speedup = batch 128 vs batch 1)\n");
    let mut table =
        Table::new(&["set", "engine", "seq", "b=1", "b=8", "b=32", "b=128", "b=512", "128/1"]);
    let mut nm_speedups = Vec::new();
    for (set_name, set) in suite(n, &s) {
        let trace = uniform_trace(&set, s.trace_len, 0xba7c4 + n as u64);
        let nm = nm_tm(&set);
        nm_speedups.push(sweep("nm/tm", &set_name, n, &nm, &trace, s.warmups, &mut table));
        let tm = TupleMerge::build(&set);
        sweep("tm", &set_name, n, &tm, &trace, s.warmups, &mut table);
    }
    print!("{}", table.render());
    let gm = geomean(&nm_speedups);
    println!("\nNuevoMatch batch-128 speedup over batch-1, geomean across apps: {gm:.2}x");
    println!(
        "BENCH {{\"bench\":\"batch\",\"engine\":\"nm/tm\",\"app\":\"geomean\",\"rules\":{n},\
         \"batch\":128,\"speedup_vs_b1\":{gm:.3}}}"
    );
    println!(
        "\nNuevoMatch gains come from cross-packet stage-0 AVX inference, prefetched\n\
         secondary-search windows, per-iSet batch sweeps (model stays in L1) and\n\
         batch-wide early termination against the remainder; the standalone\n\
         TupleMerge rows show its own table-major batched probe."
    );
}
