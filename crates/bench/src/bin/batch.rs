//! Batch-size sweep — throughput of the batched lookup pipeline.
//!
//! The paper batches 128 packets for parallelization (§5.1); this binary
//! quantifies what batching buys on a single core, for **every batched
//! engine**: NuevoMatch's phase pipeline (cross-packet AVX inference with
//! the divergent-leaf gather kernel, prefetched secondary-search windows,
//! batch-wide early termination), TupleMerge's table-major probe, and the
//! CutSplit/NeuroCuts level-synchronous tree descent. Sweeps batch sizes
//! 1/8/32/128/512 through
//! [`nuevomatch::system::parallel::run_batched`] on the quick-scale
//! workload (`NM_SCALE=full` for the paper-scale one — see
//! `nm_bench::scale`).
//!
//! Every row's checksum is asserted against the sequential per-key
//! reference, so the sweep double-checks batch/scalar equivalence on the
//! measured trace. A divergent-leaf microbench compares the transposed
//! gather kernel against the per-packet broadcast pass it replaced, at 1,
//! 2, 4 and 8 distinct leaves per 8-packet group (plus the shared-submodel
//! kernel at 1, the auto-selection fast path).
//!
//! Machine-readable `BENCH {...}` json lines accompany the tables, and the
//! whole sweep is written to a `BENCH_batch.json` artifact (path
//! overridable with `NM_BENCH_JSON`) that CI uploads — the perf trajectory
//! of the batched data plane over time. `NM_STRICT=1` turns the two
//! perf targets (tree engines ≥ 1.5x at batch 128 on fw; gather ≥
//! broadcast at ≥ 4 distinct leaves) into hard failures; checksum
//! mismatches always fail.

use nm_analysis::{geomean, Table};
use nm_bench::{measure_seq, nc_config, nm_tm, scale, suite};
use nm_common::Classifier;
use nm_cutsplit::CutSplit;
use nm_neurocuts::NeuroCuts;
use nm_nn::Mlp;
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;
use nuevomatch::rqrmi::{detect, leaf_chain_broadcast8, leaf_chain_gather8, Kernel, LeafSoa};
use nuevomatch::system::parallel::run_batched;

const BATCHES: &[usize] = &[1, 8, 32, 128, 512];

/// One engine × rule-set sweep outcome, kept for the JSON artifact.
struct SweepRow {
    engine: &'static str,
    app: String,
    seq_pps: f64,
    /// `(batch, pps)` per measured batch size.
    pps: Vec<(usize, f64)>,
}

impl SweepRow {
    fn pps_at(&self, batch: usize) -> f64 {
        self.pps.iter().find(|&&(b, _)| b == batch).map_or(0.0, |&(_, p)| p)
    }

    /// Batch-128 speedup over the per-key classify loop.
    fn speedup_128_vs_seq(&self) -> f64 {
        self.pps_at(128) / self.seq_pps.max(1e-9)
    }

    fn json(&self, rules: usize) -> String {
        let points: Vec<String> = self
            .pps
            .iter()
            .map(|&(b, p)| format!("{{\"batch\":{b},\"mpps\":{:.4}}}", p / 1e6))
            .collect();
        format!(
            "{{\"engine\":\"{}\",\"app\":\"{}\",\"rules\":{rules},\
             \"seq_mpps\":{:.4},\"speedup_128_vs_seq\":{:.3},\"points\":[{}]}}",
            self.engine,
            self.app,
            self.seq_pps / 1e6,
            self.speedup_128_vs_seq(),
            points.join(",")
        )
    }
}

/// Measured passes per point; the best is kept. The box this sweep runs on
/// is a shared single core, so any single pass can eat an unrelated
/// scheduling hiccup — best-of-k treats both sides of every ratio equally.
const PASSES: usize = 3;

fn sweep(
    engine: &'static str,
    app: &str,
    rules: usize,
    c: &dyn Classifier,
    trace: &nm_common::TraceBuf,
    warmups: usize,
    table: &mut Table,
) -> SweepRow {
    // Sequential per-key reference: the honest "before" point. All points
    // (seq + every batch size) are measured round-robin PASSES times so
    // machine drift between measurements lands on both sides of every
    // ratio; the best pass per point is kept.
    let (mut seq_pps, _, seq_sum) = measure_seq(c, trace, warmups);
    for &b in BATCHES {
        for _ in 0..warmups {
            let _ = run_batched(c, trace, b);
        }
    }
    let mut pps: Vec<(usize, f64)> = BATCHES.iter().map(|&b| (b, 0.0)).collect();
    for pass in 0..PASSES {
        if pass > 0 {
            seq_pps = seq_pps.max(measure_seq(c, trace, 0).0);
        }
        for (i, &b) in BATCHES.iter().enumerate() {
            let stats = run_batched(c, trace, b);
            assert_eq!(
                stats.checksum, seq_sum,
                "{engine}/{app}: batch {b} diverged from the sequential reference"
            );
            pps[i].1 = pps[i].1.max(stats.pps);
        }
    }
    let mut row = vec![app.to_string(), engine.to_string(), format!("{:.2}", seq_pps / 1e6)];
    for &(_, p) in &pps {
        row.push(format!("{:.2}", p / 1e6));
    }
    let out = SweepRow { engine, app: app.to_string(), seq_pps, pps };
    row.push(format!("{:.2}x", out.speedup_128_vs_seq()));
    table.row(row);
    for &(b, p) in &out.pps {
        println!(
            "BENCH {{\"bench\":\"batch\",\"engine\":\"{engine}\",\"app\":\"{app}\",\
             \"rules\":{rules},\"batch\":{b},\"mpps\":{:.4},\"speedup_vs_seq\":{:.3}}}",
            p / 1e6,
            p / seq_pps
        );
    }
    out
}

/// One divergent-leaf microbench point.
struct GatherPoint {
    distinct: usize,
    gather_ns: f64,
    broadcast_ns: f64,
    /// Shared-submodel kernel ns/packet; only meaningful at `distinct == 1`
    /// (the auto-selection fast path), `NaN` elsewhere.
    shared_ns: f64,
}

/// Times the divergent-leaf strategies against each other on a dependent
/// chain (the Table 1 methodology): `distinct` ∈ {1, 2, 4, 8} leaves per
/// 8-packet group, gather vs per-packet broadcast, plus the shared kernel
/// at 1 distinct leaf.
fn gather_microbench() -> Vec<GatherPoint> {
    const LEAVES: usize = 64;
    const ITERS: usize = 1_000_000;
    let isa = detect();
    let leaves: Vec<Kernel> =
        (0..LEAVES as u64).map(|s| Kernel::from_mlp(&Mlp::random(8, s ^ 0x9a7e))).collect();
    let soa = LeafSoa::from_kernels(&leaves);
    let mut points = Vec::new();
    for &distinct in &[1usize, 2, 4, 8] {
        // Spread the distinct leaves across the table so gathers hit
        // different cache lines, as divergent leaves do in a real model.
        let idx: [usize; 8] = std::array::from_fn(|l| (l % distinct) * (LEAVES / distinct));
        let time = |f: &dyn Fn(usize) -> f32| {
            let _ = f(ITERS / 10); // warm
            let t0 = std::time::Instant::now();
            let sink = f(ITERS);
            let dt = t0.elapsed().as_secs_f64();
            assert!(sink.is_finite());
            dt * 1e9 / (ITERS as f64 * 8.0) // ns per packet
        };
        let gather_ns = time(&|n| leaf_chain_gather8(&soa, &idx, 0.37, n, isa));
        let broadcast_ns = time(&|n| leaf_chain_broadcast8(&leaves, &idx, 0.37, n, isa));
        let shared_ns = if distinct == 1 {
            time(&|n| leaves[idx[0]].latency_chain_batch8(0.37, n, isa))
        } else {
            f64::NAN
        };
        points.push(GatherPoint { distinct, gather_ns, broadcast_ns, shared_ns });
    }
    points
}

fn main() {
    let s = scale();
    let n = *s.sizes.last().expect("scale has sizes");
    let strict = std::env::var("NM_STRICT").as_deref() == Ok("1");
    // Optional comma-separated filters, for focused reruns:
    // NM_APPS=fw1 NM_ENGINES=cs,nc cargo run --bin batch
    let want = |var: &str, name: &str| {
        std::env::var(var).map_or(true, |v| v.split(',').any(|w| w.trim() == name))
    };
    println!("=== Batch-size sweep — {n} rules, uniform traffic, single core ===");
    println!("(columns in Mpps; seq = per-key classify loop; speedup = batch 128 vs seq)\n");
    let mut table =
        Table::new(&["set", "engine", "seq", "b=1", "b=8", "b=32", "b=128", "b=512", "128/seq"]);
    let mut rows: Vec<SweepRow> = Vec::new();
    for (app, set) in suite(n, &s) {
        if !want("NM_APPS", &app) {
            continue;
        }
        let trace = uniform_trace(&set, s.trace_len, 0xba7c4 + n as u64);
        if want("NM_ENGINES", "nm/tm") {
            let nm = nm_tm(&set);
            rows.push(sweep("nm/tm", &app, n, &nm, &trace, s.warmups, &mut table));
        }
        if want("NM_ENGINES", "tm") {
            let tm = TupleMerge::build(&set);
            rows.push(sweep("tm", &app, n, &tm, &trace, s.warmups, &mut table));
        }
        if want("NM_ENGINES", "cs") {
            let cs = CutSplit::build(&set);
            rows.push(sweep("cs", &app, n, &cs, &trace, s.warmups, &mut table));
        }
        if want("NM_ENGINES", "nc") {
            let nc = NeuroCuts::with_config(&set, nc_config(!s.full));
            rows.push(sweep("nc", &app, n, &nc, &trace, s.warmups, &mut table));
        }
    }
    print!("{}", table.render());

    let nm_speedups: Vec<f64> =
        rows.iter().filter(|r| r.engine == "nm/tm").map(SweepRow::speedup_128_vs_seq).collect();
    let gm = if nm_speedups.is_empty() { f64::NAN } else { geomean(&nm_speedups) };
    println!("\nNuevoMatch batch-128 speedup over the per-key loop, geomean across apps: {gm:.2}x");

    // The tree engines' acceptance target: level-synchronous descent must
    // lift the remainder-heavy fw-style set by ≥ 1.5x at batch 128.
    let mut tree_pass = true;
    for engine in ["cs", "nc"] {
        for r in rows.iter().filter(|r| r.engine == engine && r.app.starts_with("fw")) {
            let sp = r.speedup_128_vs_seq();
            let ok = sp >= 1.5;
            tree_pass &= ok;
            println!(
                "{}: {}/{} batch-128 vs per-key {:.2}x (target 1.5x)",
                if ok { "PASS" } else { "WARN" },
                engine,
                r.app,
                sp
            );
        }
    }

    println!("\n=== Divergent-leaf microbench — gather vs broadcast, {:?} ===", detect());
    println!("(ns per packet; shared = the uniform-group fast path, 1 distinct leaf only)\n");
    let mut gtable =
        Table::new(&["distinct leaves", "gather", "broadcast", "shared", "bcast/gather"]);
    let points = gather_microbench();
    // The gather-beats-broadcast target only applies where the real gather
    // kernel runs; on pre-AVX2 hosts the gather side is the scalar fallback
    // and losing to the vector broadcast kernels is expected.
    let gather_applicable = detect() == nuevomatch::rqrmi::Isa::AvxFma;
    let mut gather_pass = true;
    for p in &points {
        gtable.row(vec![
            format!("{}", p.distinct),
            format!("{:.2}", p.gather_ns),
            format!("{:.2}", p.broadcast_ns),
            if p.shared_ns.is_nan() { "-".into() } else { format!("{:.2}", p.shared_ns) },
            format!("{:.2}x", p.broadcast_ns / p.gather_ns),
        ]);
        println!(
            "BENCH {{\"bench\":\"leaf_gather\",\"distinct\":{},\"gather_ns\":{:.3},\
             \"broadcast_ns\":{:.3}}}",
            p.distinct, p.gather_ns, p.broadcast_ns
        );
        if gather_applicable && p.distinct >= 4 && p.gather_ns > p.broadcast_ns {
            gather_pass = false;
        }
    }
    print!("{}", gtable.render());
    println!(
        "{}",
        if !gather_applicable {
            "SKIP: no AVX2+FMA on this host — gather column is the scalar fallback"
        } else if gather_pass {
            "PASS: gather beats per-packet broadcast at >= 4 distinct leaves"
        } else {
            "WARN: gather did not beat broadcast at >= 4 distinct leaves"
        }
    );
    if let Some(p1) = points.iter().find(|p| p.distinct == 1) {
        println!(
            "shared-leaf fast path: shared {:.2} ns vs gather {:.2} ns — auto-selection \
             keeps the shared kernel for uniform groups",
            p1.shared_ns, p1.gather_ns
        );
    }

    // Machine-readable artifact for the CI batch-sweep job (perf trajectory
    // over time); NM_BENCH_JSON overrides the output path.
    let json_path = std::env::var("NM_BENCH_JSON").unwrap_or_else(|_| "BENCH_batch.json".into());
    let row_json: Vec<String> = rows.iter().map(|r| r.json(n)).collect();
    let gather_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"distinct\":{},\"gather_ns\":{:.3},\"broadcast_ns\":{:.3},\
                 \"shared_ns\":{}}}",
                p.distinct,
                p.gather_ns,
                p.broadcast_ns,
                if p.shared_ns.is_nan() { "null".into() } else { format!("{:.3}", p.shared_ns) }
            )
        })
        .collect();
    // `null` when the nm/tm rows were filtered out — a bare NaN would make
    // the artifact invalid JSON.
    let gm_json = if gm.is_nan() { "null".into() } else { format!("{gm:.3}") };
    let artifact = format!(
        "{{\"rules\":{n},\"isa\":\"{:?}\",\"nm_tm_geomean_128_vs_seq\":{gm_json},\
         \"tree_target_pass\":{tree_pass},\"gather_target_pass\":{gather_pass},\
         \"rows\":[{}],\"leaf_gather\":[{}]}}\n",
        detect(),
        row_json.join(","),
        gather_json.join(",")
    );
    match std::fs::write(&json_path, &artifact) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => println!("\nWARN: could not write {json_path}: {e}"),
    }

    if strict && !(tree_pass && gather_pass) {
        std::process::exit(1);
    }
}
