//! Ablations of the design choices DESIGN.md §5 calls out.
//!
//! 1. **Early termination** (§4): query the remainder with/without the
//!    iSets' best-priority floor.
//! 2. **Flow cache front** (§5.2's OVS discussion): an exact-match cache
//!    absorbs skew; the classifier sees the miss stream, so unskewed
//!    speedups are the deployment-relevant ones.
//! 3. **Sampling mode** (train.rs docs): rank labels vs the paper-literal
//!    rejection sampling — achieved error bounds at equal budget.
//! 4. **Trainer** (nm-nn): closed-form hinge vs hinge+Adam refinement —
//!    achieved bounds and training time.
//! 5. **iSet count for a TupleMerge remainder** (§5.3.2: tm benefits from
//!    more iSets than cs).

use nm_analysis::Table;
use nm_bench::{measure_seq, rqrmi_params, scale, suite};
use nm_classbench::{generate, AppKind};
use nm_trace::{uniform_trace, zipf_trace};
use nm_tuplemerge::TupleMerge;
use nuevomatch::rqrmi::{train_rqrmi_mode, SampleMode};
use nuevomatch::system::FlowCache;
use nuevomatch::{NuevoMatch, NuevoMatchConfig, RqRmiParams, TrainerKind};
use std::time::Instant;

fn main() {
    let s = scale();
    let n = *s.sizes.last().unwrap();
    let (name, set) = suite(n, &s).into_iter().next().expect("set");
    let trace = uniform_trace(&set, s.trace_len, 0xab1a);

    // 1. Early termination.
    println!("Ablation 1 — early termination ({name}-{n}, nm w/ tm, uniform):\n");
    {
        let mut cfg = NuevoMatchConfig {
            max_isets: 4,
            min_iset_coverage: 0.05,
            rqrmi: rqrmi_params(),
            early_termination: true,
            partial_retrain: Default::default(),
        };
        let with_et = NuevoMatch::build(&set, &cfg, TupleMerge::build).unwrap();
        cfg.early_termination = false;
        let without = NuevoMatch::build(&set, &cfg, TupleMerge::build).unwrap();
        let (a, _, ca) = measure_seq(&with_et, &trace, s.warmups);
        let (b, _, cb) = measure_seq(&without, &trace, s.warmups);
        assert_eq!(ca, cb, "early termination changed results");
        println!("  with early termination:    {a:.3e} pps");
        println!("  without:                   {b:.3e} pps");
        println!("  early-termination speedup: {:.2}x\n", a / b);
    }

    // 2. Flow cache front under skew.
    println!("Ablation 2 — exact-match flow cache in front of nm w/ tm:\n");
    {
        let cfg = NuevoMatchConfig {
            max_isets: 4,
            min_iset_coverage: 0.05,
            rqrmi: rqrmi_params(),
            early_termination: true,
            partial_retrain: Default::default(),
        };
        let mut table = Table::new(&["trace", "bare pps", "cached pps", "cache hit rate"]);
        for (label, t) in [
            ("uniform", uniform_trace(&set, s.trace_len, 1)),
            ("zipf a=1.25", zipf_trace(&set, s.trace_len, 1.25, 1)),
        ] {
            let nm = NuevoMatch::build(&set, &cfg, TupleMerge::build).unwrap();
            let (bare, _, c1) = measure_seq(&nm, &t, s.warmups);
            let cached =
                FlowCache::new(NuevoMatch::build(&set, &cfg, TupleMerge::build).unwrap(), 1 << 16);
            let (fast, _, c2) = measure_seq(&cached, &t, s.warmups);
            assert_eq!(c1, c2, "cache changed results");
            table.row(vec![
                label.into(),
                format!("{bare:.3e}"),
                format!("{fast:.3e}"),
                format!("{:.1}%", cached.stats().hit_rate() * 100.0),
            ]);
        }
        print!("{}", table.render());
        println!();
    }

    // 3 + 4. Sampling mode and trainer: achieved bounds on one iSet.
    println!("Ablation 3/4 — leaf error bounds by sampling mode and trainer:\n");
    {
        let acl = generate(AppKind::Acl, n.min(50_000), 0xab34);
        let part = nuevomatch::iset::partition_isets(&acl, 1, 0.0);
        let iset = &part.isets[0];
        let ranges: Vec<nm_common::FieldRange> =
            iset.rule_ids.iter().map(|&id| acl.rule(id).fields[iset.dim]).collect();
        let bits = acl.spec().bits(iset.dim);
        let mut table = Table::new(&["configuration", "achieved bound", "train time (s)"]);
        let configs: Vec<(&str, RqRmiParams, SampleMode)> = vec![
            ("hinge + rank labels (default)", RqRmiParams::default(), SampleMode::Rank),
            ("hinge + rejection (paper-literal)", RqRmiParams::default(), SampleMode::Reject),
            (
                "hinge+adam + rank labels",
                RqRmiParams {
                    trainer: TrainerKind::HingeThenAdam(nm_nn::AdamConfig {
                        epochs: 60,
                        ..Default::default()
                    }),
                    max_attempts: 3,
                    ..Default::default()
                },
                SampleMode::Rank,
            ),
        ];
        for (label, params, mode) in configs {
            let t0 = Instant::now();
            let model = train_rqrmi_mode(&ranges, bits, &params, mode).unwrap();
            table.row(vec![
                label.into(),
                format!("{}", model.max_error_bound()),
                format!("{:.2}", t0.elapsed().as_secs_f64()),
            ]);
        }
        print!("{}", table.render());
        println!();
    }

    // 5. iSet count with a TupleMerge remainder.
    println!("Ablation 5 — iSet count, tm remainder ({name}-{n}, uniform):\n");
    {
        let mut table = Table::new(&["max iSets", "coverage", "pps"]);
        for k in [1usize, 2, 4, 6] {
            let cfg = NuevoMatchConfig {
                max_isets: k,
                min_iset_coverage: 0.0,
                rqrmi: rqrmi_params(),
                early_termination: true,
                partial_retrain: Default::default(),
            };
            let nm = NuevoMatch::build(&set, &cfg, TupleMerge::build).unwrap();
            let (pps, _, _) = measure_seq(&nm, &trace, s.warmups);
            table.row(vec![
                format!("{k}"),
                format!("{:.1}%", nm.coverage() * 100.0),
                format!("{pps:.3e}"),
            ]);
        }
        print!("{}", table.render());
        println!("\nPaper §5.3.2: tm remainders keep improving up to ~4 iSets (cs peaks at 1-2).");
    }
}
