//! Figure 9 — ClassBench end-to-end, single core with early termination:
//! throughput speedup of NuevoMatch over CutSplit, NeuroCuts, TupleMerge.
//!
//! Paper (500K geomean): 2.4× / 2.6× / 1.6× over cs / nc / tm (latency
//! speedups equal throughput speedups on one core). This binary is the
//! apples-to-apples comparison on a single-core host.

use nm_analysis::{geomean, Table};
use nm_bench::{assert_same_results, measure_seq, nc_config, nm_cs, nm_nc, nm_tm, scale, suite};
use nm_cutsplit::CutSplit;
use nm_neurocuts::NeuroCuts;
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;

fn main() {
    let s = scale();
    let sizes: Vec<usize> = s.sizes.iter().copied().filter(|&n| n >= 100_000).collect();
    let sizes = if sizes.is_empty() { vec![*s.sizes.last().unwrap()] } else { sizes };

    for n in sizes {
        println!("=== Figure 9 — {n} rules, single core, early termination ===\n");
        let mut table = Table::new(&["set", "thr/cs", "thr/nc", "thr/tm", "nm cov."]);
        let mut sp = [Vec::new(), Vec::new(), Vec::new()];

        for (name, set) in suite(n, &s) {
            let trace = uniform_trace(&set, s.trace_len, 0xf19 + n as u64);
            let mut row = Vec::new();
            let cov;

            {
                let cs = CutSplit::build(&set);
                let nm = nm_cs(&set);
                cov = nm.coverage();
                let (b, _, bs) = measure_seq(&cs, &trace, s.warmups);
                let (o, _, os) = measure_seq(&nm, &trace, s.warmups);
                assert_same_results("cs", bs, "nm/cs", os);
                row.push(o / b);
            }
            {
                let nc = NeuroCuts::with_config(&set, nc_config(!s.full));
                let nm = nm_nc(&set, !s.full);
                let (b, _, bs) = measure_seq(&nc, &trace, s.warmups);
                let (o, _, os) = measure_seq(&nm, &trace, s.warmups);
                assert_same_results("nc", bs, "nm/nc", os);
                row.push(o / b);
            }
            {
                let tm = TupleMerge::build(&set);
                let nm = nm_tm(&set);
                let (b, _, bs) = measure_seq(&tm, &trace, s.warmups);
                let (o, _, os) = measure_seq(&nm, &trace, s.warmups);
                assert_same_results("tm", bs, "nm/tm", os);
                row.push(o / b);
            }

            for i in 0..3 {
                sp[i].push(row[i]);
            }
            table.row(vec![
                name,
                format!("{:.2}x", row[0]),
                format!("{:.2}x", row[1]),
                format!("{:.2}x", row[2]),
                format!("{:.0}%", cov * 100.0),
            ]);
        }
        table.row(vec![
            "GM".into(),
            format!("{:.2}x", geomean(&sp[0])),
            format!("{:.2}x", geomean(&sp[1])),
            format!("{:.2}x", geomean(&sp[2])),
            String::new(),
        ]);
        print!("{}", table.render());
        println!("\nPaper 500K GM: 2.4x / 2.6x / 1.6x over cs / nc / tm\n");
    }
}
