//! §5.3.5 — validation time vs number of fields.
//!
//! Paper: validation grows almost linearly from ~25 ns at 1 field to
//! ~180 ns at 40 fields (OpenFlow 1.4 allows 41). The microbenchmark builds
//! uniform n-field schemas, trains a single-iSet NuevoMatch, and times the
//! validation phase in isolation.

use nm_analysis::Table;
use nm_common::{FieldRange, FieldsSpec, LinearSearch, RuleSet, SplitMix64};
use nuevomatch::{NuevoMatch, NuevoMatchConfig, RqRmiParams};
use std::hint::black_box;
use std::time::Instant;

fn build_set(nfields: usize, rules: usize) -> RuleSet {
    // Field 0 gets unique non-overlapping ranges (a perfect iSet); the other
    // fields get moderate ranges so validation has real work per field.
    let mut rng = SplitMix64::new(nfields as u64);
    let spec = FieldsSpec::uniform(nfields, 32);
    let rows: Vec<Vec<FieldRange>> = (0..rules as u64)
        .map(|i| {
            let mut fields = vec![FieldRange::new(i * 4_096, i * 4_096 + 4_095)];
            for _ in 1..nfields {
                let lo = rng.below(1 << 31);
                fields.push(FieldRange::new(lo, lo + rng.below(1 << 31)));
            }
            fields
        })
        .collect();
    RuleSet::from_ranges(spec, rows).unwrap()
}

fn main() {
    println!("Section 5.3.5 — validation time vs number of fields\n");
    let mut table = Table::new(&["fields", "validation ns/pkt", "total lookup ns/pkt"]);
    let rules = 2_000usize;

    for &nf in &[1usize, 2, 5, 10, 20, 30, 40] {
        let set = build_set(nf, rules);
        let cfg = NuevoMatchConfig {
            max_isets: 1,
            min_iset_coverage: 0.0,
            rqrmi: RqRmiParams { samples_init: 512, ..Default::default() },
            early_termination: true,
            partial_retrain: Default::default(),
        };
        let nm = NuevoMatch::build(&set, &cfg, LinearSearch::build).expect("build");
        let iset = &nm.isets()[0];

        // Keys that hit field-0 ranges so validation really runs.
        let mut rng = SplitMix64::new(99);
        let keys: Vec<Vec<u64>> = (0..20_000)
            .map(|_| {
                let r = rng.below(rules as u64);
                let mut k = vec![r * 4_096 + rng.below(4_096)];
                for _ in 1..nf {
                    k.push(rng.below(1 << 32));
                }
                k
            })
            .collect();

        // Positions to validate (precomputed so only validation is timed).
        let positions: Vec<Option<usize>> = keys
            .iter()
            .map(|k| {
                let (pred, err) = iset.predict(k);
                iset.search(pred, err, k)
            })
            .collect();

        let t0 = Instant::now();
        for (k, pos) in keys.iter().zip(&positions) {
            if let Some(p) = pos {
                black_box(iset.validate(*p, k));
            }
        }
        let val_ns = t0.elapsed().as_nanos() as f64 / keys.len() as f64;

        let t0 = Instant::now();
        for k in &keys {
            black_box(nm.classify_isets(k));
        }
        let tot_ns = t0.elapsed().as_nanos() as f64 / keys.len() as f64;

        table.row(vec![format!("{nf}"), format!("{val_ns:.0}"), format!("{tot_ns:.0}")]);
    }
    print!("{}", table.render());
    println!("\nPaper: ~25 ns at 1 field growing almost linearly to ~180 ns at 40 fields.");
}
