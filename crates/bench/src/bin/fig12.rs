//! Figure 12 — skewed traffic: NuevoMatch speedup over CutSplit and
//! TupleMerge under Zipf skews, a CAIDA-like trace, and the same trace with
//! a restricted L3 (CAIDA*).
//!
//! Paper (500K geomean): vs cs 2.06/1.95/1.84/1.62× across Zipf 80–95%,
//! 1.79× CAIDA, 2.26× CAIDA*; vs tm 1.14/1.06/0.99/0.89×, 1.05× CAIDA,
//! 1.16× CAIDA*. Shape: skew shrinks the gains (caches absorb hot flows);
//! restricting L3 restores them.

use nm_analysis::{geomean, CacheThrasher, Table};
use nm_bench::{assert_same_results, measure_seq, nm_cs, nm_tm, scale, suite};
use nm_common::{Classifier, TraceBuf};
use nm_cutsplit::CutSplit;
use nm_trace::{caida_like_trace, zipf_trace, CaidaLikeConfig, FIG12_SKEWS};
use nm_tuplemerge::TupleMerge;

fn speedup(base: &dyn Classifier, ours: &dyn Classifier, trace: &TraceBuf, warmups: usize) -> f64 {
    let (b, _, bs) = measure_seq(base, trace, warmups);
    let (o, _, os) = measure_seq(ours, trace, warmups);
    assert_same_results(base.name(), bs, ours.name(), os);
    o / b
}

fn main() {
    let s = scale();
    let n = *s.sizes.last().unwrap();
    println!("Figure 12 — skewed traffic, {n}-rule sets, geomean over {} apps\n", s.apps);
    let mut table = Table::new(&["workload", "nm w/ cs", "nm w/ tm", "paper cs", "paper tm"]);
    let paper: &[(&str, &str, &str)] = &[
        ("Zipf 80% (a=1.05)", "2.06x", "1.14x"),
        ("Zipf 85% (a=1.10)", "1.95x", "1.06x"),
        ("Zipf 90% (a=1.15)", "1.84x", "0.99x"),
        ("Zipf 95% (a=1.25)", "1.62x", "0.89x"),
        ("CAIDA-like", "1.79x", "1.05x"),
        ("CAIDA-like*", "2.26x", "1.16x"),
    ];

    // Pre-build engines once per set; traces vary per workload row.
    let sets = suite(n, &s);
    let engines: Vec<_> = sets
        .iter()
        .map(|(name, set)| {
            (
                name.clone(),
                set,
                CutSplit::build(set),
                nm_cs(set),
                TupleMerge::build(set),
                nm_tm(set),
            )
        })
        .collect();

    for (row, &(label, p_cs, p_tm)) in paper.iter().enumerate() {
        let mut sp_cs = Vec::new();
        let mut sp_tm = Vec::new();
        // CAIDA* restricts effective L3 with a thrasher.
        let thrasher = (row == 5).then(|| CacheThrasher::start(12));
        for (_, set, cs, nmcs, tm, nmtm) in &engines {
            let trace = match row {
                0..=3 => zipf_trace(set, s.trace_len, FIG12_SKEWS[row].1, 0xf12 + row as u64),
                _ => caida_like_trace(set, s.trace_len, CaidaLikeConfig::default(), 0xf12ca),
            };
            sp_cs.push(speedup(cs, nmcs, &trace, s.warmups));
            sp_tm.push(speedup(tm, nmtm, &trace, s.warmups));
        }
        drop(thrasher);
        table.row(vec![
            label.into(),
            format!("{:.2}x", geomean(&sp_cs)),
            format!("{:.2}x", geomean(&sp_tm)),
            p_cs.into(),
            p_tm.into(),
        ]);
    }
    print!("{}", table.render());
    println!("\nShape check: speedups shrink as skew grows; the thrashed row recovers them.");
}
