//! Sharded-runtime sweep — throughput and correctness of the NUMA-aware
//! worker runtime over shard × worker grids.
//!
//! For each application rule-set this sweeps the [`Runtime`] over
//! `shards ∈ {1, 2, 4} × workers-per-shard ∈ {1, 2}` with NuevoMatch/tm
//! replicas behind a [`ShardedHandle`] (range steering on an auto-picked
//! field, wildcard-heavy rules in the broadcast shard), plus a replicated
//! plan at 2 workers for the §5.1 baseline shape. **Every row's checksum is
//! asserted against the sequential whole-set reference**, so the sweep is
//! also the end-to-end proof that steering + per-shard replicas + priority
//! merge are verdict-equivalent to one engine — including after a fanned
//! `UpdateBatch`, which is applied to both the sharded and the whole-set
//! handle and re-verified.
//!
//! On this repository's single-core CI box the workers time-share and the
//! topology degrades to unpinned scheduling (see
//! `nuevomatch::system::runtime::topology`), so the pps columns measure
//! overhead, not scaling; the structure is what CI guards. A
//! `BENCH_shard.json` artifact (path overridable with `NM_BENCH_JSON`)
//! captures the grid for the perf trajectory, next to `BENCH_batch.json`
//! and `BENCH_update.json`.

use nm_analysis::Table;
use nm_bench::{nm_tm_sharded, scale, suite};
use nm_common::{FiveTuple, UpdateBatch};
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;
use nuevomatch::system::parallel::run_sequential;
use nuevomatch::{ClassifierHandle, Runtime, RuntimeConfig};

const SHARDS: &[usize] = &[1, 2, 4];
const WORKERS: &[usize] = &[1, 2];

struct GridRow {
    app: String,
    mode: String,
    shards: usize,
    workers: usize,
    pps: f64,
    pinned: usize,
    broadcast_fraction: f64,
    /// Largest shard's packet share over the ideal equal share (1.0 =
    /// perfect balance; RoundRobin and 1-shard rows are 1.0 by definition).
    imbalance: f64,
}

impl GridRow {
    fn json(&self, rules: usize) -> String {
        format!(
            "{{\"app\":\"{}\",\"mode\":\"{}\",\"rules\":{rules},\"shards\":{},\
             \"workers\":{},\"mpps\":{:.4},\"pinned_workers\":{},\
             \"broadcast_fraction\":{:.4},\"imbalance\":{:.3}}}",
            self.app,
            self.mode,
            self.shards,
            self.workers,
            self.pps / 1e6,
            self.pinned,
            self.broadcast_fraction,
            self.imbalance
        )
    }
}

fn imbalance(steered: &[u64]) -> f64 {
    let total: u64 = steered.iter().sum();
    let max = steered.iter().copied().max().unwrap_or(0);
    if total == 0 || steered.is_empty() {
        return 1.0;
    }
    max as f64 / (total as f64 / steered.len() as f64)
}

fn main() {
    let s = scale();
    // The sweep builds (1 + 2 + 4) handle grids per app; the mid-size set
    // keeps that affordable on the CI box while staying representative.
    let n = s.sizes[s.sizes.len() / 2];
    let want = |var: &str, name: &str| {
        std::env::var(var).map_or(true, |v| v.split(',').any(|w| w.trim() == name))
    };
    let topo = nuevomatch::Topology::discover();
    println!(
        "=== Sharded-runtime sweep — {n} rules, uniform traffic, {} NUMA node(s) / {} CPU(s) ===",
        topo.nodes().len(),
        topo.num_cpus()
    );
    println!("(columns in Mpps; every row checksum-asserted against run_sequential)\n");

    let mut table = Table::new(&[
        "set", "mode", "shards", "workers", "Mpps", "vs seq", "bcast%", "imbal", "pinned",
    ]);
    let mut rows: Vec<GridRow> = Vec::new();
    for (app, set) in suite(n, &s) {
        if !want("NM_APPS", &app) {
            continue;
        }
        let trace = uniform_trace(&set, s.trace_len, 0x5a4d + n as u64);

        for &shards in SHARDS {
            // Fresh whole-set reference per grid column: both control
            // planes receive the same update stream from the same state.
            let reference = nm_bench::nm_tm_handle(&set);
            let sharded = nm_tm_sharded(&set, shards);
            // Fan a concrete update through both control planes before
            // measuring: the sweep then also proves the fan-out path keeps
            // the shards verdict-equivalent to the whole-set handle.
            let drift = UpdateBatch::new()
                .modify(FiveTuple::new().dst_port_range(40_000, 40_200).into_rule(3, 3))
                .insert(FiveTuple::new().dst_port_exact(61_234).into_rule(900_001, 900_001))
                .remove(11);
            let ra = reference.apply(&drift);
            let rb = sharded.apply(&drift);
            assert_eq!(ra, rb, "{app}/{shards}: fan-out accounting diverged");
            let seq = run_sequential(&reference, &trace);
            for &workers in WORKERS {
                let rt = Runtime::new(RuntimeConfig {
                    workers_per_shard: workers,
                    ..Default::default()
                });
                let stats = rt.run(&sharded, &trace).expect("sharded run");
                assert_eq!(
                    stats.checksum, seq.checksum,
                    "{app}: {shards} shard(s) x {workers} worker(s) diverged from sequential"
                );
                let row = GridRow {
                    app: app.clone(),
                    mode: "sharded".into(),
                    shards: stats.shards,
                    workers: stats.workers,
                    pps: stats.pps,
                    pinned: stats.pinned_workers,
                    broadcast_fraction: sharded.plan().broadcast_fraction(),
                    imbalance: imbalance(&stats.steered),
                };
                table.row(vec![
                    app.clone(),
                    row.mode.clone(),
                    format!("{}", row.shards),
                    format!("{}", row.workers),
                    format!("{:.2}", row.pps / 1e6),
                    format!("{:.2}x", row.pps / seq.pps.max(1e-9)),
                    format!("{:.1}", row.broadcast_fraction * 100.0),
                    format!("{:.2}", row.imbalance),
                    format!("{}", row.pinned),
                ]);
                println!(
                    "BENCH {{\"bench\":\"shard\",\"app\":\"{app}\",\"mode\":\"sharded\",\
                     \"shards\":{},\"workers\":{},\"mpps\":{:.4}}}",
                    row.shards,
                    row.workers,
                    row.pps / 1e6
                );
                rows.push(row);
            }
        }
        // Baseline shape: the replicated plan (2 whole-set workers).
        let engine = ClassifierHandle::new(&set, &nm_bench::nm_tm_config(), TupleMerge::build)
            .expect("nm/tm handle");
        let rt = Runtime::new(RuntimeConfig::default());
        let stats = rt.run_replicated(&engine, 2, &trace).expect("replicated run");
        let seq = run_sequential(&engine, &trace);
        assert_eq!(stats.checksum, seq.checksum, "{app}: replicated diverged from sequential");
        let row = GridRow {
            app: app.clone(),
            mode: "replicated".into(),
            shards: stats.shards,
            workers: stats.workers,
            pps: stats.pps,
            pinned: stats.pinned_workers,
            broadcast_fraction: 0.0,
            imbalance: imbalance(&stats.steered),
        };
        table.row(vec![
            app.clone(),
            row.mode.clone(),
            format!("{}", row.shards),
            format!("{}", row.workers),
            format!("{:.2}", row.pps / 1e6),
            format!("{:.2}x", row.pps / seq.pps.max(1e-9)),
            "-".into(),
            format!("{:.2}", row.imbalance),
            format!("{}", row.pinned),
        ]);
        rows.push(row);
    }
    print!("{}", table.render());
    println!(
        "\nPASS: every shard x worker grid point is checksum-equivalent to the sequential \
         whole-set reference (including after a fanned update batch)"
    );

    let json_path = std::env::var("NM_BENCH_JSON").unwrap_or_else(|_| "BENCH_shard.json".into());
    let row_json: Vec<String> = rows.iter().map(|r| r.json(n)).collect();
    let artifact = format!(
        "{{\"rules\":{n},\"numa_nodes\":{},\"cpus\":{},\"rows\":[{}]}}\n",
        topo.nodes().len(),
        topo.num_cpus(),
        row_json.join(",")
    );
    match std::fs::write(&json_path, &artifact) {
        Ok(()) => println!("wrote {json_path}"),
        Err(e) => println!("WARN: could not write {json_path}: {e}"),
    }
}
