//! Figure 17 (appendix) — small rule-sets (1K / 10K): NuevoMatch vs
//! CutSplit and TupleMerge, latency and throughput.
//!
//! Paper: for small sets the baselines already fit in L1, so nm gains
//! little throughput (≈1× or below) but still improves latency (2.2× / 1.9×
//! on average); sets without large-enough iSets fall back to the baseline
//! and are omitted from the chart.

use nm_analysis::{geomean, Table};
use nm_bench::{assert_same_results, measure_seq, nm_cs, nm_tm, scale, suite};
use nm_cutsplit::CutSplit;
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;

fn main() {
    let s = scale();
    println!("Figure 17 — small rule-sets, single core\n");
    let mut table = Table::new(&["set", "rules", "thr/cs", "thr/tm", "nm coverage"]);
    let mut sp_cs = Vec::new();
    let mut sp_tm = Vec::new();

    for &n in &[1_000usize, 10_000] {
        for (name, set) in suite(n, &s) {
            let trace = uniform_trace(&set, s.trace_len, 0xf17 + n as u64);
            let nmcs = nm_cs(&set);
            let cov = nmcs.coverage();
            if nmcs.isets().is_empty() {
                // Paper: "classifiers with no valid iSets are not displayed".
                table.row(vec![
                    format!("{name}-{n}"),
                    format!("{n}"),
                    "fallback".into(),
                    "fallback".into(),
                    format!("{:.0}%", cov * 100.0),
                ]);
                continue;
            }
            let cs = CutSplit::build(&set);
            let tm = TupleMerge::build(&set);
            let nmtm = nm_tm(&set);
            let (b_cs, _, cs_sum) = measure_seq(&cs, &trace, s.warmups);
            let (o_cs, _, ocs_sum) = measure_seq(&nmcs, &trace, s.warmups);
            assert_same_results("cs", cs_sum, "nm/cs", ocs_sum);
            let (b_tm, _, tm_sum) = measure_seq(&tm, &trace, s.warmups);
            let (o_tm, _, otm_sum) = measure_seq(&nmtm, &trace, s.warmups);
            assert_same_results("tm", tm_sum, "nm/tm", otm_sum);
            sp_cs.push(o_cs / b_cs);
            sp_tm.push(o_tm / b_tm);
            table.row(vec![
                format!("{name}-{n}"),
                format!("{n}"),
                format!("{:.2}x", o_cs / b_cs),
                format!("{:.2}x", o_tm / b_tm),
                format!("{:.0}%", cov * 100.0),
            ]);
        }
    }
    table.row(vec![
        "GM".into(),
        String::new(),
        format!("{:.2}x", geomean(&sp_cs)),
        format!("{:.2}x", geomean(&sp_tm)),
        String::new(),
    ]);
    print!("{}", table.render());
    println!(
        "\nPaper: small sets fit the baselines in L1, so throughput speedups hover at \
         or below 1x — nm is not expected to win here."
    );
}
