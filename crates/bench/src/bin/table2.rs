//! Table 2 — cumulative iSet coverage (%) for 1–4 iSets, by rule-set size,
//! plus the Stanford-backbone-like row.
//!
//! Paper (mean ± std over 12 ClassBench sets):
//! 1K 20.2/28.9/34.6/38.7 · 10K 45.1/59.6/62.6/65.1 ·
//! 100K 80.0/96.5/98.1/98.8 · 500K 84.2/98.8/99.4/99.7 ·
//! Stanford-183K 57.8/91.6/96.5/98.2.
//! The shape: coverage improves with rule-set size; Stanford (single field)
//! needs 2–3 iSets for 90 %+.

use nm_analysis::Table;
use nm_bench::{scale, suite};
use nuevomatch::iset::coverage_curve;

fn main() {
    let s = scale();
    println!(
        "Table 2: iSet coverage (%), mean ± std over {} applications per size (NM_SCALE={})\n",
        s.apps,
        if s.full { "full" } else { "quick" }
    );
    let mut table = Table::new(&["rules", "1 iSet", "2 iSets", "3 iSets", "4 iSets"]);

    for &n in &s.sizes {
        let mut per_k: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for (_, set) in suite(n, &s) {
            let curve = coverage_curve(&set, 4);
            for k in 0..4 {
                per_k[k].push(curve[k] * 100.0);
            }
        }
        let cell = |v: &Vec<f64>| {
            let mean = v.iter().sum::<f64>() / v.len() as f64;
            let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / v.len() as f64;
            format!("{mean:.1} ± {:.1}", var.sqrt())
        };
        table.row(vec![
            format!("{n}"),
            cell(&per_k[0]),
            cell(&per_k[1]),
            cell(&per_k[2]),
            cell(&per_k[3]),
        ]);
    }

    // Stanford-like FIB row (paper: ~183K single-field rules).
    let fib_n = if s.full { 183_376 } else { 20_000 };
    let fib = nm_classbench::stanford_fib(fib_n, 0x57a4);
    let curve = coverage_curve(&fib, 4);
    table.row(vec![
        format!("stanford-{fib_n}"),
        format!("{:.1}", curve[0] * 100.0),
        format!("{:.1}", curve[1] * 100.0),
        format!("{:.1}", curve[2] * 100.0),
        format!("{:.1}", curve[3] * 100.0),
    ]);

    print!("{}", table.render());
    println!(
        "\nPaper row for 500K: 84.2 / 98.8 / 99.4 / 99.7; Stanford: 57.8 / 91.6 / 96.5 / 98.2"
    );
}
