//! Figure 8 — ClassBench end-to-end, two workers: latency and throughput
//! speedups of NuevoMatch over CutSplit, NeuroCuts and TupleMerge.
//!
//! Paper (500K geomean): latency 2.7× / 4.4× / 2.6× lower, throughput 1.3× /
//! 2.2× / 1.2× higher vs cs / nc / tm. For 100K: 2.0× / 3.6× / 2.6× and
//! 1.0× / 1.7× / 1.2×.
//!
//! Methodology mirror of §5.1: NuevoMatch splits iSets and remainder across
//! two workers; baselines run two replicated instances with the input split
//! between them; batches of 128. **This repo's CI box has one physical
//! core** — workers time-share, so expect muted parallel gains; the
//! single-core Figure 9 is the apples-to-apples shape on this machine.

use nm_analysis::{geomean, Table};
use nm_bench::{nc_config, nm_cs, nm_nc, nm_tm, scale, suite};
use nm_common::{Classifier, TraceBuf};
use nm_cutsplit::CutSplit;
use nm_neurocuts::NeuroCuts;
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;
use nuevomatch::system::parallel::{ParallelStats, BATCH};
use nuevomatch::{ClassifierHandle, Runtime, RuntimeConfig};

/// Two replicated baseline instances (the §5.1 baseline mode) through the
/// worker runtime.
fn run_replicated(rt: &Runtime, c: &dyn Classifier, trace: &TraceBuf) -> ParallelStats {
    rt.run_replicated(c, 2, trace).expect("replicated runtime").into()
}

/// NuevoMatch's iSet/remainder two-worker split through the worker runtime.
fn run_two_workers<R: Classifier>(
    rt: &Runtime,
    handle: &ClassifierHandle<R>,
    trace: &TraceBuf,
) -> ParallelStats {
    rt.run_split(handle, trace).expect("two-worker runtime").into()
}

fn main() {
    let rt = Runtime::new(RuntimeConfig { batch: BATCH, ..Default::default() });
    let s = scale();
    let sizes: Vec<usize> = s.sizes.iter().copied().filter(|&n| n >= 100_000).collect();
    let sizes = if sizes.is_empty() { vec![*s.sizes.last().unwrap()] } else { sizes };

    for n in sizes {
        println!("=== Figure 8 — {n} rules, two workers, uniform traffic ===\n");
        let mut table = Table::new(&[
            "set",
            "lat-speedup/cs",
            "lat/nc",
            "lat/tm",
            "thr-speedup/cs",
            "thr/nc",
            "thr/tm",
        ]);
        let mut lat = [Vec::new(), Vec::new(), Vec::new()];
        let mut thr = [Vec::new(), Vec::new(), Vec::new()];

        for (name, set) in suite(n, &s) {
            let trace = uniform_trace(&set, s.trace_len, 0xf18 + n as u64);
            let mut lat_row = Vec::new();
            let mut thr_row = Vec::new();

            // vs CutSplit.
            {
                let cs = CutSplit::build(&set);
                let nm = nm_cs(&set);
                let base = run_replicated(&rt, &cs, &trace);
                let ours = run_two_workers(&rt, &ClassifierHandle::read_only(nm), &trace);
                lat_row.push(base.mean_batch_latency_ns / ours.mean_batch_latency_ns);
                thr_row.push(ours.pps / base.pps);
            }
            // vs NeuroCuts.
            {
                let nc = NeuroCuts::with_config(&set, nc_config(!s.full));
                let nm = nm_nc(&set, !s.full);
                let base = run_replicated(&rt, &nc, &trace);
                let ours = run_two_workers(&rt, &ClassifierHandle::read_only(nm), &trace);
                lat_row.push(base.mean_batch_latency_ns / ours.mean_batch_latency_ns);
                thr_row.push(ours.pps / base.pps);
            }
            // vs TupleMerge.
            {
                let tm = TupleMerge::build(&set);
                let nm = nm_tm(&set);
                let base = run_replicated(&rt, &tm, &trace);
                let ours = run_two_workers(&rt, &ClassifierHandle::read_only(nm), &trace);
                lat_row.push(base.mean_batch_latency_ns / ours.mean_batch_latency_ns);
                thr_row.push(ours.pps / base.pps);
            }

            for i in 0..3 {
                lat[i].push(lat_row[i]);
                thr[i].push(thr_row[i]);
            }
            table.row(vec![
                name,
                format!("{:.2}x", lat_row[0]),
                format!("{:.2}x", lat_row[1]),
                format!("{:.2}x", lat_row[2]),
                format!("{:.2}x", thr_row[0]),
                format!("{:.2}x", thr_row[1]),
                format!("{:.2}x", thr_row[2]),
            ]);
        }
        table.row(vec![
            "GM".into(),
            format!("{:.2}x", geomean(&lat[0])),
            format!("{:.2}x", geomean(&lat[1])),
            format!("{:.2}x", geomean(&lat[2])),
            format!("{:.2}x", geomean(&thr[0])),
            format!("{:.2}x", geomean(&thr[1])),
            format!("{:.2}x", geomean(&thr[2])),
        ]);
        print!("{}", table.render());
        println!(
            "\nPaper 500K GM: latency 2.7x/4.4x/2.6x, throughput 1.3x/2.2x/1.2x (12 cores; \
             this host: 1 core, see EXPERIMENTS.md)\n"
        );
    }
}
