//! Figure 15 — RQ-RMI training time vs the maximum search-distance bound,
//! by rule-set size; plus the §5.3.4 search-distance distribution analysis.
//!
//! Paper: training with bound 64 is expensive (up to ~40 min for 500K with
//! their TensorFlow pipeline — ours is native and far faster, see §4 of the
//! paper conceding the point); larger bounds train much faster and barely
//! hurt lookups, because the *actual* search distance is usually far below
//! the worst-case bound (80% of lookups within 64 when trained at 128).

use nm_analysis::Table;
use nm_bench::scale;
use nm_classbench::{generate, AppKind};
use nuevomatch::iset::partition_isets;
use nuevomatch::rqrmi::train_rqrmi;
use nuevomatch::RqRmiParams;
use std::time::Instant;

fn main() {
    let s = scale();
    println!("Figure 15 — training time (s) vs error-bound target\n");
    let bounds = [64u32, 128, 256, 512, 1024];
    let mut table =
        Table::new(&["rules", "b=64", "b=128", "b=256", "b=512", "b=1024", "achieved(64)"]);

    for &n in &s.sizes {
        if n < 10_000 {
            continue;
        }
        let set = generate(AppKind::Acl, n, 0xf15 + n as u64);
        // Train on the largest iSet's projection, like the real build.
        let part = partition_isets(&set, 1, 0.0);
        let iset = &part.isets[0];
        let ranges: Vec<nm_common::FieldRange> =
            iset.rule_ids.iter().map(|&id| set.rule(id).fields[iset.dim]).collect();
        let bits = set.spec().bits(iset.dim);

        let mut cells = vec![format!("{n}")];
        let mut achieved64 = 0u32;
        for &b in &bounds {
            let params = RqRmiParams { error_target: b, ..Default::default() };
            let t0 = Instant::now();
            let model = train_rqrmi(&ranges, bits, &params).expect("train");
            let dt = t0.elapsed().as_secs_f64();
            if b == 64 {
                achieved64 = model.max_error_bound();
            }
            cells.push(format!("{dt:.2}"));
        }
        cells.push(format!("{achieved64}"));
        table.row(cells);
    }
    print!("{}", table.render());
    println!(
        "\nWith the closed-form hinge trainer the first attempt already beats bound 64,\n\
         so the paper's time-vs-bound trade-off does not bind (an improvement over the\n\
         paper's TensorFlow pipeline). The iterative trainer below reproduces the\n\
         paper's shape: tighter bounds trigger the Figure 5 retrain loop.\n"
    );

    // Paper-faithful mode: iterative (Adam) training, where the sample-
    // doubling retrain loop engages and cost rises toward tight bounds.
    let n_adam = s.sizes.iter().copied().find(|&n| n >= 10_000).unwrap_or(10_000);
    let set = generate(AppKind::Acl, n_adam, 0xf15a);
    let part = partition_isets(&set, 1, 0.0);
    let iset = &part.isets[0];
    let ranges: Vec<nm_common::FieldRange> =
        iset.rule_ids.iter().map(|&id| set.rule(id).fields[iset.dim]).collect();
    let bits = set.spec().bits(iset.dim);
    let mut table2 = Table::new(&["adam, rules", "b=64", "b=128", "b=256", "b=512", "b=1024"]);
    let mut cells = vec![format!("{n_adam}")];
    for &b in &bounds {
        let params = RqRmiParams {
            error_target: b,
            samples_init: 256,
            max_attempts: 5,
            trainer: nuevomatch::TrainerKind::Adam(nm_nn::AdamConfig {
                epochs: 150,
                ..Default::default()
            }),
            ..Default::default()
        };
        let t0 = Instant::now();
        let _ = train_rqrmi(&ranges, bits, &params).expect("train");
        cells.push(format!("{:.2}", t0.elapsed().as_secs_f64()));
    }
    table2.row(cells);
    print!("{}", table2.render());
    println!();

    // §5.3.4: actual search distance distribution when trained at 128.
    let n = *s.sizes.last().unwrap();
    let set = generate(AppKind::Acl, n, 0x5d15);
    let part = partition_isets(&set, 1, 0.0);
    let iset = &part.isets[0];
    let ranges: Vec<nm_common::FieldRange> =
        iset.rule_ids.iter().map(|&id| set.rule(id).fields[iset.dim]).collect();
    let model = train_rqrmi(
        &ranges,
        set.spec().bits(iset.dim),
        &RqRmiParams { error_target: 128, ..Default::default() },
    )
    .expect("train");
    let mut within = [0usize; 3]; // <=32, <=64, <=128
    let mut total = 0usize;
    for (idx, r) in ranges.iter().enumerate() {
        for key in [r.lo, (r.lo + r.hi) / 2, r.hi] {
            let (pred, _) = model.predict(key);
            let d = (pred as i64 - idx as i64).unsigned_abs();
            total += 1;
            if d <= 32 {
                within[0] += 1;
            }
            if d <= 64 {
                within[1] += 1;
            }
            if d <= 128 {
                within[2] += 1;
            }
        }
    }
    println!(
        "Search-distance distribution (trained at 128, {n}-rule ACL): \
         <=32: {:.0}%  <=64: {:.0}%  <=128: {:.0}%  (paper: 60% <=32, 80% <=64)",
        100.0 * within[0] as f64 / total as f64,
        100.0 * within[1] as f64 / total as f64,
        100.0 * within[2] as f64 / total as f64,
    );
}
