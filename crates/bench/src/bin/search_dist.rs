//! §5.3.4 — secondary-search cost vs trained bound, and the distribution of
//! *actual* search distances.
//!
//! Paper: retrieving with a precise prediction costs ~40 ns; with bounds of
//! 64–256 the binary search keeps retrieval at 75–80 ns. Training at 128
//! still leaves 80% of lookups within distance 64 and 60% within 32 — so
//! training with looser bounds barely hurts lookups while cutting training
//! cost (the Figure 15 trade-off).

use nm_analysis::Table;
use nm_bench::scale;
use nm_classbench::{generate, AppKind};
use nm_common::FieldRange;
use nuevomatch::iset::partition_isets;
use nuevomatch::rqrmi::train_rqrmi;
use nuevomatch::RqRmiParams;

fn main() {
    let s = scale();
    let n = *s.sizes.last().unwrap();
    let set = generate(AppKind::Acl, n, 0x5d04);
    let part = partition_isets(&set, 1, 0.0);
    let iset = &part.isets[0];
    let bits = set.spec().bits(iset.dim);
    let ranges: Vec<FieldRange> =
        iset.rule_ids.iter().map(|&id| set.rule(id).fields[iset.dim]).collect();
    println!(
        "Section 5.3.4 — search distances, {}-range iSet from a {n}-rule ACL set\n",
        ranges.len()
    );

    let mut table = Table::new(&[
        "trained bound",
        "achieved bound",
        "median dist",
        "p80 dist",
        "p99 dist",
        "% <=32",
        "% <=64",
    ]);
    for &bound in &[64u32, 128, 256, 512] {
        let params = RqRmiParams { error_target: bound, ..Default::default() };
        let model = train_rqrmi(&ranges, bits, &params).expect("train");
        let mut dists: Vec<u64> = Vec::with_capacity(ranges.len() * 3);
        for (idx, r) in ranges.iter().enumerate() {
            for key in [r.lo, (r.lo + r.hi) / 2, r.hi] {
                let (pred, _) = model.predict(key);
                dists.push((pred as i64 - idx as i64).unsigned_abs());
            }
        }
        dists.sort_unstable();
        let pct = |p: f64| dists[((dists.len() - 1) as f64 * p) as usize];
        let frac_within =
            |d: u64| 100.0 * dists.iter().filter(|&&x| x <= d).count() as f64 / dists.len() as f64;
        table.row(vec![
            format!("{bound}"),
            format!("{}", model.max_error_bound()),
            format!("{}", pct(0.5)),
            format!("{}", pct(0.8)),
            format!("{}", pct(0.99)),
            format!("{:.0}%", frac_within(32)),
            format!("{:.0}%", frac_within(64)),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nPaper: trained at 128, 80% of lookups search within 64 and 60% within 32 — \
         actual distances sit far below the worst-case bound."
    );
}
