//! Measured Figure 7 — throughput under a live update stream with
//! background retrains, against a `ClassifierHandle`, validated against the
//! analytic §3.9 model (`nm_analysis::throughput_at`).
//!
//! Where `fig7` *models* the curve, this binary *measures* it: one reader
//! thread classifies batches against lock-free snapshots while an updater
//! drifts rules to the remainder at a fixed rate and retrains fire on their
//! period.
//!
//! ## Methodology
//!
//! * The update stream is §3.9's worst structural case with the drift
//!   dynamics isolated: every op is a **matching-set change** (modify), so
//!   the live version always migrates to the remainder; the re-inserted box
//!   is unchanged, so a retrain can always restore the build-time structure.
//!   (Updates that also *degrade* the rule-set's iSet coverage measure
//!   partition quality, not the Figure 7 drift model.)
//! * Both curves are normalised at the first in-run sample. This box has
//!   one core, so the updater and retrainer time-share with the reader; the
//!   constant share they steal cancels under self-normalisation, while the
//!   *shape* — exponential decay to the remainder floor, recovery at each
//!   retrain publish — is exactly what the model predicts and what is
//!   compared.
//! * Samples whose window straddles a retrain publish are excluded from the
//!   error statistic: the model steps at exactly `k·τ + T`, the measurement
//!   a scheduler tick later, and comparing across that step measures timing
//!   jitter, not the drift model. The rest are the "modeled drift points":
//!   mean relative error ≤ 20% passes; a miss prints WARN (and fails the
//!   process only under `NM_STRICT=1`).
//!
//! ```sh
//! cargo run -p nm-bench --release --bin update_bench
//! ```

use nm_analysis::{throughput_at, UpdateModel};
use nm_bench::{nm_tm_handle, scale};
use nm_classbench::{generate, AppKind};
use nm_common::{SplitMix64, UpdateBatch};
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;
use nuevomatch::system::parallel::run_batched;
use nuevomatch::{measure_update_curve, ClassifierHandle, UpdateBenchConfig};

/// One update transaction: `ops` uniform-random rules re-inserted with
/// unchanged boxes — each a §3.9 matching-set change that tombstones the
/// iSet copy and lands the live version in the remainder.
fn drift_batch(set: &nm_common::RuleSet, rng: &mut SplitMix64, ops: usize) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for _ in 0..ops {
        let rule = set.rule_at(rng.below(set.len() as u64) as usize);
        batch = batch.modify(rule.clone());
    }
    batch
}

fn main() {
    let s = scale();
    let n = if s.full { 100_000 } else { 10_000 };
    let (horizon, retrain_period) = if s.full { (30.0, 10.0) } else { (12.0, 4.0) };
    // u·t/r reaches ~1.2 over the horizon; 128-op transactions keep the
    // copy-on-write writer to a few publishes per second.
    let update_rate = n as f64 / 10.0;
    let ops_per_batch = 128;
    let set = generate(AppKind::Acl, n, 0x716);
    let trace = uniform_trace(&set, s.trace_len.min(100_000), 0x717);

    println!("=== update_bench — measured Figure 7 ({n} rules, {update_rate:.0} updates/s) ===\n");

    // Measured baselines: remainder-only throughput (TupleMerge over the
    // full set) and fresh NuevoMatch throughput parameterise the model's
    // floor and ceiling.
    let tm = TupleMerge::build(&set);
    let tm_pps = run_batched(&tm, &trace, 128).pps;
    let handle: ClassifierHandle<TupleMerge> = nm_tm_handle(&set);
    let fresh_pps = run_batched(&handle, &trace, 128).pps;
    let remainder_ratio = (tm_pps / fresh_pps).min(1.0);
    // Time one retrain under realistic drift to parameterise the model's T
    // (and leave the handle fresh for the measured run).
    let mut rng = SplitMix64::new(0x718);
    handle.apply(&drift_batch(&set, &mut rng, (update_rate as usize).max(1)));
    let t0 = std::time::Instant::now();
    handle.retrain().expect("warmup retrain");
    let train_time = t0.elapsed().as_secs_f64();
    println!(
        "fresh: {fresh_pps:.3e} pps   remainder-only: {tm_pps:.3e} pps (ratio {remainder_ratio:.3})   \
         measured train time: {train_time:.2}s\n"
    );

    // The measured run.
    let cfg = UpdateBenchConfig {
        duration_s: horizon,
        sample_every_s: horizon / 40.0,
        updates_per_s: update_rate,
        ops_per_batch,
        retrain_period_s: retrain_period,
        batch: 128,
    };
    let curve =
        measure_update_curve(&handle, &trace, &cfg, |_| drift_batch(&set, &mut rng, ops_per_batch));
    if curve.len() < 4 {
        println!("WARN: too few samples ({}) to compare against the model", curve.len());
        return;
    }

    let model = UpdateModel {
        rules: n as f64,
        update_rate,
        retrain_period,
        train_time,
        fresh_throughput: 1.0,
        remainder_throughput: remainder_ratio,
    };
    // Anchor both curves at the first sample: constant single-core
    // measurement overhead cancels, the drift/recovery shape remains.
    let anchor_pps = curve[0].pps.max(1e-9);
    let anchor_model = throughput_at(&model, curve[0].t_s);

    println!(
        "{:>7}  {:>12}  {:>9}  {:>9}  {:>8}  {:>9}  {:>8}",
        "t (s)", "pps", "measured", "modeled", "err", "rem-frac", "retrains"
    );
    let mut errs = Vec::new();
    let mut prev_retrains = curve[0].retrains;
    for p in &curve {
        let measured = p.pps / anchor_pps;
        let modeled = throughput_at(&model, p.t_s) / anchor_model;
        let err = (measured - modeled) / modeled;
        // A sample whose window straddles a retrain publish compares two
        // different regimes; keep it out of the drift-point statistic.
        let at_swap = p.retrains != prev_retrains;
        prev_retrains = p.retrains;
        if !at_swap {
            errs.push(err.abs());
        }
        println!(
            "{:>7.2}  {:>12.3e}  {:>9.3}  {:>9.3}  {:>7.1}%{}  {:>9.3}  {:>8}",
            p.t_s,
            p.pps,
            measured,
            modeled,
            err * 100.0,
            if at_swap { "*" } else { " " },
            p.remainder_fraction,
            p.retrains
        );
        println!(
            "UPDATE_BENCH {{\"t_s\":{:.3},\"pps\":{:.1},\"normalized\":{:.4},\"modeled\":{:.4},\
             \"generation\":{},\"update_rate\":{:.1},\"remainder_fraction\":{:.4},\"retrains\":{}}}",
            p.t_s, p.pps, measured, modeled, p.generation, update_rate, p.remainder_fraction,
            p.retrains
        );
    }
    let mean_err = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
    let within = errs.iter().filter(|e| **e <= 0.20).count();
    println!(
        "\nmodel tracking at {} drift points (samples at a retrain swap excluded): \
         mean |err| {:.1}%, {}/{} within 20%",
        errs.len(),
        mean_err * 100.0,
        within,
        errs.len()
    );
    let pass = mean_err <= 0.20;
    println!(
        "{}",
        if pass {
            "PASS: measured curve tracks the analytic model"
        } else {
            "WARN: tracking above 20% (single-core time-sharing skews the measurement)"
        }
    );
    if !pass && std::env::var("NM_STRICT").as_deref() == Ok("1") {
        std::process::exit(1);
    }
}
