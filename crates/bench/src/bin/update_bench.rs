//! Measured Figure 7 — throughput under a live update stream with
//! background retrains, against a `ClassifierHandle`, validated against the
//! analytic §3.9 model (`nm_analysis::throughput_at`).
//!
//! Where `fig7` *models* the curve, this binary *measures* it: one reader
//! thread classifies batches against lock-free snapshots while an updater
//! drifts rules to the remainder at a fixed rate and retrains fire on their
//! period.
//!
//! ## Methodology
//!
//! * The update stream is §3.9's worst structural case with the drift
//!   dynamics isolated: every op is a **matching-set change** (modify), so
//!   the live version always migrates to the remainder; the re-inserted box
//!   is unchanged, so a retrain can always restore the build-time structure.
//!   (Updates that also *degrade* the rule-set's iSet coverage measure
//!   partition quality, not the Figure 7 drift model.)
//! * Both curves are normalised at the first in-run sample. This box has
//!   one core, so the updater and retrainer time-share with the reader; the
//!   constant share they steal cancels under self-normalisation, while the
//!   *shape* — exponential decay to the remainder floor, recovery at each
//!   retrain publish — is exactly what the model predicts and what is
//!   compared.
//! * Samples whose window straddles a retrain publish are excluded from the
//!   error statistic: the model steps at exactly `k·τ + T`, the measurement
//!   a scheduler tick later, and comparing across that step measures timing
//!   jitter, not the drift model. The rest are the "modeled drift points":
//!   mean relative error ≤ 20% passes; a miss prints WARN (and fails the
//!   process only under `NM_STRICT=1`).
//!
//! ## Partial vs full retraining
//!
//! After the curve, the binary measures the §3.9 refinement directly: a
//! **single-leaf drift** workload (modifies concentrated in neighbouring
//! positions of the largest iSet, boxes unchanged) is applied to two
//! identical handles; one republishes through
//! `ClassifierHandle::retrain_partial`, the other through `retrain_full`.
//! The verdicts of both results are compared bit-identically over the whole
//! trace, the latency ratio is reported (acceptance: partial ≥ 5× faster),
//! and a `BENCH_update.json` artifact records the latencies, update rate
//! and the analytic drift floors under both publish periods (override the
//! path with `NM_BENCH_JSON`).
//!
//! ```sh
//! cargo run -p nm-bench --release --bin update_bench
//! ```

use nm_analysis::{drift_floor, throughput_at, UpdateModel};
use nm_bench::{nm_tm_config, scale};
use nm_classbench::{generate, AppKind};
use nm_common::{Classifier, SplitMix64, UpdateBatch};
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;
use nuevomatch::system::parallel::run_batched;
use nuevomatch::{measure_update_curve, ClassifierHandle, PartialRetrainPolicy, UpdateBenchConfig};

/// One update transaction: `ops` uniform-random rules re-inserted with
/// unchanged boxes — each a §3.9 matching-set change that tombstones the
/// iSet copy and lands the live version in the remainder.
fn drift_batch(set: &nm_common::RuleSet, rng: &mut SplitMix64, ops: usize) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for _ in 0..ops {
        let rule = set.rule_at(rng.below(set.len() as u64) as usize);
        batch = batch.modify(rule.clone());
    }
    batch
}

fn main() {
    let s = scale();
    let n = if s.full { 100_000 } else { 10_000 };
    let (horizon, retrain_period) = if s.full { (30.0, 10.0) } else { (12.0, 4.0) };
    // u·t/r reaches ~1.2 over the horizon; 128-op transactions keep the
    // copy-on-write writer to a few publishes per second.
    let update_rate = n as f64 / 10.0;
    let ops_per_batch = 128;
    let set = generate(AppKind::Acl, n, 0x716);
    let trace = uniform_trace(&set, s.trace_len.min(100_000), 0x717);

    println!("=== update_bench — measured Figure 7 ({n} rules, {update_rate:.0} updates/s) ===\n");

    // Measured baselines: remainder-only throughput (TupleMerge over the
    // full set) and fresh NuevoMatch throughput parameterise the model's
    // floor and ceiling. The curve handle disables partial retraining: the
    // Figure 7 baseline is the *full-rebuild* regime the analytic model
    // describes; the partial regime is measured separately below.
    let tm = TupleMerge::build(&set);
    let tm_pps = run_batched(&tm, &trace, 128).pps;
    let full_only = nuevomatch::NuevoMatchConfig {
        partial_retrain: PartialRetrainPolicy::never(),
        ..nm_tm_config()
    };
    let handle: ClassifierHandle<TupleMerge> =
        ClassifierHandle::new(&set, &full_only, TupleMerge::build).expect("nm/tm handle build");
    let fresh_pps = run_batched(&handle, &trace, 128).pps;
    let remainder_ratio = (tm_pps / fresh_pps).min(1.0);
    // Time one retrain under realistic drift to parameterise the model's T
    // (and leave the handle fresh for the measured run).
    let mut rng = SplitMix64::new(0x718);
    handle.apply(&drift_batch(&set, &mut rng, (update_rate as usize).max(1)));
    let t0 = std::time::Instant::now();
    handle.retrain().expect("warmup retrain");
    let train_time = t0.elapsed().as_secs_f64();
    println!(
        "fresh: {fresh_pps:.3e} pps   remainder-only: {tm_pps:.3e} pps (ratio {remainder_ratio:.3})   \
         measured train time: {train_time:.2}s\n"
    );

    // The measured run.
    let cfg = UpdateBenchConfig {
        duration_s: horizon,
        sample_every_s: horizon / 40.0,
        updates_per_s: update_rate,
        ops_per_batch,
        retrain_period_s: retrain_period,
        batch: 128,
    };
    let measured =
        measure_update_curve(&handle, &trace, &cfg, |_| drift_batch(&set, &mut rng, ops_per_batch));
    let curve = &measured.points;
    let batch_lat = measured.batch_latency.summary_us();
    let mut curve_pass = true;
    if curve.len() < 4 {
        println!("WARN: too few samples ({}) to compare against the model", curve.len());
    } else {
        let model = UpdateModel {
            rules: n as f64,
            update_rate,
            retrain_period,
            train_time,
            fresh_throughput: 1.0,
            remainder_throughput: remainder_ratio,
        };
        // Anchor both curves at the first sample: constant single-core
        // measurement overhead cancels, the drift/recovery shape remains.
        let anchor_pps = curve[0].pps.max(1e-9);
        let anchor_model = throughput_at(&model, curve[0].t_s);

        println!(
            "{:>7}  {:>12}  {:>9}  {:>9}  {:>8}  {:>9}  {:>8}",
            "t (s)", "pps", "measured", "modeled", "err", "rem-frac", "retrains"
        );
        let mut errs = Vec::new();
        let mut prev_retrains = curve[0].retrains;
        for p in curve {
            let measured = p.pps / anchor_pps;
            let modeled = throughput_at(&model, p.t_s) / anchor_model;
            let err = (measured - modeled) / modeled;
            // A sample whose window straddles a retrain publish compares two
            // different regimes; keep it out of the drift-point statistic.
            let at_swap = p.retrains != prev_retrains;
            prev_retrains = p.retrains;
            if !at_swap {
                errs.push(err.abs());
            }
            println!(
                "{:>7.2}  {:>12.3e}  {:>9.3}  {:>9.3}  {:>7.1}%{}  {:>9.3}  {:>8}",
                p.t_s,
                p.pps,
                measured,
                modeled,
                err * 100.0,
                if at_swap { "*" } else { " " },
                p.remainder_fraction,
                p.retrains
            );
            println!(
            "UPDATE_BENCH {{\"t_s\":{:.3},\"pps\":{:.1},\"normalized\":{:.4},\"modeled\":{:.4},\
             \"generation\":{},\"update_rate\":{:.1},\"remainder_fraction\":{:.4},\"retrains\":{}}}",
            p.t_s, p.pps, measured, modeled, p.generation, update_rate, p.remainder_fraction,
            p.retrains
        );
        }
        let mean_err = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
        let within = errs.iter().filter(|e| **e <= 0.20).count();
        println!(
            "\nmodel tracking at {} drift points (samples at a retrain swap excluded): \
         mean |err| {:.1}%, {}/{} within 20%",
            errs.len(),
            mean_err * 100.0,
            within,
            errs.len()
        );
        curve_pass = mean_err <= 0.20;
        println!(
            "{}",
            if curve_pass {
                "PASS: measured curve tracks the analytic model"
            } else {
                "WARN: tracking above 20% (single-core time-sharing skews the measurement)"
            }
        );
    }

    println!(
        "\nper-batch classify latency under the update stream ({} samples): \
         p50 {:.1}us  p99 {:.1}us  p99.9 {:.1}us",
        batch_lat.count, batch_lat.p50_us, batch_lat.p99_us, batch_lat.p999_us
    );

    // === Partial vs full retraining (single-leaf drift) ======================
    //
    // The §3.9 refinement head-to-head: two identical handles take the same
    // concentrated drift (neighbouring positions of the largest iSet,
    // boxes unchanged — one or two leaf submodels' key regions); one
    // republishes via the leaf-level partial path, the other via a full
    // rebuild. Same rule truth in, so the verdicts must be bit-identical.
    println!("\n=== partial vs full retrain (single-leaf drift) ===\n");
    let h_partial = ClassifierHandle::new(&set, &nm_tm_config(), TupleMerge::build)
        .expect("nm/tm handle build");
    let h_full = ClassifierHandle::new(&set, &nm_tm_config(), TupleMerge::build)
        .expect("nm/tm handle build");
    // Latency, via the shared methodology (`measure_retrain_latencies`,
    // also behind `nmctl update-bench --bench-json`): concentrated drift at
    // the low end of the largest iSet, partial vs full timed on the same
    // handle. Leaves h_full drift-free.
    let lat = nuevomatch::measure_retrain_latencies(&h_full, &set)
        .expect("retrain latency measurement (concentrated drift must pass gates)");
    let (partial_s, full_s) = (lat.partial_s, lat.full_s);
    let (drift_ops, dirty_fraction) = (lat.drift_ops, lat.dirty_leaf_fraction);
    let speedup = lat.speedup();

    // Verdict equivalence: the same concentrated drift on both handles, one
    // republishing through each path — then bit-identical over the trace.
    let leaf_batch = nuevomatch::concentrated_drift(h_partial.snapshot().engine(), &set, drift_ops)
        .expect("concentrated drift batch");
    h_partial.apply(&leaf_batch);
    h_full.apply(&leaf_batch);
    h_partial.retrain_partial().expect("partial retrain");
    h_full.retrain_full().expect("full retrain");
    let (raw, stride, packets) = (trace.raw(), trace.stride(), trace.len());
    let (sp, sf) = (h_partial.snapshot(), h_full.snapshot());
    let mut mismatches = 0usize;
    let mut out_p = vec![None; 128];
    let mut out_f = vec![None; 128];
    let mut lo = 0usize;
    while lo < packets {
        let hi = (lo + 128).min(packets);
        sp.classify_batch(&raw[lo * stride..hi * stride], stride, &mut out_p[..hi - lo]);
        sf.classify_batch(&raw[lo * stride..hi * stride], stride, &mut out_f[..hi - lo]);
        mismatches += (0..hi - lo).filter(|&i| out_p[i] != out_f[i]).count();
        lo = hi;
    }
    let equivalent = mismatches == 0;

    // The floor each publish latency *enables*: retraining as fast as the
    // publish period permits (τ = 2T), drift peaks at u·3T/r — the §3.9
    // refinement's payoff is that T (and with it the whole cycle) shrinks.
    let floor_at = |train_time: f64| {
        drift_floor(&UpdateModel {
            rules: n as f64,
            update_rate,
            retrain_period: 2.0 * train_time,
            train_time,
            fresh_throughput: 1.0,
            remainder_throughput: remainder_ratio,
        })
    };
    let (floor_full, floor_partial) = (floor_at(full_s), floor_at(partial_s));
    println!(
        "drift: {drift_ops} ops, {:.0}% of leaves dirty\n\
         partial retrain: {partial_s:.4}s   full rebuild: {full_s:.4}s   speedup: {speedup:.1}x\n\
         verdicts: {}\n\
         modeled drift floor at tau=2T (normalised): full {floor_full:.4} -> partial \
         {floor_partial:.4}",
        dirty_fraction * 100.0,
        if equivalent {
            format!("bit-identical over {packets} packets")
        } else {
            format!("DIVERGED on {mismatches}/{packets} packets")
        },
    );
    let partial_pass = speedup >= 5.0 && equivalent;
    println!(
        "{}",
        if !equivalent {
            "FAIL: partial and full retrain verdicts diverged — correctness bug"
        } else if partial_pass {
            "PASS: partial retrain republishes >= 5x faster than a full rebuild"
        } else {
            "WARN: partial retrain speedup below 5x"
        }
    );

    // Machine-readable artifact for the CI update-soak job (perf trajectory
    // over time); NM_BENCH_JSON overrides the output path.
    let json_path =
        std::env::var("NM_BENCH_JSON").unwrap_or_else(|_| "BENCH_update.json".to_string());
    let artifact = format!(
        "{{\"rules\":{n},\"update_rate\":{update_rate:.1},\"retrain_period_s\":{retrain_period:.2},\
         \"train_full_s\":{full_s:.5},\"train_partial_s\":{partial_s:.5},\
         \"partial_speedup\":{speedup:.2},\"drift_ops\":{drift_ops},\
         \"dirty_leaf_fraction\":{dirty_fraction:.4},\"verdict_equivalent\":{equivalent},\
         \"drift_floor_full\":{floor_full:.4},\"drift_floor_partial\":{floor_partial:.4},\
         \"curve_points\":{},\"remainder_ratio\":{remainder_ratio:.4},\
         \"batch_p50_us\":{:.3},\"batch_p99_us\":{:.3},\"batch_p999_us\":{:.3}}}\n",
        curve.len(),
        batch_lat.p50_us,
        batch_lat.p99_us,
        batch_lat.p999_us
    );
    match std::fs::write(&json_path, &artifact) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => println!("\nWARN: could not write {json_path}: {e}"),
    }

    // A verdict divergence is a correctness bug, not measurement noise: it
    // always fails the process — but only after the artifact is on disk so
    // CI records the regression instead of losing it.
    if !equivalent {
        std::process::exit(2);
    }
    if (!curve_pass || !partial_pass) && std::env::var("NM_STRICT").as_deref() == Ok("1") {
        std::process::exit(1);
    }
}
