//! Open-loop tail-latency sweep of the `system::serve` wire front-end.
//!
//! Starts the real serving stack — UDP socket, deadline micro-batching
//! reader, `ClassifierHandle` data plane — on loopback and subjects it to
//! **open-loop Poisson arrivals** at a sweep of offered loads. Unlike a
//! closed-loop driver (whose arrival rate collapses when the server slows,
//! hiding queueing delay — the coordinated-omission trap), the sender here
//! follows a precomputed arrival schedule regardless of response progress,
//! and each response's latency is measured from its *scheduled* arrival
//! time. Queue buildup near saturation therefore shows up where it belongs:
//! in the tail.
//!
//! ## Methodology
//!
//! * **Baseline**: a closed-loop client measures the per-request wire RTT
//!   (one in flight; includes the assembly deadline by design, since a
//!   batch of one only flushes on deadline).
//! * **Capacity estimate**: a short open-loop burst offered well past
//!   saturation; what actually comes back per second is the per-datagram
//!   service ceiling, and the sweep's offered loads are fractions of it.
//! * **Sweep**: each point precomputes a Poisson schedule at the offered
//!   rate, blasts it from a dedicated socket, and bins `recv_time −
//!   scheduled_send_time` into a log-bucketed `LatencyHistogram`. p50/p99/
//!   p99.9, loss and throughput land in `BENCH_serve.json` (path override:
//!   `NM_BENCH_JSON`), one point per line on stdout as `SERVE_BENCH {...}`.
//! * **Knee**: the first load point whose p99 exceeds 5x the best p99 seen
//!   across the sweep (or loses > 1% of requests) is the latency knee.
//! * **Gate** (`NM_STRICT=1`): the best p99 across the sweep must stay
//!   under 50x the closed-loop p50 — an uncongested tail is a
//!   batching-logic property, not a capacity property, so it is stable
//!   enough to gate on (and taking the sweep's best row keeps one noisy
//!   neighbour-loaded point from failing the build).
//!
//! ```sh
//! cargo run -p nm-bench --release --bin serve_bench          # quick scale
//! NM_SCALE=full cargo run -p nm-bench --release --bin serve_bench
//! ```

use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nm_bench::{nm_tm_config, scale};
use nm_classbench::{generate, AppKind};
use nm_common::frame::{decode_response, encode_request};
use nm_common::{LatencyHistogram, SplitMix64};
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;
use nuevomatch::{ClassifierHandle, ServeClient, ServeConfig, Server, Transport};

/// One measured offered-load point.
struct Point {
    offered_pps: f64,
    sent: u64,
    received: u64,
    hist: LatencyHistogram,
}

/// Runs one open-loop point against `addr`: Poisson arrivals at
/// `rate_pps` for `duration`, latency measured from the scheduled arrival.
fn open_loop_point(
    addr: std::net::SocketAddr,
    trace: &nm_common::TraceBuf,
    rate_pps: f64,
    duration: f64,
    seed: u64,
) -> std::io::Result<Point> {
    // Precompute the arrival schedule (nanosecond offsets) so the sender
    // never pauses to draw randomness and the receiver can recover each
    // request's scheduled time from its id alone.
    let mut sched = Vec::new();
    let mut rng = SplitMix64::new(seed);
    let mut t = 0.0f64;
    while t < duration {
        sched.push((t * 1e9) as u64);
        t += -(1.0 - rng.f64()).ln() / rate_pps;
    }
    let sched = Arc::new(sched);
    let n = sched.len();

    let sock = Arc::new(UdpSocket::bind(("127.0.0.1", 0))?);
    sock.connect(addr)?;
    let done = Arc::new(AtomicBool::new(false));
    // One epoch for both threads — separate `Instant::now()` calls would
    // skew every latency by the receiver thread's startup time.
    let t0 = Instant::now();

    // Receiver: drain responses, bin `now - scheduled` per id.
    let receiver = {
        let sock = sock.clone();
        let sched = sched.clone();
        let done = done.clone();
        std::thread::spawn(move || -> std::io::Result<(u64, LatencyHistogram)> {
            sock.set_read_timeout(Some(Duration::from_millis(50)))?;
            let mut hist = LatencyHistogram::new();
            let mut received = 0u64;
            let mut buf = vec![0u8; 64 * 1024];
            loop {
                match sock.recv(&mut buf) {
                    Ok(len) => {
                        let now = t0.elapsed().as_nanos() as u64;
                        let mut off = 0;
                        while let Ok(Some((frame, used))) = decode_response(&buf[off..len]) {
                            if let Some(&at) = sched.get(frame.id as usize) {
                                hist.record(now.saturating_sub(at).max(1));
                                received += 1;
                            }
                            off += used;
                            if off >= len {
                                break;
                            }
                        }
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        if done.load(Relaxed) {
                            return Ok((received, hist));
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
        })
    };

    // Sender: follow the schedule; when behind, send immediately — the
    // backlog is the open-loop signal, not something to absorb.
    let (raw, stride, keys) = (trace.raw(), trace.stride(), trace.len());
    let mut wire = Vec::with_capacity(64);
    for (i, &at) in sched.iter().enumerate() {
        // Sleep the long stretch, spin the last ~100us: a pure spin-wait
        // would starve the server on a small box, inflating every latency
        // with scheduler noise; sleeping right up to the mark would send
        // late by a timer tick. (A late send still measures against the
        // *scheduled* time — the open-loop contract.)
        loop {
            let now = t0.elapsed().as_nanos() as u64;
            if now >= at {
                break;
            }
            if at - now > 20_000 {
                std::thread::sleep(Duration::from_nanos(at - now - 20_000));
            } else {
                std::hint::spin_loop();
            }
        }
        let k = i % keys;
        wire.clear();
        encode_request(&mut wire, i as u64, &raw[k * stride..(k + 1) * stride]);
        let _ = sock.send(&wire); // a full socket buffer is loss, counted below
    }
    // Give in-flight responses a drain window before stopping the receiver.
    std::thread::sleep(Duration::from_millis(150));
    done.store(true, Relaxed);
    let (received, hist) = receiver.join().expect("receiver panicked")?;
    Ok(Point { offered_pps: rate_pps, sent: n as u64, received, hist })
}

fn main() {
    let s = scale();
    let n = if s.full { 100_000 } else { 10_000 };
    let point_secs = if s.full { 3.0 } else { 1.0 };
    let fractions: &[f64] =
        if s.full { &[0.1, 0.3, 0.5, 0.7, 0.9, 1.1] } else { &[0.25, 0.5, 0.9] };

    let set = generate(AppKind::Acl, n, 0x5e12);
    let trace = uniform_trace(&set, s.trace_len.min(100_000), 0x5e13);
    let t_build = Instant::now();
    let handle: ClassifierHandle<TupleMerge> =
        ClassifierHandle::new(&set, &nm_tm_config(), TupleMerge::build).expect("nm/tm build");
    let build_s = t_build.elapsed().as_secs_f64();

    let cfg = ServeConfig { transport: Transport::Udp, ..ServeConfig::default() };
    let server = Server::start(handle, &cfg).expect("bind loopback");
    let addr = server.udp_addr().expect("udp bound");
    println!(
        "=== serve_bench — open-loop tail latency ({n} rules, udp {addr}, \
         batch {} / {}us deadline) ===\n",
        cfg.max_batch,
        cfg.deadline.as_micros()
    );

    // Closed-loop baseline: one request in flight, wire round-trip.
    let mut client = ServeClient::udp(addr).expect("client socket");
    let (raw, stride, keys) = (trace.raw(), trace.stride(), trace.len());
    let mut closed = LatencyHistogram::new();
    for i in 0..2_000u64 {
        let k = (i as usize) % keys;
        let t = Instant::now();
        client
            .call(i, &raw[k * stride..(k + 1) * stride], Duration::from_millis(200))
            .expect("closed-loop call");
        closed.record_duration(t.elapsed());
    }
    let closed_us = closed.summary_us();
    println!(
        "closed-loop wire RTT (1 in flight, deadline-bound): p50 {:.1}us  p99 {:.1}us",
        closed_us.p50_us, closed_us.p99_us
    );

    // Capacity estimate: a short *open-loop* probe well past saturation —
    // what comes back is what the whole serving path (sender syscalls,
    // reader, classify, receiver) can actually sustain per second. A
    // closed-loop probe would overestimate: its burst-and-drain rhythm has
    // a different syscall/context-switch profile than Poisson arrivals.
    let probe_rate = if s.full { 1_000_000.0 } else { 400_000.0 };
    let probe = open_loop_point(addr, &trace, probe_rate, 0.4, 0x5e1f).expect("capacity probe");
    let capacity = probe.received as f64 / 0.4;
    println!("capacity estimate (open-loop probe at {probe_rate:.0e} pps): {capacity:.3e} pps\n");

    // The sweep.
    println!(
        "{:>12}  {:>10}  {:>8}  {:>9}  {:>9}  {:>9}  {:>9}",
        "offered pps", "received", "loss", "p50 us", "p99 us", "p99.9 us", "mean us"
    );
    let mut points = Vec::new();
    for (i, f) in fractions.iter().enumerate() {
        let rate = (capacity * f).max(100.0);
        let p = open_loop_point(addr, &trace, rate, point_secs, 0x5e20 + i as u64)
            .expect("open-loop point");
        let u = p.hist.summary_us();
        let loss = 1.0 - p.received as f64 / p.sent.max(1) as f64;
        println!(
            "{:>12.3e}  {:>10}  {:>7.2}%  {:>9.1}  {:>9.1}  {:>9.1}  {:>9.1}",
            p.offered_pps,
            p.received,
            loss * 100.0,
            u.p50_us,
            u.p99_us,
            u.p999_us,
            u.mean_us
        );
        println!(
            "SERVE_BENCH {{\"offered_pps\":{:.1},\"sent\":{},\"received\":{},\
             \"loss_fraction\":{:.5},\"p50_us\":{:.1},\"p99_us\":{:.1},\"p999_us\":{:.1},\
             \"mean_us\":{:.1}}}",
            p.offered_pps, p.sent, p.received, loss, u.p50_us, u.p99_us, u.p999_us, u.mean_us
        );
        points.push(p);
    }

    // Knee: where the tail diverges from the best tail seen across the
    // sweep. (The best point, not the lowest-load one: a sparse-arrival
    // point pays full deadline + wakeup jitter per request and is the
    // noisiest row on a shared box, so anchoring on it misfires both ways.)
    let base_p99 =
        points.iter().map(|p| p.hist.summary_us().p99_us).fold(f64::INFINITY, f64::min).max(1.0);
    let knee = points
        .iter()
        .find(|p| {
            let u = p.hist.summary_us();
            let loss = 1.0 - p.received as f64 / p.sent.max(1) as f64;
            u.p99_us > 5.0 * base_p99 || loss > 0.01
        })
        .map(|p| p.offered_pps);
    match knee {
        Some(k) => println!("\np99 knee: offered load {k:.3e} pps (>5x low-load p99 or >1% loss)"),
        None => println!("\np99 knee: not reached within the swept loads"),
    }

    let stats = server.shutdown();
    let server_us = stats.latency.summary_us();
    println!(
        "server-side service latency over the whole run: p50 {:.1}us  p99 {:.1}us  \
         ({} batches: {} full / {} deadline flushes)",
        server_us.p50_us,
        server_us.p99_us,
        stats.batches,
        stats.full_flushes,
        stats.deadline_flushes
    );

    // Gate: the best p99 across the sweep against the closed-loop
    // baseline — a systematic tail blowup (busted deadline loop, reader
    // busy-spin regression) inflates every point, while one noisy row
    // (CI neighbours) shouldn't fail the build.
    let low_p99 = base_p99;
    let gate = 50.0 * closed_us.p50_us;
    let pass = low_p99 <= gate;
    println!(
        "{}",
        if pass {
            format!("PASS: best p99 {low_p99:.1}us <= 50x closed-loop p50 ({gate:.1}us)")
        } else {
            format!("WARN: best p99 {low_p99:.1}us exceeds 50x closed-loop p50 ({gate:.1}us)")
        }
    );

    // Machine-readable artifact for CI (NM_BENCH_JSON overrides the path).
    let json_path =
        std::env::var("NM_BENCH_JSON").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    let mut pts = String::new();
    for (i, p) in points.iter().enumerate() {
        let u = p.hist.summary_us();
        let loss = 1.0 - p.received as f64 / p.sent.max(1) as f64;
        if i > 0 {
            pts.push(',');
        }
        pts.push_str(&format!(
            "{{\"offered_pps\":{:.1},\"sent\":{},\"received\":{},\"loss_fraction\":{:.5},\
             \"p50_us\":{:.1},\"p99_us\":{:.1},\"p999_us\":{:.1},\"mean_us\":{:.1}}}",
            p.offered_pps, p.sent, p.received, loss, u.p50_us, u.p99_us, u.p999_us, u.mean_us
        ));
    }
    let artifact = format!(
        "{{\"rules\":{n},\"build_s\":{build_s:.3},\"transport\":\"udp\",\"max_batch\":{},\
         \"deadline_us\":{},\"closed_loop_p50_us\":{:.1},\"closed_loop_p99_us\":{:.1},\
         \"capacity_est_pps\":{capacity:.1},\"points\":[{pts}],\"knee_offered_pps\":{},\
         \"server_p50_us\":{:.1},\"server_p99_us\":{:.1},\"server_batches\":{},\
         \"gate_p99_us_max\":{gate:.1},\"gate_pass\":{pass}}}\n",
        cfg.max_batch,
        cfg.deadline.as_micros(),
        closed_us.p50_us,
        closed_us.p99_us,
        knee.map_or("null".to_string(), |k| format!("{k:.1}")),
        server_us.p50_us,
        server_us.p99_us,
        stats.batches,
    );
    match std::fs::write(&json_path, &artifact) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => println!("\nWARN: could not write {json_path}: {e}"),
    }

    if !pass && std::env::var("NM_STRICT").as_deref() == Ok("1") {
        std::process::exit(1);
    }
}
