//! Open-loop tail-latency sweep of the `system::serve` wire front-end.
//!
//! Starts the real serving stack — `SO_REUSEPORT` UDP reader fleet,
//! deadline micro-batching, `ClassifierHandle` data plane — on loopback
//! and subjects it to **open-loop Poisson arrivals** at a sweep of offered
//! loads, once per reader count. Unlike a closed-loop driver (whose
//! arrival rate collapses when the server slows, hiding queueing delay —
//! the coordinated-omission trap), the sender here follows a precomputed
//! arrival schedule regardless of response progress, and each response's
//! latency is measured from its *scheduled* arrival time. Queue buildup
//! near saturation therefore shows up where it belongs: in the tail.
//!
//! ## Methodology
//!
//! * **Baseline**: a closed-loop client measures the per-request wire RTT
//!   (one in flight; includes the assembly deadline by design, since a
//!   batch of one only flushes on deadline) against its own dedicated
//!   server, keeping the swept servers' syscall counters clean.
//! * **Reader sweep** (`--readers 1,2,4` after `--`, or `NM_READERS`): the
//!   whole measurement repeats per reader count on a fresh server. Load is
//!   offered from several client sockets — `SO_REUSEPORT` steers flows by
//!   4-tuple hash, so a single source port would land every packet on one
//!   reader.
//! * **Capacity estimate**: a short open-loop burst offered well past
//!   saturation; what actually comes back per second is the service
//!   ceiling, and the sweep's offered loads are fractions of it.
//! * **Syscalls per packet**: server-side `recvmmsg`/`sendmmsg` counter
//!   deltas around each phase, over requests served in that phase. The
//!   saturated capacity probe is the headline number — batched I/O
//!   amortizes one receive and one send syscall over up to `max_batch`
//!   requests, versus ~2.0 for the old per-datagram path.
//! * **Knee**: the first load point whose p99 exceeds 5x the best p99 of
//!   its sweep (or loses > 1% of requests) is the latency knee. If the
//!   fraction sweep tops out under capacity, extra points keep pushing
//!   past the capacity estimate until the knee fires; a sweep that still
//!   ends knee-less records an explicit `"knee": "beyond-sweep"` instead
//!   of a silent null.
//! * **Gates** (`NM_STRICT=1`): the best p99 across all sweeps must stay
//!   under 50x the closed-loop p50, and the best probe-phase
//!   syscalls-per-packet must stay under 0.1 at the default batch of 128.
//!
//! ```sh
//! cargo run -p nm-bench --release --bin serve_bench            # quick scale
//! NM_SCALE=full cargo run -p nm-bench --release --bin serve_bench -- --readers 1,2,4
//! ```

use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nm_bench::{nm_tm_config, scale};
use nm_classbench::{generate, AppKind};
use nm_common::frame::{decode_response, encode_request};
use nm_common::{LatencyHistogram, SplitMix64};
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;
use nuevomatch::system::serve::ReaderKind;
use nuevomatch::{ClassifierHandle, ServeClient, ServeConfig, ServeStats, Server, Transport};

/// One measured offered-load point.
struct Point {
    offered_pps: f64,
    sent: u64,
    received: u64,
    hist: LatencyHistogram,
    /// Server-side kernel crossings per request during this point
    /// (productive recv + send syscall deltas over request deltas).
    syscalls_per_packet: f64,
}

/// Kernel crossings per request between two server stats snapshots.
fn syscall_ratio(before: &ServeStats, after: &ServeStats) -> f64 {
    let calls =
        (after.recv_calls + after.send_calls).saturating_sub(before.recv_calls + before.send_calls);
    let reqs = after.requests.saturating_sub(before.requests);
    calls as f64 / reqs.max(1) as f64
}

/// Runs one open-loop point against `addr`: Poisson arrivals at
/// `rate_pps` for `duration`, latency measured from the scheduled arrival.
/// Requests round-robin over `socks_n` client sockets so `SO_REUSEPORT`
/// 4-tuple hashing actually spreads the load across the reader fleet.
fn open_loop_point(
    addr: std::net::SocketAddr,
    trace: &nm_common::TraceBuf,
    rate_pps: f64,
    duration: f64,
    seed: u64,
    socks_n: usize,
) -> std::io::Result<(u64, u64, LatencyHistogram)> {
    // Precompute the arrival schedule (nanosecond offsets) so the sender
    // never pauses to draw randomness and the receivers can recover each
    // request's scheduled time from its id alone.
    let mut sched = Vec::new();
    let mut rng = SplitMix64::new(seed);
    let mut t = 0.0f64;
    while t < duration {
        sched.push((t * 1e9) as u64);
        t += -(1.0 - rng.f64()).ln() / rate_pps;
    }
    let sched = Arc::new(sched);
    let n = sched.len();

    let socks_n = socks_n.max(1);
    let mut socks = Vec::with_capacity(socks_n);
    for _ in 0..socks_n {
        let s = UdpSocket::bind(("127.0.0.1", 0))?;
        s.connect(addr)?;
        socks.push(Arc::new(s));
    }
    let done = Arc::new(AtomicBool::new(false));
    // One epoch for every thread — separate `Instant::now()` calls would
    // skew every latency by the receiver threads' startup time.
    let t0 = Instant::now();

    // One receiver per socket: drain responses, bin `now - scheduled`.
    let mut receivers = Vec::with_capacity(socks_n);
    for sock in &socks {
        let sock = sock.clone();
        let sched = sched.clone();
        let done = done.clone();
        receivers.push(std::thread::spawn(move || -> std::io::Result<(u64, LatencyHistogram)> {
            sock.set_read_timeout(Some(Duration::from_millis(50)))?;
            let mut hist = LatencyHistogram::new();
            let mut received = 0u64;
            let mut buf = vec![0u8; 64 * 1024];
            loop {
                match sock.recv(&mut buf) {
                    Ok(len) => {
                        let now = t0.elapsed().as_nanos() as u64;
                        let mut off = 0;
                        while let Ok(Some((frame, used))) = decode_response(&buf[off..len]) {
                            if let Some(&at) = sched.get(frame.id as usize) {
                                hist.record(now.saturating_sub(at).max(1));
                                received += 1;
                            }
                            off += used;
                            if off >= len {
                                break;
                            }
                        }
                    }
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        if done.load(Relaxed) {
                            return Ok((received, hist));
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
        }));
    }

    // Sender: follow the schedule; when behind, send immediately — the
    // backlog is the open-loop signal, not something to absorb.
    let (raw, stride, keys) = (trace.raw(), trace.stride(), trace.len());
    let mut wire = Vec::with_capacity(64);
    for (i, &at) in sched.iter().enumerate() {
        // Sleep the long stretch, spin the last ~100us: a pure spin-wait
        // would starve the server on a small box, inflating every latency
        // with scheduler noise; sleeping right up to the mark would send
        // late by a timer tick. (A late send still measures against the
        // *scheduled* time — the open-loop contract.)
        loop {
            let now = t0.elapsed().as_nanos() as u64;
            if now >= at {
                break;
            }
            if at - now > 20_000 {
                std::thread::sleep(Duration::from_nanos(at - now - 20_000));
            } else {
                std::hint::spin_loop();
            }
        }
        let k = i % keys;
        wire.clear();
        encode_request(&mut wire, i as u64, &raw[k * stride..(k + 1) * stride]);
        let _ = socks[i % socks_n].send(&wire); // a full socket buffer is loss
    }
    // Give in-flight responses a drain window before stopping receivers.
    std::thread::sleep(Duration::from_millis(150));
    done.store(true, Relaxed);
    let mut received = 0u64;
    let mut hist = LatencyHistogram::new();
    for r in receivers {
        let (got, h) = r.join().expect("receiver panicked")?;
        received += got;
        hist.merge(&h);
    }
    Ok((n as u64, received, hist))
}

/// Everything one reader-count's measurement produced.
struct Sweep {
    readers: usize,
    capacity: f64,
    probe_syscalls_per_packet: f64,
    points: Vec<Point>,
    knee: Option<f64>,
    stats: ServeStats,
    reader_requests_min: u64,
    reader_requests_max: u64,
    reader_p99_min_us: f64,
    reader_p99_max_us: f64,
}

/// `--readers a,b,c` (after `--` when run via cargo) or `NM_READERS`.
fn readers_arg() -> Option<Vec<usize>> {
    let mut from = None;
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--readers" {
            from = args.get(i + 1).cloned();
        }
    }
    if from.is_none() {
        from = std::env::var("NM_READERS").ok();
    }
    let list: Vec<usize> = from?
        .split(',')
        .filter_map(|x| x.trim().parse().ok())
        .filter(|&x| (1..=64).contains(&x))
        .collect();
    if list.is_empty() {
        None
    } else {
        Some(list)
    }
}

fn main() {
    let s = scale();
    let n = if s.full { 100_000 } else { 10_000 };
    let point_secs = if s.full { 3.0 } else { 1.0 };
    let fractions: &[f64] =
        if s.full { &[0.1, 0.3, 0.5, 0.7, 0.9, 1.1] } else { &[0.25, 0.5, 0.9] };
    let readers_list =
        readers_arg().unwrap_or_else(|| if s.full { vec![1, 2, 4] } else { vec![1, 2] });
    // Past the fraction sweep, keep pushing the offered load up by 30% a
    // point until the knee criterion fires (bounded — a sender-bound box
    // eventually *is* the knee, which the criterion registers as latency
    // divergence from the schedule).
    let max_extension_points = 4usize;

    let set = generate(AppKind::Acl, n, 0x5e12);
    let trace = uniform_trace(&set, s.trace_len.min(100_000), 0x5e13);
    let t_build = Instant::now();
    let handle: ClassifierHandle<TupleMerge> =
        ClassifierHandle::new(&set, &nm_tm_config(), TupleMerge::build).expect("nm/tm build");
    let build_s = t_build.elapsed().as_secs_f64();

    let cfg = ServeConfig { transport: Transport::Udp, ..ServeConfig::default() };
    println!(
        "=== serve_bench — open-loop tail latency ({n} rules, udp, batch {} / {}us deadline, \
         readers {readers_list:?}) ===\n",
        cfg.max_batch,
        cfg.deadline.as_micros()
    );

    // Closed-loop baseline against a dedicated single-reader server: one
    // request in flight, wire round-trip. Its per-request rhythm would
    // pollute the swept servers' syscalls-per-packet counters, hence the
    // separate instance.
    let closed_us = {
        let base_cfg = ServeConfig { udp_readers: 1, ..cfg.clone() };
        let server = Server::start(handle.clone(), &base_cfg).expect("bind loopback");
        let addr = server.udp_addr().expect("udp bound");
        let mut client = ServeClient::udp(addr).expect("client socket");
        let (raw, stride, keys) = (trace.raw(), trace.stride(), trace.len());
        let mut closed = LatencyHistogram::new();
        for i in 0..2_000u64 {
            let k = (i as usize) % keys;
            let t = Instant::now();
            client
                .call(i, &raw[k * stride..(k + 1) * stride], Duration::from_millis(200))
                .expect("closed-loop call");
            closed.record_duration(t.elapsed());
        }
        server.shutdown();
        closed.summary_us()
    };
    println!(
        "closed-loop wire RTT (1 in flight, deadline-bound): p50 {:.1}us  p99 {:.1}us",
        closed_us.p50_us, closed_us.p99_us
    );

    let probe_rate = if s.full { 1_000_000.0 } else { 400_000.0 };
    let mut sweeps: Vec<Sweep> = Vec::new();
    for (sweep_idx, &readers) in readers_list.iter().enumerate() {
        let scfg = ServeConfig { udp_readers: readers, ..cfg.clone() };
        let server = Server::start(handle.clone(), &scfg).expect("bind loopback");
        let addr = server.udp_addr().expect("udp bound");
        // Several source ports per reader so the kernel's 4-tuple hash has
        // enough flows to spread — one client socket is one flow and would
        // land on one reader no matter how many are serving.
        let socks_n = (readers * 4).clamp(4, 16);
        let seed0 = 0x5e20 + 0x100 * sweep_idx as u64;

        // Capacity estimate: a short *open-loop* probe well past
        // saturation — what comes back is what the whole serving path
        // (sender syscalls, readers, classify, receivers) actually
        // sustains per second. A closed-loop probe would overestimate: its
        // burst-and-drain rhythm has a different syscall profile than
        // Poisson arrivals.
        let before = server.stats();
        let (_, probe_received, _) =
            open_loop_point(addr, &trace, probe_rate, 0.4, seed0 ^ 0x0f, socks_n)
                .expect("capacity probe");
        let probe_ratio = syscall_ratio(&before, &server.stats());
        let capacity = probe_received as f64 / 0.4;
        println!(
            "\n--- readers {readers}: capacity estimate {capacity:.3e} pps \
             (probe at {probe_rate:.0e} pps, {probe_ratio:.4} syscalls/pkt) ---"
        );

        println!(
            "{:>12}  {:>10}  {:>8}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
            "offered pps", "received", "loss", "p50 us", "p99 us", "p99.9 us", "mean us", "sc/pkt"
        );
        let mut points: Vec<Point> = Vec::new();
        let mut knee: Option<f64> = None;
        // The planned fractions, then up to `max_extension_points` pushes
        // past the capacity estimate until the knee fires.
        let mut offered: Vec<f64> = fractions.iter().map(|f| (capacity * f).max(100.0)).collect();
        let mut extensions = 0usize;
        let mut i = 0usize;
        while i < offered.len() {
            let rate = offered[i];
            let before = server.stats();
            let (sent, received, hist) =
                open_loop_point(addr, &trace, rate, point_secs, seed0 + i as u64, socks_n)
                    .expect("open-loop point");
            let ratio = syscall_ratio(&before, &server.stats());
            let p = Point { offered_pps: rate, sent, received, hist, syscalls_per_packet: ratio };
            let u = p.hist.summary_us();
            let loss = 1.0 - p.received as f64 / p.sent.max(1) as f64;
            println!(
                "{:>12.3e}  {:>10}  {:>7.2}%  {:>9.1}  {:>9.1}  {:>9.1}  {:>9.1}  {:>9.4}",
                p.offered_pps,
                p.received,
                loss * 100.0,
                u.p50_us,
                u.p99_us,
                u.p999_us,
                u.mean_us,
                p.syscalls_per_packet
            );
            println!(
                "SERVE_BENCH {{\"readers\":{readers},\"offered_pps\":{:.1},\"sent\":{},\
                 \"received\":{},\"loss_fraction\":{:.5},\"p50_us\":{:.1},\"p99_us\":{:.1},\
                 \"p999_us\":{:.1},\"mean_us\":{:.1},\"syscalls_per_packet\":{:.4}}}",
                p.offered_pps,
                p.sent,
                p.received,
                loss,
                u.p50_us,
                u.p99_us,
                u.p999_us,
                u.mean_us,
                p.syscalls_per_packet
            );
            points.push(p);

            // Knee: where the tail diverges from the best tail seen so
            // far in this sweep (the best point, not the lowest-load one:
            // a sparse-arrival point pays full deadline + wakeup jitter
            // per request and is the noisiest row on a shared box).
            let base_p99 = points
                .iter()
                .map(|p| p.hist.summary_us().p99_us)
                .fold(f64::INFINITY, f64::min)
                .max(1.0);
            knee = points
                .iter()
                .find(|p| {
                    let u = p.hist.summary_us();
                    let loss = 1.0 - p.received as f64 / p.sent.max(1) as f64;
                    u.p99_us > 5.0 * base_p99 || loss > 0.01
                })
                .map(|p| p.offered_pps);
            i += 1;
            // Fraction sweep exhausted without a knee: keep offering more.
            if i == offered.len() && knee.is_none() && extensions < max_extension_points {
                let last = offered.last().copied().unwrap_or(capacity);
                offered.push(last.max(capacity) * 1.3);
                extensions += 1;
            }
        }
        match knee {
            Some(k) => {
                println!("p99 knee: offered load {k:.3e} pps (>5x best p99 or >1% loss)");
            }
            None => println!(
                "p99 knee: beyond-sweep (not reached within {} points, {} past capacity)",
                points.len(),
                extensions
            ),
        }

        // Per-reader spread before shutdown folds the slots: a heavily
        // skewed UDP reader means flow steering (or the client's source
        // port spread) is off.
        let udp_readers: Vec<ServeStats> = server
            .per_reader_stats()
            .into_iter()
            .filter(|(kind, _)| *kind == ReaderKind::Udp)
            .map(|(_, st)| st)
            .collect();
        let reader_requests_min = udp_readers.iter().map(|r| r.requests).min().unwrap_or(0);
        let reader_requests_max = udp_readers.iter().map(|r| r.requests).max().unwrap_or(0);
        let reader_p99_min_us = udp_readers
            .iter()
            .map(|r| r.latency.summary_us().p99_us)
            .fold(f64::INFINITY, f64::min)
            .min(1e12);
        let reader_p99_max_us =
            udp_readers.iter().map(|r| r.latency.summary_us().p99_us).fold(0.0, f64::max);
        let stats = server.shutdown();
        let server_us = stats.latency.summary_us();
        println!(
            "server-side over the whole sweep: p50 {:.1}us  p99 {:.1}us  ({} batches: {} full / \
             {} deadline; {} recv + {} send syscalls for {} requests = {:.4}/pkt; reader \
             requests {}..{})",
            server_us.p50_us,
            server_us.p99_us,
            stats.batches,
            stats.full_flushes,
            stats.deadline_flushes,
            stats.recv_calls,
            stats.send_calls,
            stats.requests,
            stats.syscalls_per_packet(),
            reader_requests_min,
            reader_requests_max,
        );
        sweeps.push(Sweep {
            readers,
            capacity,
            probe_syscalls_per_packet: probe_ratio,
            points,
            knee,
            stats,
            reader_requests_min,
            reader_requests_max,
            reader_p99_min_us,
            reader_p99_max_us,
        });
    }

    // Gates. Tail gate: the best p99 across every sweep against the
    // closed-loop baseline — a systematic tail blowup (busted deadline
    // loop, reader busy-spin regression) inflates every point, while one
    // noisy row (CI neighbours) shouldn't fail the build. Syscall gate:
    // the best saturated-probe ratio must show the recvmmsg/sendmmsg
    // amortization (< 0.1 crossings per packet at the default batch 128).
    let best_p99 = sweeps
        .iter()
        .flat_map(|sw| sw.points.iter())
        .map(|p| p.hist.summary_us().p99_us)
        .fold(f64::INFINITY, f64::min)
        .max(1.0);
    let gate = 50.0 * closed_us.p50_us;
    let tail_pass = best_p99 <= gate;
    println!(
        "\n{}",
        if tail_pass {
            format!("PASS: best p99 {best_p99:.1}us <= 50x closed-loop p50 ({gate:.1}us)")
        } else {
            format!("WARN: best p99 {best_p99:.1}us exceeds 50x closed-loop p50 ({gate:.1}us)")
        }
    );
    let best_probe_ratio =
        sweeps.iter().map(|sw| sw.probe_syscalls_per_packet).fold(f64::INFINITY, f64::min);
    let syscall_pass = best_probe_ratio < 0.1;
    println!(
        "{}",
        if syscall_pass {
            format!("PASS: saturated syscalls-per-packet {best_probe_ratio:.4} < 0.1")
        } else {
            format!("WARN: saturated syscalls-per-packet {best_probe_ratio:.4} >= 0.1")
        }
    );

    // Machine-readable artifact for CI (NM_BENCH_JSON overrides the path).
    let json_path =
        std::env::var("NM_BENCH_JSON").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    let mut sweeps_json = String::new();
    for (si, sw) in sweeps.iter().enumerate() {
        let mut pts = String::new();
        for (i, p) in sw.points.iter().enumerate() {
            let u = p.hist.summary_us();
            let loss = 1.0 - p.received as f64 / p.sent.max(1) as f64;
            if i > 0 {
                pts.push(',');
            }
            pts.push_str(&format!(
                "{{\"offered_pps\":{:.1},\"sent\":{},\"received\":{},\"loss_fraction\":{:.5},\
                 \"p50_us\":{:.1},\"p99_us\":{:.1},\"p999_us\":{:.1},\"mean_us\":{:.1},\
                 \"syscalls_per_packet\":{:.4}}}",
                p.offered_pps,
                p.sent,
                p.received,
                loss,
                u.p50_us,
                u.p99_us,
                u.p999_us,
                u.mean_us,
                p.syscalls_per_packet
            ));
        }
        let server_us = sw.stats.latency.summary_us();
        if si > 0 {
            sweeps_json.push(',');
        }
        sweeps_json.push_str(&format!(
            "{{\"readers\":{},\"capacity_est_pps\":{:.1},\
             \"probe_syscalls_per_packet\":{:.4},\"points\":[{}],\
             \"knee_offered_pps\":{},\"knee\":\"{}\",\
             \"server_p50_us\":{:.1},\"server_p99_us\":{:.1},\"server_batches\":{},\
             \"recv_calls\":{},\"empty_recv_calls\":{},\"send_calls\":{},\
             \"syscalls_per_packet\":{:.4},\
             \"reader_requests_min\":{},\"reader_requests_max\":{},\
             \"reader_p99_min_us\":{:.1},\"reader_p99_max_us\":{:.1}}}",
            sw.readers,
            sw.capacity,
            sw.probe_syscalls_per_packet,
            pts,
            sw.knee.map_or("null".to_string(), |k| format!("{k:.1}")),
            if sw.knee.is_some() { "at-offered" } else { "beyond-sweep" },
            server_us.p50_us,
            server_us.p99_us,
            sw.stats.batches,
            sw.stats.recv_calls,
            sw.stats.empty_recv_calls,
            sw.stats.send_calls,
            sw.stats.syscalls_per_packet(),
            sw.reader_requests_min,
            sw.reader_requests_max,
            sw.reader_p99_min_us,
            sw.reader_p99_max_us,
        ));
    }
    let artifact = format!(
        "{{\"rules\":{n},\"build_s\":{build_s:.3},\"transport\":\"udp\",\"max_batch\":{},\
         \"deadline_us\":{},\"closed_loop_p50_us\":{:.1},\"closed_loop_p99_us\":{:.1},\
         \"sweeps\":[{sweeps_json}],\"best_syscalls_per_packet\":{best_probe_ratio:.4},\
         \"gate_p99_us_max\":{gate:.1},\"gate_pass\":{tail_pass},\
         \"syscall_gate_pass\":{syscall_pass}}}\n",
        cfg.max_batch,
        cfg.deadline.as_micros(),
        closed_us.p50_us,
        closed_us.p99_us,
    );
    match std::fs::write(&json_path, &artifact) {
        Ok(()) => println!("\nwrote {json_path}"),
        Err(e) => println!("\nWARN: could not write {json_path}: {e}"),
    }

    if !(tail_pass && syscall_pass) && std::env::var("NM_STRICT").as_deref() == Ok("1") {
        std::process::exit(1);
    }
}
