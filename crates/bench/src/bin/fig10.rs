//! Figure 10 — real-world(-like) Stanford backbone forwarding rule-sets:
//! NuevoMatch with a TupleMerge remainder vs stand-alone TupleMerge.
//!
//! Paper: four ~180K single-field (dst-IP) sets; nm achieves ≈3.5× higher
//! throughput and ≈7.5× lower latency than tm on all four. The single-field
//! structure is the interesting part: fewer partitioning opportunities, yet
//! 2–3 iSets reach 90 %+ coverage (Table 2's last row).

use nm_analysis::Table;
use nm_bench::{assert_same_results, measure_seq, nm_tm, scale};
use nm_classbench::stanford_fib;
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;

fn main() {
    let s = scale();
    // The effect needs tm's tables to outgrow the fast caches; below ~50K
    // single-field rules everything fits and nm has nothing to compress
    // (same regime as the paper's small-set Figure 17).
    let n = if s.full { 183_376 } else { 60_000 };
    println!("Figure 10 — Stanford-like FIBs ({n} single-field rules), nm w/ tm vs tm\n");
    let mut table =
        Table::new(&["set", "tm pps", "nm pps", "thr speedup", "lat speedup", "coverage"]);

    for i in 0..4u64 {
        let set = stanford_fib(n, 0x57a4 + i);
        let trace = uniform_trace(&set, s.trace_len, 0xf10 + i);
        let tm = TupleMerge::build(&set);
        let nm = nm_tm(&set);
        let (tm_pps, tm_ns, tm_sum) = measure_seq(&tm, &trace, s.warmups);
        let (nm_pps, nm_ns, nm_sum) = measure_seq(&nm, &trace, s.warmups);
        assert_same_results("tm", tm_sum, "nm", nm_sum);
        table.row(vec![
            format!("{}", i + 1),
            format!("{:.2e}", tm_pps),
            format!("{:.2e}", nm_pps),
            format!("{:.2}x", nm_pps / tm_pps),
            format!("{:.2}x", tm_ns / nm_ns),
            format!("{:.0}%", nm.coverage() * 100.0),
        ]);
    }
    print!("{}", table.render());
    println!("\nPaper: ~3.5x throughput, ~7.5x latency on all four sets (two cores).");
}
