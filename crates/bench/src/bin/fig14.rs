//! Figure 14 — coverage and lookup-time breakdown vs the number of iSets
//! (remainder = CutSplit, single core).
//!
//! Paper: coverage saturates near 100% by 2 iSets; past that, extra iSets
//! add inference/validation time without shrinking the remainder — 1–2
//! iSets are the sweet spot. The bars split lookup time into remainder /
//! secondary search / validation / inference.

use nm_analysis::{geomean, Table};
use nm_bench::{rqrmi_params, scale, suite};
use nm_cutsplit::CutSplit;
use nm_trace::uniform_trace;
use nuevomatch::system::measure_breakdown;
use nuevomatch::{NuevoMatch, NuevoMatchConfig};

fn main() {
    let s = scale();
    let n = *s.sizes.last().unwrap();
    println!("Figure 14 — breakdown vs #iSets, {n} rules, remainder = cs\n");
    let mut table = Table::new(&[
        "#iSets",
        "coverage",
        "inference ns",
        "search ns",
        "validation ns",
        "remainder ns",
        "total ns",
    ]);

    for k in 0..=6usize {
        let mut cov = Vec::new();
        let mut parts = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
        for (_, set) in suite(n, &s) {
            let cfg = NuevoMatchConfig {
                max_isets: k,
                min_iset_coverage: 0.0,
                rqrmi: rqrmi_params(),
                early_termination: true,
                partial_retrain: Default::default(),
            };
            let nm = NuevoMatch::build(&set, &cfg, CutSplit::build).expect("build");
            let trace = uniform_trace(&set, (s.trace_len / 4).max(10_000), 0xf14);
            let b = measure_breakdown(&nm, &trace);
            cov.push(nm.coverage().max(1e-9));
            parts[0].push(b.inference_ns.max(1e-9));
            parts[1].push(b.search_ns.max(1e-9));
            parts[2].push(b.validation_ns.max(1e-9));
            parts[3].push(b.remainder_ns.max(1e-9));
        }
        let gm = |v: &Vec<f64>| geomean(v);
        let total = gm(&parts[0]) + gm(&parts[1]) + gm(&parts[2]) + gm(&parts[3]);
        table.row(vec![
            format!("{k}"),
            format!("{:.1}%", gm(&cov) * 100.0),
            format!("{:.0}", gm(&parts[0])),
            format!("{:.0}", gm(&parts[1])),
            format!("{:.0}", gm(&parts[2])),
            format!("{:.0}", gm(&parts[3])),
            format!("{total:.0}"),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nShape check: remainder time falls steeply to ~2 iSets, then compute overhead \
         (inference + validation) grows with diminishing coverage returns."
    );
}
