//! Figure 11 — throughput vs number of rules for TupleMerge alone and
//! NuevoMatch/TupleMerge, annotated with coverage and index sizes.
//!
//! The paper's "source of speedups" figure: tm's throughput collapses as its
//! tables outgrow L1/L2, while nm compresses the hot index (remainder +
//! RQ-RMI) back into fast cache and holds throughput. Annotations are
//! `coverage%` and `remainder-size : total-size`.

use nm_analysis::Table;
use nm_bench::{assert_same_results, measure_seq, nm_tm, scale};
use nm_classbench::{generate, AppKind};
use nm_common::memsize::human_bytes;
use nm_common::Classifier;
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;

fn main() {
    let s = scale();
    println!("Figure 11 — throughput vs rules (ACL profile), tm vs nm w/ tm\n");
    let mut table = Table::new(&[
        "rules",
        "tm pps",
        "nm pps",
        "speedup",
        "coverage",
        "tm index",
        "nm remainder:total",
    ]);

    for &n in &s.sizes {
        let set = generate(AppKind::Acl, n, 0xac1_0000 + n as u64);
        let trace = uniform_trace(&set, s.trace_len, 0xf11 + n as u64);
        let tm = TupleMerge::build(&set);
        let nm = nm_tm(&set);
        let (tm_pps, _, tm_sum) = measure_seq(&tm, &trace, s.warmups);
        let (nm_pps, _, nm_sum) = measure_seq(&nm, &trace, s.warmups);
        assert_same_results("tm", tm_sum, "nm", nm_sum);
        let rem = nm.remainder().memory_bytes();
        let total = nm.memory_bytes();
        table.row(vec![
            format!("{n}"),
            format!("{:.2e}", tm_pps),
            format!("{:.2e}", nm_pps),
            format!("{:.2}x", nm_pps / tm_pps),
            format!("{:.0}%", nm.coverage() * 100.0),
            human_bytes(tm.memory_bytes()),
            format!("{} : {}", human_bytes(rem), human_bytes(total)),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nPaper annotations (500K ACL): tm 10MB vs nm 7.9:46.1 KB at 99% coverage; \
         speedup appears once tm spills out of L2."
    );
}
