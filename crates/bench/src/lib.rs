//! # nm-bench — the experiment harness
//!
//! One binary per paper table/figure (see DESIGN.md §4 for the index):
//!
//! ```text
//! cargo run -p nm-bench --release --bin table1       # … table2, table3
//! cargo run -p nm-bench --release --bin fig7         # … fig8 … fig17
//! cargo run -p nm-bench --release --bin fields contention search_dist
//! cargo run -p nm-bench --release --bin update_bench # measured Figure 7
//! ```
//!
//! `update_bench` is the live counterpart to `fig7`: it drives a
//! `ClassifierHandle` with a paced update stream plus background retrains,
//! measures the throughput-vs-time curve a lock-free reader actually sees,
//! and validates it against the analytic §3.9 model.
//!
//! Every binary prints the same rows/series the paper reports. The `NM_SCALE`
//! environment variable selects the workload scale:
//!
//! * `quick` (default) — sizes up to 100K rules, 3 applications, 100K-packet
//!   traces; minutes on a laptop core.
//! * `full` — the paper's 500K rule-sets, 12 applications, 700K-packet
//!   traces; budget hours on one core.
//!
//! This module holds the pieces every binary shares: scale selection,
//! classifier constructors with the paper's §5.1 configurations, and timing
//! wrappers.
//!
//! ## The batch sweep (`--bin batch`)
//!
//! `cargo run -p nm-bench --release --bin batch` sweeps the batched lookup
//! pipeline over batch sizes 1/8/32/128/512 (single core, uniform traffic)
//! for **every batched engine** — NuevoMatch, TupleMerge, CutSplit and
//! NeuroCuts — and prints both a table and machine-readable `BENCH {...}`
//! json lines, plus a divergent-leaf microbench (gather kernel vs
//! per-packet broadcast vs the shared kernel). The whole run is written to
//! a `BENCH_batch.json` artifact (`NM_BENCH_JSON` overrides the path;
//! uploaded by CI) so the batched data plane's perf trajectory is tracked
//! over time. It honours `NM_SCALE` like every other binary: `quick`
//! (default) runs the three-application suite at the largest quick size;
//! `NM_SCALE=full` runs the 12-application 500K-rule suite — budget
//! accordingly. `NM_APPS`/`NM_ENGINES` (comma-separated) focus a rerun on
//! a subset; `NM_STRICT=1` turns the perf targets into hard failures.
//! Columns report Mpps through `run_batched` (the `classify_batch` path);
//! the `seq` column is the per-key `classify` loop for reference, and
//! every batched row's checksum is asserted equal to it, so the sweep
//! doubles as a batch/scalar equivalence check on real traffic. The
//! criterion companion (`cargo bench -p nm-bench --bench batch`) tracks
//! the same speedups on fixed 2K-rule workloads.

#![warn(missing_docs)]

use nm_common::{Classifier, RuleSet, ShardPlanConfig, ShardStrategy, TraceBuf};
use nm_cutsplit::CutSplit;
use nm_neurocuts::{NeuroCuts, NeuroCutsConfig};
use nm_tuplemerge::TupleMerge;
use nuevomatch::{ClassifierHandle, NuevoMatch, NuevoMatchConfig, RqRmiParams, ShardedHandle};

/// Workload scale for the harness.
#[derive(Clone, Debug)]
pub struct Scale {
    /// Rule-set sizes to sweep.
    pub sizes: Vec<usize>,
    /// Applications per size (names from the 12-app suite).
    pub apps: usize,
    /// Packets per trace.
    pub trace_len: usize,
    /// Warm-up passes before the measured pass (paper: 5 + 1).
    pub warmups: usize,
    /// Whether this is the full-paper scale.
    pub full: bool,
}

/// Reads `NM_SCALE` (`quick` | `full`).
pub fn scale() -> Scale {
    match std::env::var("NM_SCALE").as_deref() {
        Ok("full") => Scale {
            sizes: vec![1_000, 10_000, 100_000, 500_000],
            apps: 12,
            trace_len: 700_000,
            warmups: 2,
            full: true,
        },
        _ => Scale {
            sizes: vec![1_000, 10_000, 100_000],
            apps: 3,
            trace_len: 100_000,
            warmups: 1,
            full: false,
        },
    }
}

/// The named application suite at one size, truncated to the scale's app
/// count (quick keeps acl1, fw1, ipc1 — one per family).
pub fn suite(n: usize, s: &Scale) -> Vec<(String, RuleSet)> {
    let all = nm_classbench::suite_12(n, 0x5eed_0000 + n as u64);
    if s.apps >= 12 {
        all
    } else {
        // One representative per family, in family order.
        let picks = ["acl1", "fw1", "ipc1"];
        all.into_iter().filter(|(name, _)| picks.contains(&name.as_str())).collect()
    }
}

/// RQ-RMI parameters used by every harness build (paper §5.1: error
/// threshold 64).
pub fn rqrmi_params() -> RqRmiParams {
    RqRmiParams { error_target: 64, ..Default::default() }
}

/// The §5.1 configuration for a TupleMerge remainder: iSets below 5%
/// coverage discarded, 4 iSets best for tm. One definition serves both the
/// static build and the handle, so the measured-update baselines can never
/// drift from the table/figure benches.
pub fn nm_tm_config() -> NuevoMatchConfig {
    NuevoMatchConfig {
        max_isets: 4,
        min_iset_coverage: 0.05,
        rqrmi: rqrmi_params(),
        early_termination: true,
        partial_retrain: Default::default(),
    }
}

/// NuevoMatch paired with a TupleMerge remainder ([`nm_tm_config`]).
pub fn nm_tm(set: &RuleSet) -> NuevoMatch<TupleMerge> {
    NuevoMatch::build(set, &nm_tm_config(), TupleMerge::build).expect("nm/tm build")
}

/// The [`nm_tm`] configuration served through a live [`ClassifierHandle`]:
/// lock-free snapshot readers, transactional updates, background retrains.
/// `--bin update_bench` and the update-soak jobs go through this.
pub fn nm_tm_handle(set: &RuleSet) -> ClassifierHandle<TupleMerge> {
    ClassifierHandle::new(set, &nm_tm_config(), TupleMerge::build).expect("nm/tm handle build")
}

/// The [`nm_tm`] configuration sharded `shards` ways (range steering on an
/// auto-picked field, wildcard-heavy rules in the broadcast shard) behind
/// per-shard handle replicas — what `--bin shard` sweeps and the CI
/// sharded-runtime smoke drives.
pub fn nm_tm_sharded(set: &RuleSet, shards: usize) -> ShardedHandle<TupleMerge> {
    let plan = ShardPlanConfig { shards, dim: None, strategy: ShardStrategy::Range };
    ShardedHandle::new(set, &nm_tm_config(), &plan, TupleMerge::build).expect("sharded nm/tm build")
}

/// NuevoMatch paired with a CutSplit remainder (§5.1: 25% minimum coverage,
/// 1–2 iSets are the sweet spot).
pub fn nm_cs(set: &RuleSet) -> NuevoMatch<CutSplit> {
    let cfg = NuevoMatchConfig {
        max_isets: 2,
        min_iset_coverage: 0.25,
        rqrmi: rqrmi_params(),
        early_termination: true,
        partial_retrain: Default::default(),
    };
    NuevoMatch::build(set, &cfg, CutSplit::build).expect("nm/cs build")
}

/// NuevoMatch paired with a NeuroCuts remainder.
pub fn nm_nc(set: &RuleSet, quick: bool) -> NuevoMatch<NeuroCuts> {
    let cfg = NuevoMatchConfig {
        max_isets: 2,
        min_iset_coverage: 0.25,
        rqrmi: rqrmi_params(),
        early_termination: true,
        partial_retrain: Default::default(),
    };
    let nc_cfg = nc_config(quick);
    NuevoMatch::build(set, &cfg, |rem: &RuleSet| NeuroCuts::with_config(rem, nc_cfg))
        .expect("nm/nc build")
}

/// NeuroCuts configuration per scale (the paper gave nc a 36-hour sweep; the
/// quick harness gives the search a few dozen evaluations).
pub fn nc_config(quick: bool) -> NeuroCutsConfig {
    NeuroCutsConfig {
        iterations: if quick { 12 } else { 32 },
        sample: if quick { 2_048 } else { 4_096 },
        ..Default::default()
    }
}

/// Measured sequential throughput: `warmups` passes then one timed pass.
/// Returns (packets/s, ns/packet, checksum).
pub fn measure_seq(c: &dyn Classifier, trace: &TraceBuf, warmups: usize) -> (f64, f64, u64) {
    for _ in 0..warmups {
        let _ = nuevomatch::system::parallel::run_sequential(c, trace);
    }
    let stats = nuevomatch::system::parallel::run_sequential(c, trace);
    (stats.pps, 1e9 / stats.pps.max(1e-9), stats.checksum)
}

/// Sanity assertion used by every end-to-end binary: two engines must have
/// produced identical per-packet results on the measured trace.
pub fn assert_same_results(name_a: &str, a: u64, name_b: &str, b: u64) {
    assert_eq!(a, b, "{name_a} and {name_b} disagree on the trace — correctness bug");
}
