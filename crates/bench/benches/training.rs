//! Criterion bench behind Figure 15: RQ-RMI training cost per optimiser and
//! error-bound target (small scale; the fig15 binary covers the big sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nm_common::FieldRange;
use nm_nn::AdamConfig;
use nuevomatch::rqrmi::train_rqrmi;
use nuevomatch::{RqRmiParams, TrainerKind};

fn ranges(n: u64) -> Vec<FieldRange> {
    (0..n).map(|i| FieldRange::new(i * 1_000, i * 1_000 + 500)).collect()
}

fn bench_training(c: &mut Criterion) {
    let rs = ranges(2_000);
    let mut group = c.benchmark_group("rqrmi_training_2k_ranges");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for (name, trainer) in [
        ("hinge", TrainerKind::Hinge),
        ("hinge_adam", TrainerKind::HingeThenAdam(AdamConfig { epochs: 30, ..Default::default() })),
    ] {
        group.bench_with_input(BenchmarkId::new("trainer", name), &trainer, |b, t| {
            let params = RqRmiParams { trainer: *t, samples_init: 512, ..Default::default() };
            b.iter(|| train_rqrmi(&rs, 32, &params).unwrap());
        });
    }

    for bound in [64u32, 512] {
        group.bench_with_input(BenchmarkId::new("bound", bound), &bound, |b, &bound| {
            let params =
                RqRmiParams { error_target: bound, samples_init: 512, ..Default::default() };
            b.iter(|| train_rqrmi(&rs, 32, &params).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
