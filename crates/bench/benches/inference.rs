//! Criterion bench behind Table 1: single-submodel inference per
//! instruction set, plus a full staged RQ-RMI prediction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nm_nn::Mlp;
use nuevomatch::rqrmi::{train_rqrmi, CompiledRqRmi, Isa, Kernel};
use nuevomatch::RqRmiParams;
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let net = Mlp::random(8, 42);
    let kernel = Kernel::from_mlp(&net);
    let mut group = c.benchmark_group("submodel_inference");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let isas: &[(&str, Isa)] = &[
        ("serial", Isa::Scalar),
        ("sse4", Isa::Sse),
        ("avx8", Isa::Avx),
        ("avx2fma8", Isa::AvxFma),
    ];
    for &(name, isa) in isas {
        if !isa.available() {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(name), &isa, |b, &isa| {
            let mut x = 0.37f32;
            b.iter(|| {
                // Dependent chain: latency, not throughput.
                x = kernel.forward_clamped(black_box(x) * 0.999 + 1e-4, isa);
                x
            });
        });
    }
    group.finish();
}

fn bench_full_predict(c: &mut Criterion) {
    let ranges: Vec<nm_common::FieldRange> = (0..10_000u64)
        .map(|i| nm_common::FieldRange::new(i * 400_000, i * 400_000 + 200_000))
        .collect();
    let model = train_rqrmi(&ranges, 32, &RqRmiParams::default()).expect("train");
    let compiled = CompiledRqRmi::new(&model);
    let mut group = c.benchmark_group("rqrmi_predict");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("staged_predict_10k_ranges", |b| {
        let mut key = 123_456_789u64;
        b.iter(|| {
            key = key.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            compiled.predict(black_box(key & 0xffff_ffff))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_full_predict);
criterion_main!(benches);
