//! Criterion bench behind §5.3.5: multi-field validation cost as the field
//! count grows (1 → 40).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nm_common::{FieldRange, FieldsSpec, LinearSearch, RuleSet, SplitMix64};
use nuevomatch::{NuevoMatch, NuevoMatchConfig, RqRmiParams};
use std::hint::black_box;

fn build(nfields: usize) -> (NuevoMatch<LinearSearch>, Vec<Vec<u64>>) {
    let mut rng = SplitMix64::new(nfields as u64);
    let spec = FieldsSpec::uniform(nfields, 32);
    let rows: Vec<Vec<FieldRange>> = (0..1_000u64)
        .map(|i| {
            let mut fields = vec![FieldRange::new(i * 4_096, i * 4_096 + 4_095)];
            for _ in 1..nfields {
                let lo = rng.below(1 << 31);
                fields.push(FieldRange::new(lo, lo + rng.below(1 << 31)));
            }
            fields
        })
        .collect();
    let set = RuleSet::from_ranges(spec, rows).unwrap();
    let cfg = NuevoMatchConfig {
        max_isets: 1,
        min_iset_coverage: 0.0,
        rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
        early_termination: true,
        partial_retrain: Default::default(),
    };
    let nm = NuevoMatch::build(&set, &cfg, LinearSearch::build).unwrap();
    let keys: Vec<Vec<u64>> = (0..4_096)
        .map(|_| {
            let r = rng.below(1_000);
            let mut k = vec![r * 4_096 + rng.below(4_096)];
            for _ in 1..nfields {
                k.push(rng.below(1 << 32));
            }
            k
        })
        .collect();
    (nm, keys)
}

fn bench_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("validation_vs_fields");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for nf in [1usize, 5, 10, 40] {
        let (nm, keys) = build(nf);
        group.bench_with_input(BenchmarkId::from_parameter(nf), &nf, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let key = &keys[i % keys.len()];
                i += 1;
                black_box(nm.classify_isets(black_box(key)))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_validation);
criterion_main!(benches);
