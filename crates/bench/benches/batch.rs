//! Criterion bench: batched vs per-key classification cost, tracking the
//! speedup of the batched pipeline (`classify_batch`, batch = 128) over the
//! per-key loop on the same NuevoMatch instance, the CutSplit/NeuroCuts
//! level-synchronous descent on an fw-style set, the cross-packet stage-0
//! kernel in isolation (`CompiledRqRmi::predict_batch`), and the
//! divergent-leaf gather kernel against the per-packet broadcast pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nm_classbench::{generate, AppKind};
use nm_common::Classifier;
use nm_cutsplit::CutSplit;
use nm_neurocuts::{NeuroCuts, NeuroCutsConfig};
use nm_nn::Mlp;
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;
use nuevomatch::rqrmi::{detect, leaf_chain_broadcast8, leaf_chain_gather8, Kernel, LeafSoa};
use nuevomatch::{NuevoMatch, NuevoMatchConfig, RqRmiParams};
use std::hint::black_box;

fn bench_classify_batch(c: &mut Criterion) {
    let set = generate(AppKind::Acl, 2_000, 0xbeef);
    let cfg = NuevoMatchConfig {
        rqrmi: RqRmiParams { error_target: 64, ..Default::default() },
        ..Default::default()
    };
    let nm = NuevoMatch::build(&set, &cfg, TupleMerge::build).expect("build nm/tm");
    let trace = uniform_trace(&set, 10_240, 42);
    let stride = trace.stride();
    let raw = trace.raw();

    let mut group = c.benchmark_group("classify_2k_acl");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for &batch in &[1usize, 8, 128] {
        group.bench_with_input(BenchmarkId::new("batched", batch), &batch, |b, &batch| {
            let mut out = vec![None; batch];
            let mut lo = 0usize;
            b.iter(|| {
                // One batch per iteration, cycling through the trace.
                if lo + batch > trace.len() {
                    lo = 0;
                }
                nm.classify_batch(
                    black_box(&raw[lo * stride..(lo + batch) * stride]),
                    stride,
                    &mut out,
                );
                lo += batch;
                out[0]
            });
        });
    }
    group.bench_function("per_key", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % trace.len();
            nm.classify(black_box(trace.key(i)))
        });
    });
    group.finish();
}

fn bench_tree_descent(c: &mut Criterion) {
    // fw-style sets are the remainder-heavy case the level-synchronous
    // descent targets; both tree engines run batch 128 vs the per-key loop.
    let set = generate(AppKind::Fw, 2_000, 0xf11);
    let trace = uniform_trace(&set, 10_240, 7);
    let stride = trace.stride();
    let raw = trace.raw();
    let engines: Vec<(&str, Box<dyn Classifier>)> = vec![
        ("cs", Box::new(CutSplit::build(&set))),
        (
            "nc",
            Box::new(NeuroCuts::with_config(
                &set,
                NeuroCutsConfig { iterations: 8, sample: 1_024, ..Default::default() },
            )),
        ),
    ];
    let mut group = c.benchmark_group("tree_descent_2k_fw");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (name, engine) in &engines {
        group.bench_with_input(BenchmarkId::new("batched_128", name), name, |b, _| {
            let mut out = vec![None; 128];
            let mut lo = 0usize;
            b.iter(|| {
                if lo + 128 > trace.len() {
                    lo = 0;
                }
                engine.classify_batch(
                    black_box(&raw[lo * stride..(lo + 128) * stride]),
                    stride,
                    &mut out,
                );
                lo += 128;
                out[0]
            });
        });
        group.bench_with_input(BenchmarkId::new("per_key", name), name, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % trace.len();
                engine.classify(black_box(trace.key(i)))
            });
        });
    }
    group.finish();
}

fn bench_leaf_gather(c: &mut Criterion) {
    // The divergent-leaf stage in isolation: transposed gather kernel vs
    // per-packet broadcast at full divergence (8 distinct leaves).
    let leaves: Vec<Kernel> = (0..64u64).map(|s| Kernel::from_mlp(&Mlp::random(8, s))).collect();
    let soa = LeafSoa::from_kernels(&leaves);
    let idx: [usize; 8] = std::array::from_fn(|l| l * 8);
    let isa = detect();
    let mut group = c.benchmark_group("leaf_gather_divergent8");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("gather", |b| {
        b.iter(|| leaf_chain_gather8(&soa, black_box(&idx), 0.37, 512, isa));
    });
    group.bench_function("broadcast", |b| {
        b.iter(|| leaf_chain_broadcast8(&leaves, black_box(&idx), 0.37, 512, isa));
    });
    group.finish();
}

fn bench_predict_batch(c: &mut Criterion) {
    let ranges: Vec<nm_common::FieldRange> = (0..10_000u64)
        .map(|i| nm_common::FieldRange::new(i * 400_000, i * 400_000 + 200_000))
        .collect();
    let model =
        nuevomatch::rqrmi::train_rqrmi(&ranges, 32, &RqRmiParams::default()).expect("train");
    let compiled = nuevomatch::CompiledRqRmi::new(&model);
    let keys: Vec<u64> = (0..1_024u64).map(|i| (i * 0x9e37_79b9) & 0xffff_ffff).collect();
    let mut group = c.benchmark_group("rqrmi_predict_batch");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("batch_1024_keys", |b| {
        let mut preds = vec![0usize; keys.len()];
        let mut errs = vec![0u32; keys.len()];
        b.iter(|| {
            compiled.predict_batch(black_box(&keys), &mut preds, &mut errs);
            preds[0]
        });
    });
    group.bench_function("scalar_1024_keys", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &k in &keys {
                acc = acc.wrapping_add(compiled.predict(black_box(k)).0);
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_classify_batch,
    bench_tree_descent,
    bench_leaf_gather,
    bench_predict_batch
);
criterion_main!(benches);
