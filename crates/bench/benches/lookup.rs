//! Criterion bench: per-packet classification cost of every engine on a
//! 10K-rule ClassBench set (the micro view behind Figures 9 and 11).

use criterion::{criterion_group, criterion_main, Criterion};
use nm_bench::{nc_config, nm_tm};
use nm_classbench::{generate, AppKind};
use nm_common::Classifier;
use nm_cutsplit::CutSplit;
use nm_neurocuts::NeuroCuts;
use nm_trace::uniform_trace;
use nm_tuplemerge::TupleMerge;
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let set = generate(AppKind::Acl, 10_000, 0xbe9c4);
    let trace = uniform_trace(&set, 10_000, 0x10c);
    let engines: Vec<(&str, Box<dyn Classifier>)> = vec![
        ("tm", Box::new(TupleMerge::build(&set))),
        ("cs", Box::new(CutSplit::build(&set))),
        ("nc", Box::new(NeuroCuts::with_config(&set, nc_config(true)))),
        ("nm_tm", Box::new(nm_tm(&set))),
    ];
    let mut group = c.benchmark_group("classify_10k_acl");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (name, engine) in &engines {
        group.bench_function(*name, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let key = trace.key(i % trace.len());
                i += 1;
                black_box(engine.classify(black_box(key)))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
