//! # nuevomatch — packet classification via RQ-RMI
//!
//! A from-scratch Rust reproduction of **"A Computational Approach to Packet
//! Classification"** (Rashelbach, Rottenstreich, Silberstein — SIGCOMM 2020).
//!
//! NuevoMatch replaces most memory accesses of a packet classifier with
//! neural-network inference:
//!
//! 1. The rule-set is partitioned into **iSets** — groups of rules that do
//!    not overlap in one chosen field ([`iset`]).
//! 2. Each iSet's ranges (sorted along that field) are indexed by a
//!    **Range-Query Recursive Model Index** ([`rqrmi`]): a two/three-stage
//!    hierarchy of 1×8×1 ReLU networks whose worst-case prediction error is
//!    bounded *analytically*, so a short secondary search around the
//!    predicted index is guaranteed to find the matching range.
//! 3. Rules not covered by large iSets form the **remainder**, indexed by
//!    any conventional classifier (TupleMerge / CutSplit / NeuroCuts in this
//!    workspace); candidates from all indexes are validated on every field
//!    and the highest-priority match wins ([`system`]).
//!
//! ## Quick start
//!
//! ```
//! use nm_common::{Classifier, FieldsSpec, FiveTuple, LinearSearch, RuleSet};
//! use nuevomatch::{NuevoMatch, NuevoMatchConfig};
//!
//! // A toy rule-set: dst-port ranges that do not overlap.
//! let rules: Vec<_> = (0..64u16)
//!     .map(|i| {
//!         FiveTuple::new()
//!             .dst_port_range(i * 1000, i * 1000 + 999)
//!             .into_rule(i as u32, i as u32)
//!     })
//!     .collect();
//! let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
//!
//! // Build NuevoMatch with a linear-search remainder. Any
//! // `EngineBuilder` (for example a plain `fn(&RuleSet) -> R`) works; the
//! // same builder value drives background retrains when the classifier is
//! // served through a `ClassifierHandle`.
//! let nm = NuevoMatch::build(&set, &NuevoMatchConfig::default(), LinearSearch::build).unwrap();
//!
//! let key = [0u64, 0, 0, 5_500, 6]; // dst-port 5500 -> rule 5
//! assert_eq!(nm.classify(&key).unwrap().rule, 5);
//! ```
//!
//! ## Serving under updates
//!
//! For the §3.9 lifecycle — concurrent readers, transactional updates, and
//! background retrains that reset the remainder drift — wrap the build in a
//! [`ClassifierHandle`]: readers pin generation-stamped immutable snapshots
//! and never block, a writer applies `UpdateBatch` transactions, and
//! `retrain()` republishes fresh models RCU-style (see [`system::handle`]).
//!
//! See `DESIGN.md` at the workspace root for the full system inventory and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

#![warn(missing_docs)]

pub mod config;
pub mod iset;
pub mod persist;
pub mod rqrmi;
pub mod system;

pub use config::{NuevoMatchConfig, PartialRetrainPolicy, RqRmiParams, TrainerKind};
pub use iset::{partition_isets, ISet, PartitionResult};
pub use persist::{load_rqrmi, load_snapshot, save_rqrmi, save_snapshot};
pub use rqrmi::{train_rqrmi, CompiledRqRmi, Isa, RqRmi};
pub use system::handle::{
    concentrated_drift, measure_retrain_latencies, measure_update_curve, RetrainLatencies,
    UpdateBenchConfig, UpdateCurve, UpdateCurvePoint, UpdatePacer,
};
pub use system::runtime::{
    PinPolicy, RunStats, Runtime, RuntimeConfig, ShardedClassifier, ShardedHandle, Topology,
};
pub use system::serve::{
    OracleTable, PinnedPlane, ReaderKind, ServeClient, ServeConfig, ServePlane, ServeStats, Server,
    Transport,
};
pub use system::{
    ClassifierHandle, FlowCache, LookupBreakdown, NmSnapshot, NuevoMatch, PartialRetrainReport,
    TrainedISet,
};
