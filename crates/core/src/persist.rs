//! Binary persistence for trained models.
//!
//! Training a 500K-rule RQ-RMI takes seconds-to-minutes; classification
//! starts in microseconds if the trained weights can be loaded instead.
//! This module provides a small, versioned, checksummed binary codec for
//! [`RqRmi`] models — no external serialisation format needed (the format
//! is simple enough that a schema language would cost more than it saves,
//! and the workspace's dependency policy is deliberately tight).
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic  "NMRQRMI1"                      8 bytes
//! bits   u8, n_values u64, stages u8
//! per stage: width u32
//! per submodel: hidden u8, then w1/b1/w2 as f32 arrays, b2 f32
//! leaf error bounds: u32 per leaf
//! fnv64 checksum over everything above   8 bytes
//! ```
//!
//! The checksum catches truncation and bit rot; the magic catches format
//! confusion. Forward compatibility is handled by bumping the magic suffix.

use crate::rqrmi::RqRmi;
use bytes::{Buf, BufMut};
use nm_common::Error;
use nm_nn::Mlp;

const MAGIC: &[u8; 8] = b"NMRQRMI1";

fn fnv64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Serialises a trained model to bytes.
pub fn save_rqrmi(model: &RqRmi) -> Vec<u8> {
    let mut out = Vec::with_capacity(model.memory_bytes() + 64);
    out.put_slice(MAGIC);
    out.put_u8(model.bits);
    out.put_u64_le(model.n_values as u64);
    out.put_u8(model.widths.len() as u8);
    for &w in &model.widths {
        out.put_u32_le(w as u32);
    }
    for stage in &model.nets {
        for net in stage {
            out.put_u8(net.hidden() as u8);
            for &v in &net.w1 {
                out.put_f32_le(v);
            }
            for &v in &net.b1 {
                out.put_f32_le(v);
            }
            for &v in &net.w2 {
                out.put_f32_le(v);
            }
            out.put_f32_le(net.b2);
        }
    }
    for &e in &model.leaf_err {
        out.put_u32_le(e);
    }
    let sum = fnv64(&out);
    out.put_u64_le(sum);
    out
}

/// Deserialises a model produced by [`save_rqrmi`], verifying the magic and
/// checksum.
pub fn load_rqrmi(data: &[u8]) -> Result<RqRmi, Error> {
    let fail = |msg: &str| Error::Build { msg: format!("load_rqrmi: {msg}") };
    if data.len() < MAGIC.len() + 8 {
        return Err(fail("too short"));
    }
    let (body, tail) = data.split_at(data.len() - 8);
    let want = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv64(body) != want {
        return Err(fail("checksum mismatch"));
    }
    let mut buf = body;
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(fail("bad magic"));
    }
    let need = |buf: &&[u8], n: usize, what: &str| -> Result<(), Error> {
        if buf.remaining() < n {
            Err(fail(&format!("truncated {what}")))
        } else {
            Ok(())
        }
    };
    need(&buf, 10, "header")?;
    let bits = buf.get_u8();
    if !(1..=52).contains(&bits) {
        return Err(fail("bits out of range"));
    }
    let n_values = buf.get_u64_le() as usize;
    if n_values == 0 {
        return Err(fail("empty model"));
    }
    let stages = buf.get_u8() as usize;
    if stages == 0 || stages > 8 {
        return Err(fail("stage count out of range"));
    }
    need(&buf, stages * 4, "widths")?;
    let widths: Vec<usize> = (0..stages).map(|_| buf.get_u32_le() as usize).collect();
    if widths[0] != 1 || widths.iter().any(|&w| w == 0 || w > 1 << 20) {
        return Err(fail("bad stage widths"));
    }
    let mut nets = Vec::with_capacity(stages);
    for &w in &widths {
        let mut stage = Vec::with_capacity(w);
        for _ in 0..w {
            need(&buf, 1, "submodel header")?;
            let hidden = buf.get_u8() as usize;
            if hidden > 64 {
                return Err(fail("hidden width out of range"));
            }
            need(&buf, (3 * hidden + 1) * 4, "weights")?;
            let mut net = Mlp::zeros(hidden);
            for v in &mut net.w1 {
                *v = buf.get_f32_le();
            }
            for v in &mut net.b1 {
                *v = buf.get_f32_le();
            }
            for v in &mut net.w2 {
                *v = buf.get_f32_le();
            }
            net.b2 = buf.get_f32_le();
            stage.push(net);
        }
        nets.push(stage);
    }
    let leaves = *widths.last().expect("stages >= 1");
    need(&buf, leaves * 4, "leaf bounds")?;
    let leaf_err: Vec<u32> = (0..leaves).map(|_| buf.get_u32_le()).collect();
    if buf.has_remaining() {
        return Err(fail("trailing bytes"));
    }
    Ok(RqRmi { widths, nets, leaf_err, n_values, bits })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RqRmiParams;
    use crate::rqrmi::train_rqrmi;
    use nm_common::FieldRange;

    fn model() -> RqRmi {
        let ranges: Vec<FieldRange> =
            (0..300).map(|i| FieldRange::new(i * 200, i * 200 + 99)).collect();
        train_rqrmi(&ranges, 16, &RqRmiParams { samples_init: 256, ..Default::default() }).unwrap()
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let m = model();
        let bytes = save_rqrmi(&m);
        let back = load_rqrmi(&bytes).unwrap();
        assert_eq!(back.widths(), m.widths());
        assert_eq!(back.len(), m.len());
        for key in (0..65_536u64).step_by(37) {
            assert_eq!(back.predict(key), m.predict(key), "key {key}");
        }
    }

    #[test]
    fn checksum_catches_corruption() {
        let m = model();
        let bytes = save_rqrmi(&m);
        for pos in [8usize, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(load_rqrmi(&bad).is_err(), "corruption at {pos} accepted");
        }
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let bytes = save_rqrmi(&model());
        for len in 0..bytes.len() {
            assert!(load_rqrmi(&bytes[..len]).is_err(), "accepted {len}-byte prefix");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = save_rqrmi(&model());
        bytes[0] = b'X';
        assert!(load_rqrmi(&bytes).is_err());
    }

    #[test]
    fn size_is_close_to_model_memory() {
        let m = model();
        let bytes = save_rqrmi(&m);
        // Serialised form should be within 2x of the in-memory weight bytes.
        assert!(bytes.len() < m.memory_bytes() * 2 + 128);
    }
}
