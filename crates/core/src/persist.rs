//! Binary persistence for trained models and whole classifier snapshots.
//!
//! Training a 500K-rule RQ-RMI takes seconds-to-minutes; classification
//! starts in microseconds if the trained weights can be loaded instead.
//! This module provides a small, versioned, checksummed binary codec — no
//! external serialisation format needed (the format is simple enough that a
//! schema language would cost more than it saves, and the workspace's
//! dependency policy is deliberately tight) — at two granularities:
//!
//! * [`save_rqrmi`] / [`load_rqrmi`] — one trained [`RqRmi`] model.
//! * [`save_snapshot`] / [`load_snapshot`] — a full `NuevoMatch` data
//!   plane: every iSet's model *and* lookup tables (projections, rule
//!   boxes, tombstones) plus the remainder engine's live rules, so a
//!   `ClassifierHandle` can warm-start from disk without retraining
//!   (`ClassifierHandle::from_snapshot`).
//!
//! RQ-RMI layout (all little-endian):
//!
//! ```text
//! magic  "NMRQRMI1"                      8 bytes
//! bits   u8, n_values u64, stages u8
//! per stage: width u32
//! per submodel: hidden u8, then w1/b1/w2 as f32 arrays, b2 f32
//! leaf error bounds: u32 per leaf
//! fnv64 checksum over everything above   8 bytes
//! ```
//!
//! Snapshot layout:
//!
//! ```text
//! magic  "NMSNAP01"                      8 bytes
//! generation u64, flags u8 (bit 0 = early termination)
//! total_rules u64, moved_updates u64
//! spec: nfields u32, per field (name_len u32 + utf8, bits u8)
//! isets: count u32, per iset:
//!   dim u32, n u64
//!   los/his  n × u64 each, rule_ids/priorities  n × u32 each
//!   boxes    n × nfields × 2 × u64
//!   tombstone bitmap  ceil(n/8) bytes
//!   embedded RQ-RMI blob (u32 length prefix, save_rqrmi format)
//! remainder: count u64, per rule (id u32, priority u32, nfields × lo/hi u64)
//! fnv64 checksum over everything above   8 bytes
//! ```
//!
//! The checksum catches truncation and bit rot; the magic catches format
//! confusion. Forward compatibility is handled by bumping the magic suffix.

use crate::rqrmi::RqRmi;
use crate::system::{NuevoMatch, TrainedISet};
use bytes::{Buf, BufMut};
use nm_common::update::{BatchUpdatable, EngineBuilder, Generation};
use nm_common::{Classifier, Error, FieldSpec, FieldsSpec, Rule, RuleSet};
use nm_nn::Mlp;

const MAGIC: &[u8; 8] = b"NMRQRMI1";
const SNAP_MAGIC: &[u8; 8] = b"NMSNAP01";

fn fnv64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Serialises a trained model to bytes.
pub fn save_rqrmi(model: &RqRmi) -> Vec<u8> {
    let mut out = Vec::with_capacity(model.memory_bytes() + 64);
    out.put_slice(MAGIC);
    out.put_u8(model.bits);
    out.put_u64_le(model.n_values as u64);
    out.put_u8(model.widths.len() as u8);
    for &w in &model.widths {
        out.put_u32_le(w as u32);
    }
    for stage in &model.nets {
        for net in stage {
            out.put_u8(net.hidden() as u8);
            for &v in &net.w1 {
                out.put_f32_le(v);
            }
            for &v in &net.b1 {
                out.put_f32_le(v);
            }
            for &v in &net.w2 {
                out.put_f32_le(v);
            }
            out.put_f32_le(net.b2);
        }
    }
    for &e in &model.leaf_err {
        out.put_u32_le(e);
    }
    let sum = fnv64(&out);
    out.put_u64_le(sum);
    out
}

/// Deserialises a model produced by [`save_rqrmi`], verifying the magic and
/// checksum.
pub fn load_rqrmi(data: &[u8]) -> Result<RqRmi, Error> {
    let fail = |msg: &str| Error::Build { msg: format!("load_rqrmi: {msg}") };
    if data.len() < MAGIC.len() + 8 {
        return Err(fail("too short"));
    }
    let (body, tail) = data.split_at(data.len() - 8);
    let want = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv64(body) != want {
        return Err(fail("checksum mismatch"));
    }
    let mut buf = body;
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(fail("bad magic"));
    }
    let need = |buf: &&[u8], n: usize, what: &str| -> Result<(), Error> {
        if buf.remaining() < n {
            Err(fail(&format!("truncated {what}")))
        } else {
            Ok(())
        }
    };
    need(&buf, 10, "header")?;
    let bits = buf.get_u8();
    if !(1..=52).contains(&bits) {
        return Err(fail("bits out of range"));
    }
    let n_values = buf.get_u64_le() as usize;
    if n_values == 0 {
        return Err(fail("empty model"));
    }
    let stages = buf.get_u8() as usize;
    if stages == 0 || stages > 8 {
        return Err(fail("stage count out of range"));
    }
    need(&buf, stages * 4, "widths")?;
    let widths: Vec<usize> = (0..stages).map(|_| buf.get_u32_le() as usize).collect();
    if widths[0] != 1 || widths.iter().any(|&w| w == 0 || w > 1 << 20) {
        return Err(fail("bad stage widths"));
    }
    let mut nets = Vec::with_capacity(stages);
    for &w in &widths {
        let mut stage = Vec::with_capacity(w);
        for _ in 0..w {
            need(&buf, 1, "submodel header")?;
            let hidden = buf.get_u8() as usize;
            if hidden > 64 {
                return Err(fail("hidden width out of range"));
            }
            need(&buf, (3 * hidden + 1) * 4, "weights")?;
            let mut net = Mlp::zeros(hidden);
            for v in &mut net.w1 {
                *v = buf.get_f32_le();
            }
            for v in &mut net.b1 {
                *v = buf.get_f32_le();
            }
            for v in &mut net.w2 {
                *v = buf.get_f32_le();
            }
            net.b2 = buf.get_f32_le();
            stage.push(net);
        }
        nets.push(stage);
    }
    let leaves = *widths.last().expect("stages >= 1");
    need(&buf, leaves * 4, "leaf bounds")?;
    let leaf_err: Vec<u32> = (0..leaves).map(|_| buf.get_u32_le()).collect();
    if buf.has_remaining() {
        return Err(fail("trailing bytes"));
    }
    Ok(RqRmi { widths, nets, leaf_err, n_values, bits })
}

/// Serialises a full `NuevoMatch` data plane — every iSet's trained model
/// and lookup tables plus the remainder's live rules — under `generation`
/// (pass the handle's published generation, or 0 for a bare classifier).
///
/// Requires `R: BatchUpdatable` for the remainder rule export.
pub fn save_snapshot<R: BatchUpdatable>(nm: &NuevoMatch<R>, generation: Generation) -> Vec<u8> {
    let mut out = Vec::with_capacity(nm.memory_bytes() + 4096);
    out.put_slice(SNAP_MAGIC);
    out.put_u64_le(generation);
    out.put_u8(nm.early_termination() as u8);
    out.put_u64_le(nm.num_rules() as u64);
    out.put_u64_le(nm.moved_to_remainder() as u64);
    let spec = nm.spec();
    out.put_u32_le(spec.len() as u32);
    for field in spec.iter() {
        out.put_u32_le(field.name.len() as u32);
        out.put_slice(field.name.as_bytes());
        out.put_u8(field.bits);
    }
    out.put_u32_le(nm.isets().len() as u32);
    for iset in nm.isets() {
        let (dim, model, los, his, rule_ids, priorities, boxes, deleted) = iset.parts();
        out.put_u32_le(dim as u32);
        out.put_u64_le(los.len() as u64);
        for &v in los {
            out.put_u64_le(v);
        }
        for &v in his {
            out.put_u64_le(v);
        }
        for &v in rule_ids {
            out.put_u32_le(v);
        }
        for &v in priorities {
            out.put_u32_le(v);
        }
        for &v in boxes {
            out.put_u64_le(v);
        }
        for chunk in deleted.chunks(8) {
            let mut byte = 0u8;
            for (bit, &dead) in chunk.iter().enumerate() {
                byte |= (dead as u8) << bit;
            }
            out.put_u8(byte);
        }
        let blob = save_rqrmi(model);
        out.put_u32_le(blob.len() as u32);
        out.put_slice(&blob);
    }
    let remainder_rules = nm.remainder().export_rules();
    out.put_u64_le(remainder_rules.len() as u64);
    for rule in &remainder_rules {
        out.put_u32_le(rule.id);
        out.put_u32_le(rule.priority);
        for f in &rule.fields {
            out.put_u64_le(f.lo);
            out.put_u64_le(f.hi);
        }
    }
    let sum = fnv64(&out);
    out.put_u64_le(sum);
    out
}

/// Deserialises a [`save_snapshot`] image, rebuilding the remainder engine
/// with `builder` over the persisted remainder rules. Returns the restored
/// classifier and the generation it was saved under. No retraining happens:
/// the iSet models load as trained.
pub fn load_snapshot<R: Classifier>(
    data: &[u8],
    builder: &(impl EngineBuilder<Engine = R> + ?Sized),
) -> Result<(NuevoMatch<R>, Generation), Error> {
    let fail = |msg: &str| Error::Build { msg: format!("load_snapshot: {msg}") };
    if data.len() < SNAP_MAGIC.len() + 8 {
        return Err(fail("too short"));
    }
    let (body, tail) = data.split_at(data.len() - 8);
    let want = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv64(body) != want {
        return Err(fail("checksum mismatch"));
    }
    let mut buf = body;
    let mut magic = [0u8; 8];
    buf.copy_to_slice(&mut magic);
    if &magic != SNAP_MAGIC {
        return Err(fail("bad magic"));
    }
    let need = |buf: &&[u8], n: usize, what: &str| -> Result<(), Error> {
        if buf.remaining() < n {
            Err(fail(&format!("truncated {what}")))
        } else {
            Ok(())
        }
    };
    need(&buf, 8 + 1 + 8 + 8 + 4, "header")?;
    let generation = buf.get_u64_le();
    let early_termination = buf.get_u8() != 0;
    let total_rules = buf.get_u64_le() as usize;
    let moved_updates = buf.get_u64_le() as usize;
    let nfields = buf.get_u32_le() as usize;
    if nfields == 0 || nfields > 256 {
        return Err(fail("field count out of range"));
    }
    let mut fields = Vec::with_capacity(nfields);
    for _ in 0..nfields {
        need(&buf, 4, "field name length")?;
        let len = buf.get_u32_le() as usize;
        if len > 4096 {
            return Err(fail("field name too long"));
        }
        need(&buf, len + 1, "field descriptor")?;
        let mut name = vec![0u8; len];
        buf.copy_to_slice(&mut name);
        let name = String::from_utf8(name).map_err(|_| fail("field name not utf-8"))?;
        let bits = buf.get_u8();
        fields.push(FieldSpec::new(name, bits));
    }
    let spec = FieldsSpec::new(fields);
    need(&buf, 4, "iset count")?;
    let n_isets = buf.get_u32_le() as usize;
    if n_isets > 1 << 16 {
        return Err(fail("iset count out of range"));
    }
    let mut isets = Vec::with_capacity(n_isets);
    for _ in 0..n_isets {
        need(&buf, 4 + 8, "iset header")?;
        let dim = buf.get_u32_le() as usize;
        if dim >= nfields {
            return Err(fail("iset dim outside schema"));
        }
        let n = buf.get_u64_le() as usize;
        let words = n
            .checked_mul(2 + nfields * 2)
            .and_then(|w| w.checked_mul(8))
            .ok_or_else(|| fail("iset size overflow"))?;
        need(&buf, words + n * 8 + n.div_ceil(8), "iset arrays")?;
        let read_u64s = |buf: &mut &[u8], count: usize| -> Vec<u64> {
            (0..count).map(|_| buf.get_u64_le()).collect()
        };
        let los = read_u64s(&mut buf, n);
        let his = read_u64s(&mut buf, n);
        let rule_ids: Vec<u32> = (0..n).map(|_| buf.get_u32_le()).collect();
        let priorities: Vec<u32> = (0..n).map(|_| buf.get_u32_le()).collect();
        let boxes = read_u64s(&mut buf, n * nfields * 2);
        let mut deleted = Vec::with_capacity(n);
        for chunk_base in (0..n).step_by(8) {
            let byte = buf.get_u8();
            for bit in 0..8.min(n - chunk_base) {
                deleted.push(byte & (1 << bit) != 0);
            }
        }
        need(&buf, 4, "model blob length")?;
        let blob_len = buf.get_u32_le() as usize;
        need(&buf, blob_len, "model blob")?;
        let model = load_rqrmi(&buf[..blob_len])?;
        buf.advance(blob_len);
        isets.push(TrainedISet::from_parts(
            dim, model, los, his, rule_ids, priorities, boxes, deleted,
        ));
    }
    need(&buf, 8, "remainder count")?;
    let n_remainder = buf.get_u64_le() as usize;
    let mut remainder_rules = Vec::with_capacity(n_remainder.min(1 << 20));
    for _ in 0..n_remainder {
        need(&buf, 8 + nfields * 16, "remainder rule")?;
        let id = buf.get_u32_le();
        let priority = buf.get_u32_le();
        let fields: Vec<nm_common::FieldRange> = (0..nfields)
            .map(|_| {
                let lo = buf.get_u64_le();
                let hi = buf.get_u64_le();
                nm_common::FieldRange::new(lo, hi)
            })
            .collect();
        remainder_rules.push(Rule::new(id, priority, fields));
    }
    if buf.has_remaining() {
        return Err(fail("trailing bytes"));
    }
    let remainder_set = RuleSet::new(spec.clone(), remainder_rules)?;
    let remainder = builder.build_engine(&remainder_set);
    let mut nm = NuevoMatch::assemble(isets, remainder, early_termination, total_rules, spec);
    nm.moved_updates = moved_updates;
    Ok((nm, generation))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RqRmiParams;
    use crate::rqrmi::train_rqrmi;
    use nm_common::FieldRange;

    fn model() -> RqRmi {
        let ranges: Vec<FieldRange> =
            (0..300).map(|i| FieldRange::new(i * 200, i * 200 + 99)).collect();
        train_rqrmi(&ranges, 16, &RqRmiParams { samples_init: 256, ..Default::default() }).unwrap()
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let m = model();
        let bytes = save_rqrmi(&m);
        let back = load_rqrmi(&bytes).unwrap();
        assert_eq!(back.widths(), m.widths());
        assert_eq!(back.len(), m.len());
        for key in (0..65_536u64).step_by(37) {
            assert_eq!(back.predict(key), m.predict(key), "key {key}");
        }
    }

    #[test]
    fn checksum_catches_corruption() {
        let m = model();
        let bytes = save_rqrmi(&m);
        for pos in [8usize, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(load_rqrmi(&bad).is_err(), "corruption at {pos} accepted");
        }
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let bytes = save_rqrmi(&model());
        for len in 0..bytes.len() {
            assert!(load_rqrmi(&bytes[..len]).is_err(), "accepted {len}-byte prefix");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = save_rqrmi(&model());
        bytes[0] = b'X';
        assert!(load_rqrmi(&bytes).is_err());
    }

    #[test]
    fn size_is_close_to_model_memory() {
        let m = model();
        let bytes = save_rqrmi(&m);
        // Serialised form should be within 2x of the in-memory weight bytes.
        assert!(bytes.len() < m.memory_bytes() * 2 + 128);
    }

    mod snapshot {
        use super::super::*;
        use crate::config::{NuevoMatchConfig, RqRmiParams};
        use crate::system::ClassifierHandle;
        use nm_common::{FieldsSpec, FiveTuple, LinearSearch, UpdateBatch};

        fn cfg() -> NuevoMatchConfig {
            NuevoMatchConfig {
                rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
                ..Default::default()
            }
        }

        fn updated_nm() -> NuevoMatch<LinearSearch> {
            let rules: Vec<_> = (0..250u16)
                .map(|i| {
                    FiveTuple::new()
                        .dst_port_range(i * 100, i * 100 + 99)
                        .into_rule(i as u32, i as u32)
                })
                .collect();
            let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
            let mut nm = NuevoMatch::build(&set, &cfg(), LinearSearch::build).unwrap();
            // Leave history in every structure: tombstones, remainder
            // inserts, a modify.
            nm.apply(
                &UpdateBatch::new()
                    .remove(17)
                    .remove(200)
                    .insert(FiveTuple::new().dst_port_exact(61_234).into_rule(900, 3))
                    .modify(FiveTuple::new().dst_port_range(45_000, 45_050).into_rule(30, 30)),
            );
            nm
        }

        #[test]
        fn roundtrip_preserves_all_verdicts() {
            let nm = updated_nm();
            let bytes = save_snapshot(&nm, 7);
            let (back, generation) = load_snapshot(&bytes, &LinearSearch::build).unwrap();
            assert_eq!(generation, 7);
            assert_eq!(back.num_rules(), nm.num_rules());
            assert_eq!(back.isets().len(), nm.isets().len());
            assert_eq!(back.moved_to_remainder(), nm.moved_to_remainder());
            assert_eq!(back.early_termination(), nm.early_termination());
            assert_eq!(back.remainder().num_rules(), nm.remainder().num_rules());
            for port in (0u64..65_536).step_by(31) {
                let key = [1, 2, 3, port, 6];
                assert_eq!(back.classify(&key), nm.classify(&key), "port {port}");
            }
            // Tombstones and the modify must have survived.
            assert_eq!(back.classify(&[0, 0, 0, 1_750, 0]), None, "tombstone lost");
            assert_eq!(back.classify(&[0, 0, 0, 45_025, 0]).unwrap().rule, 30);
            assert_eq!(back.classify(&[0, 0, 0, 61_234, 0]).unwrap().rule, 900);
        }

        #[test]
        fn corruption_and_truncation_rejected() {
            let bytes = save_snapshot(&updated_nm(), 1);
            for pos in [0usize, 9, bytes.len() / 2, bytes.len() - 9] {
                let mut bad = bytes.clone();
                bad[pos] ^= 0x20;
                assert!(
                    load_snapshot(&bad, &LinearSearch::build).is_err(),
                    "corruption at {pos} accepted"
                );
            }
            for len in (0..bytes.len()).step_by(97) {
                assert!(
                    load_snapshot(&bytes[..len], &LinearSearch::build).is_err(),
                    "accepted {len}-byte prefix"
                );
            }
            // An RQ-RMI blob is not a snapshot.
            let m = super::model();
            assert!(load_snapshot(&save_rqrmi(&m), &LinearSearch::build).is_err());
        }

        #[test]
        fn partially_retrained_snapshot_roundtrips_bit_identically() {
            // A partial retrain patches leaf submodels in place (rescaled
            // w2/b2, refit nets, changed n_values); the codec must
            // round-trip the patched model exactly — no retraining, same
            // verdicts, and a revived handle keeps partial-retraining.
            use crate::config::PartialRetrainPolicy;
            let cfg = NuevoMatchConfig { partial_retrain: PartialRetrainPolicy::always(), ..cfg() };
            let mut nm = updated_nm();
            let (patched, report) = nm.partial_retrain(&cfg).unwrap();
            assert!(report.isets_patched >= 1, "{report:?}");
            nm = patched;
            let bytes = save_snapshot(&nm, 9);
            let (back, generation) = load_snapshot(&bytes, &LinearSearch::build).unwrap();
            assert_eq!(generation, 9);
            assert_eq!(back.isets().len(), nm.isets().len());
            for (a, b) in back.isets().iter().zip(nm.isets()) {
                assert_eq!(a.len(), b.len());
                assert_eq!(a.model().leaf_error_bounds(), b.model().leaf_error_bounds());
                // Bit-identical predictions from the reloaded patched model.
                for key in (0u64..65_536).step_by(101) {
                    assert_eq!(a.model().predict(key), b.model().predict(key), "key {key}");
                }
            }
            for port in (0u64..65_536).step_by(43) {
                let key = [1, 2, 3, port, 6];
                assert_eq!(back.classify(&key), nm.classify(&key), "port {port}");
            }
            // The revived classifier can itself be partially retrained.
            let mut revived = back;
            revived.apply(&UpdateBatch::new().remove(40));
            let (again, _) = revived.partial_retrain(&cfg).unwrap();
            assert_eq!(again.classify(&[0, 0, 0, 4_050, 0]), None, "rule 40 resurrected");
        }

        #[test]
        fn handle_warm_start_resumes_lifecycle() {
            let rules: Vec<_> = (0..300u16)
                .map(|i| {
                    FiveTuple::new()
                        .dst_port_range(i * 100, i * 100 + 99)
                        .into_rule(i as u32, i as u32)
                })
                .collect();
            let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
            let handle = ClassifierHandle::new(&set, &cfg(), LinearSearch::build).unwrap();
            handle.apply(&UpdateBatch::new().remove(5).remove(7));
            let image = handle.save();

            let revived =
                ClassifierHandle::from_snapshot(&image, &cfg(), LinearSearch::build).unwrap();
            assert_eq!(revived.generation(), handle.generation());
            assert_eq!(revived.classify(&[0, 0, 0, 550, 0]), None, "tombstone lost");
            assert_eq!(revived.classify(&[0, 0, 0, 850, 0]).unwrap().rule, 8);
            // The revived handle keeps updating and retraining.
            revived.apply(&UpdateBatch::new().remove(8));
            assert_eq!(revived.classify(&[0, 0, 0, 850, 0]), None);
            let g = revived.retrain().unwrap();
            assert_eq!(revived.generation(), g);
            assert_eq!(revived.classify(&[0, 0, 0, 550, 0]), None, "retrain resurrected rule 5");
            assert_eq!(revived.classify(&[0, 0, 0, 850, 0]), None, "retrain resurrected rule 8");
            assert_eq!(revived.classify(&[0, 0, 0, 950, 0]).unwrap().rule, 9);
        }
    }
}
