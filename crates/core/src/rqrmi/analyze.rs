//! Analytic machinery behind RQ-RMI training (paper §3.5, Appendix A).
//!
//! Everything here revolves around three facts:
//!
//! 1. A clamped 1×H×1 ReLU submodel is piece-wise linear (Corollary 3.2);
//!    `nm_nn::segments` extracts the exact pieces in `f64`.
//! 2. Within one linear piece, the quantised output `⌊M(x)·W⌋` changes only
//!    at analytically solvable *transition inputs* (Definition A.6), so
//!    responsibilities (Theorem A.1) and prediction-error bounds
//!    (Theorem A.13) need only a finite set of evaluations.
//! 3. Inference runs in `f32` while analysis runs in `f64`. We bridge the gap
//!    rigorously: [`eval_delta`] bounds `|M_f32(x) − M_f64(x)|` from the
//!    weight magnitudes, every bucket decision within `delta` of a boundary
//!    is treated as *ambiguous* (the key is assigned to both adjacent
//!    buckets' responsibilities), and error bounds are computed on the
//!    `±delta` band rather than the exact analytic value. The result: bounds
//!    that hold for the real `f32` pipeline — scalar or SIMD, whatever the
//!    summation order — not just for the idealised math.

use nm_common::range::domain_max;
use nm_nn::{segments, Mlp, Segment};

/// Maps integer keys of a `bits`-wide field into model input space `[0, 1)`.
///
/// `x(key) = key / 2^bits`, computed in `f64` (exact for bits ≤ 52) and cast
/// to `f32` for inference. The cast is monotone, so key order is preserved.
#[derive(Clone, Copy, Debug)]
pub struct KeyMap {
    scale: f64,
    domain_max: u64,
}

impl KeyMap {
    /// Creates the map for a `bits`-wide field (bits ≤ 52 so `key as f64`
    /// stays exact; wider fields must be split, see
    /// [`nm_common::FieldsSpec::split_wide`]).
    pub fn new(bits: u8) -> Self {
        assert!((1..=52).contains(&bits), "KeyMap supports 1..=52-bit fields, got {bits}");
        let dm = domain_max(bits);
        Self { scale: 1.0 / (dm as f64 + 1.0), domain_max: dm }
    }

    /// Largest key of the domain.
    #[inline]
    pub fn domain_max(&self) -> u64 {
        self.domain_max
    }

    /// Model input for a key, in inference precision.
    #[inline]
    pub fn x(&self, key: u64) -> f32 {
        (key as f64 * self.scale) as f32
    }

    /// Model input for a key, in analysis precision (exact).
    #[inline]
    pub fn x64(&self, key: u64) -> f64 {
        key as f64 * self.scale
    }

    /// Smallest key whose `x64` is ≥ `t` (clamped into the domain).
    pub fn ceil_key(&self, t: f64) -> u64 {
        if t <= 0.0 {
            return 0;
        }
        if t > self.x64(self.domain_max) {
            return self.domain_max; // caller clamps; no key reaches t
        }
        let mut k = ((t / self.scale).floor() as i128).clamp(0, self.domain_max as i128) as u64;
        // Fix double-rounding drift: march to the exact boundary (≤ 2 steps).
        while k > 0 && self.x64(k - 1) >= t {
            k -= 1;
        }
        while self.x64(k) < t && k < self.domain_max {
            k += 1;
        }
        k
    }

    /// Largest key whose `x64` is ≤ `t` (clamped into the domain).
    pub fn floor_key(&self, t: f64) -> u64 {
        let k = self.ceil_key(t);
        if self.x64(k) > t {
            k.saturating_sub(1)
        } else {
            k
        }
    }
}

/// Conservative bound on `|M_f32(x) − M_f64(x)|` for `x ∈ [0, 1]`, derived
/// from weight magnitudes: each of the ~4H flops contributes at most one
/// rounding of a quantity bounded by `S = Σ|w2|·(|w1|+|b1|) + |b2|`. The
/// factor 8 covers any summation order (scalar, SSE or AVX tree) with room
/// to spare; a few extra ULPs cover the downstream `y·W` bucket multiply.
pub fn eval_delta(net: &Mlp) -> f64 {
    let mut s = net.b2.abs() as f64;
    for j in 0..net.hidden() {
        s += net.w2[j].abs() as f64 * (net.w1[j].abs() as f64 + net.b1[j].abs() as f64);
    }
    (s * 8.0 + 8.0) * f32::EPSILON as f64
}

/// Transition inputs of one linear piece: the `x` where `⌊M(x)·W⌋` changes,
/// i.e. solutions of `M(x) = m/W` for integer `m` (Definition A.6 restricted
/// to a segment, which is how Lemma A.8 computes them).
///
/// Returned sorted ascending. Constant pieces yield none (ambiguity near a
/// boundary is handled separately via [`eval_delta`] bands).
pub fn transitions_in_segment(seg: &Segment, w: usize) -> Vec<f64> {
    let wf = w as f64;
    let (ylo, yhi) = if seg.y0 <= seg.y1 { (seg.y0, seg.y1) } else { (seg.y1, seg.y0) };
    let m_lo = (ylo * wf).ceil() as i64;
    let m_hi = (yhi * wf).floor() as i64;
    if m_lo > m_hi || seg.slope() == 0.0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity((m_hi - m_lo + 1) as usize);
    for m in m_lo..=m_hi {
        if m <= 0 || m >= w as i64 {
            continue; // crossing 0 or W is clamp territory, not a bucket change
        }
        if let Some(x) = seg.solve(m as f64 / wf) {
            out.push(x);
        }
    }
    out.sort_by(f64::total_cmp);
    out
}

/// A sorted list of disjoint, inclusive key intervals — a submodel
/// *responsibility* (Definition A.3) materialised in key space.
pub type Responsibility = Vec<(u64, u64)>;

/// Total number of keys covered by a responsibility.
pub fn responsibility_size(resp: &Responsibility) -> u64 {
    resp.iter().map(|&(a, b)| b - a + 1).sum()
}

/// Computes the responsibilities of the `w_next` submodels of the following
/// stage from a trained submodel and its own responsibility (Theorem A.1).
///
/// Keys whose analytic bucket decision lies within the `f32` evaluation
/// uncertainty of a boundary are assigned to **both** adjacent buckets: a
/// superset responsibility is always safe (extra training samples, error
/// bounds over a superset of reachable keys), whereas a missed key could
/// invalidate the correctness guarantee.
pub fn child_responsibilities(
    net: &Mlp,
    resp: &Responsibility,
    w_next: usize,
    km: &KeyMap,
) -> Vec<Responsibility> {
    let mut out: Vec<Responsibility> = vec![Vec::new(); w_next];
    let delta = eval_delta(net);
    let wf = w_next as f64;

    let mut push = |bucket: i64, a: u64, b: u64| {
        if bucket < 0 || bucket >= w_next as i64 || a > b {
            return;
        }
        out[bucket as usize].push((a, b));
    };

    for &(ka, kb) in resp {
        let segs = segments(net, km.x64(ka), km.x64(kb));
        let mut cursor = ka;
        for seg in &segs {
            if cursor > kb {
                break;
            }
            // Keys whose x lies in this piece.
            let k_end = km.floor_key(seg.x1).min(kb);
            if k_end < cursor {
                continue;
            }
            let k_start = cursor;
            cursor = k_end + 1;

            let slope = seg.slope();
            if slope == 0.0 {
                // Constant piece: one bucket, or two when hugging a boundary.
                let b = (seg.y0 * wf).floor() as i64;
                push(b.min(w_next as i64 - 1), k_start, k_end);
                let lo_b = ((seg.y0 - delta) * wf).floor() as i64;
                let hi_b = ((seg.y0 + delta) * wf).floor() as i64;
                if lo_b != b {
                    push(lo_b, k_start, k_end);
                }
                if hi_b != b {
                    push(hi_b.min(w_next as i64 - 1), k_start, k_end);
                }
                continue;
            }

            // Split the key run at each transition.
            let ts = transitions_in_segment(seg, w_next);
            let mut run_start = k_start;
            let mut boundaries: Vec<u64> = ts.iter().map(|&t| km.ceil_key(t)).collect();
            boundaries.sort_unstable();
            boundaries.dedup();
            for &bk in &boundaries {
                if bk > k_end || bk <= run_start {
                    // Transition falls outside / before the remaining run;
                    // the ambiguity band below still covers its fringe.
                    continue;
                }
                let (a, b) = (run_start, bk - 1);
                let mid = a + (b - a) / 2;
                let y = seg.eval(km.x64(mid));
                push(((y * wf).floor() as i64).min(w_next as i64 - 1), a, b);
                run_start = bk;
            }
            if run_start <= k_end {
                let mid = run_start + (k_end - run_start) / 2;
                let y = seg.eval(km.x64(mid));
                push(((y * wf).floor() as i64).min(w_next as i64 - 1), run_start, k_end);
            }

            // Ambiguity bands: keys within delta (in M units) of a boundary
            // go to both buckets.
            let r_x = delta / slope.abs();
            for &t in &ts {
                let a = km.ceil_key(t - r_x).max(k_start);
                let b = km.floor_key(t + r_x).min(k_end);
                if a > b {
                    continue;
                }
                let y = seg.eval(t);
                let m = (y * wf).round() as i64; // t solves M = m/W
                push(m - 1, a, b);
                push(m.min(w_next as i64 - 1), a, b);
            }
        }
    }

    for r in &mut out {
        normalize(r);
    }
    out
}

/// Sorts and merges overlapping/adjacent intervals in place.
pub fn normalize(resp: &mut Responsibility) {
    if resp.is_empty() {
        return;
    }
    resp.sort_unstable();
    let mut w = 0;
    for i in 1..resp.len() {
        let (a, b) = resp[i];
        let (_, ref mut pb) = resp[w];
        if a <= pb.saturating_add(1) {
            *pb = (*pb).max(b);
        } else {
            w += 1;
            resp[w] = (a, b);
        }
    }
    resp.truncate(w + 1);
}

/// The bucket the *inference* path selects for `key` (reference routing used
/// by tests to validate that responsibilities are supersets of reality).
pub fn route_bucket(net: &Mlp, key: u64, w_next: usize, km: &KeyMap) -> usize {
    let y = net.forward_clamped(km.x(key));
    ((y * w_next as f32) as usize).min(w_next - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keymap_roundtrips() {
        let km = KeyMap::new(16);
        assert_eq!(km.domain_max(), 65535);
        for key in [0u64, 1, 77, 65535] {
            let t = km.x64(key);
            assert_eq!(km.ceil_key(t), key);
            assert_eq!(km.floor_key(t), key);
        }
        // Between two representable x's.
        let t = (km.x64(100) + km.x64(101)) / 2.0;
        assert_eq!(km.ceil_key(t), 101);
        assert_eq!(km.floor_key(t), 100);
        // Out-of-range requests clamp.
        assert_eq!(km.ceil_key(-0.5), 0);
        assert_eq!(km.floor_key(2.0), 65535);
    }

    #[test]
    fn keymap_x_is_monotone() {
        let km = KeyMap::new(32);
        let mut prev = km.x(0);
        for key in (0u64..(1 << 32)).step_by(7_919_777) {
            let x = km.x(key);
            assert!(x >= prev);
            prev = x;
        }
    }

    #[test]
    #[should_panic]
    fn keymap_rejects_wide_fields() {
        let _ = KeyMap::new(53);
    }

    #[test]
    fn transitions_match_quantisation_changes() {
        // M rises linearly 0 -> 1 over [0,1]; W = 4 -> transitions at .25, .5, .75.
        let seg = Segment { x0: 0.0, x1: 1.0, y0: 0.0, y1: 1.0 };
        let ts = transitions_in_segment(&seg, 4);
        assert_eq!(ts.len(), 3);
        assert!((ts[0] - 0.25).abs() < 1e-12);
        assert!((ts[2] - 0.75).abs() < 1e-12);
        // Constant segment: none.
        let flat = Segment { x0: 0.0, x1: 1.0, y0: 0.5, y1: 0.5 };
        assert!(transitions_in_segment(&flat, 4).is_empty());
    }

    #[test]
    fn normalize_merges() {
        let mut r = vec![(10, 20), (0, 5), (21, 30), (4, 12)];
        normalize(&mut r);
        assert_eq!(r, vec![(0, 30)]);
        let mut r2 = vec![(0, 1), (3, 4)];
        normalize(&mut r2);
        assert_eq!(r2, vec![(0, 1), (3, 4)]);
    }

    /// The load-bearing test: child responsibilities must cover the actual
    /// f32 routing for every key, for many random nets.
    #[test]
    fn responsibilities_cover_real_routing() {
        let km = KeyMap::new(16);
        for seed in 0..10u64 {
            let net = Mlp::random(8, seed);
            let resp: Responsibility = vec![(0, km.domain_max())];
            for w_next in [4usize, 16, 256] {
                let children = child_responsibilities(&net, &resp, w_next, &km);
                // Spot-check every 13th key exhaustively-ish.
                for key in (0..=km.domain_max()).step_by(13) {
                    let b = route_bucket(&net, key, w_next, &km);
                    let covered = children[b].iter().any(|&(a, z)| a <= key && key <= z);
                    assert!(
                        covered,
                        "seed {seed} W {w_next}: key {key} routed to bucket {b} not covered"
                    );
                }
            }
        }
    }

    #[test]
    fn responsibilities_partition_without_much_overlap() {
        // Superset is allowed, but the overlap should be a sliver.
        let km = KeyMap::new(16);
        let net = Mlp::random(8, 3);
        let children = child_responsibilities(&net, &vec![(0, km.domain_max())], 16, &km);
        let total: u64 = children.iter().map(responsibility_size).sum();
        let dom = km.domain_max() + 1;
        assert!(total >= dom, "children must cover the domain");
        assert!(total < dom + dom / 10, "overlap too large: {total} vs {dom}");
    }

    #[test]
    fn eval_delta_scales_with_weights() {
        let small = Mlp::random(8, 1);
        let mut big = small.clone();
        for w in &mut big.w2 {
            *w *= 1000.0;
        }
        assert!(eval_delta(&big) > eval_delta(&small) * 100.0);
    }
}
