//! The trained RQ-RMI model: staged submodels + per-leaf error bounds.

use super::analyze::KeyMap;
use nm_nn::Mlp;

/// A trained Range-Query Recursive Model Index over one field.
///
/// Indexes `n_values` sorted, non-overlapping ranges. [`RqRmi::predict`]
/// returns a predicted array index plus the worst-case error bound of the
/// leaf that produced it; the true index of any key *covered by a range* is
/// guaranteed to lie within `predicted ± bound` (paper Theorem A.13 — see
/// `train.rs` for how the bound is made robust to `f32` evaluation noise).
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RqRmi {
    /// Stage widths; `widths[0] == 1`.
    pub(crate) widths: Vec<usize>,
    /// `nets[s][j]` = submodel `m_{s,j}`. Untrained (unreachable) submodels
    /// are all-zero networks.
    pub(crate) nets: Vec<Vec<Mlp>>,
    /// Worst-case index prediction error per leaf submodel.
    pub(crate) leaf_err: Vec<u32>,
    /// Number of indexed ranges (the value-array size, `W_n` in the paper).
    pub(crate) n_values: usize,
    /// Field width in bits (reconstructs the key map; not serialised state).
    pub(crate) bits: u8,
}

impl RqRmi {
    /// Number of indexed ranges.
    #[inline]
    pub fn len(&self) -> usize {
        self.n_values
    }

    /// True when the model indexes nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_values == 0
    }

    /// Stage widths (Table 4 shape).
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// The key-to-input map for this model's field.
    #[inline]
    pub fn key_map(&self) -> KeyMap {
        KeyMap::new(self.bits)
    }

    /// Worst error bound across all leaves — the paper's `ϵ` when quoted as
    /// a single number (§5.3.4).
    pub fn max_error_bound(&self) -> u32 {
        self.leaf_err.iter().copied().max().unwrap_or(0)
    }

    /// Predicts the index of the range matching `key`. Returns
    /// `(predicted_index, error_bound)`; the caller performs the secondary
    /// search in `[pred − bound, pred + bound]`.
    #[inline]
    pub fn predict(&self, key: u64) -> (usize, u32) {
        let km = self.key_map();
        let x = km.x(key);
        self.predict_x(x)
    }

    /// Like [`RqRmi::predict`] but takes the already-scaled `f32` input
    /// (hot path for batched lookups that hoist the scaling).
    #[inline]
    pub fn predict_x(&self, x: f32) -> (usize, u32) {
        let stages = self.nets.len();
        let mut idx = 0usize;
        for s in 0..stages - 1 {
            let y = self.nets[s][idx].forward_clamped(x);
            let w_next = self.widths[s + 1];
            idx = ((y * w_next as f32) as usize).min(w_next - 1);
        }
        let leaf = &self.nets[stages - 1][idx];
        // Final multiply in f64: n_values can exceed f32's integer range of
        // exact products, and the error-bound analysis assumes this exact
        // quantisation of the f32 output.
        let y = leaf.forward_clamped(x) as f64;
        let pred = ((y * self.n_values as f64) as usize).min(self.n_values - 1);
        (pred, self.leaf_err[idx])
    }

    /// The leaf submodel index `key` routes to (diagnostics / tests).
    pub fn route(&self, key: u64) -> usize {
        let km = self.key_map();
        let x = km.x(key);
        let mut idx = 0usize;
        for s in 0..self.nets.len() - 1 {
            let y = self.nets[s][idx].forward_clamped(x);
            let w_next = self.widths[s + 1];
            idx = ((y * w_next as f32) as usize).min(w_next - 1);
        }
        idx
    }

    /// Total number of submodels.
    pub fn num_submodels(&self) -> usize {
        self.nets.iter().map(Vec::len).sum()
    }

    /// Bytes of model state: weights plus per-leaf error bounds — what the
    /// RQ-RMI contributes to the Figure 13 memory footprint.
    pub fn memory_bytes(&self) -> usize {
        let weights: usize = self.nets.iter().flatten().map(Mlp::weight_bytes).sum();
        weights
            + self.leaf_err.len() * std::mem::size_of::<u32>()
            + self.widths.len() * std::mem::size_of::<usize>()
    }

    /// Per-leaf error bounds (diagnostics; Figure 15 reporting).
    pub fn leaf_error_bounds(&self) -> &[u32] {
        &self.leaf_err
    }
}

#[cfg(test)]
mod tests {
    use crate::config::RqRmiParams;
    use crate::rqrmi::train::train_rqrmi;
    use nm_common::FieldRange;

    fn ranges_grid(n: u64, gap: u64, width: u64) -> Vec<FieldRange> {
        (0..n).map(|i| FieldRange::new(i * gap, i * gap + width - 1)).collect()
    }

    #[test]
    fn memory_is_kilobytes_not_megabytes() {
        // 256 ranges on a 16-bit field; tiny model.
        let ranges = ranges_grid(256, 256, 16);
        let m = train_rqrmi(&ranges, 16, &RqRmiParams::default()).unwrap();
        assert!(m.memory_bytes() < 64 * 1024, "model is {} bytes", m.memory_bytes());
        assert_eq!(m.len(), 256);
        assert!(!m.is_empty());
        assert!(m.num_submodels() >= 1);
    }

    #[test]
    fn predict_within_bound_everywhere() {
        let ranges = ranges_grid(128, 512, 100);
        let m = train_rqrmi(&ranges, 16, &RqRmiParams::default()).unwrap();
        for (true_idx, r) in ranges.iter().enumerate() {
            for key in [r.lo, (r.lo + r.hi) / 2, r.hi] {
                let (pred, err) = m.predict(key);
                let dist = (pred as i64 - true_idx as i64).unsigned_abs();
                assert!(dist <= err as u64, "key {key}: true {true_idx} pred {pred} err {err}");
            }
        }
    }
}
