//! Vectorised submodel inference (paper §4 "Vectorization", Table 1).
//!
//! A submodel forward pass is one fused multiply-add over the 8 hidden
//! neurons, a ReLU, and a dot product — a handful of vector instructions.
//! The paper reports 126 ns serial, 62 ns SSE (4 floats/op), 49 ns AVX
//! (8 floats/op) per inference; the Table 1 bench regenerates that
//! comparison with these kernels.
//!
//! Correctness note: the SIMD summation order differs from the scalar loop,
//! so results can differ in the last ULPs. The RQ-RMI error bounds are
//! computed over a `±delta` band that covers *any* summation order (see
//! `analyze::eval_delta`), so every kernel here is safe to use for lookups.

use nm_nn::{Mlp, ONE_MINUS_EPS};

/// Instruction set used for submodel inference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Isa {
    /// Plain scalar loop (the portable reference).
    Scalar,
    /// SSE: two 4-float halves.
    Sse,
    /// AVX: all 8 neurons in one 256-bit register.
    Avx,
}

/// Best instruction set available on this CPU.
pub fn detect() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx") {
            return Isa::Avx;
        }
        // SSE2 is part of the x86_64 baseline.
        return Isa::Sse;
    }
    #[allow(unreachable_code)]
    Isa::Scalar
}

/// A submodel compiled for vector execution: weights padded to 8 lanes.
///
/// Padding lanes have `w1 = b1 = w2 = 0`, so they contribute
/// `relu(0)·0 = 0` on every path.
#[derive(Clone, Debug)]
#[repr(C, align(32))]
pub struct Kernel {
    w1: [f32; 8],
    b1: [f32; 8],
    w2: [f32; 8],
    b2: f32,
}

impl Kernel {
    /// Compiles an [`Mlp`] (hidden width ≤ 8) into a padded kernel.
    pub fn from_mlp(net: &Mlp) -> Self {
        assert!(net.hidden() <= 8, "kernels support up to 8 hidden neurons");
        let mut k = Kernel { w1: [0.0; 8], b1: [0.0; 8], w2: [0.0; 8], b2: net.b2 };
        k.w1[..net.hidden()].copy_from_slice(&net.w1);
        k.b1[..net.hidden()].copy_from_slice(&net.b1);
        k.w2[..net.hidden()].copy_from_slice(&net.w2);
        k
    }

    /// Clamped forward pass with the requested instruction set.
    #[inline]
    pub fn forward_clamped(&self, x: f32, isa: Isa) -> f32 {
        let y = match isa {
            Isa::Scalar => self.forward_scalar(x),
            #[cfg(target_arch = "x86_64")]
            Isa::Sse => unsafe { self.forward_sse(x) },
            #[cfg(target_arch = "x86_64")]
            Isa::Avx => unsafe { self.forward_avx(x) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.forward_scalar(x),
        };
        y.clamp(0.0, ONE_MINUS_EPS)
    }

    /// Scalar reference over the padded lanes.
    #[inline]
    pub fn forward_scalar(&self, x: f32) -> f32 {
        let mut acc = 0.0f32;
        for j in 0..8 {
            let pre = self.w1[j] * x + self.b1[j];
            if pre > 0.0 {
                acc += self.w2[j] * pre;
            }
        }
        acc + self.b2
    }

    /// SSE path: two 4-lane halves.
    ///
    /// # Safety
    /// Requires SSE (always present on x86_64).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "sse2")]
    #[inline]
    unsafe fn forward_sse(&self, x: f32) -> f32 {
        use std::arch::x86_64::*;
        let xv = _mm_set1_ps(x);
        let zero = _mm_setzero_ps();
        let mut acc = zero;
        for half in 0..2 {
            let off = half * 4;
            let w1 = _mm_loadu_ps(self.w1.as_ptr().add(off));
            let b1 = _mm_loadu_ps(self.b1.as_ptr().add(off));
            let w2 = _mm_loadu_ps(self.w2.as_ptr().add(off));
            let pre = _mm_add_ps(_mm_mul_ps(w1, xv), b1);
            let hid = _mm_max_ps(pre, zero);
            acc = _mm_add_ps(acc, _mm_mul_ps(hid, w2));
        }
        // Horizontal sum of 4 lanes.
        let shuf = _mm_movehdup_ps(acc);
        let sums = _mm_add_ps(acc, shuf);
        let shuf2 = _mm_movehl_ps(shuf, sums);
        let total = _mm_add_ss(sums, shuf2);
        _mm_cvtss_f32(total) + self.b2
    }

    /// AVX path: all 8 lanes at once.
    ///
    /// # Safety
    /// Requires AVX; dispatch through [`detect`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    #[inline]
    unsafe fn forward_avx(&self, x: f32) -> f32 {
        use std::arch::x86_64::*;
        let xv = _mm256_set1_ps(x);
        let w1 = _mm256_loadu_ps(self.w1.as_ptr());
        let b1 = _mm256_loadu_ps(self.b1.as_ptr());
        let w2 = _mm256_loadu_ps(self.w2.as_ptr());
        let pre = _mm256_add_ps(_mm256_mul_ps(w1, xv), b1);
        let hid = _mm256_max_ps(pre, _mm256_setzero_ps());
        let prod = _mm256_mul_ps(hid, w2);
        // Horizontal sum of 8 lanes.
        let hi = _mm256_extractf128_ps(prod, 1);
        let lo = _mm256_castps256_ps128(prod);
        let sum4 = _mm_add_ps(lo, hi);
        let shuf = _mm_movehdup_ps(sum4);
        let sums = _mm_add_ps(sum4, shuf);
        let shuf2 = _mm_movehl_ps(shuf, sums);
        let total = _mm_add_ss(sums, shuf2);
        _mm_cvtss_f32(total) + self.b2
    }

    /// Kernel weight bytes (same as the source submodel plus padding).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    /// Runs a *dependent chain* of `iters` forward passes (each input
    /// derived from the previous output) and returns the final value — the
    /// Table 1 latency measurement.
    ///
    /// The loop lives inside a `#[target_feature]` function per ISA so the
    /// vector kernels inline into their own loop; calling `forward_clamped`
    /// from generic code cannot inline across the feature boundary and
    /// would time the call overhead instead of the kernel.
    pub fn latency_chain(&self, x0: f32, iters: usize, isa: Isa) -> f32 {
        match isa {
            Isa::Scalar => self.chain_scalar(x0, iters),
            #[cfg(target_arch = "x86_64")]
            Isa::Sse => unsafe { self.chain_sse(x0, iters) },
            #[cfg(target_arch = "x86_64")]
            Isa::Avx => unsafe { self.chain_avx(x0, iters) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.chain_scalar(x0, iters),
        }
    }

    fn chain_scalar(&self, mut x: f32, iters: usize) -> f32 {
        for _ in 0..iters {
            let y = self.forward_scalar(x).clamp(0.0, ONE_MINUS_EPS);
            // Golden-ratio hop: inputs sweep the whole domain so ReLU
            // branches stay unpredictable (a fixpoint chain would let the
            // scalar path win on branch prediction alone).
            x = (y + 0.618_034).fract();
        }
        x
    }

    /// # Safety
    /// Requires SSE2 (x86_64 baseline).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "sse2")]
    unsafe fn chain_sse(&self, mut x: f32, iters: usize) -> f32 {
        for _ in 0..iters {
            let y = self.forward_sse(x).clamp(0.0, ONE_MINUS_EPS);
            x = (y + 0.618_034).fract();
        }
        x
    }

    /// # Safety
    /// Requires AVX; dispatch through [`detect`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    unsafe fn chain_avx(&self, mut x: f32, iters: usize) -> f32 {
        for _ in 0..iters {
            let y = self.forward_avx(x).clamp(0.0, ONE_MINUS_EPS);
            x = (y + 0.618_034).fract();
        }
        x
    }
}

/// An [`super::RqRmi`] compiled for the hot path: padded kernels per stage,
/// one ISA chosen up front.
#[derive(Clone, Debug)]
pub struct CompiledRqRmi {
    stages: Vec<Vec<Kernel>>,
    widths: Vec<usize>,
    leaf_err: Vec<u32>,
    n_values: usize,
    scale: f64,
    isa: Isa,
}

impl CompiledRqRmi {
    /// Compiles a trained model with the best detected instruction set.
    pub fn new(model: &super::RqRmi) -> Self {
        Self::with_isa(model, detect())
    }

    /// Compiles with an explicit instruction set (Table 1 sweeps this).
    pub fn with_isa(model: &super::RqRmi, isa: Isa) -> Self {
        let stages = model
            .nets
            .iter()
            .map(|st| st.iter().map(Kernel::from_mlp).collect())
            .collect();
        let km = model.key_map();
        Self {
            stages,
            widths: model.widths.clone(),
            leaf_err: model.leaf_err.clone(),
            n_values: model.n_values,
            scale: 1.0 / (km.domain_max() as f64 + 1.0),
            isa,
        }
    }

    /// The instruction set in use.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// Number of indexed ranges.
    pub fn len(&self) -> usize {
        self.n_values
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.n_values == 0
    }

    /// Predicted index + error bound for `key` (same contract as
    /// [`super::RqRmi::predict`]).
    #[inline]
    pub fn predict(&self, key: u64) -> (usize, u32) {
        let x = (key as f64 * self.scale) as f32;
        let nstages = self.stages.len();
        let mut idx = 0usize;
        for s in 0..nstages - 1 {
            let y = self.stages[s][idx].forward_clamped(x, self.isa);
            let w_next = self.widths[s + 1];
            idx = ((y * w_next as f32) as usize).min(w_next - 1);
        }
        let y = self.stages[nstages - 1][idx].forward_clamped(x, self.isa) as f64;
        let pred = ((y * self.n_values as f64) as usize).min(self.n_values - 1);
        (pred, self.leaf_err[idx])
    }

    /// Kernel memory (Figure 13 accounting mirrors [`super::RqRmi::memory_bytes`]).
    pub fn memory_bytes(&self) -> usize {
        self.stages.iter().flatten().map(Kernel::memory_bytes).sum::<usize>()
            + self.leaf_err.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_match_scalar_reference() {
        for seed in 0..20u64 {
            let net = Mlp::random(8, seed);
            let k = Kernel::from_mlp(&net);
            for i in 0..200 {
                let x = i as f32 / 200.0;
                let reference = net.forward_clamped(x);
                let scalar = k.forward_clamped(x, Isa::Scalar);
                assert!(
                    (reference - scalar).abs() <= 1e-6,
                    "scalar kernel diverged at x={x}"
                );
                for isa in [Isa::Sse, Isa::Avx] {
                    if isa == Isa::Avx && detect() != Isa::Avx {
                        continue;
                    }
                    let v = k.forward_clamped(x, isa);
                    assert!(
                        (reference - v).abs() <= 1e-5,
                        "{isa:?} diverged at x={x}: {reference} vs {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn padding_lanes_are_inert() {
        let net = Mlp { w1: vec![1.0; 3], b1: vec![-0.1; 3], w2: vec![0.5; 3], b2: 0.2 };
        let k = Kernel::from_mlp(&net);
        for i in 0..50 {
            let x = i as f32 / 50.0;
            assert!((net.forward_clamped(x) - k.forward_clamped(x, Isa::Scalar)).abs() < 1e-6);
        }
    }

    #[test]
    fn detect_never_scalar_on_x86_64() {
        #[cfg(target_arch = "x86_64")]
        assert_ne!(detect(), Isa::Scalar);
    }

    #[test]
    fn compiled_model_agrees_with_reference_within_bounds() {
        use crate::config::RqRmiParams;
        use crate::rqrmi::train::train_rqrmi;
        use nm_common::FieldRange;
        let ranges: Vec<FieldRange> =
            (0..300).map(|i| FieldRange::new(i * 200, i * 200 + 99)).collect();
        let m = train_rqrmi(&ranges, 16, &RqRmiParams::default()).unwrap();
        let compiled = CompiledRqRmi::new(&m);
        for (idx, r) in ranges.iter().enumerate() {
            for key in [r.lo, r.hi] {
                let (pred, err) = compiled.predict(key);
                let dist = (pred as i64 - idx as i64).unsigned_abs();
                assert!(dist <= err as u64, "key {key}: pred {pred} true {idx} err {err}");
            }
        }
    }
}
