//! Vectorised submodel inference (paper §4 "Vectorization", Table 1).
//!
//! A submodel forward pass is one fused multiply-add over the 8 hidden
//! neurons, a ReLU, and a dot product — a handful of vector instructions.
//! The paper reports 126 ns serial, 62 ns SSE (4 floats/op), 49 ns AVX
//! (8 floats/op) per inference; the Table 1 bench regenerates that
//! comparison with these kernels, plus an **FMA column** the paper's 2016-era
//! Xeon lacked: `avx2+fma` fuses the `w1·x + b1` and accumulate steps into
//! single `vfmadd` instructions, halving the arithmetic chain of both the
//! per-packet and the cross-packet kernels below.
//!
//! ## Three axes of vectorization
//!
//! * **Within a packet** ([`Kernel::forward_clamped`]): the 8 hidden neurons
//!   of one submodel fill one 256-bit register; a single packet's input is
//!   broadcast across lanes. This is the paper's Table 1 kernel.
//! * **Across packets, shared submodel** ([`Kernel::forward_batch8`]): one
//!   AVX *lane per packet*, 8 packets evaluated against one submodel per
//!   instruction sequence. Stage 0 of every RQ-RMI has a single root
//!   submodel shared by all keys, so a batched lookup pipeline feeds whole
//!   batches through this kernel — 8× the per-instruction work of the
//!   broadcast kernel with no horizontal reduction at all (the per-packet
//!   kernel spends ~half its instructions summing lanes). Deeper shared
//!   stages use it opportunistically whenever all 8 lanes agree on the
//!   submodel index.
//! * **Across packets, divergent leaves** ([`LeafSoa::forward_leaf_gather8`]):
//!   when the 8 packets of a group route to *different* leaf submodels, a
//!   lane-per-packet pass is still possible if each lane can fetch its own
//!   leaf's parameters. [`LeafSoa`] keeps a transposed (structure-of-arrays)
//!   copy of the leaf stage — all leaves' `w1[j]` contiguous per neuron `j`,
//!   all `b2` contiguous — so `_mm256_i32gather_ps` (AVX2) pulls 8 divergent
//!   leaves' parameters into registers, one gather per coefficient, and the
//!   stage finishes in the same FMA pass as the shared kernel. See the
//!   `LeafSoa` docs for the selection policy and when gather wins.
//!
//! ## Dispatch
//!
//! [`CompiledRqRmi`] picks the instruction set **once at compile time**
//! ([`detect`] or an explicit [`CompiledRqRmi::with_isa`]) and stores
//! monomorphized function pointers for the whole staged walk. The hot path
//! pays one indirect call per prediction (or per 8-packet group) instead of
//! the per-stage `match isa` branch the scalar path used to take, and each
//! monomorphized body carries its ISA's `#[target_feature]`, so the kernels
//! inline into their own staged loop.
//!
//! Correctness note: the SIMD summation order differs from the scalar loop,
//! so results can differ in the last ULPs; FMA additionally skips the
//! intermediate rounding of `w1·x` (one rounding per fused op instead of
//! two, i.e. *smaller* deviation from the `f64` reference). The RQ-RMI error
//! bounds are computed over a `±delta` band that covers any summation order
//! and any per-flop rounding at most one ULP of the running magnitude (see
//! `analyze::eval_delta`), which includes every fused variant, so every
//! kernel here is safe to use for lookups: a batched lookup may route a
//! boundary key to a neighbouring leaf, but both leaves' error bounds cover
//! such keys (the trainer assigns boundary-band keys to both children), so
//! the secondary search still finds the same range and classification
//! results stay bit-identical.

use nm_nn::{Mlp, ONE_MINUS_EPS};

/// Instruction set used for submodel inference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Isa {
    /// Plain scalar loop (the portable reference).
    Scalar,
    /// SSE: two 4-float halves.
    Sse,
    /// AVX: all 8 neurons (or 8 packets) in one 256-bit register.
    Avx,
    /// AVX2 + FMA: as [`Isa::Avx`] with fused multiply-adds.
    AvxFma,
}

impl Isa {
    /// True when the running CPU can execute this instruction set.
    pub fn available(self) -> bool {
        match self {
            Isa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Sse => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx => std::arch::is_x86_feature_detected!("avx"),
            #[cfg(target_arch = "x86_64")]
            Isa::AvxFma => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// Best instruction set available on this CPU.
pub fn detect() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if Isa::AvxFma.available() {
            return Isa::AvxFma;
        }
        if Isa::Avx.available() {
            return Isa::Avx;
        }
        // SSE2 is part of the x86_64 baseline.
        return Isa::Sse;
    }
    #[allow(unreachable_code)]
    Isa::Scalar
}

/// A submodel compiled for vector execution: weights padded to 8 lanes.
///
/// Padding lanes have `w1 = b1 = w2 = 0`, so they contribute
/// `relu(0)·0 = 0` on every path.
#[derive(Clone, Debug)]
#[repr(C, align(32))]
pub struct Kernel {
    w1: [f32; 8],
    b1: [f32; 8],
    w2: [f32; 8],
    b2: f32,
}

impl Kernel {
    /// Compiles an [`Mlp`] (hidden width ≤ 8) into a padded kernel.
    pub fn from_mlp(net: &Mlp) -> Self {
        assert!(net.hidden() <= 8, "kernels support up to 8 hidden neurons");
        let mut k = Kernel { w1: [0.0; 8], b1: [0.0; 8], w2: [0.0; 8], b2: net.b2 };
        k.w1[..net.hidden()].copy_from_slice(&net.w1);
        k.b1[..net.hidden()].copy_from_slice(&net.b1);
        k.w2[..net.hidden()].copy_from_slice(&net.w2);
        k
    }

    /// Clamped forward pass with the requested instruction set.
    #[inline]
    pub fn forward_clamped(&self, x: f32, isa: Isa) -> f32 {
        debug_assert!(isa.available(), "{isa:?} not supported by this CPU");
        let y = match isa {
            Isa::Scalar => self.forward_scalar(x),
            // SAFETY: SSE2 is part of the x86_64 baseline target, so the
            // target-feature requirement of `forward_sse` always holds.
            #[cfg(target_arch = "x86_64")]
            Isa::Sse => unsafe { self.forward_sse(x) },
            // SAFETY: callers obtain `Isa` from `detect()`/`available()`
            // (asserted above in debug builds), so AVX is supported.
            #[cfg(target_arch = "x86_64")]
            Isa::Avx => unsafe { self.forward_avx(x) },
            // SAFETY: as above — `detect()` only yields `AvxFma` when the
            // CPU reports both AVX2 and FMA.
            #[cfg(target_arch = "x86_64")]
            Isa::AvxFma => unsafe { self.forward_fma(x) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.forward_scalar(x),
        };
        y.clamp(0.0, ONE_MINUS_EPS)
    }

    /// Clamped cross-packet forward pass: evaluates **8 packets** against
    /// this one submodel, one lane per packet (see the module docs). Outputs
    /// are clamped into `[0, 1)` like [`Kernel::forward_clamped`].
    #[inline]
    pub fn forward_batch8(&self, xs: &[f32; 8], isa: Isa) -> [f32; 8] {
        debug_assert!(isa.available(), "{isa:?} not supported by this CPU");
        match isa {
            Isa::Scalar => self.batch8_scalar(xs),
            // SAFETY: SSE2 is part of the x86_64 baseline target, so the
            // target-feature requirement of `batch8_sse` always holds.
            #[cfg(target_arch = "x86_64")]
            Isa::Sse => unsafe { self.batch8_sse(xs) },
            // SAFETY: callers obtain `Isa` from `detect()`/`available()`
            // (asserted above in debug builds), so AVX is supported.
            #[cfg(target_arch = "x86_64")]
            Isa::Avx => unsafe { self.batch8_avx(xs) },
            // SAFETY: as above — `detect()` only yields `AvxFma` when the
            // CPU reports both AVX2 and FMA.
            #[cfg(target_arch = "x86_64")]
            Isa::AvxFma => unsafe { self.batch8_fma(xs) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.batch8_scalar(xs),
        }
    }

    /// Scalar reference over the padded lanes.
    #[inline]
    pub fn forward_scalar(&self, x: f32) -> f32 {
        let mut acc = 0.0f32;
        for j in 0..8 {
            let pre = self.w1[j] * x + self.b1[j];
            if pre > 0.0 {
                acc += self.w2[j] * pre;
            }
        }
        acc + self.b2
    }

    /// Scalar reference for the cross-packet pass (clamped).
    #[inline]
    fn batch8_scalar(&self, xs: &[f32; 8]) -> [f32; 8] {
        std::array::from_fn(|l| self.forward_scalar(xs[l]).clamp(0.0, ONE_MINUS_EPS))
    }

    /// SSE path: two 4-lane halves.
    ///
    /// # Safety
    /// Requires SSE (always present on x86_64).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "sse2")]
    #[inline]
    unsafe fn forward_sse(&self, x: f32) -> f32 {
        // SAFETY: the function's `# Safety` contract guarantees the enabled target features; every pointer load/store below stays within the bounds of the fixed-size parameter arrays.
        unsafe {
            use std::arch::x86_64::*;
            let xv = _mm_set1_ps(x);
            let zero = _mm_setzero_ps();
            let mut acc = zero;
            for half in 0..2 {
                let off = half * 4;
                let w1 = _mm_loadu_ps(self.w1.as_ptr().add(off));
                let b1 = _mm_loadu_ps(self.b1.as_ptr().add(off));
                let w2 = _mm_loadu_ps(self.w2.as_ptr().add(off));
                let pre = _mm_add_ps(_mm_mul_ps(w1, xv), b1);
                let hid = _mm_max_ps(pre, zero);
                acc = _mm_add_ps(acc, _mm_mul_ps(hid, w2));
            }
            // Horizontal sum of 4 lanes.
            let shuf = _mm_movehdup_ps(acc);
            let sums = _mm_add_ps(acc, shuf);
            let shuf2 = _mm_movehl_ps(shuf, sums);
            let total = _mm_add_ss(sums, shuf2);
            _mm_cvtss_f32(total) + self.b2
        }
    }

    /// AVX path: all 8 lanes at once.
    ///
    /// # Safety
    /// Requires AVX; dispatch through [`detect`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    #[inline]
    unsafe fn forward_avx(&self, x: f32) -> f32 {
        // SAFETY: the function's `# Safety` contract guarantees the enabled target features; every pointer load/store below stays within the bounds of the fixed-size parameter arrays.
        unsafe {
            use std::arch::x86_64::*;
            let xv = _mm256_set1_ps(x);
            let w1 = _mm256_loadu_ps(self.w1.as_ptr());
            let b1 = _mm256_loadu_ps(self.b1.as_ptr());
            let w2 = _mm256_loadu_ps(self.w2.as_ptr());
            let pre = _mm256_add_ps(_mm256_mul_ps(w1, xv), b1);
            let hid = _mm256_max_ps(pre, _mm256_setzero_ps());
            let prod = _mm256_mul_ps(hid, w2);
            // Horizontal sum of 8 lanes.
            let hi = _mm256_extractf128_ps(prod, 1);
            let lo = _mm256_castps256_ps128(prod);
            let sum4 = _mm_add_ps(lo, hi);
            let shuf = _mm_movehdup_ps(sum4);
            let sums = _mm_add_ps(sum4, shuf);
            let shuf2 = _mm_movehl_ps(shuf, sums);
            let total = _mm_add_ss(sums, shuf2);
            _mm_cvtss_f32(total) + self.b2
        }
    }

    /// FMA path: as [`Kernel::forward_avx`] with the multiply-add fused.
    ///
    /// # Safety
    /// Requires AVX2 + FMA; dispatch through [`detect`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    unsafe fn forward_fma(&self, x: f32) -> f32 {
        // SAFETY: the function's `# Safety` contract guarantees the enabled target features; every pointer load/store below stays within the bounds of the fixed-size parameter arrays.
        unsafe {
            use std::arch::x86_64::*;
            let xv = _mm256_set1_ps(x);
            let w1 = _mm256_loadu_ps(self.w1.as_ptr());
            let b1 = _mm256_loadu_ps(self.b1.as_ptr());
            let w2 = _mm256_loadu_ps(self.w2.as_ptr());
            let pre = _mm256_fmadd_ps(w1, xv, b1);
            let hid = _mm256_max_ps(pre, _mm256_setzero_ps());
            let prod = _mm256_mul_ps(hid, w2);
            let hi = _mm256_extractf128_ps(prod, 1);
            let lo = _mm256_castps256_ps128(prod);
            let sum4 = _mm_add_ps(lo, hi);
            let shuf = _mm_movehdup_ps(sum4);
            let sums = _mm_add_ps(sum4, shuf);
            let shuf2 = _mm_movehl_ps(shuf, sums);
            let total = _mm_add_ss(sums, shuf2);
            _mm_cvtss_f32(total) + self.b2
        }
    }

    /// SSE cross-packet pass: 8 packets as two 4-lane halves, clamped.
    ///
    /// # Safety
    /// Requires SSE (always present on x86_64).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "sse2")]
    #[inline]
    unsafe fn batch8_sse(&self, xs: &[f32; 8]) -> [f32; 8] {
        // SAFETY: the function's `# Safety` contract guarantees the enabled target features; every pointer load/store below stays within the bounds of the fixed-size parameter arrays.
        unsafe {
            use std::arch::x86_64::*;
            let zero = _mm_setzero_ps();
            let one_minus = _mm_set1_ps(ONE_MINUS_EPS);
            let mut out = [0.0f32; 8];
            for half in 0..2 {
                let xv = _mm_loadu_ps(xs.as_ptr().add(half * 4));
                let mut acc = _mm_set1_ps(self.b2);
                for j in 0..8 {
                    let w1 = _mm_set1_ps(self.w1[j]);
                    let b1 = _mm_set1_ps(self.b1[j]);
                    let w2 = _mm_set1_ps(self.w2[j]);
                    let pre = _mm_add_ps(_mm_mul_ps(w1, xv), b1);
                    let hid = _mm_max_ps(pre, zero);
                    acc = _mm_add_ps(acc, _mm_mul_ps(hid, w2));
                }
                let y = _mm_min_ps(_mm_max_ps(acc, zero), one_minus);
                _mm_storeu_ps(out.as_mut_ptr().add(half * 4), y);
            }
            out
        }
    }

    /// AVX cross-packet pass: 8 packets, one lane each, clamped. No
    /// horizontal reduction — the neuron loop accumulates vertically.
    ///
    /// # Safety
    /// Requires AVX; dispatch through [`detect`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    #[inline]
    unsafe fn batch8_avx(&self, xs: &[f32; 8]) -> [f32; 8] {
        // SAFETY: the function's `# Safety` contract guarantees the enabled target features; every pointer load/store below stays within the bounds of the fixed-size parameter arrays.
        unsafe {
            use std::arch::x86_64::*;
            let xv = _mm256_loadu_ps(xs.as_ptr());
            let zero = _mm256_setzero_ps();
            let mut acc = _mm256_set1_ps(self.b2);
            for j in 0..8 {
                let w1 = _mm256_set1_ps(self.w1[j]);
                let b1 = _mm256_set1_ps(self.b1[j]);
                let w2 = _mm256_set1_ps(self.w2[j]);
                let pre = _mm256_add_ps(_mm256_mul_ps(w1, xv), b1);
                let hid = _mm256_max_ps(pre, zero);
                acc = _mm256_add_ps(acc, _mm256_mul_ps(hid, w2));
            }
            let y = _mm256_min_ps(_mm256_max_ps(acc, zero), _mm256_set1_ps(ONE_MINUS_EPS));
            let mut out = [0.0f32; 8];
            _mm256_storeu_ps(out.as_mut_ptr(), y);
            out
        }
    }

    /// FMA cross-packet pass: as [`Kernel::batch8_avx`] with both the
    /// pre-activation and the accumulate fused.
    ///
    /// # Safety
    /// Requires AVX2 + FMA; dispatch through [`detect`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    unsafe fn batch8_fma(&self, xs: &[f32; 8]) -> [f32; 8] {
        // SAFETY: the function's `# Safety` contract guarantees the enabled target features; every pointer load/store below stays within the bounds of the fixed-size parameter arrays.
        unsafe {
            use std::arch::x86_64::*;
            let xv = _mm256_loadu_ps(xs.as_ptr());
            let zero = _mm256_setzero_ps();
            let mut acc = _mm256_set1_ps(self.b2);
            for j in 0..8 {
                let w1 = _mm256_set1_ps(self.w1[j]);
                let b1 = _mm256_set1_ps(self.b1[j]);
                let w2 = _mm256_set1_ps(self.w2[j]);
                let pre = _mm256_fmadd_ps(w1, xv, b1);
                let hid = _mm256_max_ps(pre, zero);
                acc = _mm256_fmadd_ps(hid, w2, acc);
            }
            let y = _mm256_min_ps(_mm256_max_ps(acc, zero), _mm256_set1_ps(ONE_MINUS_EPS));
            let mut out = [0.0f32; 8];
            _mm256_storeu_ps(out.as_mut_ptr(), y);
            out
        }
    }

    /// Kernel weight bytes (same as the source submodel plus padding).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    /// Runs a *dependent chain* of `iters` forward passes (each input
    /// derived from the previous output) and returns the final value — the
    /// Table 1 latency measurement.
    ///
    /// The loop lives inside a `#[target_feature]` function per ISA so the
    /// vector kernels inline into their own loop; calling `forward_clamped`
    /// from generic code cannot inline across the feature boundary and
    /// would time the call overhead instead of the kernel.
    pub fn latency_chain(&self, x0: f32, iters: usize, isa: Isa) -> f32 {
        debug_assert!(isa.available(), "{isa:?} not supported by this CPU");
        match isa {
            Isa::Scalar => self.chain_scalar(x0, iters),
            // SAFETY: SSE2 is part of the x86_64 baseline target.
            #[cfg(target_arch = "x86_64")]
            Isa::Sse => unsafe { self.chain_sse(x0, iters) },
            // SAFETY: callers obtain `Isa` from `detect()`/`available()`
            // (asserted above in debug builds), so AVX is supported.
            #[cfg(target_arch = "x86_64")]
            Isa::Avx => unsafe { self.chain_avx(x0, iters) },
            // SAFETY: as above — `detect()` only yields `AvxFma` when the
            // CPU reports both AVX2 and FMA.
            #[cfg(target_arch = "x86_64")]
            Isa::AvxFma => unsafe { self.chain_fma(x0, iters) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.chain_scalar(x0, iters),
        }
    }

    /// Like [`Kernel::latency_chain`] but for the cross-packet kernel: a
    /// dependent chain of 8-packet groups (each group's inputs derived from
    /// the previous outputs). Returns ns-comparable work for Table 1's
    /// batched column; divide the measured time by `8 · iters` for the
    /// per-packet cost.
    pub fn latency_chain_batch8(&self, x0: f32, iters: usize, isa: Isa) -> f32 {
        let mut xs = [0.0f32; 8];
        for (l, x) in xs.iter_mut().enumerate() {
            *x = (x0 + l as f32 * 0.11).fract();
        }
        debug_assert!(isa.available(), "{isa:?} not supported by this CPU");
        match isa {
            Isa::Scalar => self.chain8_scalar(xs, iters),
            // SAFETY: SSE2 is part of the x86_64 baseline target.
            #[cfg(target_arch = "x86_64")]
            Isa::Sse => unsafe { self.chain8_sse(xs, iters) },
            // SAFETY: callers obtain `Isa` from `detect()`/`available()`
            // (asserted above in debug builds), so AVX is supported.
            #[cfg(target_arch = "x86_64")]
            Isa::Avx => unsafe { self.chain8_avx(xs, iters) },
            // SAFETY: as above — `detect()` only yields `AvxFma` when the
            // CPU reports both AVX2 and FMA.
            #[cfg(target_arch = "x86_64")]
            Isa::AvxFma => unsafe { self.chain8_fma(xs, iters) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.chain8_scalar(xs, iters),
        }
    }

    fn chain_scalar(&self, mut x: f32, iters: usize) -> f32 {
        for _ in 0..iters {
            let y = self.forward_scalar(x).clamp(0.0, ONE_MINUS_EPS);
            // Golden-ratio hop: inputs sweep the whole domain so ReLU
            // branches stay unpredictable (a fixpoint chain would let the
            // scalar path win on branch prediction alone).
            x = (y + 0.618_034).fract();
        }
        x
    }

    /// # Safety
    /// Requires SSE2 (x86_64 baseline).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "sse2")]
    unsafe fn chain_sse(&self, mut x: f32, iters: usize) -> f32 {
        // SAFETY: the function's `# Safety` contract guarantees the enabled target features; every pointer load/store below stays within the bounds of the fixed-size parameter arrays.
        unsafe {
            for _ in 0..iters {
                let y = self.forward_sse(x).clamp(0.0, ONE_MINUS_EPS);
                x = (y + 0.618_034).fract();
            }
            x
        }
    }

    /// # Safety
    /// Requires AVX; dispatch through [`detect`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    unsafe fn chain_avx(&self, mut x: f32, iters: usize) -> f32 {
        // SAFETY: the function's `# Safety` contract guarantees the enabled target features; every pointer load/store below stays within the bounds of the fixed-size parameter arrays.
        unsafe {
            for _ in 0..iters {
                let y = self.forward_avx(x).clamp(0.0, ONE_MINUS_EPS);
                x = (y + 0.618_034).fract();
            }
            x
        }
    }

    /// # Safety
    /// Requires AVX2 + FMA; dispatch through [`detect`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn chain_fma(&self, mut x: f32, iters: usize) -> f32 {
        // SAFETY: the function's `# Safety` contract guarantees the enabled target features; every pointer load/store below stays within the bounds of the fixed-size parameter arrays.
        unsafe {
            for _ in 0..iters {
                let y = self.forward_fma(x).clamp(0.0, ONE_MINUS_EPS);
                x = (y + 0.618_034).fract();
            }
            x
        }
    }

    fn chain8_scalar(&self, mut xs: [f32; 8], iters: usize) -> f32 {
        for _ in 0..iters {
            let ys = self.batch8_scalar(&xs);
            for l in 0..8 {
                xs[l] = (ys[l] + 0.618_034).fract();
            }
        }
        xs[0]
    }

    /// # Safety
    /// Requires SSE2 (x86_64 baseline).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "sse2")]
    unsafe fn chain8_sse(&self, mut xs: [f32; 8], iters: usize) -> f32 {
        // SAFETY: the function's `# Safety` contract guarantees the enabled target features; every pointer load/store below stays within the bounds of the fixed-size parameter arrays.
        unsafe {
            for _ in 0..iters {
                let ys = self.batch8_sse(&xs);
                for l in 0..8 {
                    xs[l] = (ys[l] + 0.618_034).fract();
                }
            }
            xs[0]
        }
    }

    /// # Safety
    /// Requires AVX; dispatch through [`detect`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    unsafe fn chain8_avx(&self, mut xs: [f32; 8], iters: usize) -> f32 {
        // SAFETY: the function's `# Safety` contract guarantees the enabled target features; every pointer load/store below stays within the bounds of the fixed-size parameter arrays.
        unsafe {
            for _ in 0..iters {
                let ys = self.batch8_avx(&xs);
                for l in 0..8 {
                    xs[l] = (ys[l] + 0.618_034).fract();
                }
            }
            xs[0]
        }
    }

    /// # Safety
    /// Requires AVX2 + FMA; dispatch through [`detect`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn chain8_fma(&self, mut xs: [f32; 8], iters: usize) -> f32 {
        // SAFETY: the function's `# Safety` contract guarantees the enabled target features; every pointer load/store below stays within the bounds of the fixed-size parameter arrays.
        unsafe {
            for _ in 0..iters {
                let ys = self.batch8_fma(&xs);
                for l in 0..8 {
                    xs[l] = (ys[l] + 0.618_034).fract();
                }
            }
            xs[0]
        }
    }
}

/// Transposed (structure-of-arrays) copy of a leaf stage for the
/// divergent-leaf gather kernel.
///
/// ## Layout
///
/// The per-leaf [`Kernel`]s are AoS: one leaf's `{w1[8], b1[8], w2[8], b2}`
/// contiguous. Gathering 8 *different* leaves' `w1[j]` from that layout
/// would need 8 scalar loads per coefficient. This copy is neuron-major:
/// `w1[j * n + i]` is leaf `i`'s hidden weight `j`, so all leaves' `j`-th
/// coefficient is contiguous and one `_mm256_i32gather_ps` with the 8 lane
/// indices fetches it for 8 divergent leaves at once (same for `b1`/`w2`;
/// `b2` is a flat `n`-vector). 25 gathers finish the whole stage.
///
/// ## When gather wins
///
/// The gather kernel does the *same* lane-per-packet FMA pass as
/// [`Kernel::forward_batch8`], so against the per-packet broadcast fallback
/// (8 separate forward passes + horizontal sums) it trades 8 horizontal
/// reductions for 25 gathers. Gathers cost a few cycles each even from L1,
/// so the win grows with divergence: at 8 distinct leaves it is clearly
/// ahead, at ≥ 4 it still wins (measured by `nm-bench --bin batch`'s
/// divergent-leaf microbench), and when all 8 lanes agree the shared
/// [`Kernel::forward_batch8`] kernel beats both — which is why
/// [`CompiledRqRmi`]'s staged walk auto-selects: shared kernel when the
/// group routes uniformly, gather only on divergence. On AVX2+FMA the
/// gather kernel and the shared kernel execute the identical per-lane
/// op sequence (`acc = b2; acc = fma(relu(fma(w1,x,b1)), w2, acc)`), so
/// auto-selection cannot change even the last ULP of a prediction.
///
/// Pre-AVX2 ISAs fall back to [`LeafSoa::forward_leaf_gather8`]'s scalar
/// path (bit-identical to `Kernel::forward_scalar` per lane); their
/// broadcast kernels remain in use for divergent *internal* stages.
#[derive(Clone, Debug, Default)]
pub struct LeafSoa {
    /// `w1[j * n + i]` = leaf `i`'s hidden weight `j` (neuron-major).
    w1: Vec<f32>,
    /// Hidden biases, same layout as `w1`.
    b1: Vec<f32>,
    /// Output weights, same layout as `w1`.
    w2: Vec<f32>,
    /// Output biases, one per leaf.
    b2: Vec<f32>,
    /// Number of leaves (the gather stride).
    n: usize,
}

impl LeafSoa {
    /// Transposes a stage of padded kernels into gather layout.
    pub fn from_kernels(leaves: &[Kernel]) -> Self {
        let n = leaves.len();
        let mut soa = LeafSoa {
            w1: vec![0.0; 8 * n],
            b1: vec![0.0; 8 * n],
            w2: vec![0.0; 8 * n],
            b2: vec![0.0; n],
            n,
        };
        for (i, k) in leaves.iter().enumerate() {
            for j in 0..8 {
                soa.w1[j * n + i] = k.w1[j];
                soa.b1[j * n + i] = k.b1[j];
                soa.w2[j * n + i] = k.w2[j];
            }
            soa.b2[i] = k.b2;
        }
        soa
    }

    /// Number of leaves in the transposed stage.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the stage holds no leaves.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Clamped divergent-leaf forward pass: evaluates packet `l` against
    /// leaf `idx[l]` for all 8 lanes at once. AVX2+FMA takes the gather
    /// kernel; every other ISA takes the scalar gather reference.
    ///
    /// Panics (debug) / reads out of bounds (release, AVX2 path) unless
    /// every `idx[l] < self.len()`.
    #[inline]
    pub fn forward_leaf_gather8(&self, xs: &[f32; 8], idx: &[usize; 8], isa: Isa) -> [f32; 8] {
        match isa {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: requires AVX2+FMA; callers pick the ISA through
            // `detect` (or knowingly via `CompiledRqRmi::with_isa`).
            Isa::AvxFma => unsafe { self.gather8_fma(xs, idx) },
            _ => self.gather8_scalar(xs, idx),
        }
    }

    /// Scalar gather reference: per lane, exactly
    /// [`Kernel::forward_scalar`] + clamp on the lane's own leaf, reading
    /// the transposed arrays.
    #[inline]
    fn gather8_scalar(&self, xs: &[f32; 8], idx: &[usize; 8]) -> [f32; 8] {
        std::array::from_fn(|l| {
            let i = idx[l];
            let mut acc = 0.0f32;
            for j in 0..8 {
                let pre = self.w1[j * self.n + i] * xs[l] + self.b1[j * self.n + i];
                if pre > 0.0 {
                    acc += self.w2[j * self.n + i] * pre;
                }
            }
            (acc + self.b2[i]).clamp(0.0, ONE_MINUS_EPS)
        })
    }

    /// AVX2 gather kernel: 25 gathers (8 × `w1`/`b1`/`w2` + `b2`) fetch 8
    /// divergent leaves' parameters, then the same vertical FMA pass as
    /// [`Kernel::batch8_fma`] finishes the stage — no horizontal reduction.
    ///
    /// # Safety
    /// Requires AVX2 + FMA, and every `idx[l] < self.len()`.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    unsafe fn gather8_fma(&self, xs: &[f32; 8], idx: &[usize; 8]) -> [f32; 8] {
        // SAFETY: the function's `# Safety` contract guarantees the enabled target features; every pointer load/store below stays within the bounds of the fixed-size parameter arrays.
        unsafe {
            use std::arch::x86_64::*;
            debug_assert!(idx.iter().all(|&i| i < self.n), "leaf index out of range");
            let iv = _mm256_setr_epi32(
                idx[0] as i32,
                idx[1] as i32,
                idx[2] as i32,
                idx[3] as i32,
                idx[4] as i32,
                idx[5] as i32,
                idx[6] as i32,
                idx[7] as i32,
            );
            let xv = _mm256_loadu_ps(xs.as_ptr());
            let zero = _mm256_setzero_ps();
            let mut acc = _mm256_i32gather_ps::<4>(self.b2.as_ptr(), iv);
            for j in 0..8 {
                let base = j * self.n;
                let w1 = _mm256_i32gather_ps::<4>(self.w1.as_ptr().add(base), iv);
                let b1 = _mm256_i32gather_ps::<4>(self.b1.as_ptr().add(base), iv);
                let w2 = _mm256_i32gather_ps::<4>(self.w2.as_ptr().add(base), iv);
                let pre = _mm256_fmadd_ps(w1, xv, b1);
                let hid = _mm256_max_ps(pre, zero);
                acc = _mm256_fmadd_ps(hid, w2, acc);
            }
            let y = _mm256_min_ps(_mm256_max_ps(acc, zero), _mm256_set1_ps(ONE_MINUS_EPS));
            let mut out = [0.0f32; 8];
            _mm256_storeu_ps(out.as_mut_ptr(), y);
            out
        }
    }

    /// Transposed-copy bytes (counted by [`CompiledRqRmi::memory_bytes`]).
    pub fn memory_bytes(&self) -> usize {
        (self.w1.len() + self.b1.len() + self.w2.len() + self.b2.len()) * std::mem::size_of::<f32>()
    }
}

/// Divergent-leaf microbench, gather side: a dependent chain of `iters`
/// 8-packet groups through [`LeafSoa::forward_leaf_gather8`], each group's
/// inputs derived from the previous outputs and each lane pinned to
/// `idx[lane]`. The loop lives behind the ISA's `#[target_feature]` so the
/// kernel inlines (same methodology as [`Kernel::latency_chain_batch8`]).
pub fn leaf_chain_gather8(soa: &LeafSoa, idx: &[usize; 8], x0: f32, iters: usize, isa: Isa) -> f32 {
    let mut xs = [0.0f32; 8];
    for (l, x) in xs.iter_mut().enumerate() {
        *x = (x0 + l as f32 * 0.11).fract();
    }
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2+FMA required; callers dispatch through `detect`.
        Isa::AvxFma => unsafe { chain_gather_fma(soa, idx, xs, iters) },
        _ => {
            for _ in 0..iters {
                let ys = soa.gather8_scalar(&xs, idx);
                for l in 0..8 {
                    xs[l] = (ys[l] + 0.618_034).fract();
                }
            }
            xs[0]
        }
    }
}

/// # Safety
/// Requires AVX2 + FMA; dispatch through [`detect`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn chain_gather_fma(soa: &LeafSoa, idx: &[usize; 8], mut xs: [f32; 8], iters: usize) -> f32 {
    // SAFETY: the function's `# Safety` contract guarantees the enabled target features; every pointer load/store below stays within the bounds of the fixed-size parameter arrays.
    unsafe {
        for _ in 0..iters {
            let ys = soa.gather8_fma(&xs, idx);
            for l in 0..8 {
                xs[l] = (ys[l] + 0.618_034).fract();
            }
        }
        xs[0]
    }
}

/// Divergent-leaf microbench, broadcast side: the pre-gather fallback —
/// per packet, a full broadcast forward pass against its own leaf kernel
/// (horizontal reduction included). Chain structure identical to
/// [`leaf_chain_gather8`] so the two are directly comparable.
pub fn leaf_chain_broadcast8(
    leaves: &[Kernel],
    idx: &[usize; 8],
    x0: f32,
    iters: usize,
    isa: Isa,
) -> f32 {
    let mut xs = [0.0f32; 8];
    for (l, x) in xs.iter_mut().enumerate() {
        *x = (x0 + l as f32 * 0.11).fract();
    }
    match isa {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2+FMA required; callers dispatch through `detect`.
        Isa::AvxFma => unsafe { chain_broadcast_fma(leaves, idx, xs, iters) },
        _ => {
            for _ in 0..iters {
                for l in 0..8 {
                    let y = leaves[idx[l]].forward_clamped(xs[l], isa);
                    xs[l] = (y + 0.618_034).fract();
                }
            }
            xs[0]
        }
    }
}

/// # Safety
/// Requires AVX2 + FMA; dispatch through [`detect`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn chain_broadcast_fma(
    leaves: &[Kernel],
    idx: &[usize; 8],
    mut xs: [f32; 8],
    iters: usize,
) -> f32 {
    // SAFETY: the function's `# Safety` contract guarantees the enabled target features; every pointer load/store below stays within the bounds of the fixed-size parameter arrays.
    unsafe {
        for _ in 0..iters {
            for l in 0..8 {
                let y = leaves[idx[l]].forward_fma(xs[l]).clamp(0.0, ONE_MINUS_EPS);
                xs[l] = (y + 0.618_034).fract();
            }
        }
        xs[0]
    }
}

/// Monomorphized staged walks: one `(predict, predict8)` pair per ISA, each
/// carrying its `#[target_feature]` so the kernels inline into the loop and
/// the per-stage ISA `match` disappears from the hot path.
///
/// Two public arms: the plain arm keeps the pre-gather behaviour (divergent
/// stages fall back to per-lane broadcast passes), the `gather` arm routes a
/// *divergent leaf stage* through the [`LeafSoa`] gather kernel instead —
/// divergent internal stages still take the per-lane fallback (they are
/// narrow, rarely divergent, and not transposed).
macro_rules! mono_staged {
    (@predict $( #[$attr:meta] )* ($predict:ident, $fwd:ident)) => {
        $( #[$attr] )*
        // The scalar instantiation substitutes a *safe* $fwd, which would
        // make the uniform `unsafe {}` call blocks below spuriously unused.
        #[allow(unused_unsafe)]
        unsafe fn $predict(m: &CompiledRqRmi, x: f32) -> (usize, u32) {
            let nstages = m.stages.len();
            let mut idx = 0usize;
            for s in 0..nstages - 1 {
                // SAFETY: $fwd carries the same target-feature contract as
                // this fn; the caller upheld it to call $predict at all.
                let y = unsafe { m.stages[s][idx].$fwd(x) }.clamp(0.0, ONE_MINUS_EPS);
                let w_next = m.widths[s + 1];
                idx = ((y * w_next as f32) as usize).min(w_next - 1);
            }
            // SAFETY: as above — $fwd shares this fn's feature contract.
            let y = unsafe { m.stages[nstages - 1][idx].$fwd(x) }.clamp(0.0, ONE_MINUS_EPS) as f64;
            let pred = ((y * m.n_values as f64) as usize).min(m.n_values - 1);
            (pred, m.leaf_err[idx])
        }
    };
    (@finish $m:ident, $ys:ident, $idx:ident, $preds:ident, $errs:ident) => {
        for l in 0..8 {
            // Final multiply in f64, matching `RqRmi::predict_x`.
            let y = $ys[l] as f64;
            $preds[l] = ((y * $m.n_values as f64) as usize).min($m.n_values - 1);
            $errs[l] = $m.leaf_err[$idx[l]];
        }
    };
    (@predict8 $( #[$attr:meta] )* ($predict8:ident, $fwd:ident, $fwd8:ident $(, $lgather:ident)?)) => {
        $( #[$attr] )*
        // As in @predict: the scalar instantiation's kernels are safe fns.
        #[allow(unused_unsafe)]
        unsafe fn $predict8(
            m: &CompiledRqRmi,
            xs: &[f32; 8],
            preds: &mut [usize; 8],
            errs: &mut [u32; 8],
        ) {
            let nstages = m.stages.len();
            let mut idx = [0usize; 8];
            let mut ys = [0.0f32; 8];
            for s in 0..nstages {
                // Stage 0 always shares the root submodel; deeper stages
                // share whenever the batch routes uniformly — take the
                // lane-per-packet kernel in both cases (auto-selection: the
                // shared kernel needs no gathers, so it stays the fast
                // path; on FMA it computes bit-identically to the gather
                // kernel).
                if idx.iter().all(|&i| i == idx[0]) {
                    // SAFETY: $fwd8 shares this fn's target-feature
                    // contract; the caller upheld it to call $predict8.
                    ys = unsafe { m.stages[s][idx[0]].$fwd8(xs) };
                }
                $(
                    // Divergent leaf stage (gather-capable ISAs only): one
                    // transposed gather pass instead of 8 broadcast passes.
                    else if s + 1 == nstages {
                        // SAFETY: $lgather likewise shares the feature
                        // contract, and `idx` was clamped to the leaf width.
                        ys = unsafe { m.leaf_soa.$lgather(xs, &idx) };
                    }
                )?
                else {
                    for l in 0..8 {
                        // SAFETY: as above — $fwd shares the contract.
                        let y = unsafe { m.stages[s][idx[l]].$fwd(xs[l]) };
                        ys[l] = y.clamp(0.0, ONE_MINUS_EPS);
                    }
                }
                if s + 1 < nstages {
                    let w_next = m.widths[s + 1];
                    for l in 0..8 {
                        idx[l] = ((ys[l] * w_next as f32) as usize).min(w_next - 1);
                    }
                }
            }
            mono_staged!(@finish m, ys, idx, preds, errs);
        }
    };
    (gather $( #[$attr:meta] )* ($predict:ident, $predict8:ident, $fwd:ident, $fwd8:ident, $lgather:ident)) => {
        mono_staged!(@predict $( #[$attr] )* ($predict, $fwd));
        mono_staged!(@predict8 $( #[$attr] )* ($predict8, $fwd, $fwd8, $lgather));
    };
    ($( #[$attr:meta] )* ($predict:ident, $predict8:ident, $fwd:ident, $fwd8:ident)) => {
        mono_staged!(@predict $( #[$attr] )* ($predict, $fwd));
        mono_staged!(@predict8 $( #[$attr] )* ($predict8, $fwd, $fwd8));
    };
}

mono_staged!((predict_mono_scalar, predict8_mono_scalar, forward_scalar, batch8_scalar));

#[cfg(target_arch = "x86_64")]
mono_staged!(
    #[target_feature(enable = "sse2")]
    (predict_mono_sse, predict8_mono_sse, forward_sse, batch8_sse)
);

#[cfg(target_arch = "x86_64")]
mono_staged!(
    #[target_feature(enable = "avx")]
    (predict_mono_avx, predict8_mono_avx, forward_avx, batch8_avx)
);

#[cfg(target_arch = "x86_64")]
mono_staged!(gather
    #[target_feature(enable = "avx2,fma")]
    (predict_mono_fma, predict8_mono_fma, forward_fma, batch8_fma, gather8_fma)
);

/// Signature of a monomorphized single-key staged walk.
type PredictFn = unsafe fn(&CompiledRqRmi, f32) -> (usize, u32);
/// Signature of a monomorphized 8-packet staged walk.
type Predict8Fn = unsafe fn(&CompiledRqRmi, &[f32; 8], &mut [usize; 8], &mut [u32; 8]);

/// An [`super::RqRmi`] compiled for the hot path: padded kernels per stage,
/// one ISA chosen up front, the staged walk monomorphized per ISA.
#[derive(Clone, Debug)]
pub struct CompiledRqRmi {
    stages: Vec<Vec<Kernel>>,
    /// Transposed copy of the *leaf* stage for the divergent-leaf gather
    /// kernel (see [`LeafSoa`]); redundant with `stages.last()` by design.
    leaf_soa: LeafSoa,
    widths: Vec<usize>,
    leaf_err: Vec<u32>,
    n_values: usize,
    scale: f64,
    isa: Isa,
    /// Monomorphized single-key walk for `isa`; see [`mono_staged`].
    predict_fn: PredictFn,
    /// Monomorphized 8-packet walk for `isa`.
    predict8_fn: Predict8Fn,
}

impl CompiledRqRmi {
    /// Compiles a trained model with the best detected instruction set.
    pub fn new(model: &super::RqRmi) -> Self {
        Self::with_isa(model, detect())
    }

    /// Compiles with an explicit instruction set (Table 1 sweeps this).
    pub fn with_isa(model: &super::RqRmi, isa: Isa) -> Self {
        let stages: Vec<Vec<Kernel>> =
            model.nets.iter().map(|st| st.iter().map(Kernel::from_mlp).collect()).collect();
        // The transposed leaf copy feeds the gather kernel, which only the
        // AVX2+FMA staged walk dispatches — don't carry (or count) it for
        // ISAs whose divergent-leaf path is the per-lane broadcast.
        let leaf_soa = if isa == Isa::AvxFma {
            LeafSoa::from_kernels(stages.last().map_or(&[][..], Vec::as_slice))
        } else {
            LeafSoa::default()
        };
        let km = model.key_map();
        #[cfg(target_arch = "x86_64")]
        let (predict_fn, predict8_fn): (PredictFn, Predict8Fn) = match isa {
            Isa::Scalar => (predict_mono_scalar, predict8_mono_scalar),
            Isa::Sse => (predict_mono_sse, predict8_mono_sse),
            Isa::Avx => (predict_mono_avx, predict8_mono_avx),
            Isa::AvxFma => (predict_mono_fma, predict8_mono_fma),
        };
        #[cfg(not(target_arch = "x86_64"))]
        let (predict_fn, predict8_fn): (PredictFn, Predict8Fn) =
            (predict_mono_scalar, predict8_mono_scalar);
        Self {
            stages,
            leaf_soa,
            widths: model.widths.clone(),
            leaf_err: model.leaf_err.clone(),
            n_values: model.n_values,
            scale: 1.0 / (km.domain_max() as f64 + 1.0),
            isa,
            predict_fn,
            predict8_fn,
        }
    }

    /// The instruction set in use.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// Number of indexed ranges.
    pub fn len(&self) -> usize {
        self.n_values
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.n_values == 0
    }

    /// Predicted index + error bound for `key` (same contract as
    /// [`super::RqRmi::predict`]). An empty model predicts `(0, 0)` — there
    /// is nothing to search.
    #[inline]
    pub fn predict(&self, key: u64) -> (usize, u32) {
        if self.n_values == 0 {
            return (0, 0);
        }
        let x = (key as f64 * self.scale) as f32;
        // SAFETY: predict_fn was selected for `self.isa` at construction;
        // callers pick the ISA through `detect` (or knowingly via with_isa).
        unsafe { (self.predict_fn)(self, x) }
    }

    /// Batched prediction: fills `preds[i]`/`errs[i]` for `keys[i]`.
    ///
    /// Keys are processed in groups of 8 through the cross-packet kernel
    /// (see the module docs); the tail shorter than 8 goes through the
    /// single-key walk. Every `(pred, err)` obeys the same containment
    /// contract as [`CompiledRqRmi::predict`] — batch and scalar predictions
    /// may differ in the last ULPs near leaf boundaries but both windows are
    /// guaranteed to contain the true index.
    ///
    /// Panics unless `keys.len() == preds.len() == errs.len()`.
    pub fn predict_batch(&self, keys: &[u64], preds: &mut [usize], errs: &mut [u32]) {
        assert_eq!(keys.len(), preds.len(), "predict_batch: preds length mismatch");
        assert_eq!(keys.len(), errs.len(), "predict_batch: errs length mismatch");
        if self.n_values == 0 {
            preds.fill(0);
            errs.fill(0);
            return;
        }
        let n = keys.len();
        let groups = n / 8;
        // nm-lint: hotpath
        for g in 0..groups {
            let base = g * 8;
            let xs: [f32; 8] = std::array::from_fn(|l| (keys[base + l] as f64 * self.scale) as f32);
            let mut p8 = [0usize; 8];
            let mut e8 = [0u32; 8];
            // SAFETY: as in `predict` — the fn matches `self.isa`.
            unsafe { (self.predict8_fn)(self, &xs, &mut p8, &mut e8) };
            preds[base..base + 8].copy_from_slice(&p8);
            errs[base..base + 8].copy_from_slice(&e8);
        }
        for i in groups * 8..n {
            let (p, e) = self.predict(keys[i]);
            preds[i] = p;
            errs[i] = e;
        }
        // nm-lint: end-hotpath
    }

    /// Kernel memory (Figure 13 accounting mirrors [`super::RqRmi::memory_bytes`]),
    /// including the transposed leaf copy the gather kernel reads.
    pub fn memory_bytes(&self) -> usize {
        self.stages.iter().flatten().map(Kernel::memory_bytes).sum::<usize>()
            + self.leaf_soa.memory_bytes()
            + self.leaf_err.len() * 4
    }

    /// The transposed leaf stage the gather kernel reads (microbenches and
    /// diagnostics; lookups go through [`CompiledRqRmi::predict_batch`]).
    /// Empty unless this model was compiled for [`Isa::AvxFma`] — the only
    /// staged walk that dispatches the gather kernel.
    pub fn leaf_soa(&self) -> &LeafSoa {
        &self.leaf_soa
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testable_isas() -> Vec<Isa> {
        [Isa::Scalar, Isa::Sse, Isa::Avx, Isa::AvxFma]
            .into_iter()
            .filter(|i| i.available())
            .collect()
    }

    #[test]
    fn kernels_match_scalar_reference() {
        for seed in 0..20u64 {
            let net = Mlp::random(8, seed);
            let k = Kernel::from_mlp(&net);
            for i in 0..200 {
                let x = i as f32 / 200.0;
                let reference = net.forward_clamped(x);
                let scalar = k.forward_clamped(x, Isa::Scalar);
                assert!((reference - scalar).abs() <= 1e-6, "scalar kernel diverged at x={x}");
                for isa in testable_isas() {
                    let v = k.forward_clamped(x, isa);
                    assert!(
                        (reference - v).abs() <= 1e-5,
                        "{isa:?} diverged at x={x}: {reference} vs {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch8_matches_scalar_reference_within_delta() {
        // The module docs promise every kernel stays inside the ±delta band
        // of `analyze::eval_delta`; the 1e-5 tolerance used here is far
        // below the band for random weights of this magnitude.
        for seed in 0..20u64 {
            let net = Mlp::random(8, seed);
            let k = Kernel::from_mlp(&net);
            for base in 0..25 {
                let xs: [f32; 8] = std::array::from_fn(|l| (base * 8 + l) as f32 / 200.0);
                for isa in testable_isas() {
                    let ys = k.forward_batch8(&xs, isa);
                    for l in 0..8 {
                        let reference = k.forward_scalar(xs[l]).clamp(0.0, ONE_MINUS_EPS);
                        assert!(
                            (reference - ys[l]).abs() <= 1e-5,
                            "{isa:?} lane {l} diverged at x={}: {reference} vs {}",
                            xs[l],
                            ys[l]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn padding_lanes_are_inert() {
        let net = Mlp { w1: vec![1.0; 3], b1: vec![-0.1; 3], w2: vec![0.5; 3], b2: 0.2 };
        let k = Kernel::from_mlp(&net);
        for i in 0..50 {
            let x = i as f32 / 50.0;
            assert!((net.forward_clamped(x) - k.forward_clamped(x, Isa::Scalar)).abs() < 1e-6);
            let ys = k.forward_batch8(&[x; 8], Isa::Scalar);
            assert!((net.forward_clamped(x) - ys[7]).abs() < 1e-6);
        }
    }

    #[test]
    fn detect_never_scalar_on_x86_64() {
        #[cfg(target_arch = "x86_64")]
        {
            assert_ne!(detect(), Isa::Scalar);
            assert!(detect().available());
        }
    }

    #[test]
    fn compiled_model_agrees_with_reference_within_bounds() {
        use crate::config::RqRmiParams;
        use crate::rqrmi::train::train_rqrmi;
        use nm_common::FieldRange;
        let ranges: Vec<FieldRange> =
            (0..300).map(|i| FieldRange::new(i * 200, i * 200 + 99)).collect();
        let m = train_rqrmi(&ranges, 16, &RqRmiParams::default()).unwrap();
        let compiled = CompiledRqRmi::new(&m);
        for (idx, r) in ranges.iter().enumerate() {
            for key in [r.lo, r.hi] {
                let (pred, err) = compiled.predict(key);
                let dist = (pred as i64 - idx as i64).unsigned_abs();
                assert!(dist <= err as u64, "key {key}: pred {pred} true {idx} err {err}");
            }
        }
    }

    #[test]
    fn predict_batch_within_bounds_for_every_isa() {
        use crate::config::RqRmiParams;
        use crate::rqrmi::train::train_rqrmi;
        use nm_common::FieldRange;
        let ranges: Vec<FieldRange> =
            (0..300).map(|i| FieldRange::new(i * 200, i * 200 + 99)).collect();
        let m = train_rqrmi(&ranges, 16, &RqRmiParams::default()).unwrap();
        // Probe lo/mid/hi of every range, deliberately not a multiple of 8
        // so the tail path is exercised too.
        let keys: Vec<u64> = ranges.iter().flat_map(|r| [r.lo, (r.lo + r.hi) / 2, r.hi]).collect();
        let true_idx: Vec<usize> = (0..ranges.len()).flat_map(|i| [i, i, i]).collect();
        for isa in testable_isas() {
            let compiled = CompiledRqRmi::with_isa(&m, isa);
            let mut preds = vec![0usize; keys.len()];
            let mut errs = vec![0u32; keys.len()];
            compiled.predict_batch(&keys, &mut preds, &mut errs);
            for i in 0..keys.len() {
                let dist = (preds[i] as i64 - true_idx[i] as i64).unsigned_abs();
                assert!(
                    dist <= errs[i] as u64,
                    "{isa:?} key {}: pred {} true {} err {}",
                    keys[i],
                    preds[i],
                    true_idx[i],
                    errs[i]
                );
            }
        }
    }

    #[test]
    fn leaf_gather_matches_broadcast_reference() {
        // Divergent index patterns over 32 random leaves: the gather kernel
        // must agree with the per-packet broadcast pass on every reachable
        // ISA (ULP-level tolerance; both sit inside the ±delta band).
        let leaves: Vec<Kernel> =
            (0..32u64).map(|s| Kernel::from_mlp(&Mlp::random(8, s))).collect();
        let soa = LeafSoa::from_kernels(&leaves);
        assert_eq!(soa.len(), 32);
        assert!(!soa.is_empty());
        for seed in 0..20usize {
            let idx: [usize; 8] = std::array::from_fn(|l| (seed * 7 + l * 5) % 32);
            let xs: [f32; 8] =
                std::array::from_fn(|l| (seed as f32 * 0.037 + l as f32 * 0.113).fract());
            for isa in testable_isas() {
                let g = soa.forward_leaf_gather8(&xs, &idx, isa);
                for l in 0..8 {
                    let reference = leaves[idx[l]].forward_clamped(xs[l], Isa::Scalar);
                    assert!(
                        (g[l] - reference).abs() <= 1e-5,
                        "{isa:?} lane {l} (leaf {}): {reference} vs {}",
                        idx[l],
                        g[l]
                    );
                }
            }
        }
    }

    #[test]
    fn gather_and_shared_kernel_bit_identical_on_fma() {
        // Auto-selection safety: when all 8 lanes share a leaf, the shared
        // batch8 kernel and the gather kernel execute the same per-lane op
        // sequence on AVX2+FMA, so switching between them cannot change a
        // single bit of the stage output.
        if !Isa::AvxFma.available() {
            return;
        }
        let leaves: Vec<Kernel> =
            (0..16u64).map(|s| Kernel::from_mlp(&Mlp::random(8, s + 100))).collect();
        let soa = LeafSoa::from_kernels(&leaves);
        for (i, leaf) in leaves.iter().enumerate() {
            let xs: [f32; 8] = std::array::from_fn(|l| (i as f32 * 0.07 + l as f32 * 0.11).fract());
            let gathered = soa.forward_leaf_gather8(&xs, &[i; 8], Isa::AvxFma);
            let shared = leaf.forward_batch8(&xs, Isa::AvxFma);
            assert_eq!(gathered, shared, "leaf {i}: gather vs shared kernel diverged in bits");
        }
    }

    #[test]
    fn predict_batch_divergent_groups_within_bounds_every_isa() {
        use crate::config::RqRmiParams;
        use crate::rqrmi::train::train_rqrmi;
        use nm_common::FieldRange;
        let ranges: Vec<FieldRange> =
            (0..300).map(|i| FieldRange::new(i * 200, i * 200 + 99)).collect();
        let m = train_rqrmi(&ranges, 16, &RqRmiParams::default()).unwrap();
        assert!(m.leaf_error_bounds().len() > 1, "divergence test needs a multi-leaf model");
        // Stride keys across the whole domain so every 8-group routes to
        // widely separated (divergent) leaves — the gather path, not the
        // shared fast path.
        let order: Vec<usize> = (0..ranges.len()).map(|i| (i * 37) % ranges.len()).collect();
        let keys: Vec<u64> = order.iter().map(|&i| ranges[i].lo + 13).collect();
        for isa in testable_isas() {
            let compiled = CompiledRqRmi::with_isa(&m, isa);
            let mut preds = vec![0usize; keys.len()];
            let mut errs = vec![0u32; keys.len()];
            compiled.predict_batch(&keys, &mut preds, &mut errs);
            for (k, &true_idx) in order.iter().enumerate() {
                let dist = (preds[k] as i64 - true_idx as i64).unsigned_abs();
                assert!(
                    dist <= errs[k] as u64,
                    "{isa:?} key {}: pred {} true {true_idx} err {}",
                    keys[k],
                    preds[k],
                    errs[k]
                );
            }
        }
    }

    #[test]
    fn leaf_chains_run_and_stay_in_domain() {
        let leaves: Vec<Kernel> =
            (0..8u64).map(|s| Kernel::from_mlp(&Mlp::random(8, s + 7))).collect();
        let soa = LeafSoa::from_kernels(&leaves);
        let idx: [usize; 8] = std::array::from_fn(|l| l % leaves.len());
        for isa in testable_isas() {
            let g = leaf_chain_gather8(&soa, &idx, 0.3, 64, isa);
            let b = leaf_chain_broadcast8(&leaves, &idx, 0.3, 64, isa);
            assert!((0.0..1.0).contains(&g), "{isa:?} gather chain left [0,1): {g}");
            assert!((0.0..1.0).contains(&b), "{isa:?} broadcast chain left [0,1): {b}");
        }
    }

    #[test]
    fn empty_model_predicts_nothing() {
        use crate::rqrmi::RqRmi;
        // Hand-build an empty model (training rejects empty inputs).
        let m = RqRmi {
            widths: vec![1],
            nets: vec![vec![Mlp::zeros(8)]],
            leaf_err: vec![0],
            n_values: 0,
            bits: 16,
        };
        let compiled = CompiledRqRmi::new(&m);
        assert!(compiled.is_empty());
        assert_eq!(compiled.predict(1234), (0, 0));
        let keys = [1u64, 2, 3, 4, 5, 6, 7, 8, 9];
        let mut preds = [7usize; 9];
        let mut errs = [7u32; 9];
        compiled.predict_batch(&keys, &mut preds, &mut errs);
        assert_eq!(preds, [0; 9]);
        assert_eq!(errs, [0; 9]);
    }
}
