//! Vectorised submodel inference (paper §4 "Vectorization", Table 1).
//!
//! A submodel forward pass is one fused multiply-add over the 8 hidden
//! neurons, a ReLU, and a dot product — a handful of vector instructions.
//! The paper reports 126 ns serial, 62 ns SSE (4 floats/op), 49 ns AVX
//! (8 floats/op) per inference; the Table 1 bench regenerates that
//! comparison with these kernels, plus an **FMA column** the paper's 2016-era
//! Xeon lacked: `avx2+fma` fuses the `w1·x + b1` and accumulate steps into
//! single `vfmadd` instructions, halving the arithmetic chain of both the
//! per-packet and the cross-packet kernels below.
//!
//! ## Two axes of vectorization
//!
//! * **Within a packet** ([`Kernel::forward_clamped`]): the 8 hidden neurons
//!   of one submodel fill one 256-bit register; a single packet's input is
//!   broadcast across lanes. This is the paper's Table 1 kernel, and it is
//!   the only option when consecutive packets route to *different*
//!   submodels (the leaf stage).
//! * **Across packets** ([`Kernel::forward_batch8`]): one AVX *lane per
//!   packet*, 8 packets evaluated against one submodel per instruction
//!   sequence. Stage 0 of every RQ-RMI has a single root submodel shared by
//!   all keys, so a batched lookup pipeline feeds whole batches through this
//!   kernel — 8× the per-instruction work of the broadcast kernel with no
//!   horizontal reduction at all (the per-packet kernel spends ~half its
//!   instructions summing lanes). Deeper shared stages use it
//!   opportunistically whenever all 8 lanes agree on the submodel index.
//!
//! ## Dispatch
//!
//! [`CompiledRqRmi`] picks the instruction set **once at compile time**
//! ([`detect`] or an explicit [`CompiledRqRmi::with_isa`]) and stores
//! monomorphized function pointers for the whole staged walk. The hot path
//! pays one indirect call per prediction (or per 8-packet group) instead of
//! the per-stage `match isa` branch the scalar path used to take, and each
//! monomorphized body carries its ISA's `#[target_feature]`, so the kernels
//! inline into their own staged loop.
//!
//! Correctness note: the SIMD summation order differs from the scalar loop,
//! so results can differ in the last ULPs; FMA additionally skips the
//! intermediate rounding of `w1·x` (one rounding per fused op instead of
//! two, i.e. *smaller* deviation from the `f64` reference). The RQ-RMI error
//! bounds are computed over a `±delta` band that covers any summation order
//! and any per-flop rounding at most one ULP of the running magnitude (see
//! `analyze::eval_delta`), which includes every fused variant, so every
//! kernel here is safe to use for lookups: a batched lookup may route a
//! boundary key to a neighbouring leaf, but both leaves' error bounds cover
//! such keys (the trainer assigns boundary-band keys to both children), so
//! the secondary search still finds the same range and classification
//! results stay bit-identical.

use nm_nn::{Mlp, ONE_MINUS_EPS};

/// Instruction set used for submodel inference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Isa {
    /// Plain scalar loop (the portable reference).
    Scalar,
    /// SSE: two 4-float halves.
    Sse,
    /// AVX: all 8 neurons (or 8 packets) in one 256-bit register.
    Avx,
    /// AVX2 + FMA: as [`Isa::Avx`] with fused multiply-adds.
    AvxFma,
}

impl Isa {
    /// True when the running CPU can execute this instruction set.
    pub fn available(self) -> bool {
        match self {
            Isa::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Sse => true,
            #[cfg(target_arch = "x86_64")]
            Isa::Avx => std::arch::is_x86_feature_detected!("avx"),
            #[cfg(target_arch = "x86_64")]
            Isa::AvxFma => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(not(target_arch = "x86_64"))]
            _ => false,
        }
    }
}

/// Best instruction set available on this CPU.
pub fn detect() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if Isa::AvxFma.available() {
            return Isa::AvxFma;
        }
        if Isa::Avx.available() {
            return Isa::Avx;
        }
        // SSE2 is part of the x86_64 baseline.
        return Isa::Sse;
    }
    #[allow(unreachable_code)]
    Isa::Scalar
}

/// A submodel compiled for vector execution: weights padded to 8 lanes.
///
/// Padding lanes have `w1 = b1 = w2 = 0`, so they contribute
/// `relu(0)·0 = 0` on every path.
#[derive(Clone, Debug)]
#[repr(C, align(32))]
pub struct Kernel {
    w1: [f32; 8],
    b1: [f32; 8],
    w2: [f32; 8],
    b2: f32,
}

impl Kernel {
    /// Compiles an [`Mlp`] (hidden width ≤ 8) into a padded kernel.
    pub fn from_mlp(net: &Mlp) -> Self {
        assert!(net.hidden() <= 8, "kernels support up to 8 hidden neurons");
        let mut k = Kernel { w1: [0.0; 8], b1: [0.0; 8], w2: [0.0; 8], b2: net.b2 };
        k.w1[..net.hidden()].copy_from_slice(&net.w1);
        k.b1[..net.hidden()].copy_from_slice(&net.b1);
        k.w2[..net.hidden()].copy_from_slice(&net.w2);
        k
    }

    /// Clamped forward pass with the requested instruction set.
    #[inline]
    pub fn forward_clamped(&self, x: f32, isa: Isa) -> f32 {
        let y = match isa {
            Isa::Scalar => self.forward_scalar(x),
            #[cfg(target_arch = "x86_64")]
            Isa::Sse => unsafe { self.forward_sse(x) },
            #[cfg(target_arch = "x86_64")]
            Isa::Avx => unsafe { self.forward_avx(x) },
            #[cfg(target_arch = "x86_64")]
            Isa::AvxFma => unsafe { self.forward_fma(x) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.forward_scalar(x),
        };
        y.clamp(0.0, ONE_MINUS_EPS)
    }

    /// Clamped cross-packet forward pass: evaluates **8 packets** against
    /// this one submodel, one lane per packet (see the module docs). Outputs
    /// are clamped into `[0, 1)` like [`Kernel::forward_clamped`].
    #[inline]
    pub fn forward_batch8(&self, xs: &[f32; 8], isa: Isa) -> [f32; 8] {
        match isa {
            Isa::Scalar => self.batch8_scalar(xs),
            #[cfg(target_arch = "x86_64")]
            Isa::Sse => unsafe { self.batch8_sse(xs) },
            #[cfg(target_arch = "x86_64")]
            Isa::Avx => unsafe { self.batch8_avx(xs) },
            #[cfg(target_arch = "x86_64")]
            Isa::AvxFma => unsafe { self.batch8_fma(xs) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.batch8_scalar(xs),
        }
    }

    /// Scalar reference over the padded lanes.
    #[inline]
    pub fn forward_scalar(&self, x: f32) -> f32 {
        let mut acc = 0.0f32;
        for j in 0..8 {
            let pre = self.w1[j] * x + self.b1[j];
            if pre > 0.0 {
                acc += self.w2[j] * pre;
            }
        }
        acc + self.b2
    }

    /// Scalar reference for the cross-packet pass (clamped).
    #[inline]
    fn batch8_scalar(&self, xs: &[f32; 8]) -> [f32; 8] {
        std::array::from_fn(|l| self.forward_scalar(xs[l]).clamp(0.0, ONE_MINUS_EPS))
    }

    /// SSE path: two 4-lane halves.
    ///
    /// # Safety
    /// Requires SSE (always present on x86_64).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "sse2")]
    #[inline]
    unsafe fn forward_sse(&self, x: f32) -> f32 {
        use std::arch::x86_64::*;
        let xv = _mm_set1_ps(x);
        let zero = _mm_setzero_ps();
        let mut acc = zero;
        for half in 0..2 {
            let off = half * 4;
            let w1 = _mm_loadu_ps(self.w1.as_ptr().add(off));
            let b1 = _mm_loadu_ps(self.b1.as_ptr().add(off));
            let w2 = _mm_loadu_ps(self.w2.as_ptr().add(off));
            let pre = _mm_add_ps(_mm_mul_ps(w1, xv), b1);
            let hid = _mm_max_ps(pre, zero);
            acc = _mm_add_ps(acc, _mm_mul_ps(hid, w2));
        }
        // Horizontal sum of 4 lanes.
        let shuf = _mm_movehdup_ps(acc);
        let sums = _mm_add_ps(acc, shuf);
        let shuf2 = _mm_movehl_ps(shuf, sums);
        let total = _mm_add_ss(sums, shuf2);
        _mm_cvtss_f32(total) + self.b2
    }

    /// AVX path: all 8 lanes at once.
    ///
    /// # Safety
    /// Requires AVX; dispatch through [`detect`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    #[inline]
    unsafe fn forward_avx(&self, x: f32) -> f32 {
        use std::arch::x86_64::*;
        let xv = _mm256_set1_ps(x);
        let w1 = _mm256_loadu_ps(self.w1.as_ptr());
        let b1 = _mm256_loadu_ps(self.b1.as_ptr());
        let w2 = _mm256_loadu_ps(self.w2.as_ptr());
        let pre = _mm256_add_ps(_mm256_mul_ps(w1, xv), b1);
        let hid = _mm256_max_ps(pre, _mm256_setzero_ps());
        let prod = _mm256_mul_ps(hid, w2);
        // Horizontal sum of 8 lanes.
        let hi = _mm256_extractf128_ps(prod, 1);
        let lo = _mm256_castps256_ps128(prod);
        let sum4 = _mm_add_ps(lo, hi);
        let shuf = _mm_movehdup_ps(sum4);
        let sums = _mm_add_ps(sum4, shuf);
        let shuf2 = _mm_movehl_ps(shuf, sums);
        let total = _mm_add_ss(sums, shuf2);
        _mm_cvtss_f32(total) + self.b2
    }

    /// FMA path: as [`Kernel::forward_avx`] with the multiply-add fused.
    ///
    /// # Safety
    /// Requires AVX2 + FMA; dispatch through [`detect`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    unsafe fn forward_fma(&self, x: f32) -> f32 {
        use std::arch::x86_64::*;
        let xv = _mm256_set1_ps(x);
        let w1 = _mm256_loadu_ps(self.w1.as_ptr());
        let b1 = _mm256_loadu_ps(self.b1.as_ptr());
        let w2 = _mm256_loadu_ps(self.w2.as_ptr());
        let pre = _mm256_fmadd_ps(w1, xv, b1);
        let hid = _mm256_max_ps(pre, _mm256_setzero_ps());
        let prod = _mm256_mul_ps(hid, w2);
        let hi = _mm256_extractf128_ps(prod, 1);
        let lo = _mm256_castps256_ps128(prod);
        let sum4 = _mm_add_ps(lo, hi);
        let shuf = _mm_movehdup_ps(sum4);
        let sums = _mm_add_ps(sum4, shuf);
        let shuf2 = _mm_movehl_ps(shuf, sums);
        let total = _mm_add_ss(sums, shuf2);
        _mm_cvtss_f32(total) + self.b2
    }

    /// SSE cross-packet pass: 8 packets as two 4-lane halves, clamped.
    ///
    /// # Safety
    /// Requires SSE (always present on x86_64).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "sse2")]
    #[inline]
    unsafe fn batch8_sse(&self, xs: &[f32; 8]) -> [f32; 8] {
        use std::arch::x86_64::*;
        let zero = _mm_setzero_ps();
        let one_minus = _mm_set1_ps(ONE_MINUS_EPS);
        let mut out = [0.0f32; 8];
        for half in 0..2 {
            let xv = _mm_loadu_ps(xs.as_ptr().add(half * 4));
            let mut acc = _mm_set1_ps(self.b2);
            for j in 0..8 {
                let w1 = _mm_set1_ps(self.w1[j]);
                let b1 = _mm_set1_ps(self.b1[j]);
                let w2 = _mm_set1_ps(self.w2[j]);
                let pre = _mm_add_ps(_mm_mul_ps(w1, xv), b1);
                let hid = _mm_max_ps(pre, zero);
                acc = _mm_add_ps(acc, _mm_mul_ps(hid, w2));
            }
            let y = _mm_min_ps(_mm_max_ps(acc, zero), one_minus);
            _mm_storeu_ps(out.as_mut_ptr().add(half * 4), y);
        }
        out
    }

    /// AVX cross-packet pass: 8 packets, one lane each, clamped. No
    /// horizontal reduction — the neuron loop accumulates vertically.
    ///
    /// # Safety
    /// Requires AVX; dispatch through [`detect`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    #[inline]
    unsafe fn batch8_avx(&self, xs: &[f32; 8]) -> [f32; 8] {
        use std::arch::x86_64::*;
        let xv = _mm256_loadu_ps(xs.as_ptr());
        let zero = _mm256_setzero_ps();
        let mut acc = _mm256_set1_ps(self.b2);
        for j in 0..8 {
            let w1 = _mm256_set1_ps(self.w1[j]);
            let b1 = _mm256_set1_ps(self.b1[j]);
            let w2 = _mm256_set1_ps(self.w2[j]);
            let pre = _mm256_add_ps(_mm256_mul_ps(w1, xv), b1);
            let hid = _mm256_max_ps(pre, zero);
            acc = _mm256_add_ps(acc, _mm256_mul_ps(hid, w2));
        }
        let y = _mm256_min_ps(_mm256_max_ps(acc, zero), _mm256_set1_ps(ONE_MINUS_EPS));
        let mut out = [0.0f32; 8];
        _mm256_storeu_ps(out.as_mut_ptr(), y);
        out
    }

    /// FMA cross-packet pass: as [`Kernel::batch8_avx`] with both the
    /// pre-activation and the accumulate fused.
    ///
    /// # Safety
    /// Requires AVX2 + FMA; dispatch through [`detect`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    unsafe fn batch8_fma(&self, xs: &[f32; 8]) -> [f32; 8] {
        use std::arch::x86_64::*;
        let xv = _mm256_loadu_ps(xs.as_ptr());
        let zero = _mm256_setzero_ps();
        let mut acc = _mm256_set1_ps(self.b2);
        for j in 0..8 {
            let w1 = _mm256_set1_ps(self.w1[j]);
            let b1 = _mm256_set1_ps(self.b1[j]);
            let w2 = _mm256_set1_ps(self.w2[j]);
            let pre = _mm256_fmadd_ps(w1, xv, b1);
            let hid = _mm256_max_ps(pre, zero);
            acc = _mm256_fmadd_ps(hid, w2, acc);
        }
        let y = _mm256_min_ps(_mm256_max_ps(acc, zero), _mm256_set1_ps(ONE_MINUS_EPS));
        let mut out = [0.0f32; 8];
        _mm256_storeu_ps(out.as_mut_ptr(), y);
        out
    }

    /// Kernel weight bytes (same as the source submodel plus padding).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }

    /// Runs a *dependent chain* of `iters` forward passes (each input
    /// derived from the previous output) and returns the final value — the
    /// Table 1 latency measurement.
    ///
    /// The loop lives inside a `#[target_feature]` function per ISA so the
    /// vector kernels inline into their own loop; calling `forward_clamped`
    /// from generic code cannot inline across the feature boundary and
    /// would time the call overhead instead of the kernel.
    pub fn latency_chain(&self, x0: f32, iters: usize, isa: Isa) -> f32 {
        match isa {
            Isa::Scalar => self.chain_scalar(x0, iters),
            #[cfg(target_arch = "x86_64")]
            Isa::Sse => unsafe { self.chain_sse(x0, iters) },
            #[cfg(target_arch = "x86_64")]
            Isa::Avx => unsafe { self.chain_avx(x0, iters) },
            #[cfg(target_arch = "x86_64")]
            Isa::AvxFma => unsafe { self.chain_fma(x0, iters) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.chain_scalar(x0, iters),
        }
    }

    /// Like [`Kernel::latency_chain`] but for the cross-packet kernel: a
    /// dependent chain of 8-packet groups (each group's inputs derived from
    /// the previous outputs). Returns ns-comparable work for Table 1's
    /// batched column; divide the measured time by `8 · iters` for the
    /// per-packet cost.
    pub fn latency_chain_batch8(&self, x0: f32, iters: usize, isa: Isa) -> f32 {
        let mut xs = [0.0f32; 8];
        for (l, x) in xs.iter_mut().enumerate() {
            *x = (x0 + l as f32 * 0.11).fract();
        }
        match isa {
            Isa::Scalar => self.chain8_scalar(xs, iters),
            #[cfg(target_arch = "x86_64")]
            Isa::Sse => unsafe { self.chain8_sse(xs, iters) },
            #[cfg(target_arch = "x86_64")]
            Isa::Avx => unsafe { self.chain8_avx(xs, iters) },
            #[cfg(target_arch = "x86_64")]
            Isa::AvxFma => unsafe { self.chain8_fma(xs, iters) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => self.chain8_scalar(xs, iters),
        }
    }

    fn chain_scalar(&self, mut x: f32, iters: usize) -> f32 {
        for _ in 0..iters {
            let y = self.forward_scalar(x).clamp(0.0, ONE_MINUS_EPS);
            // Golden-ratio hop: inputs sweep the whole domain so ReLU
            // branches stay unpredictable (a fixpoint chain would let the
            // scalar path win on branch prediction alone).
            x = (y + 0.618_034).fract();
        }
        x
    }

    /// # Safety
    /// Requires SSE2 (x86_64 baseline).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "sse2")]
    unsafe fn chain_sse(&self, mut x: f32, iters: usize) -> f32 {
        for _ in 0..iters {
            let y = self.forward_sse(x).clamp(0.0, ONE_MINUS_EPS);
            x = (y + 0.618_034).fract();
        }
        x
    }

    /// # Safety
    /// Requires AVX; dispatch through [`detect`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    unsafe fn chain_avx(&self, mut x: f32, iters: usize) -> f32 {
        for _ in 0..iters {
            let y = self.forward_avx(x).clamp(0.0, ONE_MINUS_EPS);
            x = (y + 0.618_034).fract();
        }
        x
    }

    /// # Safety
    /// Requires AVX2 + FMA; dispatch through [`detect`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn chain_fma(&self, mut x: f32, iters: usize) -> f32 {
        for _ in 0..iters {
            let y = self.forward_fma(x).clamp(0.0, ONE_MINUS_EPS);
            x = (y + 0.618_034).fract();
        }
        x
    }

    fn chain8_scalar(&self, mut xs: [f32; 8], iters: usize) -> f32 {
        for _ in 0..iters {
            let ys = self.batch8_scalar(&xs);
            for l in 0..8 {
                xs[l] = (ys[l] + 0.618_034).fract();
            }
        }
        xs[0]
    }

    /// # Safety
    /// Requires SSE2 (x86_64 baseline).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "sse2")]
    unsafe fn chain8_sse(&self, mut xs: [f32; 8], iters: usize) -> f32 {
        for _ in 0..iters {
            let ys = self.batch8_sse(&xs);
            for l in 0..8 {
                xs[l] = (ys[l] + 0.618_034).fract();
            }
        }
        xs[0]
    }

    /// # Safety
    /// Requires AVX; dispatch through [`detect`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx")]
    unsafe fn chain8_avx(&self, mut xs: [f32; 8], iters: usize) -> f32 {
        for _ in 0..iters {
            let ys = self.batch8_avx(&xs);
            for l in 0..8 {
                xs[l] = (ys[l] + 0.618_034).fract();
            }
        }
        xs[0]
    }

    /// # Safety
    /// Requires AVX2 + FMA; dispatch through [`detect`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn chain8_fma(&self, mut xs: [f32; 8], iters: usize) -> f32 {
        for _ in 0..iters {
            let ys = self.batch8_fma(&xs);
            for l in 0..8 {
                xs[l] = (ys[l] + 0.618_034).fract();
            }
        }
        xs[0]
    }
}

/// Monomorphized staged walks: one `(predict, predict8)` pair per ISA, each
/// carrying its `#[target_feature]` so the kernels inline into the loop and
/// the per-stage ISA `match` disappears from the hot path.
macro_rules! mono_staged {
    ($( #[$attr:meta] )* ($predict:ident, $predict8:ident, $fwd:ident, $fwd8:ident)) => {
        $( #[$attr] )*
        unsafe fn $predict(m: &CompiledRqRmi, x: f32) -> (usize, u32) {
            let nstages = m.stages.len();
            let mut idx = 0usize;
            for s in 0..nstages - 1 {
                let y = m.stages[s][idx].$fwd(x).clamp(0.0, ONE_MINUS_EPS);
                let w_next = m.widths[s + 1];
                idx = ((y * w_next as f32) as usize).min(w_next - 1);
            }
            let y = m.stages[nstages - 1][idx].$fwd(x).clamp(0.0, ONE_MINUS_EPS) as f64;
            let pred = ((y * m.n_values as f64) as usize).min(m.n_values - 1);
            (pred, m.leaf_err[idx])
        }

        $( #[$attr] )*
        unsafe fn $predict8(
            m: &CompiledRqRmi,
            xs: &[f32; 8],
            preds: &mut [usize; 8],
            errs: &mut [u32; 8],
        ) {
            let nstages = m.stages.len();
            let mut idx = [0usize; 8];
            let mut ys = [0.0f32; 8];
            for s in 0..nstages {
                // Stage 0 always shares the root submodel; deeper stages
                // share whenever the batch routes uniformly — take the
                // lane-per-packet kernel in both cases.
                if idx.iter().all(|&i| i == idx[0]) {
                    ys = m.stages[s][idx[0]].$fwd8(xs);
                } else {
                    for l in 0..8 {
                        ys[l] = m.stages[s][idx[l]].$fwd(xs[l]).clamp(0.0, ONE_MINUS_EPS);
                    }
                }
                if s + 1 < nstages {
                    let w_next = m.widths[s + 1];
                    for l in 0..8 {
                        idx[l] = ((ys[l] * w_next as f32) as usize).min(w_next - 1);
                    }
                }
            }
            for l in 0..8 {
                // Final multiply in f64, matching `RqRmi::predict_x`.
                let y = ys[l] as f64;
                preds[l] = ((y * m.n_values as f64) as usize).min(m.n_values - 1);
                errs[l] = m.leaf_err[idx[l]];
            }
        }
    };
}

mono_staged!((predict_mono_scalar, predict8_mono_scalar, forward_scalar, batch8_scalar));

#[cfg(target_arch = "x86_64")]
mono_staged!(
    #[target_feature(enable = "sse2")]
    (predict_mono_sse, predict8_mono_sse, forward_sse, batch8_sse)
);

#[cfg(target_arch = "x86_64")]
mono_staged!(
    #[target_feature(enable = "avx")]
    (predict_mono_avx, predict8_mono_avx, forward_avx, batch8_avx)
);

#[cfg(target_arch = "x86_64")]
mono_staged!(
    #[target_feature(enable = "avx2,fma")]
    (predict_mono_fma, predict8_mono_fma, forward_fma, batch8_fma)
);

/// Signature of a monomorphized single-key staged walk.
type PredictFn = unsafe fn(&CompiledRqRmi, f32) -> (usize, u32);
/// Signature of a monomorphized 8-packet staged walk.
type Predict8Fn = unsafe fn(&CompiledRqRmi, &[f32; 8], &mut [usize; 8], &mut [u32; 8]);

/// An [`super::RqRmi`] compiled for the hot path: padded kernels per stage,
/// one ISA chosen up front, the staged walk monomorphized per ISA.
#[derive(Clone, Debug)]
pub struct CompiledRqRmi {
    stages: Vec<Vec<Kernel>>,
    widths: Vec<usize>,
    leaf_err: Vec<u32>,
    n_values: usize,
    scale: f64,
    isa: Isa,
    /// Monomorphized single-key walk for `isa`; see [`mono_staged`].
    predict_fn: PredictFn,
    /// Monomorphized 8-packet walk for `isa`.
    predict8_fn: Predict8Fn,
}

impl CompiledRqRmi {
    /// Compiles a trained model with the best detected instruction set.
    pub fn new(model: &super::RqRmi) -> Self {
        Self::with_isa(model, detect())
    }

    /// Compiles with an explicit instruction set (Table 1 sweeps this).
    pub fn with_isa(model: &super::RqRmi, isa: Isa) -> Self {
        let stages: Vec<Vec<Kernel>> =
            model.nets.iter().map(|st| st.iter().map(Kernel::from_mlp).collect()).collect();
        let km = model.key_map();
        #[cfg(target_arch = "x86_64")]
        let (predict_fn, predict8_fn): (PredictFn, Predict8Fn) = match isa {
            Isa::Scalar => (predict_mono_scalar, predict8_mono_scalar),
            Isa::Sse => (predict_mono_sse, predict8_mono_sse),
            Isa::Avx => (predict_mono_avx, predict8_mono_avx),
            Isa::AvxFma => (predict_mono_fma, predict8_mono_fma),
        };
        #[cfg(not(target_arch = "x86_64"))]
        let (predict_fn, predict8_fn): (PredictFn, Predict8Fn) =
            (predict_mono_scalar, predict8_mono_scalar);
        Self {
            stages,
            widths: model.widths.clone(),
            leaf_err: model.leaf_err.clone(),
            n_values: model.n_values,
            scale: 1.0 / (km.domain_max() as f64 + 1.0),
            isa,
            predict_fn,
            predict8_fn,
        }
    }

    /// The instruction set in use.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// Number of indexed ranges.
    pub fn len(&self) -> usize {
        self.n_values
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.n_values == 0
    }

    /// Predicted index + error bound for `key` (same contract as
    /// [`super::RqRmi::predict`]). An empty model predicts `(0, 0)` — there
    /// is nothing to search.
    #[inline]
    pub fn predict(&self, key: u64) -> (usize, u32) {
        if self.n_values == 0 {
            return (0, 0);
        }
        let x = (key as f64 * self.scale) as f32;
        // SAFETY: predict_fn was selected for `self.isa` at construction;
        // callers pick the ISA through `detect` (or knowingly via with_isa).
        unsafe { (self.predict_fn)(self, x) }
    }

    /// Batched prediction: fills `preds[i]`/`errs[i]` for `keys[i]`.
    ///
    /// Keys are processed in groups of 8 through the cross-packet kernel
    /// (see the module docs); the tail shorter than 8 goes through the
    /// single-key walk. Every `(pred, err)` obeys the same containment
    /// contract as [`CompiledRqRmi::predict`] — batch and scalar predictions
    /// may differ in the last ULPs near leaf boundaries but both windows are
    /// guaranteed to contain the true index.
    ///
    /// Panics unless `keys.len() == preds.len() == errs.len()`.
    pub fn predict_batch(&self, keys: &[u64], preds: &mut [usize], errs: &mut [u32]) {
        assert_eq!(keys.len(), preds.len(), "predict_batch: preds length mismatch");
        assert_eq!(keys.len(), errs.len(), "predict_batch: errs length mismatch");
        if self.n_values == 0 {
            preds.fill(0);
            errs.fill(0);
            return;
        }
        let n = keys.len();
        let groups = n / 8;
        for g in 0..groups {
            let base = g * 8;
            let xs: [f32; 8] = std::array::from_fn(|l| (keys[base + l] as f64 * self.scale) as f32);
            let mut p8 = [0usize; 8];
            let mut e8 = [0u32; 8];
            // SAFETY: as in `predict` — the fn matches `self.isa`.
            unsafe { (self.predict8_fn)(self, &xs, &mut p8, &mut e8) };
            preds[base..base + 8].copy_from_slice(&p8);
            errs[base..base + 8].copy_from_slice(&e8);
        }
        for i in groups * 8..n {
            let (p, e) = self.predict(keys[i]);
            preds[i] = p;
            errs[i] = e;
        }
    }

    /// Kernel memory (Figure 13 accounting mirrors [`super::RqRmi::memory_bytes`]).
    pub fn memory_bytes(&self) -> usize {
        self.stages.iter().flatten().map(Kernel::memory_bytes).sum::<usize>()
            + self.leaf_err.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testable_isas() -> Vec<Isa> {
        [Isa::Scalar, Isa::Sse, Isa::Avx, Isa::AvxFma]
            .into_iter()
            .filter(|i| i.available())
            .collect()
    }

    #[test]
    fn kernels_match_scalar_reference() {
        for seed in 0..20u64 {
            let net = Mlp::random(8, seed);
            let k = Kernel::from_mlp(&net);
            for i in 0..200 {
                let x = i as f32 / 200.0;
                let reference = net.forward_clamped(x);
                let scalar = k.forward_clamped(x, Isa::Scalar);
                assert!((reference - scalar).abs() <= 1e-6, "scalar kernel diverged at x={x}");
                for isa in testable_isas() {
                    let v = k.forward_clamped(x, isa);
                    assert!(
                        (reference - v).abs() <= 1e-5,
                        "{isa:?} diverged at x={x}: {reference} vs {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch8_matches_scalar_reference_within_delta() {
        // The module docs promise every kernel stays inside the ±delta band
        // of `analyze::eval_delta`; the 1e-5 tolerance used here is far
        // below the band for random weights of this magnitude.
        for seed in 0..20u64 {
            let net = Mlp::random(8, seed);
            let k = Kernel::from_mlp(&net);
            for base in 0..25 {
                let xs: [f32; 8] = std::array::from_fn(|l| (base * 8 + l) as f32 / 200.0);
                for isa in testable_isas() {
                    let ys = k.forward_batch8(&xs, isa);
                    for l in 0..8 {
                        let reference = k.forward_scalar(xs[l]).clamp(0.0, ONE_MINUS_EPS);
                        assert!(
                            (reference - ys[l]).abs() <= 1e-5,
                            "{isa:?} lane {l} diverged at x={}: {reference} vs {}",
                            xs[l],
                            ys[l]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn padding_lanes_are_inert() {
        let net = Mlp { w1: vec![1.0; 3], b1: vec![-0.1; 3], w2: vec![0.5; 3], b2: 0.2 };
        let k = Kernel::from_mlp(&net);
        for i in 0..50 {
            let x = i as f32 / 50.0;
            assert!((net.forward_clamped(x) - k.forward_clamped(x, Isa::Scalar)).abs() < 1e-6);
            let ys = k.forward_batch8(&[x; 8], Isa::Scalar);
            assert!((net.forward_clamped(x) - ys[7]).abs() < 1e-6);
        }
    }

    #[test]
    fn detect_never_scalar_on_x86_64() {
        #[cfg(target_arch = "x86_64")]
        {
            assert_ne!(detect(), Isa::Scalar);
            assert!(detect().available());
        }
    }

    #[test]
    fn compiled_model_agrees_with_reference_within_bounds() {
        use crate::config::RqRmiParams;
        use crate::rqrmi::train::train_rqrmi;
        use nm_common::FieldRange;
        let ranges: Vec<FieldRange> =
            (0..300).map(|i| FieldRange::new(i * 200, i * 200 + 99)).collect();
        let m = train_rqrmi(&ranges, 16, &RqRmiParams::default()).unwrap();
        let compiled = CompiledRqRmi::new(&m);
        for (idx, r) in ranges.iter().enumerate() {
            for key in [r.lo, r.hi] {
                let (pred, err) = compiled.predict(key);
                let dist = (pred as i64 - idx as i64).unsigned_abs();
                assert!(dist <= err as u64, "key {key}: pred {pred} true {idx} err {err}");
            }
        }
    }

    #[test]
    fn predict_batch_within_bounds_for_every_isa() {
        use crate::config::RqRmiParams;
        use crate::rqrmi::train::train_rqrmi;
        use nm_common::FieldRange;
        let ranges: Vec<FieldRange> =
            (0..300).map(|i| FieldRange::new(i * 200, i * 200 + 99)).collect();
        let m = train_rqrmi(&ranges, 16, &RqRmiParams::default()).unwrap();
        // Probe lo/mid/hi of every range, deliberately not a multiple of 8
        // so the tail path is exercised too.
        let keys: Vec<u64> = ranges.iter().flat_map(|r| [r.lo, (r.lo + r.hi) / 2, r.hi]).collect();
        let true_idx: Vec<usize> = (0..ranges.len()).flat_map(|i| [i, i, i]).collect();
        for isa in testable_isas() {
            let compiled = CompiledRqRmi::with_isa(&m, isa);
            let mut preds = vec![0usize; keys.len()];
            let mut errs = vec![0u32; keys.len()];
            compiled.predict_batch(&keys, &mut preds, &mut errs);
            for i in 0..keys.len() {
                let dist = (preds[i] as i64 - true_idx[i] as i64).unsigned_abs();
                assert!(
                    dist <= errs[i] as u64,
                    "{isa:?} key {}: pred {} true {} err {}",
                    keys[i],
                    preds[i],
                    true_idx[i],
                    errs[i]
                );
            }
        }
    }

    #[test]
    fn empty_model_predicts_nothing() {
        use crate::rqrmi::RqRmi;
        // Hand-build an empty model (training rejects empty inputs).
        let m = RqRmi {
            widths: vec![1],
            nets: vec![vec![Mlp::zeros(8)]],
            leaf_err: vec![0],
            n_values: 0,
            bits: 16,
        };
        let compiled = CompiledRqRmi::new(&m);
        assert!(compiled.is_empty());
        assert_eq!(compiled.predict(1234), (0, 0));
        let keys = [1u64, 2, 3, 4, 5, 6, 7, 8, 9];
        let mut preds = [7usize; 9];
        let mut errs = [7u32; 9];
        compiled.predict_batch(&keys, &mut preds, &mut errs);
        assert_eq!(preds, [0; 9]);
        assert_eq!(errs, [0; 9]);
    }
}
