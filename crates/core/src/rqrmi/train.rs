//! RQ-RMI training (paper §3.5, Figure 5).
//!
//! Stage by stage: train the submodels of stage `i` on datasets sampled from
//! their responsibilities, compute the responsibilities of stage `i+1`
//! analytically (no key enumeration — Theorem A.1), continue. Leaves get an
//! extra loop: compute the worst-case prediction error analytically
//! (Theorem A.13); while it exceeds the target, double the sample count and
//! retrain (§3.5.6).
//!
//! ## Labels
//!
//! The paper samples uniform keys from the responsibility and keeps a sample
//! only "if there is an input rule range that matches the sampled key". For
//! sparse iSets (exact-match-heavy ACLs cover a sliver of a 2^32 domain)
//! rejection leaves datasets almost empty. We label every sampled key with
//! its **rank** — the index of the first range whose upper bound is ≥ key.
//! On covered keys the rank *is* the paper's label; on gap keys it extends
//! the staircase the model must learn anyway. This strictly enlarges the
//! training signal without touching the correctness argument (bounds are
//! computed over covered keys only). `SampleMode::Reject` keeps the literal
//! paper behaviour for comparison.

use nm_common::range::FieldRange;
use nm_common::{Error, SplitMix64};
use nm_nn::{fit_hinge, segments, Adam, Mlp};

use super::analyze::{
    child_responsibilities, eval_delta, responsibility_size, transitions_in_segment, KeyMap,
    Responsibility,
};
use super::model::RqRmi;
use crate::config::{RqRmiParams, TrainerKind};

/// Sampling behaviour for training datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SampleMode {
    /// Label all sampled keys with their rank (default; see module docs).
    #[default]
    Rank,
    /// Paper-literal: discard samples that no range matches.
    Reject,
}

/// Trains an RQ-RMI over `ranges`, which must be sorted by `lo` and
/// non-overlapping (an iSet projection — `crate::iset` guarantees this).
///
/// Returns an error if the ranges are unsorted/overlapping or the field is
/// wider than the key map supports.
pub fn train_rqrmi(ranges: &[FieldRange], bits: u8, params: &RqRmiParams) -> Result<RqRmi, Error> {
    train_rqrmi_mode(ranges, bits, params, SampleMode::Rank)
}

/// [`train_rqrmi`] with an explicit [`SampleMode`].
pub fn train_rqrmi_mode(
    ranges: &[FieldRange],
    bits: u8,
    params: &RqRmiParams,
    mode: SampleMode,
) -> Result<RqRmi, Error> {
    if ranges.is_empty() {
        return Err(Error::Build { msg: "cannot train an RQ-RMI on zero ranges".into() });
    }
    for w in ranges.windows(2) {
        if w[1].lo <= w[0].hi {
            return Err(Error::Build {
                msg: format!(
                    "ranges must be sorted and non-overlapping: {:?} then {:?}",
                    w[0], w[1]
                ),
            });
        }
    }
    let km = KeyMap::new(bits);
    let n = ranges.len();
    let los: Vec<u64> = ranges.iter().map(|r| r.lo).collect();
    let his: Vec<u64> = ranges.iter().map(|r| r.hi).collect();
    let widths = params.widths_for(n);
    let stages = widths.len();
    let mut rng = SplitMix64::new(params.seed);

    let mut nets: Vec<Vec<Mlp>> = Vec::with_capacity(stages);
    let mut resp: Vec<Responsibility> = vec![vec![(0, km.domain_max())]];

    for s in 0..stages {
        let w = widths[s];
        debug_assert_eq!(resp.len(), w);
        // Internal stages see larger responsibilities; give them more samples.
        let samples = if s + 1 < stages { params.samples_init * 4 } else { params.samples_init };
        let mut stage_nets = Vec::with_capacity(w);
        for r in resp.iter() {
            if responsibility_size(r) == 0 {
                stage_nets.push(Mlp::zeros(params.hidden));
                continue;
            }
            let data = sample_dataset(r, samples, &mut rng, &km, &los, &his, n, mode);
            stage_nets.push(fit(&params.trainer, params.hidden, &data, rng.next_u64()));
        }
        if s + 1 < stages {
            let mut next: Vec<Responsibility> = vec![Vec::new(); widths[s + 1]];
            for (j, net) in stage_nets.iter().enumerate() {
                if resp[j].is_empty() {
                    continue;
                }
                let children = child_responsibilities(net, &resp[j], widths[s + 1], &km);
                for (k, mut ch) in children.into_iter().enumerate() {
                    next[k].append(&mut ch);
                }
            }
            for r in &mut next {
                super::analyze::normalize(r);
            }
            nets.push(stage_nets);
            resp = next;
        } else {
            nets.push(stage_nets);
        }
    }

    // Leaf error bounds + the Figure 5 retrain loop.
    let leaf_stage = stages - 1;
    let mut leaf_err = vec![0u32; widths[leaf_stage]];
    for j in 0..widths[leaf_stage] {
        if responsibility_size(&resp[j]) == 0 {
            continue;
        }
        let initial = nets[leaf_stage][j].clone();
        let (net, bound) =
            refine_leaf(initial, &resp[j], &mut rng, &km, &los, &his, n, params, mode);
        nets[leaf_stage][j] = net;
        // §3.5.6: if training does not converge the bound is raised to the
        // achieved value (lookups stay correct, just search further).
        leaf_err[j] = bound;
    }

    Ok(RqRmi { widths, nets, leaf_err, n_values: n, bits })
}

/// The Figure 5 leaf loop shared by [`train_rqrmi`] and [`retrain_leaves`]:
/// bounds `initial` analytically, then — while the bound misses the target
/// and attempts remain — refits from a doubled sample count, keeping the
/// best (bound, net) pair seen.
#[allow(clippy::too_many_arguments)]
fn refine_leaf(
    initial: Mlp,
    resp: &Responsibility,
    rng: &mut SplitMix64,
    km: &KeyMap,
    los: &[u64],
    his: &[u64],
    n: usize,
    params: &RqRmiParams,
    mode: SampleMode,
) -> (Mlp, u32) {
    let mut bound = leaf_error_bound(&initial, resp, km, los, his, n);
    let mut best = (bound, initial);
    let mut samples = params.samples_init;
    let mut attempt = 1;
    while bound > params.error_target && attempt < params.max_attempts {
        samples *= 2;
        attempt += 1;
        let data = sample_dataset(resp, samples, rng, km, los, his, n, mode);
        let net = fit(&params.trainer, params.hidden, &data, rng.next_u64());
        bound = leaf_error_bound(&net, resp, km, los, his, n);
        if bound < best.0 {
            best = (bound, net);
        }
    }
    (best.1, best.0)
}

/// Materialises each leaf submodel's responsibility by cascading
/// [`child_responsibilities`] through the (unchanged) internal stages —
/// exactly the computation [`train_rqrmi`] performs while training, replayed
/// from the trained weights.
pub(crate) fn leaf_responsibilities(model: &RqRmi) -> Vec<Responsibility> {
    let km = model.key_map();
    let mut resp: Vec<Responsibility> = vec![vec![(0, km.domain_max())]];
    for s in 0..model.nets.len() - 1 {
        let w_next = model.widths[s + 1];
        let mut next: Vec<Responsibility> = vec![Vec::new(); w_next];
        for (j, net) in model.nets[s].iter().enumerate() {
            if resp[j].is_empty() {
                continue;
            }
            let children = child_responsibilities(net, &resp[j], w_next, &km);
            for (k, mut ch) in children.into_iter().enumerate() {
                next[k].append(&mut ch);
            }
        }
        for r in &mut next {
            super::analyze::normalize(r);
        }
        resp = next;
    }
    resp
}

/// Statistics from a [`retrain_leaves`] pass (see that function).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LeafRetrainStats {
    /// Leaf submodels with a non-empty responsibility (reachable leaves).
    pub leaves: usize,
    /// Leaves re-fitted from fresh samples — the drift landed inside them.
    pub refit: usize,
    /// Leaves patched by the closed-form affine rescale (their ranges only
    /// shifted index, or the total count changed).
    pub rescaled: usize,
    /// Leaves left byte-identical (nothing in their key region changed).
    pub untouched: usize,
}

/// Incremental (partial) retraining — the §3.9 refinement: patches a trained
/// RQ-RMI from `old_ranges` to `new_ranges` by touching **only the leaf
/// stage**, leaving every internal submodel (and therefore the key→leaf
/// routing and the leaf responsibilities) bit-identical.
///
/// Per reachable leaf, against its responsibility `R`:
///
/// * **untouched** — the ranges intersecting `R` are identical in both
///   arrays, at the same indices, and the total count is unchanged: the leaf
///   net *and* its error bound carry over as-is.
/// * **rescaled** — the intersecting ranges are identical but sit at
///   uniformly shifted indices (removals/insertions happened entirely
///   outside `R`), or the total count `n` changed. The required new output
///   `(rank + s + 0.5)/n_new` is an affine map of the learned
///   `(rank + 0.5)/n_old`, so the leaf is patched in closed form
///   (`w2 *= n_old/n_new`, `b2 = b2·n_old/n_new + s/n_new`) and its error
///   bound recomputed analytically (Theorem A.13) — no sampling, no fitting.
/// * **refit** — the range *content* inside `R` changed (drift landed
///   here): the leaf runs the ordinary Figure 5 fit/bound/double loop over
///   the new ranges.
///
/// Fails (so callers can fall back to a full rebuild) when `new_ranges` is
/// empty/unsorted, or when more than `max_refit_fraction` of the reachable
/// leaves need refitting — drift that broad trains most of the model anyway,
/// and a full rebuild also restores the iSet partition.
///
/// The returned model honours the standard RQ-RMI contract over
/// `new_ranges`: error bounds are recomputed with the same `±delta` f32-band
/// machinery as [`train_rqrmi`], so for every covered key the true index
/// lies within `predict(key).0 ± predict(key).1`.
pub fn retrain_leaves(
    old: &RqRmi,
    old_ranges: &[FieldRange],
    new_ranges: &[FieldRange],
    params: &RqRmiParams,
    max_refit_fraction: f64,
) -> Result<(RqRmi, LeafRetrainStats), Error> {
    if new_ranges.is_empty() {
        return Err(Error::Build { msg: "retrain_leaves: no surviving ranges".into() });
    }
    if old_ranges.len() != old.n_values {
        return Err(Error::Build {
            msg: format!(
                "retrain_leaves: old_ranges ({}) disagree with the model ({})",
                old_ranges.len(),
                old.n_values
            ),
        });
    }
    for w in new_ranges.windows(2) {
        if w[1].lo <= w[0].hi {
            return Err(Error::Build {
                msg: format!(
                    "retrain_leaves: ranges must be sorted and non-overlapping: {:?} then {:?}",
                    w[0], w[1]
                ),
            });
        }
    }
    let km = old.key_map();
    let (n_old, n_new) = (old.n_values, new_ranges.len());
    let old_los: Vec<u64> = old_ranges.iter().map(|r| r.lo).collect();
    let old_his: Vec<u64> = old_ranges.iter().map(|r| r.hi).collect();
    let new_los: Vec<u64> = new_ranges.iter().map(|r| r.lo).collect();
    let new_his: Vec<u64> = new_ranges.iter().map(|r| r.hi).collect();
    let resp = leaf_responsibilities(old);
    let leaf_stage = old.nets.len() - 1;

    // Classify every reachable leaf: None = refit needed; Some(shift) =
    // clean, all intersecting ranges identical up to a uniform index shift.
    let ranges_in = |los: &[u64], his: &[u64], a: u64, b: u64| -> (usize, usize) {
        let i0 = his.partition_point(|&h| h < a);
        let i1 = los.partition_point(|&lo| lo <= b).max(i0);
        (i0, i1)
    };
    let mut plan: Vec<Option<Option<i64>>> = vec![None; old.widths[leaf_stage]];
    let mut stats = LeafRetrainStats::default();
    for (j, r) in resp.iter().enumerate() {
        if responsibility_size(r) == 0 {
            continue;
        }
        stats.leaves += 1;
        let mut shift: Option<i64> = None;
        let mut clean = true;
        for &(a, b) in r {
            let (o0, o1) = ranges_in(&old_los, &old_his, a, b);
            let (m0, m1) = ranges_in(&new_los, &new_his, a, b);
            let s = m0 as i64 - o0 as i64;
            if *shift.get_or_insert(s) != s || (o1 - o0) != (m1 - m0) {
                clean = false;
                break;
            }
            if (o0..o1).any(|i| old_ranges[i] != new_ranges[(i as i64 + s) as usize]) {
                clean = false;
                break;
            }
        }
        // Some(Some(shift)) = clean, Some(None) = refit; unreachable leaves
        // stay None.
        plan[j] = if clean { Some(Some(shift.unwrap_or(0))) } else { Some(None) };
        if !clean {
            stats.refit += 1;
        }
    }
    let max_refit = (max_refit_fraction * stats.leaves as f64).floor() as usize;
    if stats.refit > max_refit {
        return Err(Error::Build {
            msg: format!(
                "retrain_leaves: drift too broad — {} of {} reachable leaves need refitting \
                 (cap {max_refit})",
                stats.refit, stats.leaves
            ),
        });
    }

    let mut nets = old.nets.clone();
    let mut leaf_err = old.leaf_err.clone();
    let mut rng = SplitMix64::new(params.seed ^ 0x7061_7274_6961_6c21); // "partial!"
    let mode = SampleMode::Rank;
    for (j, p) in plan.iter().enumerate() {
        match p {
            None => {} // unreachable leaf: zero net stays
            Some(Some(shift)) if *shift == 0 && n_old == n_new => {
                // Nothing in this leaf's key region changed: weights and
                // bound carry over bit-identically.
                stats.untouched += 1;
            }
            Some(Some(shift)) => {
                // Affine rescale: y' = y·(n_old/n_new) + shift/n_new maps
                // the learned (rank+0.5)/n_old onto (rank+shift+0.5)/n_new
                // exactly, so the index-space error is preserved; the bound
                // is recomputed analytically to also absorb the (slightly
                // different) f32 evaluation band of the scaled weights.
                stats.rescaled += 1;
                let mut net = nets[leaf_stage][j].clone();
                let scale = n_old as f32 / n_new as f32;
                for w in &mut net.w2 {
                    *w *= scale;
                }
                net.b2 = net.b2 * scale + *shift as f32 / n_new as f32;
                let bound = leaf_error_bound(&net, &resp[j], &km, &new_los, &new_his, n_new);
                if bound <= params.error_target.max(leaf_err[j]) {
                    nets[leaf_stage][j] = net;
                    leaf_err[j] = bound;
                } else {
                    // The rescale came out worse than before (pathological
                    // weights): fall through to a refit of this leaf.
                    let (net, bound) = refine_leaf(
                        net, &resp[j], &mut rng, &km, &new_los, &new_his, n_new, params, mode,
                    );
                    nets[leaf_stage][j] = net;
                    leaf_err[j] = bound;
                }
            }
            Some(None) => {
                // Drift landed in this leaf: ordinary Figure 5 loop over the
                // new ranges, seeded by a fresh fit.
                let data = sample_dataset(
                    &resp[j],
                    params.samples_init,
                    &mut rng,
                    &km,
                    &new_los,
                    &new_his,
                    n_new,
                    mode,
                );
                let initial = fit(&params.trainer, params.hidden, &data, rng.next_u64());
                let (net, bound) = refine_leaf(
                    initial, &resp[j], &mut rng, &km, &new_los, &new_his, n_new, params, mode,
                );
                nets[leaf_stage][j] = net;
                leaf_err[j] = bound;
            }
        }
    }

    Ok((
        RqRmi { widths: old.widths.clone(), nets, leaf_err, n_values: n_new, bits: old.bits },
        stats,
    ))
}

/// Trains one submodel with the configured optimiser.
fn fit(trainer: &TrainerKind, hidden: usize, data: &[(f32, f32)], seed: u64) -> Mlp {
    match trainer {
        TrainerKind::Hinge => fit_hinge(hidden, data),
        TrainerKind::Adam(cfg) => {
            let mut net = Mlp::random(hidden, seed);
            Adam::train(&mut net, data, *cfg);
            net
        }
        TrainerKind::HingeThenAdam(cfg) => {
            let mut net = fit_hinge(hidden, data);
            Adam::train(&mut net, data, *cfg);
            net
        }
    }
}

/// Rank of `key` among the sorted ranges: index of the first range whose
/// upper bound is ≥ key. For a covered key this is exactly the index of its
/// matching range; for a gap key it is the index of the next range.
#[inline]
pub(crate) fn rank(his: &[u64], key: u64) -> usize {
    his.partition_point(|&h| h < key)
}

/// Samples a training dataset from a responsibility (§3.5.4).
///
/// Uniform keys weighted by interval length, plus range-boundary anchors
/// (each range's `lo` inside the responsibility) that pin the staircase the
/// model must learn. All labels use the scaled mid-bucket target
/// `(v + 0.5) / n`.
#[allow(clippy::too_many_arguments)]
fn sample_dataset(
    resp: &Responsibility,
    samples: usize,
    rng: &mut SplitMix64,
    km: &KeyMap,
    los: &[u64],
    his: &[u64],
    n: usize,
    mode: SampleMode,
) -> Vec<(f32, f32)> {
    let total = responsibility_size(resp);
    if total == 0 {
        return Vec::new();
    }
    let label = |key: u64| -> Option<f32> {
        let r = rank(his, key);
        let covered = r < n && los[r] <= key;
        match mode {
            SampleMode::Reject if !covered => None,
            _ => {
                let v = r.min(n - 1);
                Some((v as f64 + 0.5) as f32 / n as f32)
            }
        }
    };
    let mut data = Vec::with_capacity(samples + 64);

    // Uniform samples across the responsibility.
    for _ in 0..samples {
        let mut off = rng.below(total);
        let mut key = 0;
        for &(a, b) in resp {
            let len = b - a + 1;
            if off < len {
                key = a + off;
                break;
            }
            off -= len;
        }
        if let Some(y) = label(key) {
            data.push((km.x(key), y));
        }
    }

    // Anchors: range starts within the responsibility (subsampled when the
    // responsibility holds more ranges than we want anchor points).
    let anchors_max = samples.max(64);
    for &(a, b) in resp {
        let start = rank(his, a);
        let mut i = start;
        let in_resp = los.partition_point(|&lo| lo <= b) - start;
        let step = (in_resp / anchors_max).max(1);
        while i < n && los[i] <= b {
            let key = los[i].max(a);
            if let Some(y) = label(key) {
                data.push((km.x(key), y));
            }
            i += step;
        }
    }
    data
}

/// Worst-case index prediction error of a leaf over its responsibility
/// (Theorem A.13), robust to `f32` evaluation noise.
///
/// The key space is cut at every point where either the analytic prediction
/// or the true rank can change: segment kinks, transition inputs of the
/// `⌊M·n⌋` quantisation, and range boundaries. Within each resulting key run
/// both are constant, so one evaluation per run suffices; the prediction is
/// then widened by `ceil(delta·n) + 1` to cover anything the real `f32`
/// pipeline (any summation order) can produce.
pub(crate) fn leaf_error_bound(
    net: &Mlp,
    resp: &Responsibility,
    km: &KeyMap,
    los: &[u64],
    his: &[u64],
    n: usize,
) -> u32 {
    let delta = eval_delta(net) + 1e-9; // +interp fuzz of segment eval
    let dq = (delta * n as f64).ceil() as u64 + 1;
    let nf = n as f64;
    let mut max_err: u64 = 0;

    for &(ka, kb) in resp {
        let segs = segments(net, km.x64(ka), km.x64(kb));
        let mut cursor = ka;
        for seg in &segs {
            if cursor > kb {
                break;
            }
            let k_end = km.floor_key(seg.x1).min(kb);
            if k_end < cursor {
                continue;
            }
            let k_start = cursor;
            cursor = k_end + 1;

            // Critical keys inside this run.
            let mut crit: Vec<u64> = vec![k_start];
            for t in transitions_in_segment(seg, n) {
                let k = km.ceil_key(t);
                if k > k_start && k <= k_end {
                    crit.push(k);
                }
            }
            // Range boundaries (lo and hi+1) falling inside the run.
            let mut i = rank(his, k_start);
            while i < n && los[i] <= k_end {
                if los[i] > k_start {
                    crit.push(los[i]);
                }
                let after = his[i].saturating_add(1);
                if after > k_start && after <= k_end {
                    crit.push(after);
                }
                i += 1;
            }
            crit.sort_unstable();
            crit.dedup();
            crit.push(k_end + 1); // sentinel

            for w in crit.windows(2) {
                let (g0, g1) = (w[0], w[1] - 1);
                if g0 > g1 {
                    continue;
                }
                // Is this run covered by a range?
                let r = rank(his, g0);
                if r >= n || los[r] > g0 {
                    continue; // gap keys carry no correctness obligation
                }
                debug_assert!(his[r] >= g1, "range boundary must not split a run");
                let v = r as u64;
                let y = seg.eval(km.x64(g0)).clamp(0.0, 1.0);
                let p = ((y * nf) as u64).min(n as u64 - 1);
                let err = p.abs_diff(v) + dq;
                max_err = max_err.max(err);
            }
        }
    }
    max_err.min(n as u64) as u32
}

/// Exhaustively verifies an RQ-RMI: for **every** key covered by a range the
/// true index must lie within `predicted ± bound`. O(domain) — tests only.
pub fn verify_exhaustive(model: &RqRmi, ranges: &[FieldRange]) -> Result<(), String> {
    for (idx, r) in ranges.iter().enumerate() {
        for key in r.lo..=r.hi {
            let (pred, err) = model.predict(key);
            let dist = (pred as i64 - idx as i64).unsigned_abs();
            if dist > err as u64 {
                return Err(format!("key {key}: true index {idx}, predicted {pred}, bound {err}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_common::range::domain_max;

    fn params() -> RqRmiParams {
        RqRmiParams { samples_init: 256, ..Default::default() }
    }

    fn random_disjoint_ranges(seed: u64, n: usize, bits: u8) -> Vec<FieldRange> {
        // Random cut points -> alternate covered/uncovered spans.
        let mut rng = SplitMix64::new(seed);
        let dm = domain_max(bits);
        let mut cuts: Vec<u64> = (0..n * 2).map(|_| rng.below(dm)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        cuts.chunks_exact(2)
            .map(|c| FieldRange::new(c[0], c[1]))
            .filter({
                let mut prev_hi: Option<u64> = None;
                move |r| {
                    let ok = prev_hi.map_or(true, |p| r.lo > p);
                    if ok {
                        prev_hi = Some(r.hi);
                    }
                    ok
                }
            })
            .collect()
    }

    #[test]
    fn rejects_overlapping_input() {
        let ranges = vec![FieldRange::new(0, 10), FieldRange::new(10, 20)];
        assert!(train_rqrmi(&ranges, 16, &params()).is_err());
        assert!(train_rqrmi(&[], 16, &params()).is_err());
    }

    #[test]
    fn exhaustive_correctness_16bit() {
        // The load-bearing guarantee test: every covered key, every range.
        for seed in [1u64, 2, 3] {
            let ranges = random_disjoint_ranges(seed, 200, 16);
            assert!(ranges.len() > 50);
            let m = train_rqrmi(&ranges, 16, &params()).unwrap();
            verify_exhaustive(&m, &ranges).unwrap();
        }
    }

    #[test]
    fn exhaustive_correctness_exact_match_staircase() {
        // Dense exact values: the hardest quantisation case.
        let ranges: Vec<FieldRange> = (0..500).map(|i| FieldRange::exact(i * 131)).collect();
        let m = train_rqrmi(&ranges, 16, &params()).unwrap();
        verify_exhaustive(&m, &ranges).unwrap();
    }

    #[test]
    fn exhaustive_correctness_adam_trainer() {
        let ranges = random_disjoint_ranges(7, 100, 16);
        let p = RqRmiParams {
            samples_init: 256,
            trainer: TrainerKind::HingeThenAdam(nm_nn::AdamConfig {
                epochs: 60,
                ..Default::default()
            }),
            max_attempts: 2,
            ..Default::default()
        };
        let m = train_rqrmi(&ranges, 16, &p).unwrap();
        verify_exhaustive(&m, &ranges).unwrap();
    }

    #[test]
    fn reject_mode_also_correct() {
        let ranges = random_disjoint_ranges(11, 150, 16);
        let m = train_rqrmi_mode(&ranges, 16, &params(), SampleMode::Reject).unwrap();
        verify_exhaustive(&m, &ranges).unwrap();
    }

    #[test]
    fn bounds_shrink_with_effort() {
        let ranges = random_disjoint_ranges(5, 300, 20);
        let lazy = RqRmiParams { samples_init: 32, max_attempts: 1, ..Default::default() };
        let keen = RqRmiParams { samples_init: 2048, max_attempts: 4, ..Default::default() };
        let m_lazy = train_rqrmi(&ranges, 20, &lazy).unwrap();
        let m_keen = train_rqrmi(&ranges, 20, &keen).unwrap();
        assert!(
            m_keen.max_error_bound() <= m_lazy.max_error_bound(),
            "keen {} vs lazy {}",
            m_keen.max_error_bound(),
            m_lazy.max_error_bound()
        );
    }

    #[test]
    fn training_is_deterministic() {
        let ranges = random_disjoint_ranges(9, 100, 16);
        let a = train_rqrmi(&ranges, 16, &params()).unwrap();
        let b = train_rqrmi(&ranges, 16, &params()).unwrap();
        assert_eq!(a.leaf_err, b.leaf_err);
        for key in (0..65536u64).step_by(97) {
            assert_eq!(a.predict(key), b.predict(key));
        }
    }

    #[test]
    fn retrain_leaves_identity_is_untouched() {
        let ranges = random_disjoint_ranges(3, 200, 16);
        let m = train_rqrmi(&ranges, 16, &params()).unwrap();
        let (m2, stats) = retrain_leaves(&m, &ranges, &ranges, &params(), 1.0).unwrap();
        assert_eq!(stats.refit, 0, "identical ranges must not refit: {stats:?}");
        assert_eq!(stats.rescaled, 0);
        assert_eq!(stats.untouched, stats.leaves);
        assert_eq!(m2.leaf_err, m.leaf_err);
        for key in (0..65_536u64).step_by(97) {
            assert_eq!(m2.predict(key), m.predict(key));
        }
    }

    #[test]
    fn retrain_leaves_concentrated_removal_stays_exhaustively_correct() {
        // Remove a cluster of low-key ranges: the low leaves refit, the rest
        // only rescale (uniform index shift) — and the patched model must
        // satisfy the full RQ-RMI contract over the survivors.
        let ranges = random_disjoint_ranges(5, 300, 16);
        let m = train_rqrmi(&ranges, 16, &params()).unwrap();
        let survivors: Vec<FieldRange> = ranges[6..].to_vec();
        let (m2, stats) = retrain_leaves(&m, &ranges, &survivors, &params(), 1.0).unwrap();
        assert_eq!(m2.len(), survivors.len());
        assert!(
            stats.refit < stats.leaves,
            "concentrated drift must not dirty every leaf: {stats:?}"
        );
        verify_exhaustive(&m2, &survivors).unwrap();
    }

    #[test]
    fn retrain_leaves_admission_and_removal_mix() {
        // Drop some ranges and slot new ones into the gaps — the shape of a
        // partial retrain that re-admits drifted rules.
        let ranges = random_disjoint_ranges(7, 250, 16);
        let m = train_rqrmi(&ranges, 16, &params()).unwrap();
        let mut new_ranges: Vec<FieldRange> = ranges.clone();
        // Remove three neighbours, then insert a fresh range between two
        // survivors (random_disjoint_ranges leaves gaps by construction).
        new_ranges.drain(10..13);
        let gap_lo = new_ranges[20].hi + 2;
        let gap_hi = new_ranges[21].lo.saturating_sub(2);
        if gap_lo < gap_hi {
            new_ranges.insert(21, FieldRange::new(gap_lo, gap_hi));
        }
        let (m2, _stats) = retrain_leaves(&m, &ranges, &new_ranges, &params(), 1.0).unwrap();
        verify_exhaustive(&m2, &new_ranges).unwrap();
    }

    #[test]
    fn retrain_leaves_rejects_broad_drift() {
        // Removing every other range dirties essentially every leaf; with a
        // tight refit cap the partial path must refuse (full-rebuild
        // fallback territory).
        let ranges = random_disjoint_ranges(9, 300, 16);
        let m = train_rqrmi(&ranges, 16, &params()).unwrap();
        let survivors: Vec<FieldRange> = ranges.iter().step_by(2).copied().collect();
        let err = retrain_leaves(&m, &ranges, &survivors, &params(), 0.25);
        assert!(err.is_err(), "broad drift must be rejected at refit cap 0.25");
    }

    #[test]
    fn retrain_leaves_rejects_bad_input() {
        let ranges = random_disjoint_ranges(11, 100, 16);
        let m = train_rqrmi(&ranges, 16, &params()).unwrap();
        assert!(retrain_leaves(&m, &ranges, &[], &params(), 1.0).is_err(), "empty survivors");
        let overlapping = vec![FieldRange::new(0, 10), FieldRange::new(5, 20)];
        assert!(retrain_leaves(&m, &ranges, &overlapping, &params(), 1.0).is_err());
        assert!(
            retrain_leaves(&m, &ranges[1..], &ranges, &params(), 1.0).is_err(),
            "old_ranges must match the model"
        );
    }

    #[test]
    fn retrain_leaves_is_deterministic() {
        let ranges = random_disjoint_ranges(13, 200, 16);
        let m = train_rqrmi(&ranges, 16, &params()).unwrap();
        let survivors: Vec<FieldRange> = ranges[4..].to_vec();
        let (a, sa) = retrain_leaves(&m, &ranges, &survivors, &params(), 1.0).unwrap();
        let (b, sb) = retrain_leaves(&m, &ranges, &survivors, &params(), 1.0).unwrap();
        assert_eq!(sa, sb);
        assert_eq!(a.leaf_err, b.leaf_err);
        for key in (0..65_536u64).step_by(131) {
            assert_eq!(a.predict(key), b.predict(key));
        }
    }

    #[test]
    fn rank_is_partition_point() {
        let his = vec![10u64, 20, 30];
        assert_eq!(rank(&his, 0), 0);
        assert_eq!(rank(&his, 10), 0);
        assert_eq!(rank(&his, 11), 1);
        assert_eq!(rank(&his, 31), 3);
    }

    #[test]
    fn single_range_trivial_model() {
        let ranges = vec![FieldRange::new(100, 200)];
        let m = train_rqrmi(&ranges, 16, &params()).unwrap();
        verify_exhaustive(&m, &ranges).unwrap();
        let (pred, err) = m.predict(150);
        assert!(pred as u32 <= err || pred == 0);
    }

    #[test]
    fn wide_32bit_field_sampled_correctness() {
        // Can't enumerate 2^32; verify on all range boundaries + random keys.
        let ranges = random_disjoint_ranges(13, 2_000, 32);
        let m = train_rqrmi(&ranges, 32, &params()).unwrap();
        let mut rng = SplitMix64::new(99);
        for (idx, r) in ranges.iter().enumerate() {
            let check = |key: u64| {
                let (pred, err) = m.predict(key);
                let dist = (pred as i64 - idx as i64).unsigned_abs();
                assert!(dist <= err as u64, "key {key} true {idx} pred {pred} err {err}");
            };
            check(r.lo);
            check(r.hi);
            check(rng.range_inclusive(r.lo, r.hi));
        }
    }
}
