//! RQ-RMI training (paper §3.5, Figure 5).
//!
//! Stage by stage: train the submodels of stage `i` on datasets sampled from
//! their responsibilities, compute the responsibilities of stage `i+1`
//! analytically (no key enumeration — Theorem A.1), continue. Leaves get an
//! extra loop: compute the worst-case prediction error analytically
//! (Theorem A.13); while it exceeds the target, double the sample count and
//! retrain (§3.5.6).
//!
//! ## Labels
//!
//! The paper samples uniform keys from the responsibility and keeps a sample
//! only "if there is an input rule range that matches the sampled key". For
//! sparse iSets (exact-match-heavy ACLs cover a sliver of a 2^32 domain)
//! rejection leaves datasets almost empty. We label every sampled key with
//! its **rank** — the index of the first range whose upper bound is ≥ key.
//! On covered keys the rank *is* the paper's label; on gap keys it extends
//! the staircase the model must learn anyway. This strictly enlarges the
//! training signal without touching the correctness argument (bounds are
//! computed over covered keys only). `SampleMode::Reject` keeps the literal
//! paper behaviour for comparison.

use nm_common::range::FieldRange;
use nm_common::{Error, SplitMix64};
use nm_nn::{fit_hinge, segments, Adam, Mlp};

use super::analyze::{
    child_responsibilities, eval_delta, responsibility_size, transitions_in_segment, KeyMap,
    Responsibility,
};
use super::model::RqRmi;
use crate::config::{RqRmiParams, TrainerKind};

/// Sampling behaviour for training datasets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SampleMode {
    /// Label all sampled keys with their rank (default; see module docs).
    #[default]
    Rank,
    /// Paper-literal: discard samples that no range matches.
    Reject,
}

/// Trains an RQ-RMI over `ranges`, which must be sorted by `lo` and
/// non-overlapping (an iSet projection — `crate::iset` guarantees this).
///
/// Returns an error if the ranges are unsorted/overlapping or the field is
/// wider than the key map supports.
pub fn train_rqrmi(ranges: &[FieldRange], bits: u8, params: &RqRmiParams) -> Result<RqRmi, Error> {
    train_rqrmi_mode(ranges, bits, params, SampleMode::Rank)
}

/// [`train_rqrmi`] with an explicit [`SampleMode`].
pub fn train_rqrmi_mode(
    ranges: &[FieldRange],
    bits: u8,
    params: &RqRmiParams,
    mode: SampleMode,
) -> Result<RqRmi, Error> {
    if ranges.is_empty() {
        return Err(Error::Build { msg: "cannot train an RQ-RMI on zero ranges".into() });
    }
    for w in ranges.windows(2) {
        if w[1].lo <= w[0].hi {
            return Err(Error::Build {
                msg: format!(
                    "ranges must be sorted and non-overlapping: {:?} then {:?}",
                    w[0], w[1]
                ),
            });
        }
    }
    let km = KeyMap::new(bits);
    let n = ranges.len();
    let los: Vec<u64> = ranges.iter().map(|r| r.lo).collect();
    let his: Vec<u64> = ranges.iter().map(|r| r.hi).collect();
    let widths = params.widths_for(n);
    let stages = widths.len();
    let mut rng = SplitMix64::new(params.seed);

    let mut nets: Vec<Vec<Mlp>> = Vec::with_capacity(stages);
    let mut resp: Vec<Responsibility> = vec![vec![(0, km.domain_max())]];

    for s in 0..stages {
        let w = widths[s];
        debug_assert_eq!(resp.len(), w);
        // Internal stages see larger responsibilities; give them more samples.
        let samples = if s + 1 < stages { params.samples_init * 4 } else { params.samples_init };
        let mut stage_nets = Vec::with_capacity(w);
        for r in resp.iter() {
            if responsibility_size(r) == 0 {
                stage_nets.push(Mlp::zeros(params.hidden));
                continue;
            }
            let data = sample_dataset(r, samples, &mut rng, &km, &los, &his, n, mode);
            stage_nets.push(fit(&params.trainer, params.hidden, &data, rng.next_u64()));
        }
        if s + 1 < stages {
            let mut next: Vec<Responsibility> = vec![Vec::new(); widths[s + 1]];
            for (j, net) in stage_nets.iter().enumerate() {
                if resp[j].is_empty() {
                    continue;
                }
                let children = child_responsibilities(net, &resp[j], widths[s + 1], &km);
                for (k, mut ch) in children.into_iter().enumerate() {
                    next[k].append(&mut ch);
                }
            }
            for r in &mut next {
                super::analyze::normalize(r);
            }
            nets.push(stage_nets);
            resp = next;
        } else {
            nets.push(stage_nets);
        }
    }

    // Leaf error bounds + the Figure 5 retrain loop.
    let leaf_stage = stages - 1;
    let mut leaf_err = vec![0u32; widths[leaf_stage]];
    for j in 0..widths[leaf_stage] {
        if responsibility_size(&resp[j]) == 0 {
            continue;
        }
        let mut bound = leaf_error_bound(&nets[leaf_stage][j], &resp[j], &km, &los, &his, n);
        let mut best = (bound, nets[leaf_stage][j].clone());
        let mut samples = params.samples_init;
        let mut attempt = 1;
        while bound > params.error_target && attempt < params.max_attempts {
            samples *= 2;
            attempt += 1;
            let data = sample_dataset(&resp[j], samples, &mut rng, &km, &los, &his, n, mode);
            let net = fit(&params.trainer, params.hidden, &data, rng.next_u64());
            bound = leaf_error_bound(&net, &resp[j], &km, &los, &his, n);
            if bound < best.0 {
                best = (bound, net);
            }
        }
        nets[leaf_stage][j] = best.1;
        // §3.5.6: if training does not converge the bound is raised to the
        // achieved value (lookups stay correct, just search further).
        leaf_err[j] = best.0;
    }

    Ok(RqRmi { widths, nets, leaf_err, n_values: n, bits })
}

/// Trains one submodel with the configured optimiser.
fn fit(trainer: &TrainerKind, hidden: usize, data: &[(f32, f32)], seed: u64) -> Mlp {
    match trainer {
        TrainerKind::Hinge => fit_hinge(hidden, data),
        TrainerKind::Adam(cfg) => {
            let mut net = Mlp::random(hidden, seed);
            Adam::train(&mut net, data, *cfg);
            net
        }
        TrainerKind::HingeThenAdam(cfg) => {
            let mut net = fit_hinge(hidden, data);
            Adam::train(&mut net, data, *cfg);
            net
        }
    }
}

/// Rank of `key` among the sorted ranges: index of the first range whose
/// upper bound is ≥ key. For a covered key this is exactly the index of its
/// matching range; for a gap key it is the index of the next range.
#[inline]
pub(crate) fn rank(his: &[u64], key: u64) -> usize {
    his.partition_point(|&h| h < key)
}

/// Samples a training dataset from a responsibility (§3.5.4).
///
/// Uniform keys weighted by interval length, plus range-boundary anchors
/// (each range's `lo` inside the responsibility) that pin the staircase the
/// model must learn. All labels use the scaled mid-bucket target
/// `(v + 0.5) / n`.
#[allow(clippy::too_many_arguments)]
fn sample_dataset(
    resp: &Responsibility,
    samples: usize,
    rng: &mut SplitMix64,
    km: &KeyMap,
    los: &[u64],
    his: &[u64],
    n: usize,
    mode: SampleMode,
) -> Vec<(f32, f32)> {
    let total = responsibility_size(resp);
    if total == 0 {
        return Vec::new();
    }
    let label = |key: u64| -> Option<f32> {
        let r = rank(his, key);
        let covered = r < n && los[r] <= key;
        match mode {
            SampleMode::Reject if !covered => None,
            _ => {
                let v = r.min(n - 1);
                Some((v as f64 + 0.5) as f32 / n as f32)
            }
        }
    };
    let mut data = Vec::with_capacity(samples + 64);

    // Uniform samples across the responsibility.
    for _ in 0..samples {
        let mut off = rng.below(total);
        let mut key = 0;
        for &(a, b) in resp {
            let len = b - a + 1;
            if off < len {
                key = a + off;
                break;
            }
            off -= len;
        }
        if let Some(y) = label(key) {
            data.push((km.x(key), y));
        }
    }

    // Anchors: range starts within the responsibility (subsampled when the
    // responsibility holds more ranges than we want anchor points).
    let anchors_max = samples.max(64);
    for &(a, b) in resp {
        let start = rank(his, a);
        let mut i = start;
        let in_resp = los.partition_point(|&lo| lo <= b) - start;
        let step = (in_resp / anchors_max).max(1);
        while i < n && los[i] <= b {
            let key = los[i].max(a);
            if let Some(y) = label(key) {
                data.push((km.x(key), y));
            }
            i += step;
        }
    }
    data
}

/// Worst-case index prediction error of a leaf over its responsibility
/// (Theorem A.13), robust to `f32` evaluation noise.
///
/// The key space is cut at every point where either the analytic prediction
/// or the true rank can change: segment kinks, transition inputs of the
/// `⌊M·n⌋` quantisation, and range boundaries. Within each resulting key run
/// both are constant, so one evaluation per run suffices; the prediction is
/// then widened by `ceil(delta·n) + 1` to cover anything the real `f32`
/// pipeline (any summation order) can produce.
pub(crate) fn leaf_error_bound(
    net: &Mlp,
    resp: &Responsibility,
    km: &KeyMap,
    los: &[u64],
    his: &[u64],
    n: usize,
) -> u32 {
    let delta = eval_delta(net) + 1e-9; // +interp fuzz of segment eval
    let dq = (delta * n as f64).ceil() as u64 + 1;
    let nf = n as f64;
    let mut max_err: u64 = 0;

    for &(ka, kb) in resp {
        let segs = segments(net, km.x64(ka), km.x64(kb));
        let mut cursor = ka;
        for seg in &segs {
            if cursor > kb {
                break;
            }
            let k_end = km.floor_key(seg.x1).min(kb);
            if k_end < cursor {
                continue;
            }
            let k_start = cursor;
            cursor = k_end + 1;

            // Critical keys inside this run.
            let mut crit: Vec<u64> = vec![k_start];
            for t in transitions_in_segment(seg, n) {
                let k = km.ceil_key(t);
                if k > k_start && k <= k_end {
                    crit.push(k);
                }
            }
            // Range boundaries (lo and hi+1) falling inside the run.
            let mut i = rank(his, k_start);
            while i < n && los[i] <= k_end {
                if los[i] > k_start {
                    crit.push(los[i]);
                }
                let after = his[i].saturating_add(1);
                if after > k_start && after <= k_end {
                    crit.push(after);
                }
                i += 1;
            }
            crit.sort_unstable();
            crit.dedup();
            crit.push(k_end + 1); // sentinel

            for w in crit.windows(2) {
                let (g0, g1) = (w[0], w[1] - 1);
                if g0 > g1 {
                    continue;
                }
                // Is this run covered by a range?
                let r = rank(his, g0);
                if r >= n || los[r] > g0 {
                    continue; // gap keys carry no correctness obligation
                }
                debug_assert!(his[r] >= g1, "range boundary must not split a run");
                let v = r as u64;
                let y = seg.eval(km.x64(g0)).clamp(0.0, 1.0);
                let p = ((y * nf) as u64).min(n as u64 - 1);
                let err = p.abs_diff(v) + dq;
                max_err = max_err.max(err);
            }
        }
    }
    max_err.min(n as u64) as u32
}

/// Exhaustively verifies an RQ-RMI: for **every** key covered by a range the
/// true index must lie within `predicted ± bound`. O(domain) — tests only.
pub fn verify_exhaustive(model: &RqRmi, ranges: &[FieldRange]) -> Result<(), String> {
    for (idx, r) in ranges.iter().enumerate() {
        for key in r.lo..=r.hi {
            let (pred, err) = model.predict(key);
            let dist = (pred as i64 - idx as i64).unsigned_abs();
            if dist > err as u64 {
                return Err(format!("key {key}: true index {idx}, predicted {pred}, bound {err}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_common::range::domain_max;

    fn params() -> RqRmiParams {
        RqRmiParams { samples_init: 256, ..Default::default() }
    }

    fn random_disjoint_ranges(seed: u64, n: usize, bits: u8) -> Vec<FieldRange> {
        // Random cut points -> alternate covered/uncovered spans.
        let mut rng = SplitMix64::new(seed);
        let dm = domain_max(bits);
        let mut cuts: Vec<u64> = (0..n * 2).map(|_| rng.below(dm)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        cuts.chunks_exact(2)
            .map(|c| FieldRange::new(c[0], c[1]))
            .filter({
                let mut prev_hi: Option<u64> = None;
                move |r| {
                    let ok = prev_hi.map_or(true, |p| r.lo > p);
                    if ok {
                        prev_hi = Some(r.hi);
                    }
                    ok
                }
            })
            .collect()
    }

    #[test]
    fn rejects_overlapping_input() {
        let ranges = vec![FieldRange::new(0, 10), FieldRange::new(10, 20)];
        assert!(train_rqrmi(&ranges, 16, &params()).is_err());
        assert!(train_rqrmi(&[], 16, &params()).is_err());
    }

    #[test]
    fn exhaustive_correctness_16bit() {
        // The load-bearing guarantee test: every covered key, every range.
        for seed in [1u64, 2, 3] {
            let ranges = random_disjoint_ranges(seed, 200, 16);
            assert!(ranges.len() > 50);
            let m = train_rqrmi(&ranges, 16, &params()).unwrap();
            verify_exhaustive(&m, &ranges).unwrap();
        }
    }

    #[test]
    fn exhaustive_correctness_exact_match_staircase() {
        // Dense exact values: the hardest quantisation case.
        let ranges: Vec<FieldRange> = (0..500).map(|i| FieldRange::exact(i * 131)).collect();
        let m = train_rqrmi(&ranges, 16, &params()).unwrap();
        verify_exhaustive(&m, &ranges).unwrap();
    }

    #[test]
    fn exhaustive_correctness_adam_trainer() {
        let ranges = random_disjoint_ranges(7, 100, 16);
        let p = RqRmiParams {
            samples_init: 256,
            trainer: TrainerKind::HingeThenAdam(nm_nn::AdamConfig {
                epochs: 60,
                ..Default::default()
            }),
            max_attempts: 2,
            ..Default::default()
        };
        let m = train_rqrmi(&ranges, 16, &p).unwrap();
        verify_exhaustive(&m, &ranges).unwrap();
    }

    #[test]
    fn reject_mode_also_correct() {
        let ranges = random_disjoint_ranges(11, 150, 16);
        let m = train_rqrmi_mode(&ranges, 16, &params(), SampleMode::Reject).unwrap();
        verify_exhaustive(&m, &ranges).unwrap();
    }

    #[test]
    fn bounds_shrink_with_effort() {
        let ranges = random_disjoint_ranges(5, 300, 20);
        let lazy = RqRmiParams { samples_init: 32, max_attempts: 1, ..Default::default() };
        let keen = RqRmiParams { samples_init: 2048, max_attempts: 4, ..Default::default() };
        let m_lazy = train_rqrmi(&ranges, 20, &lazy).unwrap();
        let m_keen = train_rqrmi(&ranges, 20, &keen).unwrap();
        assert!(
            m_keen.max_error_bound() <= m_lazy.max_error_bound(),
            "keen {} vs lazy {}",
            m_keen.max_error_bound(),
            m_lazy.max_error_bound()
        );
    }

    #[test]
    fn training_is_deterministic() {
        let ranges = random_disjoint_ranges(9, 100, 16);
        let a = train_rqrmi(&ranges, 16, &params()).unwrap();
        let b = train_rqrmi(&ranges, 16, &params()).unwrap();
        assert_eq!(a.leaf_err, b.leaf_err);
        for key in (0..65536u64).step_by(97) {
            assert_eq!(a.predict(key), b.predict(key));
        }
    }

    #[test]
    fn rank_is_partition_point() {
        let his = vec![10u64, 20, 30];
        assert_eq!(rank(&his, 0), 0);
        assert_eq!(rank(&his, 10), 0);
        assert_eq!(rank(&his, 11), 1);
        assert_eq!(rank(&his, 31), 3);
    }

    #[test]
    fn single_range_trivial_model() {
        let ranges = vec![FieldRange::new(100, 200)];
        let m = train_rqrmi(&ranges, 16, &params()).unwrap();
        verify_exhaustive(&m, &ranges).unwrap();
        let (pred, err) = m.predict(150);
        assert!(pred as u32 <= err || pred == 0);
    }

    #[test]
    fn wide_32bit_field_sampled_correctness() {
        // Can't enumerate 2^32; verify on all range boundaries + random keys.
        let ranges = random_disjoint_ranges(13, 2_000, 32);
        let m = train_rqrmi(&ranges, 32, &params()).unwrap();
        let mut rng = SplitMix64::new(99);
        for (idx, r) in ranges.iter().enumerate() {
            let check = |key: u64| {
                let (pred, err) = m.predict(key);
                let dist = (pred as i64 - idx as i64).unsigned_abs();
                assert!(dist <= err as u64, "key {key} true {idx} pred {pred} err {err}");
            };
            check(r.lo);
            check(r.hi);
            check(rng.range_inclusive(r.lo, r.hi));
        }
    }
}
