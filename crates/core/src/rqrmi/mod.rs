//! Range-Query Recursive Model Index (the paper's §3.3–§3.5 and Appendix A).
//!
//! * [`RqRmi`] — the trained model: stages of 1×8×1 ReLU submodels plus
//!   per-leaf worst-case error bounds.
//! * [`train_rqrmi`] — the training pipeline (Figure 5): sample, fit,
//!   propagate responsibilities analytically, bound errors analytically,
//!   retrain leaves that miss the target.
//! * [`CompiledRqRmi`] — the model lowered to padded SIMD kernels for the
//!   lookup hot path (Table 1's Serial/SSE/AVX).
//!
//! The correctness contract: for any key covered by one of the indexed
//! ranges, the true range index lies within `predict(key).0 ±
//! predict(key).1`. `train::verify_exhaustive` checks it key-by-key in
//! tests.

pub mod analyze;
pub mod model;
pub mod simd;
pub mod train;

pub use analyze::KeyMap;
pub use model::RqRmi;
pub use simd::{
    detect, leaf_chain_broadcast8, leaf_chain_gather8, CompiledRqRmi, Isa, Kernel, LeafSoa,
};
pub use train::{
    retrain_leaves, train_rqrmi, train_rqrmi_mode, verify_exhaustive, LeafRetrainStats, SampleMode,
};
