//! Configuration for RQ-RMI training and the NuevoMatch system.

use nm_nn::AdamConfig;

/// How submodels are optimised. The model family (1×H×1 ReLU MLP) and the
/// analytic correctness machinery are identical in all modes; only the weight
/// search differs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum TrainerKind {
    /// Closed-form hinge least squares (deterministic, fastest; default).
    #[default]
    Hinge,
    /// Paper-faithful: random init + Adam with MSE loss (§3.5.5).
    Adam(AdamConfig),
    /// Hinge initialisation refined by Adam — best accuracy per second.
    HingeThenAdam(AdamConfig),
}

/// RQ-RMI structure and training parameters.
#[derive(Clone, Debug)]
pub struct RqRmiParams {
    /// Stage widths, first must be 1. `None` selects the paper's Table 4
    /// configuration from the number of indexed ranges.
    pub stage_widths: Option<Vec<usize>>,
    /// Hidden neurons per submodel (paper: 8 — one AVX register).
    pub hidden: usize,
    /// Target worst-case index prediction error for leaf submodels. The
    /// Figure 5 loop retrains leaves (doubling samples) until they meet it
    /// or `max_attempts` is exhausted (§3.5.6).
    pub error_target: u32,
    /// Initial number of uniform samples per leaf dataset.
    pub samples_init: usize,
    /// Maximum training attempts per leaf (sample count doubles each time).
    pub max_attempts: usize,
    /// Weight optimiser.
    pub trainer: TrainerKind,
    /// RNG seed for sampling (and Adam init); training is deterministic in
    /// this seed.
    pub seed: u64,
}

impl Default for RqRmiParams {
    fn default() -> Self {
        Self {
            stage_widths: None,
            hidden: 8,
            error_target: 64,
            samples_init: 1 << 10,
            max_attempts: 6,
            trainer: TrainerKind::default(),
            seed: 0x6e75_6576_6f6d, // "nuevom"
        }
    }
}

impl RqRmiParams {
    /// The paper's Table 4: stage widths per rule count.
    ///
    /// | rules          | stages | widths        |
    /// |----------------|--------|---------------|
    /// | < 1 000        | 2      | [1, 4]        |
    /// | 1 000–10 000   | 3      | [1, 4, 16]    |
    /// | 10 000–100 000 | 3      | [1, 4, 128]   |
    /// | > 100 000      | 3      | [1, 8, 256] or [1, 8, 512] |
    pub fn table4_widths(n_ranges: usize) -> Vec<usize> {
        if n_ranges < 1_000 {
            vec![1, 4]
        } else if n_ranges < 10_000 {
            vec![1, 4, 16]
        } else if n_ranges < 100_000 {
            vec![1, 4, 128]
        } else if n_ranges < 300_000 {
            vec![1, 8, 256]
        } else {
            vec![1, 8, 512]
        }
    }

    /// Resolves the effective stage widths for `n_ranges`.
    pub fn widths_for(&self, n_ranges: usize) -> Vec<usize> {
        match &self.stage_widths {
            Some(w) => {
                assert!(!w.is_empty() && w[0] == 1, "first stage width must be 1");
                w.clone()
            }
            None => Self::table4_widths(n_ranges),
        }
    }
}

/// Policy for incremental (leaf-level) retraining — the §3.9 refinement
/// that re-fits only the drifted leaf submodels of an iSet's RQ-RMI instead
/// of rebuilding every iSet from scratch, cutting the publish period and
/// hence the drift floor.
///
/// `ClassifierHandle::retrain` consults this policy: when the drift is
/// concentrated enough to satisfy both gates, it takes the partial path and
/// falls back to a full rebuild otherwise (or when validation fails).
#[derive(Clone, Copy, Debug)]
pub struct PartialRetrainPolicy {
    /// Whether the automatic retrain path may go partial at all. Forced
    /// calls (`retrain_partial`) ignore this switch but keep the gates.
    pub enabled: bool,
    /// Maximum fraction of an iSet's reachable leaf submodels that may need
    /// re-fitting before the drift counts as "too broad" and the partial
    /// path bails (full-rebuild fallback). `1.0` never bails on breadth.
    pub max_refit_fraction: f64,
    /// Minimum fraction of the drifted remainder rules (those that left an
    /// iSet through updates) a partial retrain must be able to re-admit for
    /// it to be worth publishing; below this the drift floor would barely
    /// move and a full rebuild serves better. `0.0` never bails on yield.
    pub min_readmit_fraction: f64,
}

impl Default for PartialRetrainPolicy {
    fn default() -> Self {
        Self { enabled: true, max_refit_fraction: 0.5, min_readmit_fraction: 0.5 }
    }
}

impl PartialRetrainPolicy {
    /// A policy that always takes the partial path when structurally
    /// possible (tests and forced benchmarking).
    pub fn always() -> Self {
        Self { enabled: true, max_refit_fraction: 1.0, min_readmit_fraction: 0.0 }
    }

    /// A policy that never goes partial (the pre-refinement behaviour).
    pub fn never() -> Self {
        Self { enabled: false, ..Self::default() }
    }
}

/// NuevoMatch system parameters (§3.6–§3.8, §4).
#[derive(Clone, Debug)]
pub struct NuevoMatchConfig {
    /// Maximum number of iSets to build before dumping the rest into the
    /// remainder. The paper finds 1–2 best for CutSplit/NeuroCuts remainders
    /// and 4 for TupleMerge (§5.3.2).
    pub max_isets: usize,
    /// Minimum fraction of the input rules an iSet must cover to be kept
    /// (paper: 0.25 vs cs/nc, 0.05 vs tm).
    pub min_iset_coverage: f64,
    /// RQ-RMI training parameters shared by every iSet.
    pub rqrmi: RqRmiParams,
    /// Query the remainder only when the iSets' best candidate can still be
    /// beaten, and let the remainder prune by priority (§4 "early
    /// termination"). Single-core mode in the paper.
    pub early_termination: bool,
    /// Incremental (leaf-level) retraining policy (§3.9 refinement).
    pub partial_retrain: PartialRetrainPolicy,
}

impl Default for NuevoMatchConfig {
    fn default() -> Self {
        Self {
            max_isets: 4,
            min_iset_coverage: 0.05,
            rqrmi: RqRmiParams::default(),
            early_termination: true,
            partial_retrain: PartialRetrainPolicy::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_matches_paper() {
        assert_eq!(RqRmiParams::table4_widths(500), vec![1, 4]);
        assert_eq!(RqRmiParams::table4_widths(5_000), vec![1, 4, 16]);
        assert_eq!(RqRmiParams::table4_widths(50_000), vec![1, 4, 128]);
        assert_eq!(RqRmiParams::table4_widths(150_000), vec![1, 8, 256]);
        assert_eq!(RqRmiParams::table4_widths(500_000), vec![1, 8, 512]);
    }

    #[test]
    fn explicit_widths_win() {
        let p = RqRmiParams { stage_widths: Some(vec![1, 2, 4]), ..Default::default() };
        assert_eq!(p.widths_for(1_000_000), vec![1, 2, 4]);
    }

    #[test]
    #[should_panic]
    fn widths_must_start_at_one() {
        let p = RqRmiParams { stage_widths: Some(vec![2, 4]), ..Default::default() };
        let _ = p.widths_for(10);
    }
}
