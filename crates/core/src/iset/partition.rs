//! Greedy iSet construction via interval-scheduling maximisation.
//!
//! For one field, finding the largest subset of rules with pairwise
//! non-overlapping ranges is exactly the classical interval scheduling
//! maximisation problem: sort by upper bound, repeatedly take the interval
//! with the smallest upper bound that does not overlap the previous pick
//! (§3.6.1, citing Kleinberg & Tardos). Across fields the paper's heuristic
//! is greedy: build the largest candidate in every field, keep the overall
//! largest, remove its rules, repeat.

use nm_common::rule::RuleId;
use nm_common::ruleset::RuleSet;

/// One independent set: rules that do not overlap in field `dim`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ISet {
    /// The field whose projection is conflict-free.
    pub dim: usize,
    /// Member rules, sorted by their range's lower bound in `dim` —
    /// exactly the value-array order the RQ-RMI will index.
    pub rule_ids: Vec<RuleId>,
}

impl ISet {
    /// Number of member rules.
    pub fn len(&self) -> usize {
        self.rule_ids.len()
    }

    /// True when the iSet holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rule_ids.is_empty()
    }
}

/// Output of [`partition_isets`].
#[derive(Clone, Debug)]
pub struct PartitionResult {
    /// Kept iSets, largest first.
    pub isets: Vec<ISet>,
    /// Rules not covered by any kept iSet.
    pub remainder: Vec<RuleId>,
    /// Total rules in the input (for coverage math).
    pub total: usize,
}

impl PartitionResult {
    /// Fraction of input rules covered by the kept iSets.
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let covered: usize = self.isets.iter().map(ISet::len).sum();
        covered as f64 / self.total as f64
    }
}

/// Finds the largest conflict-free subset of `candidates` in field `dim`
/// (interval scheduling maximisation). Returns rule ids sorted by range
/// lower bound.
pub fn largest_iset_in_dim(set: &RuleSet, candidates: &[RuleId], dim: usize) -> Vec<RuleId> {
    let mut intervals: Vec<(u64, u64, RuleId)> = candidates
        .iter()
        .map(|&id| {
            let r = &set.rule(id).fields[dim];
            (r.hi, r.lo, id)
        })
        .collect();
    intervals.sort_unstable();
    let mut picked: Vec<RuleId> = Vec::new();
    let mut last_hi: Option<u64> = None;
    for (hi, lo, id) in intervals {
        if last_hi.map_or(true, |prev| lo > prev) {
            picked.push(id);
            last_hi = Some(hi);
        }
    }
    // Sorted by hi implies sorted by lo for non-overlapping picks, but make
    // the contract explicit.
    picked.sort_unstable_by_key(|&id| set.rule(id).fields[dim].lo);
    picked
}

/// Partitions a rule-set into at most `max_isets` iSets plus a remainder
/// (the paper's greedy heuristic, §3.6.1).
///
/// Construction stops early once the best remaining candidate covers less
/// than `min_coverage` of the *input* rules — small iSets cost an RQ-RMI
/// query each without offloading enough of the remainder (§3.7).
pub fn partition_isets(set: &RuleSet, max_isets: usize, min_coverage: f64) -> PartitionResult {
    let total = set.len();
    let mut remaining: Vec<RuleId> = set.rules().iter().map(|r| r.id).collect();
    let mut isets = Vec::new();

    while isets.len() < max_isets && !remaining.is_empty() {
        let mut best: Option<ISet> = None;
        for dim in 0..set.num_fields() {
            let picked = largest_iset_in_dim(set, &remaining, dim);
            if best.as_ref().map_or(true, |b| picked.len() > b.len()) {
                best = Some(ISet { dim, rule_ids: picked });
            }
        }
        let best = best.expect("at least one field");
        if (best.len() as f64) < min_coverage * total as f64 || best.is_empty() {
            break;
        }
        let member: std::collections::HashSet<RuleId> = best.rule_ids.iter().copied().collect();
        remaining.retain(|id| !member.contains(id));
        isets.push(best);
    }

    PartitionResult { isets, remainder: remaining, total }
}

/// Greedy re-admission for partial retrains (§3.9 refinement): which of
/// `candidates` — `(rule id, lo, hi)` projections in the iSet's field — fit
/// into the occupied interval set (`occ_los`/`occ_his`, sorted, disjoint)
/// without overlapping it or each other.
///
/// Same interval-scheduling idea as [`largest_iset_in_dim`]: candidates are
/// taken in ascending `(hi, lo, id)` order so the pick maximises the number
/// admitted; occupied intervals are immovable. Returns the admitted ids (the
/// rest stay in the remainder — admission is best-effort, never required).
pub fn admit_into_iset(
    occ_los: &[u64],
    occ_his: &[u64],
    candidates: &[(RuleId, u64, u64)],
) -> Vec<RuleId> {
    debug_assert_eq!(occ_los.len(), occ_his.len());
    let mut order: Vec<(u64, u64, RuleId)> =
        candidates.iter().map(|&(id, lo, hi)| (hi, lo, id)).collect();
    order.sort_unstable();
    let mut admitted = Vec::new();
    // Upper bound of the last admitted candidate: candidates are processed
    // in ascending hi, so overlap among picks reduces to this single bound.
    let mut last_admitted_hi: Option<u64> = None;
    for (hi, lo, id) in order {
        if last_admitted_hi.is_some_and(|prev| lo <= prev) {
            continue;
        }
        // Overlap against the occupied set: the first occupied interval
        // whose hi is >= lo must start after our hi.
        let i = occ_his.partition_point(|&h| h < lo);
        if i < occ_los.len() && occ_los[i] <= hi {
            continue;
        }
        admitted.push(id);
        last_admitted_hi = Some(hi);
    }
    admitted
}

/// Cumulative coverage after 1..=k iSets with no minimum-coverage cutoff —
/// the Table 2 measurement.
pub fn coverage_curve(set: &RuleSet, k: usize) -> Vec<f64> {
    let result = partition_isets(set, k, 0.0);
    let total = set.len().max(1) as f64;
    let mut out = Vec::with_capacity(k);
    let mut covered = 0usize;
    for i in 0..k {
        covered += result.isets.get(i).map_or(0, ISet::len);
        out.push(covered as f64 / total);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_common::{FieldRange, FieldSpec, FieldsSpec, RuleSet};

    fn figure2_set() -> RuleSet {
        // The paper's running example (Figure 2): IP address x port.
        let ip = |a: u64, b: u64, c: u64, d: u64| (a << 24) | (b << 16) | (c << 8) | d;
        let spec = FieldsSpec::new(vec![FieldSpec::new("ip", 32), FieldSpec::new("port", 16)]);
        let rows = vec![
            vec![FieldRange::from_prefix(ip(10, 10, 0, 0), 16, 32), FieldRange::new(10, 18)], // R0
            vec![FieldRange::from_prefix(ip(10, 10, 1, 0), 24, 32), FieldRange::new(15, 25)], // R1
            vec![FieldRange::from_prefix(ip(10, 0, 0, 0), 8, 32), FieldRange::new(5, 8)],     // R2
            vec![FieldRange::from_prefix(ip(10, 10, 3, 0), 24, 32), FieldRange::new(7, 20)],  // R3
            vec![FieldRange::exact(ip(10, 10, 3, 100)), FieldRange::exact(19)],               // R4
        ];
        RuleSet::from_ranges(spec, rows).unwrap()
    }

    #[test]
    fn figure6_partition() {
        // The paper's Figure 6: two iSets cover all five rules —
        // {R0, R2, R4} by port and {R1, R3} by IP.
        let set = figure2_set();
        let result = partition_isets(&set, 8, 0.0);
        assert_eq!(result.isets.len(), 2);
        assert_eq!(result.coverage(), 1.0);
        assert!(result.remainder.is_empty());
        let mut first = result.isets[0].rule_ids.clone();
        first.sort_unstable();
        assert_eq!(result.isets[0].dim, 1, "first iSet is by port");
        assert_eq!(first, vec![0, 2, 4]);
        let mut second = result.isets[1].rule_ids.clone();
        second.sort_unstable();
        assert_eq!(result.isets[1].dim, 0, "second iSet is by IP");
        assert_eq!(second, vec![1, 3]);
    }

    #[test]
    fn isets_are_internally_conflict_free() {
        let set = figure2_set();
        let result = partition_isets(&set, 8, 0.0);
        for iset in &result.isets {
            for pair in iset.rule_ids.windows(2) {
                let a = &set.rule(pair[0]).fields[iset.dim];
                let b = &set.rule(pair[1]).fields[iset.dim];
                assert!(!a.overlaps(b), "iSet dim {} rules {:?} overlap", iset.dim, pair);
            }
        }
    }

    #[test]
    fn partition_is_a_partition() {
        let set = figure2_set();
        let result = partition_isets(&set, 8, 0.0);
        let mut all: Vec<RuleId> = result
            .isets
            .iter()
            .flat_map(|i| i.rule_ids.iter().copied())
            .chain(result.remainder.iter().copied())
            .collect();
        all.sort_unstable();
        let expect: Vec<RuleId> = (0..set.len() as RuleId).collect();
        assert_eq!(all, expect);
    }

    #[test]
    fn min_coverage_cuts_small_isets() {
        let set = figure2_set();
        // Requiring 50% coverage keeps only the 3-of-5 port iSet.
        let result = partition_isets(&set, 8, 0.5);
        assert_eq!(result.isets.len(), 1);
        assert_eq!(result.remainder.len(), 2);
    }

    #[test]
    fn max_isets_respected() {
        let set = figure2_set();
        let result = partition_isets(&set, 1, 0.0);
        assert_eq!(result.isets.len(), 1);
        assert_eq!(result.remainder.len(), 2);
    }

    #[test]
    fn coverage_curve_is_monotone() {
        let set = figure2_set();
        let curve = coverage_curve(&set, 4);
        assert_eq!(curve.len(), 4);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((curve[1] - 1.0).abs() < 1e-12, "two iSets suffice: {curve:?}");
    }

    #[test]
    fn duplicate_ranges_cannot_share_an_iset() {
        let spec = FieldsSpec::uniform(1, 8);
        let rows = vec![
            vec![FieldRange::new(0, 10)],
            vec![FieldRange::new(0, 10)],
            vec![FieldRange::new(20, 30)],
        ];
        let set = RuleSet::from_ranges(spec, rows).unwrap();
        let picked = largest_iset_in_dim(&set, &[0, 1, 2], 0);
        assert_eq!(picked.len(), 2, "one copy of the duplicate plus the disjoint rule");
    }

    #[test]
    fn admit_into_iset_respects_occupied_and_self_overlap() {
        // Occupied: [10,20], [40,50].
        let occ_los = [10u64, 40];
        let occ_his = [20u64, 50];
        let candidates = vec![
            (1u32, 22, 30), // fits between the occupied intervals
            (2, 25, 35),    // overlaps candidate 1 — loses (larger hi)
            (3, 15, 18),    // inside occupied — rejected
            (4, 51, 60),    // fits after the last occupied interval
            (5, 38, 45),    // straddles occupied [40,50] — rejected
            (6, 0, 9),      // fits before everything
        ];
        let mut admitted = admit_into_iset(&occ_los, &occ_his, &candidates);
        admitted.sort_unstable();
        assert_eq!(admitted, vec![1, 4, 6]);
        // Empty occupied set: pure interval scheduling.
        let all = admit_into_iset(&[], &[], &candidates);
        assert!(all.len() >= 4, "{all:?}");
        // No candidates: nothing admitted.
        assert!(admit_into_iset(&occ_los, &occ_his, &[]).is_empty());
    }

    #[test]
    fn empty_set() {
        let spec = FieldsSpec::uniform(1, 8);
        let set = RuleSet::from_ranges(spec, vec![]).unwrap();
        let result = partition_isets(&set, 4, 0.25);
        assert!(result.isets.is_empty());
        assert_eq!(result.coverage(), 0.0);
    }
}
