//! iSet partitioning (paper §3.6).
//!
//! An *iSet* is a group of rules whose ranges do not overlap in one chosen
//! field, so that field's projection can be indexed by a single RQ-RMI (a
//! key matches at most one rule of the iSet in that field). The partitioner
//! greedily peels off the largest iSet it can find across all fields until
//! the leftovers (the *remainder*) drop below a coverage threshold.

pub mod partition;

pub use partition::{
    admit_into_iset, coverage_curve, largest_iset_in_dim, partition_isets, ISet, PartitionResult,
};
