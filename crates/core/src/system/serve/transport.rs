//! Socket transports: UDP datagram readers and the TCP acceptor /
//! per-connection readers. Loopback-testable with nothing beyond
//! `std::net` (plus the raw batched syscalls in [`super::sysio`]).
//!
//! Every reader thread owns one [`Assembler`] and enforces the
//! micro-batching deadline with a two-mode read loop: **idle** (no pending
//! requests) blocks for the first datagram with a short timeout so
//! shutdown is always noticed, while **assembling** (a partial batch
//! waiting) busy-polls nonblocking and flushes the instant the deadline
//! passes. The poll is mandatory for a microsecond deadline —
//! `SO_RCVTIMEO` rounds up to kernel scheduler ticks (milliseconds),
//! which would stretch a 20µs deadline by 100x — and its cost is bounded
//! by the deadline itself.
//!
//! UDP readers each own a *private* `SO_REUSEPORT` fd (the kernel hashes
//! flows across them) and drain up to a whole batch per `recvmmsg(2)`
//! through a reader-owned [`RecvRing`] — both loop modes are expressed as
//! per-call `MSG_WAITFORONE`/`MSG_DONTWAIT` flags, so the fd's blocking
//! mode is never toggled and readers never coordinate. This keeps the hot
//! path one thread per socket with zero cross-thread queues — the batch
//! *is* the queue.

use std::io::Read;
use std::net::{TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, PoisonError};
use std::time::{Duration, Instant};

use nm_common::frame::decode_request;

use super::assembler::{Assembler, ReplyTo};
use super::plane::ServePlane;
use super::stats::{FlushCause, ReaderKind};
use super::sysio::RecvRing;
use super::Shared;

/// How often an idle reader re-checks shutdown.
const IDLE_TICK: Duration = Duration::from_millis(2);

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Decodes every frame in `bytes` into the assembler. Returns consumed
/// byte count; a malformed frame poisons the rest of the buffer (UDP) —
/// the caller decides what a partial tail means.
fn feed<P: ServePlane>(
    asm: &mut Assembler<P>,
    shared: &Shared<P>,
    bytes: &[u8],
    reply: &ReplyTo,
    arrived: Instant,
    scratch: &mut Vec<u64>,
) -> Result<usize, ()> {
    let mut off = 0;
    while off < bytes.len() {
        scratch.clear();
        match decode_request(&bytes[off..], scratch) {
            Ok(Some((head, used))) => {
                off += used;
                if head.fields != shared.cfg.stride {
                    asm.decode_errors += 1;
                    continue;
                }
                if asm.push(head.id, scratch, reply.clone(), arrived) {
                    asm.flush(FlushCause::Full);
                }
            }
            Ok(None) => break,
            Err(_) => {
                asm.decode_errors += 1;
                return Err(());
            }
        }
    }
    Ok(off)
}

/// One UDP reader over its own fd (private under `SO_REUSEPORT`; the
/// shared-socket fallback also lands here — per-call `MSG_DONTWAIT`
/// flags mean there is no fd mode state to race on, the kernel just
/// load-balances wakeups).
///
/// The ring drains up to `max_batch` datagrams per `recvmmsg(2)`; the
/// decode loop between the `nm-lint: hotpath` markers reuses the ring,
/// the assembler and the scratch buffer — no allocation per drain.
pub(super) fn udp_reader<P: ServePlane>(shared: Arc<Shared<P>>, sock: Arc<UdpSocket>) {
    shared.pin_next_cpu();
    let mut asm = shared.new_assembler(ReaderKind::Udp);
    let mut ring = RecvRing::new(shared.cfg.max_batch.clamp(1, 128));
    let mut scratch = Vec::new();
    // A socket that cannot take a read timeout cannot be served without
    // wedging shutdown on a blocking recv — exit the reader instead of
    // panicking the thread.
    if sock.set_read_timeout(Some(IDLE_TICK)).is_err() {
        return;
    }
    loop {
        if shared.shutdown.load(Relaxed) {
            asm.flush(FlushCause::Drain);
            return;
        }
        let block = match asm.time_left(Instant::now()) {
            Some(left) if left.is_zero() => {
                asm.flush(FlushCause::Deadline);
                continue;
            }
            // Assembling: nonblocking drains only; the deadline above
            // bounds how long this busy-poll can run.
            Some(_) => false,
            // Idle: block for the first datagram (SO_RCVTIMEO keeps the
            // shutdown checks live), then grab whatever else is queued.
            None => true,
        };
        match ring.recv(&sock, block) {
            Ok(count) => {
                let arrived = Instant::now();
                asm.recv_calls += 1;
                // nm-lint: hotpath
                for d in 0..count {
                    let (bytes, peer) = ring.datagram(d);
                    let Some(peer) = peer else {
                        asm.decode_errors += 1;
                        continue;
                    };
                    let reply = ReplyTo::Udp(sock.clone(), peer);
                    match feed(&mut asm, &shared, bytes, &reply, arrived, &mut scratch) {
                        // A truncated tail cannot complete in a later
                        // datagram — datagrams are self-contained.
                        Ok(used) if used < bytes.len() => asm.decode_errors += 1,
                        _ => {}
                    }
                }
                // nm-lint: end-hotpath
            }
            Err(ref e) if is_timeout(e) => {
                asm.empty_recv_calls += 1;
                if !block {
                    // Yield rather than spin: on a loaded (or single-CPU)
                    // box the sender needs this core to produce the very
                    // packets we are polling for.
                    std::thread::yield_now();
                }
            }
            Err(_) => {}
        }
    }
}

/// The TCP acceptor: nonblocking accept loop spawning one reader thread
/// per connection (thread-per-core pinning round-robins those readers).
pub(super) fn tcp_acceptor<P: ServePlane>(shared: Arc<Shared<P>>, listener: TcpListener) {
    // A blocking listener would wedge shutdown inside `accept` — give up
    // on TCP rather than panic the acceptor thread.
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    while !shared.shutdown.load(Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nodelay(true).ok();
                let shared2 = shared.clone();
                let join = std::thread::spawn(move || tcp_conn(shared2, Arc::new(stream)));
                shared.conn_joins.lock().unwrap_or_else(PoisonError::into_inner).push(join);
            }
            Err(ref e) if is_timeout(e) => std::thread::sleep(IDLE_TICK),
            Err(_) => std::thread::sleep(IDLE_TICK),
        }
    }
}

/// One TCP connection's reader: accumulates the byte stream, feeds
/// complete frames to its assembler, drains on EOF / error / shutdown.
fn tcp_conn<P: ServePlane>(shared: Arc<Shared<P>>, stream: Arc<TcpStream>) {
    shared.pin_next_cpu();
    let mut asm = shared.new_assembler(ReaderKind::Tcp);
    let mut carry: Vec<u8> = Vec::new();
    let mut buf = [0u8; 16 * 1024];
    let reply = ReplyTo::Tcp(stream.clone());
    let mut scratch = Vec::new();
    // As in `udp_reader`: without a timeout the shutdown flag is never
    // rechecked — drop the connection instead of panicking.
    if stream.set_read_timeout(Some(IDLE_TICK)).is_err() {
        return;
    }
    let mut polling = false;
    loop {
        if shared.shutdown.load(Relaxed) {
            break;
        }
        match asm.time_left(Instant::now()) {
            Some(left) if left.is_zero() => {
                asm.flush(FlushCause::Deadline);
                continue;
            }
            Some(_) => {
                // Mode-toggle failures degrade to timeout-blocking reads
                // (see `udp_reader`).
                if !polling && stream.set_nonblocking(true).is_ok() {
                    polling = true;
                }
            }
            None => {
                if polling && stream.set_nonblocking(false).is_ok() {
                    stream.set_read_timeout(Some(IDLE_TICK)).ok();
                    polling = false;
                }
            }
        }
        match (&*stream).read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                let arrived = Instant::now();
                asm.recv_calls += 1;
                carry.extend_from_slice(&buf[..n]);
                match feed(&mut asm, &shared, &carry, &reply, arrived, &mut scratch) {
                    Ok(used) => {
                        carry.drain(..used);
                    }
                    // A poisoned stream has no recoverable framing; close.
                    Err(()) => break,
                }
            }
            Err(ref e) if is_timeout(e) => {
                asm.empty_recv_calls += 1;
                if polling {
                    // See the UDP reader: yield so the peer can run.
                    std::thread::yield_now();
                }
            }
            Err(_) => break,
        }
    }
    asm.flush(FlushCause::Drain);
}
