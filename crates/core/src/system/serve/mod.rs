//! `system::serve` — the wire-to-verdict classification service.
//!
//! Turns a live data plane (a [`ClassifierHandle`] or the PR 5 sharded
//! [`ShardedHandle`]) into a network service: length-prefixed key frames
//! arrive over UDP and/or TCP (`nm_common::frame`), per-core reader
//! threads coalesce them with **deadline micro-batching** (flush at
//! `max_batch` or after `deadline`, whichever first), every flushed batch
//! classifies against **one pinned generation**, and `(rule, priority,
//! generation)` verdicts go back on the wire. Service latency — request
//! decoded to response written, micro-batching wait included — lands in a
//! log-bucketed [`nm_common::LatencyHistogram`] for p50/p99/p999 tail
//! accounting.
//!
//! In debug builds an in-loop oracle validator (the Chameleon-style
//! validating controller named in ROADMAP) replays a sample of served
//! requests against a [`nm_common::LinearSearch`] truth at the pinned
//! generation; mismatches are counted and asserted to zero by the
//! integration tests.
//!
//! ```no_run
//! # use nuevomatch::system::serve::{ServeConfig, Server};
//! # fn demo(handle: nuevomatch::ClassifierHandle<nm_common::LinearSearch>) {
//! let server = Server::start(handle, &ServeConfig::default()).unwrap();
//! let addr = server.udp_addr().unwrap(); // ephemeral loopback port
//! // ... drive clients against `addr` ...
//! let stats = server.shutdown();
//! assert_eq!(stats.mismatches, 0);
//! # }
//! ```

pub mod assembler;
pub mod client;
pub mod plane;
pub mod stats;
pub mod sysio;
pub mod transport;
pub mod validator;

pub use assembler::{Assembler, ReplyTo};
pub use client::ServeClient;
pub use plane::{PinnedPlane, ServePlane, ShardedPin};
pub use stats::{FlushCause, ReaderKind, ServeStats};
pub use validator::{OracleTable, Validator};

use std::net::{SocketAddr, TcpListener, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::system::runtime::topology::{pin_current_thread, Topology};

#[allow(unused_imports)] // doc links
use crate::system::handle::ClassifierHandle;
#[allow(unused_imports)] // doc links
use crate::system::runtime::sharded::ShardedHandle;

/// Which socket families the server binds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transport {
    /// Datagrams only.
    Udp,
    /// Streams only.
    Tcp,
    /// Both (each on its own ephemeral port when `listen` uses port 0).
    Both,
}

impl Transport {
    /// Whether UDP is served.
    pub fn udp(self) -> bool {
        matches!(self, Transport::Udp | Transport::Both)
    }

    /// Whether TCP is served.
    pub fn tcp(self) -> bool {
        matches!(self, Transport::Tcp | Transport::Both)
    }
}

impl std::str::FromStr for Transport {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "udp" => Ok(Transport::Udp),
            "tcp" => Ok(Transport::Tcp),
            "both" => Ok(Transport::Both),
            other => Err(format!("unknown transport {other:?} (udp|tcp|both)")),
        }
    }
}

impl std::fmt::Display for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Transport::Udp => "udp",
            Transport::Tcp => "tcp",
            Transport::Both => "both",
        })
    }
}

/// Serve front-end configuration. The defaults are the paper-shaped
/// serving point: batch 128, 20µs assembly deadline, loopback ephemeral
/// port, both transports.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port per transport.
    pub listen: SocketAddr,
    /// Socket families to serve.
    pub transport: Transport,
    /// Flush a batch at this many requests…
    pub max_batch: usize,
    /// …or when the oldest pending request has waited this long.
    pub deadline: Duration,
    /// Key words per request frame (requests with any other width are
    /// decode errors).
    pub stride: usize,
    /// UDP reader threads. Each gets a *private* socket bound to the same
    /// address via `SO_REUSEPORT` (the kernel hashes flows across them, so
    /// every reader owns an independent receive queue); when `SO_REUSEPORT`
    /// is unavailable the readers share one socket like the pre-REUSEPORT
    /// front-end.
    pub udp_readers: usize,
    /// Pin reader threads round-robin over the NUMA topology (no-ops on a
    /// single-CPU box).
    pub pin: bool,
    /// Replay one in N served requests against the oracle table; `0`
    /// disables sampling. Defaults to 16 in debug builds, 0 in release —
    /// the in-loop validator is a debugging control, not a serving cost.
    pub validate_every: u64,
    /// Oracle generations retained for validation.
    pub oracle_keep: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            listen: SocketAddr::from(([127, 0, 0, 1], 0)),
            transport: Transport::Both,
            max_batch: 128,
            deadline: Duration::from_micros(20),
            stride: nm_common::FIVE_TUPLE_FIELDS,
            udp_readers: 1,
            pin: true,
            validate_every: if cfg!(debug_assertions) { 16 } else { 0 },
            oracle_keep: 8,
        }
    }
}

/// Everything the reader threads share.
pub(crate) struct Shared<P: ServePlane> {
    pub(crate) plane: Arc<P>,
    pub(crate) cfg: ServeConfig,
    pub(crate) oracle: Arc<OracleTable>,
    pub(crate) shutdown: AtomicBool,
    slots: Mutex<Vec<(stats::ReaderKind, Arc<Mutex<ServeStats>>)>>,
    pub(crate) conn_joins: Mutex<Vec<JoinHandle<()>>>,
    cpus: Vec<usize>,
    next_cpu: AtomicUsize,
}

impl<P: ServePlane> Shared<P> {
    /// Builds one assembler wired to a fresh registered stats slot tagged
    /// with the owning reader's kind.
    pub(crate) fn new_assembler(self: &Arc<Self>, kind: stats::ReaderKind) -> Assembler<P> {
        let slot = Arc::new(Mutex::new(ServeStats::new()));
        self.slots.lock().unwrap_or_else(PoisonError::into_inner).push((kind, slot.clone()));
        Assembler::new(
            self.plane.clone(),
            self.cfg.max_batch,
            self.cfg.deadline,
            self.cfg.stride,
            Validator::new(self.oracle.clone(), self.cfg.validate_every),
            slot,
        )
    }

    /// Pins the calling thread to the next CPU in the round-robin plan
    /// (no-op when pinning is off or the box has one CPU).
    pub(crate) fn pin_next_cpu(&self) {
        if self.cpus.is_empty() {
            return;
        }
        let cpu = self.cpus[self.next_cpu.fetch_add(1, Relaxed) % self.cpus.len()];
        pin_current_thread(cpu);
    }
}

/// A running serve front-end. Dropping it shuts the service down; call
/// [`Server::shutdown`] to also collect the final statistics.
pub struct Server<P: ServePlane> {
    shared: Arc<Shared<P>>,
    joins: Vec<JoinHandle<()>>,
    udp_addr: Option<SocketAddr>,
    tcp_addr: Option<SocketAddr>,
}

impl<P: ServePlane> Server<P> {
    /// Binds the configured transports and spawns the reader threads.
    pub fn start(plane: P, cfg: &ServeConfig) -> std::io::Result<Self> {
        let cpus = if cfg.pin {
            let topo = Topology::discover();
            if topo.num_cpus() > 1 {
                topo.nodes().iter().flat_map(|n| n.cpus.iter().copied()).collect()
            } else {
                Vec::new()
            }
        } else {
            Vec::new()
        };
        let shared = Arc::new(Shared {
            plane: Arc::new(plane),
            cfg: cfg.clone(),
            oracle: Arc::new(OracleTable::new(cfg.oracle_keep)),
            shutdown: AtomicBool::new(false),
            slots: Mutex::new(Vec::new()),
            conn_joins: Mutex::new(Vec::new()),
            cpus,
            next_cpu: AtomicUsize::new(0),
        });
        let mut joins = Vec::new();
        let mut udp_addr = None;
        let mut tcp_addr = None;
        if cfg.transport.udp() {
            let n = cfg.udp_readers.max(1);
            // One private SO_REUSEPORT socket per reader; the helper falls
            // back to a single shared socket when REUSEPORT is unavailable
            // (readers then cycle over that one fd like the old front-end).
            let socks: Vec<Arc<UdpSocket>> =
                sysio::bind_udp_reader_sockets(cfg.listen, n)?.into_iter().map(Arc::new).collect();
            udp_addr = match socks.first() {
                Some(s) => Some(s.local_addr()?),
                None => None,
            };
            for i in 0..n {
                let shared2 = shared.clone();
                let sock2 = socks[i % socks.len()].clone();
                joins.push(std::thread::spawn(move || transport::udp_reader(shared2, sock2)));
            }
        }
        if cfg.transport.tcp() {
            let listener = TcpListener::bind(cfg.listen)?;
            tcp_addr = Some(listener.local_addr()?);
            let shared2 = shared.clone();
            joins.push(std::thread::spawn(move || transport::tcp_acceptor(shared2, listener)));
        }
        Ok(Self { shared, joins, udp_addr, tcp_addr })
    }

    /// The UDP serving address (when the transport includes UDP).
    pub fn udp_addr(&self) -> Option<SocketAddr> {
        self.udp_addr
    }

    /// The TCP serving address (when the transport includes TCP).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The oracle table update drivers publish ground truth into (see
    /// [`OracleTable::publish`]); sampling is controlled by
    /// [`ServeConfig::validate_every`].
    pub fn oracle(&self) -> Arc<OracleTable> {
        self.shared.oracle.clone()
    }

    /// The data plane being served.
    pub fn plane(&self) -> Arc<P> {
        self.shared.plane.clone()
    }

    /// A point-in-time fold of every reader thread's statistics.
    pub fn stats(&self) -> ServeStats {
        let mut total = ServeStats::new();
        for (_, slot) in self.shared.slots.lock().unwrap_or_else(PoisonError::into_inner).iter() {
            total.merge(&slot.lock().unwrap_or_else(PoisonError::into_inner));
        }
        total
    }

    /// A point-in-time snapshot of each reader thread's own statistics,
    /// tagged with the reader kind. The fleet-wide fold is
    /// [`Server::stats`]; this view exposes the per-reader spread — a
    /// heavily skewed UDP reader means `SO_REUSEPORT` flow steering (or
    /// the client's source-port spread) is off, which percentiles alone
    /// would hide.
    pub fn per_reader_stats(&self) -> Vec<(ReaderKind, ServeStats)> {
        self.shared
            .slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(kind, slot)| {
                (*kind, slot.lock().unwrap_or_else(PoisonError::into_inner).clone())
            })
            .collect()
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Relaxed);
        for j in self.joins.drain(..) {
            let _ = j.join();
        }
        let conns: Vec<_> = self
            .shared
            .conn_joins
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect();
        for j in conns {
            let _ = j.join();
        }
    }

    /// Stops accepting, drains every assembler, joins the reader threads
    /// and returns the final statistics.
    pub fn shutdown(mut self) -> ServeStats {
        self.stop();
        self.stats()
    }
}

impl<P: ServePlane> Drop for Server<P> {
    fn drop(&mut self) {
        self.stop();
    }
}
