//! Deadline micro-batching: coalesce in-flight requests into data-plane
//! batches, flushing at `max_batch` or when the *oldest* pending request
//! hits the deadline — whichever comes first.
//!
//! Each transport reader thread owns one assembler, so pushes are
//! lock-free; the only shared state is the stats slot (locked once per
//! flush) and the reply sockets. A flush pins exactly one generation from
//! the [`ServePlane`], classifies the whole batch against it, and writes
//! `(rule, priority, generation)` responses back, coalescing consecutive
//! frames to the same destination into runs and pushing all runs with
//! batched syscalls — one `sendmmsg(2)` per UDP socket, one gathered
//! `writev(2)` per TCP stream (see [`super::sysio`]).

use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use nm_common::classifier::MatchResult;
use nm_common::frame::encode_response;

use super::plane::{PinnedPlane, ServePlane};
use super::stats::{FlushCause, ServeStats};
use super::sysio::{self, SendRing};
use super::validator::Validator;

/// Where a response frame goes. UDP replies go out on the reader's own
/// socket (private under `SO_REUSEPORT`, shared on the fallback path);
/// TCP replies write to the connection's stream. Each connection is owned
/// by exactly one reader thread, so writes never interleave.
#[derive(Clone)]
pub enum ReplyTo {
    /// Reply on the reader's serving socket to the recorded peer.
    Udp(Arc<UdpSocket>, SocketAddr),
    /// Reply on the connection's own stream.
    Tcp(Arc<TcpStream>),
}

impl ReplyTo {
    /// True when both route to the same destination (coalescable).
    fn same_dest(&self, other: &ReplyTo) -> bool {
        match (self, other) {
            (ReplyTo::Udp(_, a), ReplyTo::Udp(_, b)) => a == b,
            (ReplyTo::Tcp(a), ReplyTo::Tcp(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

struct Pending {
    id: u64,
    arrived: Instant,
    reply: ReplyTo,
}

/// The per-reader batch assembler.
pub struct Assembler<P: ServePlane> {
    plane: Arc<P>,
    max_batch: usize,
    deadline: Duration,
    stride: usize,
    keys: Vec<u64>,
    pending: Vec<Pending>,
    out: Vec<Option<MatchResult>>,
    wire: Vec<u8>,
    /// Coalesced response runs of the current flush:
    /// `(req_start, req_end, byte_start, byte_end)` — requests
    /// `req_start..req_end` share one destination and their frames occupy
    /// `wire[byte_start..byte_end]`.
    runs: Vec<(usize, usize, usize, usize)>,
    /// Scratch for one `sendmmsg` group: `(byte_start, byte_end, dest)`.
    udp_out: Vec<(usize, usize, SocketAddr)>,
    /// Request count per entry of `udp_out` (send-error accounting).
    udp_counts: Vec<u64>,
    /// Scratch for one `writev` group: byte ranges on one stream.
    tcp_out: Vec<(usize, usize)>,
    send_ring: SendRing,
    validator: Validator,
    stats_slot: Arc<Mutex<ServeStats>>,
    /// Counters accumulated outside flushes (decode errors), folded into
    /// the slot on the next flush.
    pub decode_errors: u64,
    /// Productive receive syscalls, bumped by the owning reader and folded
    /// into the slot on the next flush.
    pub recv_calls: u64,
    /// Empty receive syscalls (busy-poll probes / idle ticks), likewise.
    pub empty_recv_calls: u64,
    requests: u64,
}

impl<P: ServePlane> Assembler<P> {
    /// A fresh assembler flushing into `plane` and reporting into
    /// `stats_slot`.
    pub fn new(
        plane: Arc<P>,
        max_batch: usize,
        deadline: Duration,
        stride: usize,
        validator: Validator,
        stats_slot: Arc<Mutex<ServeStats>>,
    ) -> Self {
        let max_batch = max_batch.max(1);
        Self {
            plane,
            max_batch,
            deadline,
            stride: stride.max(1),
            keys: Vec::with_capacity(max_batch * stride.max(1)),
            pending: Vec::with_capacity(max_batch),
            out: vec![None; max_batch],
            wire: Vec::with_capacity(4096),
            runs: Vec::with_capacity(max_batch),
            udp_out: Vec::with_capacity(max_batch),
            udp_counts: Vec::with_capacity(max_batch),
            tcp_out: Vec::with_capacity(max_batch),
            send_ring: SendRing::new(max_batch),
            validator,
            stats_slot,
            decode_errors: 0,
            recv_calls: 0,
            empty_recv_calls: 0,
            requests: 0,
        }
    }

    /// Queues one request. `key` must be `stride` words (the transport
    /// validates widths). Returns `true` when the batch is now full and
    /// must be flushed before anything else is pushed.
    pub fn push(&mut self, id: u64, key: &[u64], reply: ReplyTo, arrived: Instant) -> bool {
        debug_assert_eq!(key.len(), self.stride);
        self.keys.extend_from_slice(key);
        self.pending.push(Pending { id, arrived, reply });
        self.requests += 1;
        self.pending.len() >= self.max_batch
    }

    /// Queued request count.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Time until the oldest pending request's deadline, `None` when empty.
    /// `Some(ZERO)` means the deadline already passed — flush now.
    pub fn time_left(&self, now: Instant) -> Option<Duration> {
        let oldest = self.pending.first()?.arrived;
        Some(self.deadline.saturating_sub(now.duration_since(oldest)))
    }

    /// Classifies and answers everything queued (no-op when empty): pin
    /// one generation, classify the whole batch against it, write the
    /// responses back, account latency per request.
    pub fn flush(&mut self, cause: FlushCause) {
        let n = self.pending.len();
        if n == 0 {
            // Still fold carried counters (decoded-but-not-flushed
            // requests never exist; decode errors and syscalls can).
            if self.decode_errors > 0
                || self.requests > 0
                || self.recv_calls > 0
                || self.empty_recv_calls > 0
            {
                let mut stats = self.stats_slot.lock().unwrap_or_else(PoisonError::into_inner);
                stats.requests += self.requests;
                stats.decode_errors += self.decode_errors;
                stats.recv_calls += self.recv_calls;
                stats.empty_recv_calls += self.empty_recv_calls;
                self.requests = 0;
                self.decode_errors = 0;
                self.recv_calls = 0;
                self.empty_recv_calls = 0;
            }
            return;
        }
        let pin = self.plane.pin();
        let generation = pin.generation();
        let out = &mut self.out[..n];
        out.fill(None);
        pin.classify_batch(&self.keys, self.stride, out);

        // Encode the whole flush into one wire buffer, coalescing
        // consecutive same-destination frames into runs (one datagram /
        // one gathered stream range per run).
        self.wire.clear();
        self.runs.clear();
        let mut start = 0usize;
        while start < n {
            let mut end = start + 1;
            while end < n && self.pending[end].reply.same_dest(&self.pending[start].reply) {
                end += 1;
            }
            let byte_start = self.wire.len();
            for i in start..end {
                encode_response(&mut self.wire, self.pending[i].id, self.out[i], generation);
            }
            self.runs.push((start, end, byte_start, self.wire.len()));
            start = end;
        }
        let (send_calls, send_errors) = self.dispatch_runs();

        // Latency accounting + the debug oracle sample, under one stats
        // lock acquisition per flush.
        let done = Instant::now();
        {
            let mut stats = self.stats_slot.lock().unwrap_or_else(PoisonError::into_inner);
            stats.requests += self.requests;
            stats.decode_errors += self.decode_errors;
            stats.recv_calls += self.recv_calls;
            stats.empty_recv_calls += self.empty_recv_calls;
            stats.send_calls += send_calls;
            stats.send_errors += send_errors;
            self.requests = 0;
            self.decode_errors = 0;
            self.recv_calls = 0;
            self.empty_recv_calls = 0;
            stats.count_flush(cause, n.saturating_sub(send_errors as usize));
            for (i, p) in self.pending.iter().enumerate() {
                stats.latency.record_duration(done.duration_since(p.arrived));
                if self.validator.sample() {
                    let key = &self.keys[i * self.stride..(i + 1) * self.stride];
                    // The verdict was computed at the batch's pinned
                    // generation — exactly what the response advertised.
                    self.validator.check(key, self.out[i], generation, &mut stats);
                }
            }
        }
        self.keys.clear();
        self.pending.clear();
    }

    /// Pushes the encoded runs to the wire with batched syscalls:
    /// consecutive UDP runs on the same socket go out in one
    /// `sendmmsg(2)` (one datagram per run), consecutive TCP runs on the
    /// same stream in one gathered `writev(2)`. Returns
    /// `(send_calls, send_errors)` — syscalls used and requests whose
    /// response could not be delivered.
    fn dispatch_runs(&mut self) -> (u64, u64) {
        let mut send_calls = 0u64;
        let mut send_errors = 0u64;
        let mut r = 0usize;
        while r < self.runs.len() {
            let (req_start, ..) = self.runs[r];
            match &self.pending[req_start].reply {
                ReplyTo::Udp(sock, _) => {
                    let sock = sock.clone();
                    self.udp_out.clear();
                    self.udp_counts.clear();
                    while r < self.runs.len() {
                        let (rs, re, bs, be) = self.runs[r];
                        match &self.pending[rs].reply {
                            ReplyTo::Udp(s2, peer) if Arc::ptr_eq(&sock, s2) => {
                                self.udp_out.push((bs, be, *peer));
                                self.udp_counts.push((re - rs) as u64);
                                r += 1;
                            }
                            _ => break,
                        }
                    }
                    let counts = &self.udp_counts;
                    let mut failed = 0u64;
                    send_calls += sysio::send_udp_runs(
                        &sock,
                        &self.wire,
                        &self.udp_out,
                        &mut self.send_ring,
                        &mut |i| failed += counts.get(i).copied().unwrap_or(0),
                    );
                    send_errors += failed;
                }
                ReplyTo::Tcp(stream) => {
                    let stream = stream.clone();
                    self.tcp_out.clear();
                    let mut group_reqs = 0u64;
                    while r < self.runs.len() {
                        let (rs, re, bs, be) = self.runs[r];
                        match &self.pending[rs].reply {
                            ReplyTo::Tcp(s2) if Arc::ptr_eq(&stream, s2) => {
                                self.tcp_out.push((bs, be));
                                group_reqs += (re - rs) as u64;
                                r += 1;
                            }
                            _ => break,
                        }
                    }
                    match sysio::write_gathered(
                        &stream,
                        &self.wire,
                        &self.tcp_out,
                        &mut self.send_ring,
                    ) {
                        Ok(calls) => send_calls += calls,
                        Err(_) => send_errors += group_reqs,
                    }
                }
            }
        }
        (send_calls, send_errors)
    }
}
