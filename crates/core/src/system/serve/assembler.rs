//! Deadline micro-batching: coalesce in-flight requests into data-plane
//! batches, flushing at `max_batch` or when the *oldest* pending request
//! hits the deadline — whichever comes first.
//!
//! Each transport reader thread owns one assembler, so pushes are
//! lock-free; the only shared state is the stats slot (locked once per
//! flush) and the reply sockets. A flush pins exactly one generation from
//! the [`ServePlane`], classifies the whole batch against it, and writes
//! `(rule, priority, generation)` responses back, coalescing consecutive
//! frames to the same destination into one write.

use std::io::Write;
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use nm_common::classifier::MatchResult;
use nm_common::frame::encode_response;

use super::plane::{PinnedPlane, ServePlane};
use super::stats::{FlushCause, ServeStats};
use super::validator::Validator;

/// Where a response frame goes. UDP replies address the shared socket;
/// TCP replies write to the connection's stream (`&TcpStream: Write`, and
/// each connection is owned by exactly one reader thread, so writes never
/// interleave).
#[derive(Clone)]
pub enum ReplyTo {
    /// Reply via `send_to` on the (shared) serving socket.
    Udp(Arc<UdpSocket>, SocketAddr),
    /// Reply on the connection's own stream.
    Tcp(Arc<TcpStream>),
}

impl ReplyTo {
    /// True when both route to the same destination (coalescable).
    fn same_dest(&self, other: &ReplyTo) -> bool {
        match (self, other) {
            (ReplyTo::Udp(_, a), ReplyTo::Udp(_, b)) => a == b,
            (ReplyTo::Tcp(a), ReplyTo::Tcp(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    fn send(&self, bytes: &[u8]) -> std::io::Result<()> {
        match self {
            ReplyTo::Udp(sock, peer) => sock.send_to(bytes, peer).map(|_| ()),
            // The conn reader flips its fd nonblocking while assembling, so
            // a full send buffer surfaces as `WouldBlock` mid-write; spin
            // the write through — the peer is draining, and dropping a
            // partial frame would desynchronise the whole stream.
            ReplyTo::Tcp(stream) => {
                let mut off = 0;
                while off < bytes.len() {
                    match (&**stream).write(&bytes[off..]) {
                        Ok(0) => {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::WriteZero,
                                "peer stopped reading",
                            ))
                        }
                        Ok(n) => off += n,
                        Err(ref e)
                            if matches!(
                                e.kind(),
                                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                            ) =>
                        {
                            // Yield: the peer needs CPU to drain its side.
                            std::thread::yield_now();
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(e) => return Err(e),
                    }
                }
                Ok(())
            }
        }
    }
}

struct Pending {
    id: u64,
    arrived: Instant,
    reply: ReplyTo,
}

/// The per-reader batch assembler.
pub struct Assembler<P: ServePlane> {
    plane: Arc<P>,
    max_batch: usize,
    deadline: Duration,
    stride: usize,
    keys: Vec<u64>,
    pending: Vec<Pending>,
    out: Vec<Option<MatchResult>>,
    wire: Vec<u8>,
    validator: Validator,
    stats_slot: Arc<Mutex<ServeStats>>,
    /// Counters accumulated outside flushes (decode errors), folded into
    /// the slot on the next flush.
    pub decode_errors: u64,
    requests: u64,
}

impl<P: ServePlane> Assembler<P> {
    /// A fresh assembler flushing into `plane` and reporting into
    /// `stats_slot`.
    pub fn new(
        plane: Arc<P>,
        max_batch: usize,
        deadline: Duration,
        stride: usize,
        validator: Validator,
        stats_slot: Arc<Mutex<ServeStats>>,
    ) -> Self {
        let max_batch = max_batch.max(1);
        Self {
            plane,
            max_batch,
            deadline,
            stride: stride.max(1),
            keys: Vec::with_capacity(max_batch * stride.max(1)),
            pending: Vec::with_capacity(max_batch),
            out: vec![None; max_batch],
            wire: Vec::with_capacity(4096),
            validator,
            stats_slot,
            decode_errors: 0,
            requests: 0,
        }
    }

    /// Queues one request. `key` must be `stride` words (the transport
    /// validates widths). Returns `true` when the batch is now full and
    /// must be flushed before anything else is pushed.
    pub fn push(&mut self, id: u64, key: &[u64], reply: ReplyTo, arrived: Instant) -> bool {
        debug_assert_eq!(key.len(), self.stride);
        self.keys.extend_from_slice(key);
        self.pending.push(Pending { id, arrived, reply });
        self.requests += 1;
        self.pending.len() >= self.max_batch
    }

    /// Queued request count.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Time until the oldest pending request's deadline, `None` when empty.
    /// `Some(ZERO)` means the deadline already passed — flush now.
    pub fn time_left(&self, now: Instant) -> Option<Duration> {
        let oldest = self.pending.first()?.arrived;
        Some(self.deadline.saturating_sub(now.duration_since(oldest)))
    }

    /// Classifies and answers everything queued (no-op when empty): pin
    /// one generation, classify the whole batch against it, write the
    /// responses back, account latency per request.
    pub fn flush(&mut self, cause: FlushCause) {
        let n = self.pending.len();
        if n == 0 {
            // Still fold carried counters (decoded-but-not-flushed
            // requests never exist; decode errors can).
            if self.decode_errors > 0 || self.requests > 0 {
                let mut stats = self.stats_slot.lock().unwrap_or_else(PoisonError::into_inner);
                stats.requests += self.requests;
                stats.decode_errors += self.decode_errors;
                self.requests = 0;
                self.decode_errors = 0;
            }
            return;
        }
        let pin = self.plane.pin();
        let generation = pin.generation();
        let out = &mut self.out[..n];
        out.fill(None);
        pin.classify_batch(&self.keys, self.stride, out);

        // Write responses, coalescing consecutive same-destination frames
        // into one datagram / stream write.
        let mut send_errors = 0u64;
        let mut start = 0usize;
        while start < n {
            let mut end = start + 1;
            while end < n && self.pending[end].reply.same_dest(&self.pending[start].reply) {
                end += 1;
            }
            self.wire.clear();
            for i in start..end {
                encode_response(&mut self.wire, self.pending[i].id, self.out[i], generation);
            }
            if self.pending[start].reply.send(&self.wire).is_err() {
                send_errors += (end - start) as u64;
            }
            start = end;
        }

        // Latency accounting + the debug oracle sample, under one stats
        // lock acquisition per flush.
        let done = Instant::now();
        {
            let mut stats = self.stats_slot.lock().unwrap_or_else(PoisonError::into_inner);
            stats.requests += self.requests;
            stats.decode_errors += self.decode_errors;
            stats.send_errors += send_errors;
            self.requests = 0;
            self.decode_errors = 0;
            stats.count_flush(cause, n - send_errors as usize);
            for (i, p) in self.pending.iter().enumerate() {
                stats.latency.record_duration(done.duration_since(p.arrived));
                if self.validator.sample() {
                    let key = &self.keys[i * self.stride..(i + 1) * self.stride];
                    // The verdict was computed at the batch's pinned
                    // generation — exactly what the response advertised.
                    self.validator.check(key, self.out[i], generation, &mut stats);
                }
            }
        }
        self.keys.clear();
        self.pending.clear();
    }
}
