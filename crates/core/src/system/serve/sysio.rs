//! Batched socket syscalls for the serving data path.
//!
//! The wire front-end amortizes kernel crossings three ways, all built on
//! raw `libc`-style syscalls (the `runtime::topology` pattern — every
//! Linux Rust binary already links libc, so binding the symbols directly
//! keeps the workspace dependency-free):
//!
//! * **`SO_REUSEPORT` multi-bind** — [`bind_udp_reader_sockets`] gives
//!   every UDP reader thread a *private* fd bound to the same address.
//!   The kernel hashes each flow's 4-tuple to one socket, so readers get
//!   independent receive queues and never coordinate on fd modes.
//! * **`recvmmsg(2)`** — a [`RecvRing`] drains up to a whole batch of
//!   datagrams in one syscall. The `mmsghdr`/`iovec` arrays are owned by
//!   the ring and reused forever; the reader's hot loop never allocates.
//! * **`sendmmsg(2)` / `writev(2)`** — a flush's coalesced response runs
//!   go out in one vectored call per socket ([`send_udp_runs`],
//!   [`write_gathered`]) instead of one `sendto`/`write` per run.
//!
//! Non-Linux hosts (and Linux boxes where `SO_REUSEPORT` fails) fall back
//! to the portable one-datagram-per-call `std::net` path behind the same
//! interface, so the transport layer is written once.

use std::io;
use std::net::{SocketAddr, TcpStream, UdpSocket};

/// `sizeof(struct sockaddr_in6)` on Linux — the largest peer address the
/// rings store.
pub const SOCKADDR_LEN: usize = 28;

/// Receive buffer per ring slot. A UDP datagram caps at 64 KiB and the
/// client side coalesces request frames up to ~32 KiB per datagram;
/// sizing slots at the protocol maximum makes kernel truncation
/// impossible rather than merely unlikely.
pub const RECV_SLOT_LEN: usize = 64 * 1024;

#[cfg(target_os = "linux")]
mod raw {
    //! The raw syscall surface: `repr(C)` mirrors of the kernel structs
    //! plus the handful of constants the serve path needs. x86-64 and
    //! aarch64 Linux share these layouts.

    /// `struct iovec`.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct IoVec {
        pub base: *mut u8,
        pub len: usize,
    }

    /// `struct msghdr` (x86-64/aarch64 layout: `msg_iovlen` and
    /// `msg_controllen` are `size_t`, with implicit padding handled by
    /// `repr(C)`).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct MsgHdr {
        pub name: *mut u8,
        pub namelen: u32,
        pub iov: *mut IoVec,
        pub iovlen: usize,
        pub control: *mut u8,
        pub controllen: usize,
        pub flags: i32,
    }

    /// `struct mmsghdr`: one msghdr plus the kernel-written datagram
    /// length.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct MMsgHdr {
        pub hdr: MsgHdr,
        pub len: u32,
    }

    impl MMsgHdr {
        pub fn zeroed() -> Self {
            Self {
                hdr: MsgHdr {
                    name: std::ptr::null_mut(),
                    namelen: 0,
                    iov: std::ptr::null_mut(),
                    iovlen: 0,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            }
        }
    }

    pub const AF_INET: i32 = 2;
    pub const AF_INET6: i32 = 10;
    pub const SOCK_DGRAM: i32 = 2;
    pub const SOCK_CLOEXEC: i32 = 0o2000000;
    pub const SOL_SOCKET: i32 = 1;
    pub const SO_REUSEPORT: i32 = 15;
    pub const MSG_DONTWAIT: i32 = 0x40;
    pub const MSG_WAITFORONE: i32 = 0x10000;

    extern "C" {
        pub fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        pub fn setsockopt(fd: i32, level: i32, name: i32, value: *const u8, len: u32) -> i32;
        pub fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn recvmmsg(fd: i32, vec: *mut MMsgHdr, vlen: u32, flags: i32, timeout: *mut u8)
            -> i32;
        pub fn sendmmsg(fd: i32, vec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
        pub fn writev(fd: i32, iov: *const IoVec, iovcnt: i32) -> isize;
    }
}

// ---------------------------------------------------------------------------
// sockaddr codecs (Linux wire layout)
// ---------------------------------------------------------------------------

/// Encodes `addr` into Linux `sockaddr_in`/`sockaddr_in6` layout; returns
/// the populated byte length (16 for v4, 28 for v6).
#[cfg(target_os = "linux")]
fn encode_sockaddr(addr: &SocketAddr, out: &mut [u8; SOCKADDR_LEN]) -> u32 {
    out.fill(0);
    match addr {
        SocketAddr::V4(a) => {
            out[0..2].copy_from_slice(&(raw::AF_INET as u16).to_ne_bytes());
            out[2..4].copy_from_slice(&a.port().to_be_bytes());
            out[4..8].copy_from_slice(&a.ip().octets());
            16
        }
        SocketAddr::V6(a) => {
            out[0..2].copy_from_slice(&(raw::AF_INET6 as u16).to_ne_bytes());
            out[2..4].copy_from_slice(&a.port().to_be_bytes());
            out[4..8].copy_from_slice(&a.flowinfo().to_ne_bytes());
            out[8..24].copy_from_slice(&a.ip().octets());
            out[24..28].copy_from_slice(&a.scope_id().to_ne_bytes());
            28
        }
    }
}

/// Decodes a kernel-written `sockaddr` back into a [`SocketAddr`];
/// `None` for families the serve path does not speak.
#[cfg(target_os = "linux")]
fn decode_sockaddr(buf: &[u8; SOCKADDR_LEN], len: u32) -> Option<SocketAddr> {
    if (len as usize) < 16 {
        return None;
    }
    let family = u16::from_ne_bytes([buf[0], buf[1]]) as i32;
    let port = u16::from_be_bytes([buf[2], buf[3]]);
    match family {
        raw::AF_INET => {
            let ip = std::net::Ipv4Addr::new(buf[4], buf[5], buf[6], buf[7]);
            Some(SocketAddr::from((ip, port)))
        }
        raw::AF_INET6 if len as usize >= 28 => {
            let mut octets = [0u8; 16];
            octets.copy_from_slice(&buf[8..24]);
            let flowinfo = u32::from_ne_bytes([buf[4], buf[5], buf[6], buf[7]]);
            let scope = u32::from_ne_bytes([buf[24], buf[25], buf[26], buf[27]]);
            Some(SocketAddr::V6(std::net::SocketAddrV6::new(
                std::net::Ipv6Addr::from(octets),
                port,
                flowinfo,
                scope,
            )))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// SO_REUSEPORT multi-bind
// ---------------------------------------------------------------------------

/// Binds one UDP socket per reader to the same address via `SO_REUSEPORT`,
/// so each reader owns a private fd with its own kernel receive queue.
///
/// Returns `n` sockets on success. When `n <= 1`, `SO_REUSEPORT` is
/// unavailable (non-Linux), or any bind fails, falls back to a single
/// plainly-bound socket — the caller shares it across readers exactly like
/// the pre-REUSEPORT front-end did.
pub fn bind_udp_reader_sockets(listen: SocketAddr, n: usize) -> io::Result<Vec<UdpSocket>> {
    if n > 1 {
        if let Ok(first) = bind_reuseport(listen) {
            // Port 0 resolves on the first bind; siblings must join the
            // *resolved* address or they'd each get their own port.
            if let Ok(resolved) = first.local_addr() {
                let mut socks = Vec::with_capacity(n);
                socks.push(first);
                while socks.len() < n {
                    match bind_reuseport(resolved) {
                        Ok(s) => socks.push(s),
                        Err(_) => break,
                    }
                }
                if socks.len() == n {
                    return Ok(socks);
                }
            }
        }
    }
    Ok(vec![UdpSocket::bind(listen)?])
}

/// One `SO_REUSEPORT` UDP socket bound to `addr`.
#[cfg(target_os = "linux")]
fn bind_reuseport(addr: SocketAddr) -> io::Result<UdpSocket> {
    use std::os::fd::FromRawFd;

    let family = match addr {
        SocketAddr::V4(_) => raw::AF_INET,
        SocketAddr::V6(_) => raw::AF_INET6,
    };
    // SAFETY: plain fd-creating syscall with no pointer arguments.
    let fd = unsafe { raw::socket(family, raw::SOCK_DGRAM | raw::SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    let fail = |fd: i32| -> io::Error {
        let e = io::Error::last_os_error();
        // SAFETY: `fd` came from `socket` above and is closed exactly once
        // on this error path before ownership could move elsewhere.
        unsafe { raw::close(fd) };
        e
    };
    let one: i32 = 1;
    // SAFETY: the kernel reads exactly 4 bytes from `&one`, which outlives
    // the call.
    let rc = unsafe {
        raw::setsockopt(
            fd,
            raw::SOL_SOCKET,
            raw::SO_REUSEPORT,
            (&one as *const i32).cast(),
            std::mem::size_of::<i32>() as u32,
        )
    };
    if rc != 0 {
        return Err(fail(fd));
    }
    let mut sa = [0u8; SOCKADDR_LEN];
    let sa_len = encode_sockaddr(&addr, &mut sa);
    // SAFETY: `sa` holds a valid sockaddr of `sa_len` bytes and outlives
    // the call; the kernel only reads it.
    let rc = unsafe { raw::bind(fd, sa.as_ptr(), sa_len) };
    if rc != 0 {
        return Err(fail(fd));
    }
    // SAFETY: `fd` is a freshly created, successfully bound UDP socket this
    // function exclusively owns; `UdpSocket` takes over closing it.
    Ok(unsafe { UdpSocket::from_raw_fd(fd) })
}

#[cfg(not(target_os = "linux"))]
fn bind_reuseport(_addr: SocketAddr) -> io::Result<UdpSocket> {
    Err(io::Error::new(io::ErrorKind::Unsupported, "SO_REUSEPORT path is Linux-only"))
}

// ---------------------------------------------------------------------------
// RecvRing — batched datagram receive
// ---------------------------------------------------------------------------

/// Reader-owned receive arena: `slots` datagram buffers plus the
/// `mmsghdr`/`iovec` arrays `recvmmsg(2)` scatters into. Everything is
/// allocated once at reader start and reused for every syscall, so the
/// reader's hot loop never touches the allocator.
pub struct RecvRing {
    slots: usize,
    bufs: Vec<u8>,
    lens: Vec<usize>,
    peers: Vec<Option<SocketAddr>>,
    #[cfg(target_os = "linux")]
    addrs: Vec<[u8; SOCKADDR_LEN]>,
    #[cfg(target_os = "linux")]
    iovecs: Vec<raw::IoVec>,
    #[cfg(target_os = "linux")]
    hdrs: Vec<raw::MMsgHdr>,
}

impl RecvRing {
    /// A ring with `slots` receive buffers of [`RECV_SLOT_LEN`] bytes.
    pub fn new(slots: usize) -> Self {
        let slots = slots.max(1);
        Self {
            slots,
            bufs: vec![0u8; slots * RECV_SLOT_LEN],
            lens: vec![0; slots],
            peers: vec![None; slots],
            #[cfg(target_os = "linux")]
            addrs: vec![[0u8; SOCKADDR_LEN]; slots],
            #[cfg(target_os = "linux")]
            iovecs: vec![raw::IoVec { base: std::ptr::null_mut(), len: 0 }; slots],
            #[cfg(target_os = "linux")]
            hdrs: vec![raw::MMsgHdr::zeroed(); slots],
        }
    }

    /// Receives up to `slots` datagrams in one syscall.
    ///
    /// `block = true` waits for the first datagram (bounded by the fd's
    /// `SO_RCVTIMEO`, so shutdown checks stay live) and then grabs whatever
    /// else is already queued; `block = false` never waits. Timeouts and
    /// empty queues surface as `WouldBlock`/`TimedOut` errors exactly like
    /// `recv_from`.
    #[cfg(target_os = "linux")]
    pub fn recv(&mut self, sock: &UdpSocket, block: bool) -> io::Result<usize> {
        use std::os::fd::AsRawFd;

        self.rearm();
        // MSG_WAITFORONE: block for the first datagram only (honouring
        // SO_RCVTIMEO), then drain nonblocking. The timeout *argument* is
        // deliberately null — recvmmsg only checks it between datagrams,
        // so the fd timeout is the reliable idle bound.
        let flags = if block { raw::MSG_WAITFORONE } else { raw::MSG_DONTWAIT };
        // SAFETY: `rearm` pointed every mmsghdr at iovec/name/buffer
        // storage owned by `self` that outlives the call, and `vlen` equals
        // the header array length, so the kernel writes only memory we own.
        let got = unsafe {
            raw::recvmmsg(
                sock.as_raw_fd(),
                self.hdrs.as_mut_ptr(),
                self.slots as u32,
                flags,
                std::ptr::null_mut(),
            )
        };
        if got < 0 {
            return Err(io::Error::last_os_error());
        }
        let got = (got as usize).min(self.slots);
        for i in 0..got {
            self.lens[i] = (self.hdrs[i].len as usize).min(RECV_SLOT_LEN);
            self.peers[i] = decode_sockaddr(&self.addrs[i], self.hdrs[i].hdr.namelen);
        }
        Ok(got)
    }

    /// Portable fallback: one `recv_from` per call behind the same
    /// interface (toggling nonblocking for `block = false` polls).
    #[cfg(not(target_os = "linux"))]
    pub fn recv(&mut self, sock: &UdpSocket, block: bool) -> io::Result<usize> {
        if !block {
            sock.set_nonblocking(true)?;
        }
        let r = sock.recv_from(&mut self.bufs[..RECV_SLOT_LEN]);
        if !block {
            sock.set_nonblocking(false).ok();
        }
        let (n, peer) = r?;
        self.lens[0] = n;
        self.peers[0] = Some(peer);
        Ok(1)
    }

    /// Datagram `i` of the last [`RecvRing::recv`]: its bytes and decoded
    /// peer address (`None` when the kernel reported an address family the
    /// serve path does not speak).
    pub fn datagram(&self, i: usize) -> (&[u8], Option<SocketAddr>) {
        if i >= self.slots {
            return (&[], None);
        }
        let start = i * RECV_SLOT_LEN;
        (&self.bufs[start..start + self.lens[i]], self.peers[i])
    }

    /// Re-points every header at the ring's own storage. Pointers are
    /// recomputed before each syscall (cheap stores) so Vec reallocation
    /// can never leave a header dangling — the arrays themselves are
    /// allocated once in `new` and never resized.
    #[cfg(target_os = "linux")]
    fn rearm(&mut self) {
        let buf_base = self.bufs.as_mut_ptr();
        let iov_base = self.iovecs.as_mut_ptr();
        for i in 0..self.slots {
            self.iovecs[i] =
                raw::IoVec { base: buf_base.wrapping_add(i * RECV_SLOT_LEN), len: RECV_SLOT_LEN };
            self.hdrs[i] = raw::MMsgHdr {
                hdr: raw::MsgHdr {
                    name: self.addrs[i].as_mut_ptr(),
                    namelen: SOCKADDR_LEN as u32,
                    iov: iov_base.wrapping_add(i),
                    iovlen: 1,
                    control: std::ptr::null_mut(),
                    controllen: 0,
                    flags: 0,
                },
                len: 0,
            };
        }
    }
}

// ---------------------------------------------------------------------------
// SendRing — batched response send
// ---------------------------------------------------------------------------

/// Flush-owned send arena: the `mmsghdr`/`iovec`/`sockaddr` arrays
/// `sendmmsg(2)` and `writev(2)` gather from. Sized once for the
/// assembler's `max_batch` (a flush can never produce more runs than
/// requests) and reused for every flush.
pub struct SendRing {
    cap: usize,
    #[cfg(target_os = "linux")]
    addrs: Vec<[u8; SOCKADDR_LEN]>,
    #[cfg(target_os = "linux")]
    addr_lens: Vec<u32>,
    #[cfg(target_os = "linux")]
    iovecs: Vec<raw::IoVec>,
    #[cfg(target_os = "linux")]
    hdrs: Vec<raw::MMsgHdr>,
}

impl SendRing {
    /// A ring able to carry `cap` runs per syscall.
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            cap,
            #[cfg(target_os = "linux")]
            addrs: vec![[0u8; SOCKADDR_LEN]; cap],
            #[cfg(target_os = "linux")]
            addr_lens: vec![0; cap],
            #[cfg(target_os = "linux")]
            iovecs: vec![raw::IoVec { base: std::ptr::null_mut(), len: 0 }; cap],
            #[cfg(target_os = "linux")]
            hdrs: vec![raw::MMsgHdr::zeroed(); cap],
        }
    }
}

/// Sends `runs` — byte ranges of `wire`, one datagram each — to their
/// destinations in as few `sendmmsg(2)` calls as possible on `sock`.
///
/// Returns the syscall count. Runs the kernel rejects are reported through
/// `on_fail(run_index)` and skipped; the rest of the batch still goes out.
pub fn send_udp_runs(
    sock: &UdpSocket,
    wire: &[u8],
    runs: &[(usize, usize, SocketAddr)],
    ring: &mut SendRing,
    on_fail: &mut dyn FnMut(usize),
) -> u64 {
    let mut calls = 0u64;
    let mut done = 0usize;
    while done < runs.len() {
        let chunk = &runs[done..(done + ring.cap).min(runs.len())];
        let (used, sent) = send_udp_chunk(sock, wire, chunk, ring, done, on_fail);
        calls += used;
        done += sent;
    }
    calls
}

#[cfg(target_os = "linux")]
fn send_udp_chunk(
    sock: &UdpSocket,
    wire: &[u8],
    chunk: &[(usize, usize, SocketAddr)],
    ring: &mut SendRing,
    base_index: usize,
    on_fail: &mut dyn FnMut(usize),
) -> (u64, usize) {
    use std::os::fd::AsRawFd;

    let n = chunk.len().min(ring.cap);
    for (i, &(start, end, dest)) in chunk.iter().take(n).enumerate() {
        let range = wire.get(start..end).unwrap_or(&[]);
        // sendmmsg never writes through iov_base / msg_name; the mut casts
        // exist only because the C struct is shared with the receive path.
        ring.iovecs[i] = raw::IoVec { base: range.as_ptr() as *mut u8, len: range.len() };
        ring.addr_lens[i] = encode_sockaddr(&dest, &mut ring.addrs[i]);
        ring.hdrs[i] = raw::MMsgHdr {
            hdr: raw::MsgHdr {
                name: ring.addrs[i].as_mut_ptr(),
                namelen: ring.addr_lens[i],
                iov: ring.iovecs.as_mut_ptr().wrapping_add(i),
                iovlen: 1,
                control: std::ptr::null_mut(),
                controllen: 0,
                flags: 0,
            },
            len: 0,
        };
    }
    let mut calls = 0u64;
    let mut sent = 0usize;
    while sent < n {
        // SAFETY: headers `sent..n` point at ring- and wire-owned memory
        // that outlives the call; `vlen` matches the remaining header
        // count. The kernel reads the payloads and writes only `len`.
        let r = unsafe {
            raw::sendmmsg(
                sock.as_raw_fd(),
                ring.hdrs.as_mut_ptr().wrapping_add(sent),
                (n - sent) as u32,
                0,
            )
        };
        calls += 1;
        if r > 0 {
            sent += (r as usize).min(n - sent);
            continue;
        }
        let e = io::Error::last_os_error();
        match e.kind() {
            io::ErrorKind::Interrupted => {}
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => {
                // Full send buffer: the peer needs CPU to drain its side.
                std::thread::yield_now();
            }
            _ => {
                // The error pertains to the first unsent message; drop that
                // run and keep the rest of the batch moving.
                on_fail(base_index + sent);
                sent += 1;
            }
        }
    }
    (calls, n)
}

#[cfg(not(target_os = "linux"))]
fn send_udp_chunk(
    sock: &UdpSocket,
    wire: &[u8],
    chunk: &[(usize, usize, SocketAddr)],
    _ring: &mut SendRing,
    base_index: usize,
    on_fail: &mut dyn FnMut(usize),
) -> (u64, usize) {
    let mut calls = 0u64;
    for (i, &(start, end, dest)) in chunk.iter().enumerate() {
        let range = wire.get(start..end).unwrap_or(&[]);
        calls += 1;
        if sock.send_to(range, dest).is_err() {
            on_fail(base_index + i);
        }
    }
    (calls, chunk.len())
}

// ---------------------------------------------------------------------------
// Gathered TCP writes
// ---------------------------------------------------------------------------

/// Writes `runs` (byte ranges of `wire`) to the stream as one gathered
/// `writev(2)`, spinning through partial writes, `WouldBlock` (yield — the
/// conn reader flips its fd nonblocking while assembling) and `EINTR`.
/// Returns the syscall count; a peer that stopped reading is `WriteZero`.
#[cfg(target_os = "linux")]
pub fn write_gathered(
    stream: &TcpStream,
    wire: &[u8],
    runs: &[(usize, usize)],
    ring: &mut SendRing,
) -> io::Result<u64> {
    use std::os::fd::AsRawFd;

    let total: usize = runs.iter().map(|&(s, e)| e.saturating_sub(s)).sum();
    let mut written = 0usize;
    let mut calls = 0u64;
    while written < total {
        // Rebuild the iovec array past what previous partial writes
        // consumed: skip fully-written runs, trim the first partial one.
        let mut iovcnt = 0usize;
        let mut skip = written;
        for &(s, e) in runs {
            let len = e.saturating_sub(s);
            if skip >= len {
                skip -= len;
                continue;
            }
            let range = wire.get(s + skip..e).unwrap_or(&[]);
            skip = 0;
            if range.is_empty() {
                continue;
            }
            // writev never writes through iov_base; the cast only satisfies
            // the shared C struct.
            ring.iovecs[iovcnt] = raw::IoVec { base: range.as_ptr() as *mut u8, len: range.len() };
            iovcnt += 1;
            if iovcnt == ring.cap {
                break;
            }
        }
        if iovcnt == 0 {
            break;
        }
        // SAFETY: the first `iovcnt` iovecs point into `wire`, which
        // outlives the call; the kernel only reads them.
        let r = unsafe { raw::writev(stream.as_raw_fd(), ring.iovecs.as_ptr(), iovcnt as i32) };
        calls += 1;
        if r > 0 {
            written += r as usize;
            continue;
        }
        if r == 0 {
            return Err(io::Error::new(io::ErrorKind::WriteZero, "peer stopped reading"));
        }
        let e = io::Error::last_os_error();
        match e.kind() {
            io::ErrorKind::Interrupted => {}
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => std::thread::yield_now(),
            _ => return Err(e),
        }
    }
    Ok(calls)
}

/// Portable fallback: the classic spin-the-write-through loop, one `write`
/// per contiguous range.
#[cfg(not(target_os = "linux"))]
pub fn write_gathered(
    stream: &TcpStream,
    wire: &[u8],
    runs: &[(usize, usize)],
    _ring: &mut SendRing,
) -> io::Result<u64> {
    use std::io::Write;

    let mut calls = 0u64;
    for &(s, e) in runs {
        let bytes = wire.get(s..e).unwrap_or(&[]);
        let mut off = 0;
        while off < bytes.len() {
            match (&*stream).write(&bytes[off..]) {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "peer stopped reading"))
                }
                Ok(n) => {
                    calls += 1;
                    off += n;
                }
                Err(ref e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    std::thread::yield_now();
                }
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
    Ok(calls)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(target_os = "linux")]
    #[test]
    fn sockaddr_roundtrip_v4_and_v6() {
        let mut buf = [0u8; SOCKADDR_LEN];
        let v4: SocketAddr = "127.0.0.1:8080".parse().unwrap();
        let len = encode_sockaddr(&v4, &mut buf);
        assert_eq!(len, 16);
        assert_eq!(decode_sockaddr(&buf, len), Some(v4));

        let v6: SocketAddr = "[::1]:9090".parse().unwrap();
        let len = encode_sockaddr(&v6, &mut buf);
        assert_eq!(len, 28);
        assert_eq!(decode_sockaddr(&buf, len), Some(v6));

        assert_eq!(decode_sockaddr(&buf, 4), None);
    }

    #[test]
    fn reuseport_binds_n_private_sockets_to_one_port() {
        let listen: SocketAddr = "127.0.0.1:0".parse().unwrap();
        let socks = bind_udp_reader_sockets(listen, 4).unwrap();
        if cfg!(target_os = "linux") {
            assert_eq!(socks.len(), 4);
            let addr = socks[0].local_addr().unwrap();
            for s in &socks {
                assert_eq!(s.local_addr().unwrap(), addr);
            }
        } else {
            assert_eq!(socks.len(), 1);
        }
    }

    #[test]
    fn recv_ring_drains_multiple_datagrams_in_one_call() {
        let server = UdpSocket::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let client = UdpSocket::bind("127.0.0.1:0").unwrap();
        for i in 0..5u8 {
            client.send_to(&[i; 3], addr).unwrap();
        }
        server.set_read_timeout(Some(std::time::Duration::from_secs(2))).unwrap();
        let mut ring = RecvRing::new(8);
        let mut seen = 0;
        while seen < 5 {
            let got = ring.recv(&server, true).unwrap();
            assert!(got >= 1);
            for i in 0..got {
                let (bytes, peer) = ring.datagram(i);
                assert_eq!(bytes.len(), 3);
                assert_eq!(peer, Some(client.local_addr().unwrap()));
                seen += 1;
            }
        }
    }

    #[test]
    fn send_udp_runs_delivers_each_run_as_a_datagram() {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let dest = rx.local_addr().unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let wire = b"aaaabbbbbbcc";
        let runs = [(0usize, 4usize, dest), (4, 10, dest), (10, 12, dest)];
        let mut ring = SendRing::new(2); // force chunking across calls
        let mut failed = Vec::new();
        let calls = send_udp_runs(&tx, wire, &runs, &mut ring, &mut |i| failed.push(i));
        assert!(failed.is_empty());
        assert!(calls >= 1);
        rx.set_read_timeout(Some(std::time::Duration::from_secs(2))).unwrap();
        let mut buf = [0u8; 64];
        let mut lens = Vec::new();
        for _ in 0..3 {
            let (n, _) = rx.recv_from(&mut buf).unwrap();
            lens.push(n);
        }
        lens.sort_unstable();
        assert_eq!(lens, vec![2, 4, 6]);
    }

    #[test]
    fn write_gathered_delivers_every_range_in_order() {
        use std::io::Read;

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let tx = TcpStream::connect(addr).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        let wire = b"xxhelloyy_world";
        let runs = [(2usize, 7usize), (10, 15)];
        let mut ring = SendRing::new(4);
        let calls = write_gathered(&tx, wire, &runs, &mut ring).unwrap();
        assert!(calls >= 1);
        drop(tx);
        let mut got = Vec::new();
        rx.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"helloworld");
    }
}
