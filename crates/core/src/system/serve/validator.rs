//! The in-loop oracle validator (debug builds).
//!
//! The Chameleon-style validating-controller shape: whoever drives updates
//! (the CLI, a test, a bench) also publishes a [`LinearSearch`] built from
//! the rule truth *as of each generation* into an [`OracleTable`]. The
//! serve path then samples one in N served requests and replays the key
//! against the oracle **at the generation the batch was pinned to**. Any
//! disagreement is a torn generation or a data-plane bug and is counted in
//! [`super::stats::ServeStats::mismatches`], which tests assert to be zero.
//!
//! The table keeps a bounded window of recent generations; a sampled
//! request whose generation has already been evicted (or was never
//! published) is counted as skipped, not as a failure — the validator can
//! only vouch for what it has a truth for.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

use nm_common::classifier::{Classifier, MatchResult};
use nm_common::update::Generation;
use nm_common::LinearSearch;

use super::stats::ServeStats;

/// Generation-indexed [`LinearSearch`] oracles, bounded to the most recent
/// window so a long-running service does not accumulate truth forever.
pub struct OracleTable {
    keep: usize,
    inner: Mutex<VecDeque<(Generation, Arc<LinearSearch>)>>,
}

impl OracleTable {
    /// A table retaining the `keep` most recently published generations.
    pub fn new(keep: usize) -> Self {
        Self { keep: keep.max(1), inner: Mutex::new(VecDeque::new()) }
    }

    /// Publishes the truth for `generation`. Re-publishing a generation
    /// replaces the previous entry.
    pub fn publish(&self, generation: Generation, oracle: LinearSearch) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.retain(|(g, _)| *g != generation);
        inner.push_back((generation, Arc::new(oracle)));
        while inner.len() > self.keep {
            inner.pop_front();
        }
    }

    /// The oracle for `generation`, if still retained.
    pub fn get(&self, generation: Generation) -> Option<Arc<LinearSearch>> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .find(|(g, _)| *g == generation)
            .map(|(_, o)| o.clone())
    }

    /// Published generations currently retained (oldest first).
    pub fn generations(&self) -> Vec<Generation> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).iter().map(|(g, _)| *g).collect()
    }
}

/// Per-assembler sampling validator. `every = 0` disables it entirely.
pub struct Validator {
    table: Arc<OracleTable>,
    every: u64,
    seen: u64,
}

impl Validator {
    /// Validates one in `every` served requests against `table`.
    pub fn new(table: Arc<OracleTable>, every: u64) -> Self {
        Self { table, every, seen: 0 }
    }

    /// Whether the next served request is in the sample.
    #[inline]
    pub fn sample(&mut self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.seen += 1;
        self.seen % self.every == 0
    }

    /// Replays `key` against the oracle at `generation` and compares with
    /// the verdict the data plane produced, updating `stats`.
    pub fn check(
        &self,
        key: &[u64],
        verdict: Option<MatchResult>,
        generation: Generation,
        stats: &mut ServeStats,
    ) {
        match self.table.get(generation) {
            None => stats.oracle_skipped += 1,
            Some(oracle) => {
                stats.validated += 1;
                if oracle.classify(key) != verdict {
                    stats.mismatches += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_common::{FieldsSpec, FiveTuple, RuleSet};

    fn oracle(n: u16, prio_base: u32) -> LinearSearch {
        let rules: Vec<_> = (0..n)
            .map(|i| {
                FiveTuple::new()
                    .dst_port_range(i * 10, i * 10 + 9)
                    .into_rule(i as u32, prio_base + i as u32)
            })
            .collect();
        let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
        LinearSearch::from_rules(set.rules().to_vec())
    }

    #[test]
    fn table_is_bounded_and_generation_indexed() {
        let t = OracleTable::new(2);
        t.publish(1, oracle(4, 0));
        t.publish(2, oracle(4, 100));
        t.publish(3, oracle(4, 200));
        assert_eq!(t.generations(), vec![2, 3]);
        assert!(t.get(1).is_none(), "evicted");
        let key = [0u64, 0, 0, 15, 0]; // dst_port 15 → rule 1
                                       // Gen 2 and gen 3 oracles disagree on priority — the table must
                                       // hand back the right truth per generation.
        assert_eq!(t.get(2).unwrap().classify(&key).unwrap().priority, 101);
        assert_eq!(t.get(3).unwrap().classify(&key).unwrap().priority, 201);
    }

    #[test]
    fn validator_counts_mismatches_and_skips() {
        let t = Arc::new(OracleTable::new(4));
        t.publish(7, oracle(4, 0));
        let mut v = Validator::new(t, 1);
        let mut stats = ServeStats::new();
        let key = [0u64, 0, 0, 15, 0]; // dst_port 15 → rule 1, priority 1
        assert!(v.sample());
        // Correct verdict for gen 7.
        v.check(&key, Some(MatchResult::new(1, 1)), 7, &mut stats);
        // Wrong verdict for gen 7.
        v.check(&key, None, 7, &mut stats);
        // Unknown generation: skipped, not failed.
        v.check(&key, None, 99, &mut stats);
        assert_eq!((stats.validated, stats.mismatches, stats.oracle_skipped), (2, 1, 1));
    }

    #[test]
    fn sampling_rate_is_one_in_n() {
        let t = Arc::new(OracleTable::new(1));
        let mut v = Validator::new(t, 8);
        let picked = (0..64).filter(|_| v.sample()).count();
        assert_eq!(picked, 8);
        let mut off = Validator::new(Arc::new(OracleTable::new(1)), 0);
        assert!((0..64).all(|_| !off.sample()));
    }
}
