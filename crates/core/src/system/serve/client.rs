//! A small blocking client for the serve protocol — shared by the
//! integration tests, the CLI's loopback load drivers and `serve_bench`.
//!
//! One client owns one socket. UDP responses arrive as datagrams carrying
//! one or more frames; TCP responses are a byte stream the client
//! reassembles. Either way [`ServeClient::recv`] hands back every frame
//! one read produced, and [`ServeClient::call`] is the closed-loop
//! convenience: send one request, wait for its echo.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream, UdpSocket};
use std::time::Duration;

use nm_common::frame::{decode_response, encode_request, ResponseFrame};

enum Inner {
    Udp(UdpSocket),
    Tcp { stream: TcpStream, carry: Vec<u8> },
}

/// Blocking protocol client over UDP or TCP.
pub struct ServeClient {
    inner: Inner,
    wire: Vec<u8>,
    recv_buf: Vec<u8>,
}

impl ServeClient {
    /// A UDP client talking to `server` from an ephemeral local port.
    pub fn udp(server: SocketAddr) -> std::io::Result<Self> {
        let sock = UdpSocket::bind(("127.0.0.1", 0))?;
        sock.connect(server)?;
        Ok(Self { inner: Inner::Udp(sock), wire: Vec::new(), recv_buf: vec![0; 64 * 1024] })
    }

    /// A TCP client connected to `server`.
    pub fn tcp(server: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(server)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            inner: Inner::Tcp { stream, carry: Vec::new() },
            wire: Vec::new(),
            recv_buf: vec![0; 64 * 1024],
        })
    }

    /// Sends one request frame.
    pub fn send(&mut self, id: u64, key: &[u64]) -> std::io::Result<()> {
        self.wire.clear();
        encode_request(&mut self.wire, id, key);
        match &mut self.inner {
            Inner::Udp(sock) => sock.send(&self.wire).map(|_| ()),
            Inner::Tcp { stream, .. } => stream.write_all(&self.wire),
        }
    }

    /// Receives whatever one socket read produces: at least one response
    /// frame, or an empty vec on a clean TCP EOF. Blocks up to `timeout`
    /// (`None` = forever); a timeout surfaces as `WouldBlock`/`TimedOut`.
    pub fn recv(&mut self, timeout: Option<Duration>) -> std::io::Result<Vec<ResponseFrame>> {
        let mut out = Vec::new();
        loop {
            match &mut self.inner {
                Inner::Udp(sock) => {
                    sock.set_read_timeout(timeout)?;
                    let n = sock.recv(&mut self.recv_buf)?;
                    let mut off = 0;
                    while off < n {
                        match decode_response(&self.recv_buf[off..n]) {
                            Ok(Some((frame, used))) => {
                                out.push(frame);
                                off += used;
                            }
                            _ => {
                                return Err(std::io::Error::new(
                                    std::io::ErrorKind::InvalidData,
                                    "malformed response datagram",
                                ))
                            }
                        }
                    }
                }
                Inner::Tcp { stream, carry } => {
                    stream.set_read_timeout(timeout)?;
                    let n = stream.read(&mut self.recv_buf)?;
                    if n == 0 {
                        return Ok(out);
                    }
                    carry.extend_from_slice(&self.recv_buf[..n]);
                    let mut off = 0;
                    loop {
                        match decode_response(&carry[off..]) {
                            Ok(Some((frame, used))) => {
                                out.push(frame);
                                off += used;
                            }
                            Ok(None) => break,
                            Err(_) => {
                                return Err(std::io::Error::new(
                                    std::io::ErrorKind::InvalidData,
                                    "malformed response stream",
                                ))
                            }
                        }
                    }
                    carry.drain(..off);
                }
            }
            if !out.is_empty() {
                return Ok(out);
            }
            // A TCP read can end mid-frame; keep reading until at least
            // one whole frame lands (the timeout still bounds each read).
        }
    }

    /// Sends a window of requests — key `i` of the flat `keys` buffer
    /// (`stride` words each) goes out with id `first_id + i`. UDP frames
    /// coalesce into datagrams capped well under the 64KB limit; TCP is
    /// one buffered write. Returns the number of requests sent.
    pub fn send_batch(
        &mut self,
        first_id: u64,
        keys: &[u64],
        stride: usize,
    ) -> std::io::Result<usize> {
        let n = keys.len() / stride.max(1);
        self.wire.clear();
        for i in 0..n {
            encode_request(
                &mut self.wire,
                first_id + i as u64,
                &keys[i * stride..(i + 1) * stride],
            );
            if self.wire.len() >= 32 * 1024 || i + 1 == n {
                match &mut self.inner {
                    Inner::Udp(sock) => {
                        sock.send(&self.wire)?;
                    }
                    Inner::Tcp { stream, .. } => stream.write_all(&self.wire)?,
                }
                self.wire.clear();
            }
        }
        Ok(n)
    }

    /// Closed-loop convenience: send `key` as request `id` and block until
    /// that id's response arrives (discarding any other ids, which cannot
    /// happen on a private client socket).
    pub fn call(
        &mut self,
        id: u64,
        key: &[u64],
        timeout: Duration,
    ) -> std::io::Result<ResponseFrame> {
        self.send(id, key)?;
        loop {
            for frame in self.recv(Some(timeout))? {
                if frame.id == id {
                    return Ok(frame);
                }
            }
        }
    }
}
