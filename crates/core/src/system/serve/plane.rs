//! The data-plane abstraction the serve front-end batches into.
//!
//! A flushed batch must classify against **one** pinned generation — that
//! is the coherence contract the response `generation` field advertises
//! and the oracle validator checks. [`ServePlane::pin`] captures whatever
//! "one generation" means for the engine: a snapshot `Arc` for a plain
//! [`ClassifierHandle`], a [`ShardEpoch`] for the PR 5 sharded handle.

use std::sync::Arc;

use nm_common::classifier::{Classifier, MatchResult};
use nm_common::update::Generation;

use crate::system::handle::{ClassifierHandle, NmSnapshot};
use crate::system::runtime::sharded::{ShardEpoch, ShardedHandle};

/// A batched data plane the serve front-end can flush into.
pub trait ServePlane: Send + Sync + 'static {
    /// An owning, immutable view of one published generation.
    type Pin: PinnedPlane;

    /// Pins the currently published generation (never blocks).
    fn pin(&self) -> Self::Pin;
}

/// One pinned generation of a [`ServePlane`].
pub trait PinnedPlane: Send {
    /// The generation every verdict from this pin is stamped with.
    fn generation(&self) -> Generation;

    /// Classifies `keys` (flat, `stride` words per key) into `out`.
    fn classify_batch(&self, keys: &[u64], stride: usize, out: &mut [Option<MatchResult>]);
}

impl<R> ServePlane for ClassifierHandle<R>
where
    R: Classifier + Send + Sync + 'static,
{
    type Pin = Arc<NmSnapshot<R>>;

    fn pin(&self) -> Self::Pin {
        self.snapshot()
    }
}

impl<R> PinnedPlane for Arc<NmSnapshot<R>>
where
    R: Classifier + Send + Sync,
{
    fn generation(&self) -> Generation {
        NmSnapshot::generation(self)
    }

    fn classify_batch(&self, keys: &[u64], stride: usize, out: &mut [Option<MatchResult>]) {
        Classifier::classify_batch(&**self, keys, stride, out);
    }
}

/// Pin over a [`ShardedHandle`]: the epoch fixes every shard's snapshot,
/// the handle clone carries the (immutable) steering plan.
pub struct ShardedPin<R: Classifier> {
    handle: ShardedHandle<R>,
    epoch: Arc<ShardEpoch<R>>,
}

impl<R> PinnedPlane for ShardedPin<R>
where
    R: Classifier + Send + Sync + 'static,
{
    fn generation(&self) -> Generation {
        self.epoch.generation()
    }

    fn classify_batch(&self, keys: &[u64], stride: usize, out: &mut [Option<MatchResult>]) {
        self.handle.classify_batch_at(&self.epoch, keys, stride, out);
    }
}

impl<R> ServePlane for ShardedHandle<R>
where
    R: Classifier + Send + Sync + 'static,
{
    type Pin = ShardedPin<R>;

    fn pin(&self) -> Self::Pin {
        ShardedPin { handle: self.clone(), epoch: self.epoch() }
    }
}
