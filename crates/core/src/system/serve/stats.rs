//! Counters and the service-latency histogram for the serve front-end.

use nm_common::LatencyHistogram;

/// What kind of reader thread a stats slot belongs to — UDP readers own a
/// (usually private `SO_REUSEPORT`) datagram socket, TCP readers own one
/// connection. Per-reader reporting filters on this: a skewed UDP reader
/// is a flow-steering bug, a skewed TCP reader is just an idle connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReaderKind {
    /// A datagram reader (one per `ServeConfig::udp_readers`).
    Udp,
    /// A per-connection stream reader.
    Tcp,
}

/// Why an assembler flushed a batch into the data plane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushCause {
    /// The batch reached `max_batch`.
    Full,
    /// The oldest pending request hit the micro-batching deadline.
    Deadline,
    /// Shutdown / connection close drained the remainder.
    Drain,
}

/// Aggregated serving statistics. Each reader thread owns one behind a
/// mutex it touches once per flush; [`crate::system::serve::Server::stats`]
/// folds the per-thread instances together with [`ServeStats::merge`].
#[derive(Clone, Debug, Default)]
pub struct ServeStats {
    /// Requests decoded off the wire.
    pub requests: u64,
    /// Responses written back (requests minus send failures).
    pub responses: u64,
    /// Batches flushed into the data plane.
    pub batches: u64,
    /// Flushes triggered by a full batch.
    pub full_flushes: u64,
    /// Flushes triggered by the deadline.
    pub deadline_flushes: u64,
    /// Flushes triggered by drain (shutdown / connection close).
    pub drain_flushes: u64,
    /// Malformed frames (bad length, wrong key width) dropped without a
    /// response. A bad frame poisons the rest of its datagram/stream read.
    pub decode_errors: u64,
    /// Productive receive syscalls — `recvmmsg`/`read` calls that returned
    /// at least one datagram / some bytes. One call can carry a whole
    /// batch, which is exactly the amortization being measured.
    pub recv_calls: u64,
    /// Receive syscalls that returned nothing (busy-poll probes and idle
    /// ticks). Reported separately from [`ServeStats::recv_calls`]: their
    /// cost is bounded by the deadline and the idle tick, not the packet
    /// rate, so they do not belong in the per-packet ratio.
    pub empty_recv_calls: u64,
    /// Send syscalls — `sendmmsg`/`writev` (or fallback `sendto`/`write`)
    /// calls that pushed response runs to the wire.
    pub send_calls: u64,
    /// Response writes that failed (peer gone).
    pub send_errors: u64,
    /// Requests replayed against the oracle by the debug validator.
    pub validated: u64,
    /// Sampled requests whose pinned generation had no published oracle.
    pub oracle_skipped: u64,
    /// Oracle disagreements — must stay 0; anything else is a torn
    /// generation or a data-plane bug.
    pub mismatches: u64,
    /// Wire-to-verdict service latency: request decoded → response written,
    /// which includes the micro-batching wait by design.
    pub latency: LatencyHistogram,
}

impl ServeStats {
    /// An empty instance (allocates the histogram's fixed bucket array).
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one flush of `n` served requests.
    pub fn count_flush(&mut self, cause: FlushCause, n: usize) {
        self.batches += 1;
        self.responses += n as u64;
        match cause {
            FlushCause::Full => self.full_flushes += 1,
            FlushCause::Deadline => self.deadline_flushes += 1,
            FlushCause::Drain => self.drain_flushes += 1,
        }
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &ServeStats) {
        self.requests += other.requests;
        self.responses += other.responses;
        self.batches += other.batches;
        self.full_flushes += other.full_flushes;
        self.deadline_flushes += other.deadline_flushes;
        self.drain_flushes += other.drain_flushes;
        self.decode_errors += other.decode_errors;
        self.recv_calls += other.recv_calls;
        self.empty_recv_calls += other.empty_recv_calls;
        self.send_calls += other.send_calls;
        self.send_errors += other.send_errors;
        self.validated += other.validated;
        self.oracle_skipped += other.oracle_skipped;
        self.mismatches += other.mismatches;
        self.latency.merge(&other.latency);
    }

    /// Kernel crossings per served request: productive receive plus send
    /// syscalls over decoded requests. The paper-shaped target is well
    /// under 1.0 — batched I/O amortizes one `recvmmsg` and one `sendmmsg`
    /// over up to `max_batch` requests, versus ~2.0 for the per-datagram
    /// `recvfrom`/`sendto` path. Empty busy-poll probes are excluded (see
    /// [`ServeStats::empty_recv_calls`]).
    pub fn syscalls_per_packet(&self) -> f64 {
        (self.recv_calls + self.send_calls) as f64 / self.requests.max(1) as f64
    }
}
