//! Model-checker ports of the system's lock-free publication protocols.
//!
//! Compiled only with `--cfg nm_model`. The structures here are skeletons
//! of [`super::handle::ClassifierHandle`]'s pin/generation/publish protocol
//! and [`super::runtime::ShardEpoch`]'s cross-shard publication, with the
//! classifier payloads reduced to integers: the *synchronization* is the
//! code under test, and it runs on the exact same [`arc_swap::ArcSwap`]
//! left-right cell the real structures use (which under `nm_model` is built
//! on the model's virtual atomics). The `#[cfg(test)]` half then explores
//! every bounded interleaving of ≥2 readers against 1 writer and asserts
//! the invariants the real system relies on:
//!
//! * **generation monotonicity** — per reader, `generation()` never goes
//!   backwards;
//! * **pin/report coherence** — `generation()` leads, never trails: a pin
//!   taken *after* a generation read reports at least that generation, and
//!   a generation read *after* a pin reports at least the pinned stamp;
//! * **no torn epoch** — a pinned [`ModelShardEpoch`] always carries every
//!   shard at the same per-shard generation (one coherent publication);
//! * **reclamation safety** — a pinned snapshot's payload stays intact
//!   while later publishes recycle both left-right slots under it.
//!
//! The protocol skeletons mirror the real publish paths line for line:
//! stamp-inside-snapshot, generation derived from the live snapshot (not a
//! separate mirror), writer serialised by a control mutex, epoch republished
//! only after every shard handle published.

use std::sync::Arc;

use arc_swap::ArcSwap;
use nm_model::sync::Mutex;

/// Generation stamp (mirrors `Generation` in the real system).
pub type Gen = u64;

/// Snapshot skeleton: the stamp plus a payload standing in for the models.
pub struct ModelSnapshot {
    generation: Gen,
    payload: u64,
}

impl ModelSnapshot {
    /// The stamp carried inside the snapshot (the real design's invariant:
    /// one atomic store publishes stamp and payload together).
    pub fn generation(&self) -> Gen {
        self.generation
    }

    /// The stand-in for the classifier state.
    pub fn payload(&self) -> u64 {
        self.payload
    }
}

/// Skeleton of `ClassifierHandle`: a left-right cell of stamped snapshots
/// plus the writer-serialising control mutex.
pub struct ModelHandle {
    live: ArcSwap<ModelSnapshot>,
    ctl: Mutex<()>,
}

impl ModelHandle {
    /// New handle at generation 1 holding `payload`.
    pub fn new(payload: u64) -> Self {
        Self {
            live: ArcSwap::new(Arc::new(ModelSnapshot { generation: 1, payload })),
            ctl: Mutex::new(()),
        }
    }

    /// Pins the current snapshot (mirrors `ClassifierHandle::snapshot`).
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        self.live.load_full()
    }

    /// The published generation, derived from the live snapshot itself
    /// (mirrors `ClassifierHandle::generation` — no separate mirror atomic
    /// that could under-report).
    pub fn generation(&self) -> Gen {
        self.live.load().generation()
    }

    /// Publishes `payload` as the next generation under the writer lock
    /// (mirrors `ClassifierHandle::publish`). Returns the new stamp.
    pub fn publish(&self, payload: u64) -> Gen {
        let _guard = self.ctl.lock();
        let generation = self.live.load().generation() + 1;
        self.live.store(Arc::new(ModelSnapshot { generation, payload }));
        generation
    }
}

/// Epoch skeleton: one coherent cross-shard publication (mirrors
/// `ShardEpoch` — a logical stamp plus every shard's snapshot pinned
/// together).
pub struct ModelShardEpoch {
    generation: Gen,
    shards: Vec<Arc<ModelSnapshot>>,
}

impl ModelShardEpoch {
    /// The logical generation of this publication.
    pub fn generation(&self) -> Gen {
        self.generation
    }

    /// The pinned per-shard generations — coherence tests assert one epoch
    /// always reports an all-equal vector (mirrors
    /// `ShardEpoch::home_generations`).
    pub fn shard_generations(&self) -> Vec<Gen> {
        self.shards.iter().map(|s| s.generation()).collect()
    }

    /// Sum of the pinned payloads (a stand-in for classification against
    /// the epoch: it must read every shard's pinned state).
    pub fn payload_sum(&self) -> u64 {
        self.shards.iter().map(|s| s.payload()).sum()
    }
}

/// Skeleton of `ShardedHandle`: per-shard [`ModelHandle`] replicas under a
/// left-right epoch cell, writers serialised by one control mutex.
pub struct ModelShardedHandle {
    home: Vec<ModelHandle>,
    epoch: ArcSwap<ModelShardEpoch>,
    ctl: Mutex<()>,
}

impl ModelShardedHandle {
    /// `shards` handles, all at generation 1, epoch at logical generation 1.
    pub fn new(shards: usize, payload: u64) -> Self {
        let home: Vec<ModelHandle> = (0..shards).map(|_| ModelHandle::new(payload)).collect();
        let epoch = ModelShardEpoch {
            generation: 1,
            shards: home.iter().map(ModelHandle::snapshot).collect(),
        };
        Self { home, epoch: ArcSwap::new(Arc::new(epoch)), ctl: Mutex::new(()) }
    }

    /// Pins the current epoch (mirrors `ShardedHandle::epoch`).
    pub fn epoch(&self) -> Arc<ModelShardEpoch> {
        self.epoch.load_full()
    }

    /// The published logical generation.
    pub fn generation(&self) -> Gen {
        self.epoch.load().generation()
    }

    /// Fans `payload` out to every shard handle, then republishes the epoch
    /// — the real `apply`/`retrain` ordering: every shard publishes first,
    /// the epoch re-pins after, so a coherent vector is the only thing a
    /// reader can ever pin.
    pub fn apply_all(&self, payload: u64) -> Gen {
        let _guard = self.ctl.lock();
        for h in &self.home {
            h.publish(payload);
        }
        let generation = self.epoch.load().generation() + 1;
        self.epoch.store(Arc::new(ModelShardEpoch {
            generation,
            shards: self.home.iter().map(ModelHandle::snapshot).collect(),
        }));
        generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_model::thread;

    /// Pin/publish under 2 readers + 1 writer: per-reader monotonicity and
    /// the "generation leads, never trails" coherence both ways.
    #[cfg(not(nm_model_mutate))]
    #[test]
    fn model_handle_generation_leads_never_trails() {
        let out = nm_model::check("handle pin/publish", || {
            let h = Arc::new(ModelHandle::new(100));
            let mut readers = Vec::new();
            for _ in 0..2 {
                let h = Arc::clone(&h);
                readers.push(thread::spawn(move || {
                    // Pin first, then read the reported generation: the
                    // report must be at least the pinned stamp.
                    let snap = h.snapshot();
                    let g1 = h.generation();
                    assert!(
                        g1 >= snap.generation(),
                        "generation() trailed a pinned snapshot: {g1} < {}",
                        snap.generation()
                    );
                    // Read the generation, then pin: the pin must carry at
                    // least the reported stamp.
                    let g2 = h.generation();
                    assert!(g2 >= g1, "reader generation went backwards: {g1} -> {g2}");
                    let snap2 = h.snapshot();
                    assert!(
                        snap2.generation() >= g2,
                        "a pin trailed generation(): {} < {g2}",
                        snap2.generation()
                    );
                    // Stamp and payload publish atomically together.
                    assert_eq!(snap2.payload(), 99 + snap2.generation());
                }));
            }
            let writer = {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    // Payload keyed to the stamp so readers can verify the
                    // two were published by one store.
                    h.publish(101);
                    h.publish(102);
                })
            };
            for r in readers {
                r.join();
            }
            writer.join();
            assert_eq!(h.generation(), 3);
        });
        assert!(out.schedules > 1, "exploration degenerated to one schedule");
    }

    /// Cross-shard publication under 2 readers + 1 writer: a pinned epoch
    /// is never torn (all shards at one generation) and epoch generations
    /// are per-reader monotone.
    #[cfg(not(nm_model_mutate))]
    #[test]
    fn model_shard_epoch_is_never_torn() {
        nm_model::check("sharded epoch publish", || {
            let h = Arc::new(ModelShardedHandle::new(2, 10));
            let mut readers = Vec::new();
            for _ in 0..2 {
                let h = Arc::clone(&h);
                readers.push(thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..2 {
                        let epoch = h.epoch();
                        let gens = epoch.shard_generations();
                        assert!(
                            gens.iter().all(|&g| g == gens[0]),
                            "torn epoch: shards at mixed generations {gens:?}"
                        );
                        let g = epoch.generation();
                        assert!(g >= last, "epoch generation went backwards: {last} -> {g}");
                        last = g;
                        // Classification against the pin reads a coherent
                        // cross-shard payload: both shards from the same
                        // publication.
                        assert_eq!(epoch.payload_sum(), 2 * (9 + gens[0]));
                    }
                }));
            }
            let writer = {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    h.apply_all(11);
                })
            };
            for r in readers {
                r.join();
            }
            writer.join();
            assert_eq!(h.generation(), 2);
            assert_eq!(h.epoch().shard_generations(), vec![2, 2]);
        });
    }

    /// Reclamation safety of the two-slot swap: a pinned snapshot's payload
    /// survives while later publishes recycle both slots beneath it.
    #[cfg(not(nm_model_mutate))]
    #[test]
    fn model_pinned_snapshot_outlives_slot_recycling() {
        nm_model::check("pinned snapshot reclamation", || {
            let h = Arc::new(ModelHandle::new(7));
            let pinned = h.snapshot();
            let writer = {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    // Two publishes cycle through both left-right slots.
                    h.publish(8);
                    h.publish(9);
                })
            };
            let reader = {
                let pinned = Arc::clone(&pinned);
                thread::spawn(move || {
                    assert_eq!(pinned.payload(), 7, "pinned payload changed under the reader");
                    assert_eq!(pinned.generation(), 1);
                })
            };
            reader.join();
            writer.join();
            assert_eq!(pinned.payload(), 7);
            assert_eq!(h.snapshot().payload(), 9);
        });
    }

    /// With the seeded arc-swap mutation (`--cfg nm_model_mutate`), the
    /// ported handle protocol must also surface a violation — the weakened
    /// flip breaks exactly the pin/publish publication the port models.
    #[cfg(nm_model_mutate)]
    #[test]
    fn model_mutation_breaks_handle_publication() {
        let v = nm_model::find_violation(|| {
            let h = Arc::new(ModelHandle::new(100));
            let reader = {
                let h = Arc::clone(&h);
                thread::spawn(move || {
                    let snap = h.snapshot();
                    assert!(snap.generation() >= 1);
                })
            };
            h.publish(101);
            reader.join();
        })
        .expect("the Relaxed current-flip must surface through the handle port");
        assert!(v.message.contains("data race"), "unexpected violation kind: {}", v.message);
    }
}
