//! Exact-match flow cache in front of any classifier.
//!
//! §5.2 of the paper observes that production pipelines (Open vSwitch) put
//! an exact-match cache in front of the classifier and invoke the full
//! lookup only on cache misses — which is why the paper expects its
//! *unskewed* numbers to be the representative ones for an OVS integration:
//! the cache absorbs the skew, the classifier sees the miss stream. This
//! module implements that front so the claim can be measured
//! (`cargo run -p nm-bench --release --bin ablation`).
//!
//! The cache is a fixed-size, open-addressed, 2-way set-associative table
//! keyed by the full field vector. Eviction is touch-ordered within the
//! set (the older way is replaced). Updates invalidate by generation, two
//! ways:
//!
//! * **automatically** — every probe compares the inner classifier's
//!   [`Classifier::generation`] stamp against the one recorded at the last
//!   probe; a bump (an applied `UpdateBatch`, a snapshot swap behind a
//!   `ClassifierHandle`) invalidates the whole cache in O(1). This closes
//!   the staleness hole where a cached verdict outlived a `remove()` of its
//!   rule because the caller forgot the manual step;
//! * **manually** — [`FlowCache::invalidate_all`] remains for rule changes
//!   the generation stamp cannot see (e.g. an engine mutated through
//!   interior paths that predate the stamp).
//!
//! Stale entries die lazily on their next probe either way.

use nm_common::classifier::{Classifier, MatchResult};
use nm_common::rule::Priority;
use nm_common::update::Generation;
use parking_lot::Mutex;

const WAYS: usize = 2;

#[derive(Clone, Debug)]
struct Entry {
    /// Full key (field values). Empty = vacant.
    key: Vec<u64>,
    /// Cached verdict (None = the classifier reported no match).
    verdict: Option<MatchResult>,
    /// Generation stamp; mismatched entries are stale.
    generation: u64,
    /// Per-set recency counter.
    stamp: u64,
}

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Probes that returned a fresh cached verdict.
    pub hits: u64,
    /// Probes that fell through to the classifier.
    pub misses: u64,
}

impl CacheStats {
    /// Folds another cache's counters into this one — the runtime keeps one
    /// private cache per worker (no shared cache line ping-pong) and
    /// aggregates their stats with this after a run.
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Hit fraction in [0, 1].
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An exact-match flow cache wrapping an inner classifier.
///
/// The wrapper itself implements [`Classifier`], so it can front NuevoMatch,
/// TupleMerge, or anything else in the workspace. Interior mutability keeps
/// `classify(&self)` signature intact; a `Mutex` per cache keeps this simple
/// and correct. In a multi-worker datapath the cache shards per worker —
/// exactly how OVS does it — which is what the worker runtime
/// ([`crate::system::runtime`]) does: each worker owns a private
/// `FlowCache` over its shard pin and the per-worker [`CacheStats`]
/// aggregate through [`CacheStats::absorb`].
pub struct FlowCache<C> {
    inner: C,
    sets: Mutex<CacheState>,
    mask: usize,
}

struct CacheState {
    entries: Vec<Entry>,
    generation: u64,
    /// The inner classifier's [`Classifier::generation`] observed at the
    /// last probe; a change invalidates every entry.
    source_generation: Generation,
    tick: u64,
    stats: CacheStats,
}

impl CacheState {
    /// Folds the inner classifier's current stamp in, invalidating the
    /// cache when the data plane moved underneath it. Strictly forward-only:
    /// generations are monotone, so a smaller observed stamp is just a
    /// reader that sampled before a concurrent bump — rolling back would
    /// make two interleaved readers ping-pong whole-cache invalidations.
    fn sync_source(&mut self, source: Generation) {
        if source > self.source_generation {
            self.source_generation = source;
            self.generation += 1;
        }
    }
}

impl<C: Classifier> FlowCache<C> {
    /// Wraps `inner` with a cache of at least `capacity` flows (rounded up
    /// to a power of two of sets × 2 ways).
    pub fn new(inner: C, capacity: usize) -> Self {
        let sets = (capacity.div_ceil(WAYS)).next_power_of_two().max(8);
        let vacant = Entry { key: Vec::new(), verdict: None, generation: 0, stamp: 0 };
        let source_generation = inner.generation();
        Self {
            inner,
            sets: Mutex::new(CacheState {
                entries: vec![vacant; sets * WAYS],
                generation: 1,
                source_generation,
                tick: 0,
                stats: CacheStats::default(),
            }),
            mask: sets - 1,
        }
    }

    /// The wrapped classifier.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Mutable access to the wrapped classifier.
    ///
    /// Rule changes applied through an engine that bumps
    /// [`Classifier::generation`] (every `BatchUpdatable` in the workspace)
    /// are picked up automatically on the next probe. Only mutations
    /// invisible to the stamp still require a manual
    /// [`FlowCache::invalidate_all`].
    pub fn inner_mut(&mut self) -> &mut C {
        &mut self.inner
    }

    /// Drops every cached verdict in O(1) (generation bump).
    pub fn invalidate_all(&self) {
        self.sets.lock().generation += 1;
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.sets.lock().stats
    }

    fn hash_key(key: &[u64]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &v in key {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Installs `verdict` for `key` in the set at `base`, evicting a
    /// stale/vacant way or the least recently touched one.
    fn install(state: &mut CacheState, base: usize, key: &[u64], verdict: Option<MatchResult>) {
        let tick = state.tick;
        let generation = state.generation;
        let victim = (0..WAYS)
            .min_by_key(|&w| {
                let e = &state.entries[base + w];
                if e.generation != generation || e.key.is_empty() {
                    (0, 0)
                } else {
                    (1, e.stamp)
                }
            })
            .expect("ways > 0");
        state.entries[base + victim] =
            Entry { key: key.to_vec(), verdict, generation, stamp: tick };
    }
}

impl<C: Classifier> Classifier for FlowCache<C> {
    fn classify(&self, key: &[u64]) -> Option<MatchResult> {
        let set = (Self::hash_key(key) as usize) & self.mask;
        let base = set * WAYS;
        let source = self.inner.generation();
        {
            let mut state = self.sets.lock();
            state.sync_source(source);
            state.tick += 1;
            let tick = state.tick;
            let generation = state.generation;
            for way in 0..WAYS {
                let e = &mut state.entries[base + way];
                if e.generation == generation && e.key == key {
                    e.stamp = tick;
                    let verdict = e.verdict;
                    state.stats.hits += 1;
                    return verdict;
                }
            }
            state.stats.misses += 1;
        }
        // Miss path: full lookup outside the lock (the classifier may be
        // slow; holding the lock would serialise concurrent workers).
        let verdict = self.inner.classify(key);
        let mut state = self.sets.lock();
        // Install only if the data plane has not moved since we probed: a
        // concurrent update could otherwise stamp this (possibly stale)
        // verdict into the new generation. If the verdict is stale under the
        // *old* generation the next probe's sync invalidates it.
        if state.source_generation == source {
            Self::install(&mut state, base, key, verdict);
        }
        verdict
    }

    fn classify_with_floor(&self, key: &[u64], floor: Priority) -> Option<MatchResult> {
        self.classify(key).filter(|m| m.priority < floor)
    }

    /// Batched probe: all hits resolve under one lock acquisition, the
    /// misses flow through the inner classifier's own `classify_batch` in a
    /// single gathered call, and the fresh verdicts install under one more
    /// lock acquisition. Verdicts are bit-identical to per-key `classify`
    /// (a key duplicated inside one batch is classified once per duplicate
    /// and both installs write the same entry). Caller floors filter the
    /// cached (unfloored) verdicts at the end, exactly as the per-key
    /// `classify(key).filter(p < floor)` dispatch does — the cache always
    /// stores the unfloored verdict.
    fn batch_lookup(
        &self,
        keys: &[u64],
        stride: usize,
        floors: Option<&[Priority]>,
        out: &mut [Option<MatchResult>],
    ) {
        // Hash outside the lock, like the per-key path (holding it through
        // the hash loop would serialise concurrent workers); the bases are
        // reused by the install pass below.
        let bases: Vec<usize> = keys
            .chunks_exact(stride)
            .map(|key| ((Self::hash_key(key) as usize) & self.mask) * WAYS)
            .collect();
        let source = self.inner.generation();
        let mut miss_idx: Vec<usize> = Vec::new();
        {
            let mut state = self.sets.lock();
            state.sync_source(source);
            for (i, key) in keys.chunks_exact(stride).enumerate() {
                let base = bases[i];
                state.tick += 1;
                let tick = state.tick;
                let generation = state.generation;
                let mut hit = false;
                for way in 0..WAYS {
                    let e = &mut state.entries[base + way];
                    if e.generation == generation && e.key == key {
                        e.stamp = tick;
                        out[i] = e.verdict;
                        hit = true;
                        break;
                    }
                }
                if hit {
                    state.stats.hits += 1;
                } else {
                    state.stats.misses += 1;
                    miss_idx.push(i);
                }
            }
        }
        if !miss_idx.is_empty() {
            // Gather the missing keys into one contiguous buffer for the
            // inner engine's batched path.
            let mut miss_keys = Vec::with_capacity(miss_idx.len() * stride);
            for &i in &miss_idx {
                miss_keys.extend_from_slice(&keys[i * stride..(i + 1) * stride]);
            }
            let mut verdicts = vec![None; miss_idx.len()];
            self.inner.classify_batch(&miss_keys, stride, &mut verdicts);
            let mut state = self.sets.lock();
            // Same install guard as the per-key path: never stamp verdicts
            // from a superseded generation into a newer one.
            let install = state.source_generation == source;
            for (j, &i) in miss_idx.iter().enumerate() {
                let key = &keys[i * stride..(i + 1) * stride];
                out[i] = verdicts[j];
                if install {
                    Self::install(&mut state, bases[i], key, verdicts[j]);
                }
            }
        }
        if let Some(f) = floors {
            for i in 0..out.len() {
                if f[i] != Priority::MAX {
                    out[i] = out[i].filter(|m| m.priority < f[i]);
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        let state = self.sets.lock();
        let entries = state.entries.len();
        let per = std::mem::size_of::<Entry>()
            + state.entries.first().map_or(0, |e| e.key.capacity() * 8);
        self.inner.memory_bytes() + entries * per
    }

    fn name(&self) -> &'static str {
        "flow-cache"
    }

    fn num_rules(&self) -> usize {
        self.inner.num_rules()
    }

    fn generation(&self) -> Generation {
        // The cache serves verdicts exactly as fresh as the inner stamp
        // (stale entries are invalidated on the probe that observes a bump),
        // so forwarding keeps stacked caches honest.
        self.inner.generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nm_common::{FieldsSpec, FiveTuple, LinearSearch, RuleSet};

    fn engine() -> FlowCache<LinearSearch> {
        let rules: Vec<_> = (0..100u16)
            .map(|i| {
                FiveTuple::new().dst_port_range(i * 100, i * 100 + 99).into_rule(i as u32, i as u32)
            })
            .collect();
        let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
        FlowCache::new(LinearSearch::build(&set), 1_024)
    }

    #[test]
    fn cached_verdicts_match_inner() {
        let c = engine();
        for port in (0u64..10_000).step_by(11) {
            let key = [1, 2, 3, port, 6];
            let a = c.classify(&key);
            let b = c.inner().classify(&key);
            assert_eq!(a, b);
            // Second probe must hit and agree.
            assert_eq!(c.classify(&key), b);
        }
        let stats = c.stats();
        assert!(stats.hits >= 900, "expected heavy hits, got {stats:?}");
    }

    #[test]
    fn caches_negative_verdicts_too() {
        let c = engine();
        let miss_key = [1u64, 2, 3, 60_000, 6];
        assert_eq!(c.classify(&miss_key), None);
        let before = c.stats().hits;
        assert_eq!(c.classify(&miss_key), None);
        assert_eq!(c.stats().hits, before + 1, "negative verdict should be cached");
    }

    #[test]
    fn invalidate_all_forces_misses() {
        let c = engine();
        let key = [1u64, 2, 3, 500, 6];
        c.classify(&key);
        c.classify(&key);
        assert!(c.stats().hits >= 1);
        c.invalidate_all();
        let misses_before = c.stats().misses;
        c.classify(&key);
        assert_eq!(c.stats().misses, misses_before + 1);
    }

    #[test]
    fn hot_flow_hit_rate_is_high() {
        let c = engine();
        // 10 hot flows, 10K probes.
        for i in 0..10_000u64 {
            let flow = i % 10;
            c.classify(&[9, 9, 9, flow * 77, 17]);
        }
        assert!(c.stats().hit_rate() > 0.99, "hit rate {:.3}", c.stats().hit_rate());
    }

    #[test]
    fn batch_probe_matches_per_key_and_caches() {
        let c = engine();
        let keys: Vec<u64> = (0..300u64).flat_map(|i| [1, 2, 3, (i % 40) * 111, 6]).collect();
        let n = keys.len() / 5;
        let mut out = vec![None; n];
        c.classify_batch(&keys, 5, &mut out);
        for i in 0..n {
            assert_eq!(out[i], c.inner().classify(&keys[i * 5..(i + 1) * 5]), "packet {i}");
        }
        // Second pass over the same batch must be all hits.
        let misses_before = c.stats().misses;
        c.classify_batch(&keys, 5, &mut out);
        assert_eq!(c.stats().misses, misses_before, "re-probe should not miss");
        for i in 0..n {
            assert_eq!(out[i], c.inner().classify(&keys[i * 5..(i + 1) * 5]));
        }
    }

    #[test]
    fn remove_invalidates_cached_verdict() {
        // Regression: a cached verdict used to survive a `remove()` of its
        // rule unless the caller remembered to call `invalidate_all`. The
        // generation sync must now catch it on the next probe.
        use nm_common::{BatchUpdatable, UpdateBatch};
        let mut c = engine();
        let key = [1u64, 2, 3, 550, 6]; // rule 5
        assert_eq!(c.classify(&key).unwrap().rule, 5);
        assert_eq!(c.classify(&key).unwrap().rule, 5); // cached
        c.inner_mut().apply(&UpdateBatch::new().remove(5));
        // No manual invalidate_all: the stale verdict must still die.
        assert_eq!(c.classify(&key), None, "cached verdict survived its rule's removal");
        // And the batched probe path must agree.
        c.inner_mut().apply(&UpdateBatch::new().remove(6));
        let batch_key = [1u64, 2, 3, 650, 6];
        let mut out = [None];
        let mut flat = Vec::new();
        flat.extend_from_slice(&batch_key);
        c.classify_batch(&flat, 5, &mut out);
        assert_eq!(out[0], None, "batched probe served a stale verdict");
    }

    #[test]
    fn generation_forwards_inner_stamp() {
        use nm_common::{BatchUpdatable, UpdateBatch};
        let mut c = engine();
        assert_eq!(Classifier::generation(&c), 0);
        c.inner_mut().apply(&UpdateBatch::new().remove(1));
        assert_eq!(Classifier::generation(&c), 1);
    }

    #[test]
    fn associativity_survives_set_conflicts() {
        // Tiny cache: force evictions, verdicts must stay correct.
        let rules: Vec<_> = (0..50u16)
            .map(|i| FiveTuple::new().dst_port_exact(i).into_rule(i as u32, i as u32))
            .collect();
        let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
        let c = FlowCache::new(LinearSearch::build(&set), 8);
        for round in 0..3 {
            for port in 0..50u64 {
                let got = c.classify(&[0, 0, 0, port, 0]);
                assert_eq!(got.map(|m| m.rule), Some(port as u32), "round {round}");
            }
        }
    }
}
