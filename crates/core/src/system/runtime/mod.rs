//! The NUMA-aware worker runtime (paper §4 "Parallelization" and §5.1,
//! grown past one socket).
//!
//! The ad-hoc runners this subsumes (`run_two_workers`, `run_replicated`)
//! pinned nothing, shared one flow cache and could not shard the rule-set.
//! The runtime splits the same work along explicit axes:
//!
//! * **A plan** decides what each worker group serves. Every execution mode
//!   is a [`ShardedDataPlane`]: [`ShardedHandle`]/[`ShardedClassifier`]
//!   steer packets to per-shard rule subsets (hash/range on a steering
//!   field, wildcard-heavy rules in a broadcast shard), [`Replicated`] is N
//!   whole-set shards dealt batches round-robin (the §5.1 baseline mode),
//!   and [`SplitPlan`] is NuevoMatch's iSet/remainder split (the paper's
//!   two-worker mode) expressed as two mirrored stages.
//! * **A dispatcher** (the calling thread) pins one coherent generation per
//!   batch, steers the batch, keeps [`RuntimeConfig::pipeline_depth`]
//!   batches in flight — tracked in a small in-flight ring, not a
//!   trace-length array — and merges per-shard verdicts by priority in
//!   trace order, so the checksum equals [`run_sequential`] by
//!   construction.
//! * **Workers** (`shards × workers_per_shard` threads) classify gathered
//!   sub-batches against the pinned generation, each with its *own*
//!   [`FlowCache`] (when enabled) — no shared cache line ping-pong — and
//!   pinned to a CPU of their shard's NUMA node when the
//!   [`Topology`] offers more than one CPU.
//!
//! Worker failures propagate: a panicking worker is caught, reported
//! through the result channel, and surfaces as an `Err` from
//! [`Runtime::run`] instead of wedging the dispatcher on a dead channel.
//!
//! **Single-core fallback.** This repository's CI box has one physical
//! core: [`Topology::assign`] returns no pin assignments there, so every
//! worker stays unpinned and the measured numbers time-share exactly like
//! the legacy harness — the structure is identical to the paper's and
//! scales on real multi-socket hardware (see EXPERIMENTS.md).
//!
//! [`run_sequential`]: crate::system::parallel::run_sequential

pub mod sharded;
pub mod topology;

pub use sharded::{EpochPin, ShardEpoch, ShardedClassifier, ShardedHandle, StaticPin};
pub use topology::{pin_current_thread, NumaNode, Topology};

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel;
use parking_lot::Mutex;

use nm_common::classifier::{Classifier, MatchResult};
use nm_common::packet::TraceBuf;
use nm_common::rule::Priority;
use nm_common::update::Generation;
use nm_common::Error;

use super::flow_cache::{CacheStats, FlowCache};
use super::handle::{ClassifierHandle, NmSnapshot};

/// Default classification batch (the paper's §5.1 batch of 128).
pub const DEFAULT_BATCH: usize = 128;

/// Default number of batches the dispatcher keeps in flight.
pub const DEFAULT_PIPELINE_DEPTH: usize = 4;

/// Whether (and how) workers pin to CPUs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PinPolicy {
    /// Never pin; the OS schedules freely.
    Never,
    /// Pin each shard's workers to CPUs of one NUMA node (shards spread
    /// across nodes round-robin). Degrades to unpinned when the topology
    /// reports a single CPU — the single-core-CI fallback.
    Numa,
}

/// Runtime parameters. The defaults reproduce the paper's harness: batches
/// of 128, a 4-deep dispatch pipeline, one worker per shard, NUMA pinning
/// where the machine supports it, per-worker flow caches off.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Packets per dispatched batch.
    pub batch: usize,
    /// Batches in flight between dispatch and merge (the legacy runners
    /// hardcoded 4). Bounds both the channel depths and the in-flight ring.
    pub pipeline_depth: usize,
    /// Worker threads per shard.
    pub workers_per_shard: usize,
    /// CPU pinning policy.
    pub pin: PinPolicy,
    /// Capacity of each worker's private [`FlowCache`]; `0` disables
    /// caching (the right setting for uniform traces — caches only pay for
    /// themselves on skewed traffic).
    pub flow_cache: usize,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            batch: DEFAULT_BATCH,
            pipeline_depth: DEFAULT_PIPELINE_DEPTH,
            workers_per_shard: 1,
            pin: PinPolicy::Numa,
            flow_cache: 0,
        }
    }
}

/// Result of one runtime execution.
#[derive(Clone, Debug)]
pub struct RunStats {
    /// Wall-clock seconds for the whole trace.
    pub seconds: f64,
    /// Packets per second.
    pub pps: f64,
    /// Mean per-batch latency in nanoseconds (dispatch → merged).
    pub mean_batch_latency_ns: f64,
    /// Fold of matched rule ids in trace order — must equal the sequential
    /// reference's on any static run.
    pub checksum: u64,
    /// Batches dispatched.
    pub batches: usize,
    /// Home shards in the executed plan.
    pub shards: usize,
    /// Worker threads spawned.
    pub workers: usize,
    /// Workers the kernel accepted a CPU pin for.
    pub pinned_workers: usize,
    /// Packets steered to each shard (load-balance diagnostics; mirrored
    /// plans count every batch on every shard).
    pub steered: Vec<u64>,
    /// Smallest and largest logical generation pinned across the run's
    /// batches — equal on a quiescent run, a span under live updates.
    pub generations: (Generation, Generation),
    /// Aggregated per-worker flow-cache counters (zero when caching is
    /// disabled).
    pub cache: CacheStats,
}

impl RunStats {
    fn empty(shards: usize, workers: usize) -> Self {
        Self {
            seconds: 0.0,
            pps: 0.0,
            mean_batch_latency_ns: 0.0,
            checksum: 0,
            batches: 0,
            shards,
            workers,
            pinned_workers: 0,
            steered: vec![0; shards],
            generations: (0, 0),
            cache: CacheStats::default(),
        }
    }
}

/// Folds one verdict into the order-sensitive run checksum (shared by the
/// runtime and the sequential/batched reference loops, so "checksums are
/// comparable" is true by definition).
#[inline]
pub(crate) fn fold_checksum(checksum: &mut u64, m: Option<MatchResult>) {
    let v = m.map_or(u64::MAX, |r| r.rule as u64);
    *checksum = checksum.wrapping_mul(0x100_0000_01b3).wrapping_add(v);
}

/// A coherent per-batch pin of a sharded data plane: every shard the pin
/// exposes serves the same logical generation for as long as the pin is
/// held. Cloned into worker jobs; cloning must be cheap (a reference or an
/// `Arc` bump).
pub trait ShardPin: Clone + Send + Sync {
    /// The pinned logical generation.
    fn generation(&self) -> Generation;

    /// Classifies a gathered sub-batch as shard `shard` sees it — including
    /// any broadcast-shard merge, so the dispatcher's priority merge over
    /// shards yields final verdicts.
    fn classify_shard(
        &self,
        shard: usize,
        keys: &[u64],
        stride: usize,
        out: &mut [Option<MatchResult>],
    );
}

/// An execution plan the runtime can drive: how many worker groups exist,
/// how packets map onto them, and how to pin a coherent generation.
pub trait ShardedDataPlane: Sync {
    /// The per-batch pin type.
    type Pin<'p>: ShardPin
    where
        Self: 'p;

    /// Number of home shards (worker groups).
    fn shards(&self) -> usize;

    /// `true` for stage-parallel plans: every batch is sent whole to every
    /// shard and the per-shard verdicts merge by priority (the two-worker
    /// iSet/remainder split). `false` for data-parallel plans, where each
    /// packet is steered to exactly one shard.
    fn mirror(&self) -> bool {
        false
    }

    /// Steers one packet (`batch` is the batch index — round-robin plans
    /// deal whole batches, content-steered plans ignore it). Unused by
    /// mirrored plans.
    fn steer(&self, _key: &[u64], _batch: usize) -> usize {
        0
    }

    /// Pins the current generation across all shards.
    fn pin(&self) -> Self::Pin<'_>;
}

// ---------------------------------------------------------------------------
// Legacy modes as plans
// ---------------------------------------------------------------------------

/// The §5.1 replicated baseline as a plan: `workers` whole-set shards
/// sharing one engine (no rule duplication), batches dealt round-robin.
pub struct Replicated<'c> {
    engine: &'c dyn Classifier,
    workers: usize,
}

impl<'c> Replicated<'c> {
    /// Wraps `engine` as `workers` round-robin shards.
    pub fn new(engine: &'c dyn Classifier, workers: usize) -> Self {
        Self { engine, workers: workers.max(1) }
    }
}

/// Pin over a [`Replicated`] plan — a bare reference; the engine is shared,
/// its generation is whatever it reports.
pub struct RefPin<'a>(&'a dyn Classifier);

impl Clone for RefPin<'_> {
    fn clone(&self) -> Self {
        RefPin(self.0)
    }
}

impl ShardPin for RefPin<'_> {
    fn generation(&self) -> Generation {
        self.0.generation()
    }

    fn classify_shard(
        &self,
        _shard: usize,
        keys: &[u64],
        stride: usize,
        out: &mut [Option<MatchResult>],
    ) {
        self.0.classify_batch(keys, stride, out);
    }
}

impl ShardedDataPlane for Replicated<'_> {
    type Pin<'p>
        = RefPin<'p>
    where
        Self: 'p;

    fn shards(&self) -> usize {
        self.workers
    }

    fn steer(&self, _key: &[u64], batch: usize) -> usize {
        batch % self.workers
    }

    fn pin(&self) -> Self::Pin<'_> {
        RefPin(self.engine)
    }
}

/// NuevoMatch's two-worker split as a plan: shard 0 runs the iSet RQ-RMIs,
/// shard 1 the remainder classifier, every batch mirrored to both and
/// merged by priority — the paper's §4 parallelization, expressed in the
/// same runtime as the sharded modes.
pub struct SplitPlan<'h, R: Classifier> {
    handle: &'h ClassifierHandle<R>,
}

impl<'h, R: Classifier> SplitPlan<'h, R> {
    /// Plans the iSet/remainder split over a live handle.
    pub fn new(handle: &'h ClassifierHandle<R>) -> Self {
        Self { handle }
    }
}

/// Pin over a [`SplitPlan`] — one NuevoMatch snapshot shared by both
/// stages, so a batch's halves can never straddle an update.
pub struct SplitPin<R: Classifier>(Arc<NmSnapshot<R>>);

impl<R: Classifier> Clone for SplitPin<R> {
    fn clone(&self) -> Self {
        SplitPin(self.0.clone())
    }
}

impl<R: Classifier> ShardPin for SplitPin<R> {
    fn generation(&self) -> Generation {
        self.0.generation()
    }

    fn classify_shard(
        &self,
        shard: usize,
        keys: &[u64],
        stride: usize,
        out: &mut [Option<MatchResult>],
    ) {
        match shard {
            0 => self.0.engine().classify_isets_batch(keys, stride, out),
            _ => self.0.engine().remainder().classify_batch(keys, stride, out),
        }
    }
}

impl<R: Classifier> ShardedDataPlane for SplitPlan<'_, R> {
    type Pin<'p>
        = SplitPin<R>
    where
        Self: 'p;

    fn shards(&self) -> usize {
        2
    }

    fn mirror(&self) -> bool {
        true
    }

    fn pin(&self) -> Self::Pin<'_> {
        SplitPin(self.handle.snapshot())
    }
}

// ---------------------------------------------------------------------------
// Per-worker flow-cache adapter
// ---------------------------------------------------------------------------

/// Adapter that lets a worker's private [`FlowCache`] front its shard: the
/// worker swaps the current pin in before each batch, and the cache's
/// generation probe sees the pinned logical generation — so an epoch swap
/// invalidates the cache exactly like any other update.
struct PinView<P: ShardPin> {
    shard: usize,
    pin: Mutex<Option<P>>,
}

impl<P: ShardPin> PinView<P> {
    fn new(shard: usize) -> Self {
        Self { shard, pin: Mutex::new(None) }
    }

    fn set(&self, pin: P) {
        *self.pin.lock() = Some(pin);
    }
}

impl<P: ShardPin> Classifier for PinView<P> {
    fn classify(&self, key: &[u64]) -> Option<MatchResult> {
        let guard = self.pin.lock();
        // A pin is always set before workers run; a missing one means the
        // view is still warming up, so report "no match" rather than panic.
        let pin = guard.as_ref()?;
        let mut out = [None];
        pin.classify_shard(self.shard, key, key.len(), &mut out);
        out[0]
    }

    fn batch_lookup(
        &self,
        keys: &[u64],
        stride: usize,
        floors: Option<&[Priority]>,
        out: &mut [Option<MatchResult>],
    ) {
        {
            let guard = self.pin.lock();
            match guard.as_ref() {
                Some(pin) => pin.classify_shard(self.shard, keys, stride, out),
                // As in `classify`: an unset pin yields no matches.
                None => out.fill(None),
            }
        }
        sharded::apply_floors(floors, out);
    }

    fn generation(&self) -> Generation {
        self.pin.lock().as_ref().map_or(0, ShardPin::generation)
    }

    fn memory_bytes(&self) -> usize {
        0
    }

    fn name(&self) -> &'static str {
        "shard-pin"
    }

    fn num_rules(&self) -> usize {
        0
    }
}

// ---------------------------------------------------------------------------
// The runtime
// ---------------------------------------------------------------------------

/// One dispatched unit: which batch, which packets of it, and the pinned
/// generation to serve them at.
struct Job<P> {
    batch: usize,
    idx: Vec<u32>,
    pin: P,
}

/// One worker's answer for a job.
type Chunk = (usize, Vec<u32>, Vec<Option<MatchResult>>);

/// An in-flight batch in the dispatcher's ring.
struct Slot {
    batch: usize,
    lo: usize,
    t0: Instant,
    expected: usize,
    received: usize,
    out: Vec<Option<MatchResult>>,
}

/// The worker runtime: a discovered [`Topology`] plus a [`RuntimeConfig`],
/// executing any [`ShardedDataPlane`] over a trace.
pub struct Runtime {
    cfg: RuntimeConfig,
    topo: Topology,
}

impl Runtime {
    /// A runtime over the discovered machine topology.
    pub fn new(cfg: RuntimeConfig) -> Self {
        Self::with_topology(cfg, Topology::discover())
    }

    /// A runtime over an explicit topology (tests, simulations).
    pub fn with_topology(cfg: RuntimeConfig, topo: Topology) -> Self {
        Self { cfg, topo }
    }

    /// The configuration in force.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// The machine shape workers schedule over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Runs the two-worker iSet/remainder split (legacy `run_two_workers`)
    /// as a [`SplitPlan`].
    pub fn run_split<R: Classifier>(
        &self,
        handle: &ClassifierHandle<R>,
        trace: &TraceBuf,
    ) -> Result<RunStats, Error> {
        self.run(&SplitPlan::new(handle), trace)
    }

    /// Runs `workers` whole-set replicas (legacy `run_replicated`) as a
    /// [`Replicated`] plan. Unlike the legacy runner, the merge happens in
    /// trace order, so the checksum equals the sequential reference at any
    /// worker count.
    pub fn run_replicated(
        &self,
        engine: &dyn Classifier,
        workers: usize,
        trace: &TraceBuf,
    ) -> Result<RunStats, Error> {
        self.run(&Replicated::new(engine, workers), trace)
    }

    /// Executes `src` over the trace: steer → per-shard workers → in-order
    /// priority merge. Returns an error if any worker fails (panics are
    /// caught and reported, not deadlocked on).
    pub fn run<S: ShardedDataPlane>(&self, src: &S, trace: &TraceBuf) -> Result<RunStats, Error> {
        let n = trace.len();
        let shards = src.shards().max(1);
        let wps = self.cfg.workers_per_shard.max(1);
        if n == 0 {
            return Ok(RunStats::empty(shards, shards * wps));
        }
        let batch = self.cfg.batch.max(1);
        let depth = self.cfg.pipeline_depth.max(1);
        let mirror = src.mirror();
        let n_batches = n.div_ceil(batch);
        let stride = trace.stride();
        let raw = trace.raw();
        let flow_cap = self.cfg.flow_cache;
        let grid = match self.cfg.pin {
            PinPolicy::Never => Vec::new(),
            PinPolicy::Numa => self.topo.assign(shards, wps),
        };

        let mut job_tx = Vec::with_capacity(shards);
        let mut job_rx = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = channel::bounded::<Job<S::Pin<'_>>>(depth);
            job_tx.push(tx);
            job_rx.push(rx);
        }
        // Sized so workers can always post every chunk of every in-flight
        // batch without blocking: at most `depth` batches × `shards` chunks
        // are outstanding, so a worker send never deadlocks against a
        // dispatcher that has stopped receiving (e.g. on an error path).
        let (res_tx, res_rx) = channel::bounded::<Result<Chunk, String>>(depth * shards);

        let start = Instant::now();
        std::thread::scope(|scope| {
            let mut joins = Vec::with_capacity(shards * wps);
            for (s, rx) in job_rx.into_iter().enumerate() {
                for w in 0..wps {
                    let rx = rx.clone();
                    let tx = res_tx.clone();
                    let cpu = grid.get(s).and_then(|row| row.get(w)).copied();
                    joins.push(
                        scope.spawn(move || worker_loop(s, cpu, rx, tx, raw, stride, flow_cap)),
                    );
                }
            }
            drop(res_tx);

            // Dispatcher: prime the pipeline, merge in order.
            let mut checksum = 0u64;
            let mut lat_sum = 0.0f64;
            let mut steered = vec![0u64; shards];
            let mut gen_lo = Generation::MAX;
            let mut gen_hi = 0u64;
            let mut slots: Vec<Slot> = (0..depth)
                .map(|_| Slot {
                    batch: usize::MAX,
                    lo: 0,
                    t0: start,
                    expected: 0,
                    received: 0,
                    out: Vec::new(),
                })
                .collect();
            let mut next = 0usize;
            let mut merged = 0usize;
            let mut error: Option<Error> = None;

            'run: while merged < n_batches {
                while next < n_batches && next - merged < depth {
                    let lo = next * batch;
                    let hi = ((next + 1) * batch).min(n);
                    let pin = src.pin();
                    let g = pin.generation();
                    gen_lo = gen_lo.min(g);
                    gen_hi = gen_hi.max(g);
                    let mut idx: Vec<Vec<u32>> = vec![Vec::new(); shards];
                    if mirror {
                        let all: Vec<u32> = (lo as u32..hi as u32).collect();
                        idx.fill(all);
                    } else {
                        for i in lo..hi {
                            let s = src.steer(&raw[i * stride..(i + 1) * stride], next);
                            idx[s].push(i as u32);
                        }
                    }
                    let slot = &mut slots[next % depth];
                    slot.batch = next;
                    slot.lo = lo;
                    slot.t0 = Instant::now();
                    slot.received = 0;
                    slot.expected = idx.iter().filter(|ids| !ids.is_empty()).count();
                    slot.out.clear();
                    slot.out.resize(hi - lo, None);
                    for (s, ids) in idx.into_iter().enumerate() {
                        if ids.is_empty() {
                            continue;
                        }
                        steered[s] += ids.len() as u64;
                        if job_tx[s].send(Job { batch: next, idx: ids, pin: pin.clone() }).is_err()
                        {
                            // A worker that panicked sends its error chunk
                            // *before* hanging up its job receiver, so when
                            // the send loses that race the real cause is
                            // already buffered in the result channel —
                            // surface it instead of the generic disconnect.
                            let msg = std::iter::from_fn(|| res_rx.try_recv().ok())
                                .find_map(|chunk| chunk.err())
                                .unwrap_or_else(|| {
                                    format!("runtime: shard {s} workers exited early")
                                });
                            error = Some(Error::Build { msg });
                            break 'run;
                        }
                    }
                    next += 1;
                }
                match res_rx.recv() {
                    Err(_) => {
                        error = Some(Error::Build {
                            msg: "runtime: every worker exited before the run finished".into(),
                        });
                        break 'run;
                    }
                    Ok(Err(msg)) => {
                        error = Some(Error::Build { msg });
                        break 'run;
                    }
                    Ok(Ok((b, ids, verdicts))) => {
                        let slot = &mut slots[b % depth];
                        debug_assert_eq!(slot.batch, b, "stale chunk for a recycled slot");
                        for (j, &i) in ids.iter().enumerate() {
                            let k = i as usize - slot.lo;
                            slot.out[k] = MatchResult::better(slot.out[k], verdicts[j]);
                        }
                        slot.received += 1;
                        // Retire every completed batch at the ring's head.
                        while merged < next {
                            let slot = &slots[merged % depth];
                            if slot.batch != merged || slot.received < slot.expected {
                                break;
                            }
                            for &m in &slot.out {
                                fold_checksum(&mut checksum, m);
                            }
                            lat_sum += slot.t0.elapsed().as_nanos() as f64;
                            merged += 1;
                        }
                    }
                }
            }
            drop(job_tx);
            let mut cache = CacheStats::default();
            let mut pinned_workers = 0usize;
            for join in joins {
                match join.join() {
                    Ok((stats, pinned)) => {
                        cache.absorb(stats);
                        pinned_workers += usize::from(pinned);
                    }
                    Err(_) => {
                        // The panic was already surfaced through the result
                        // channel; keep the first error.
                        error.get_or_insert(Error::Build {
                            msg: "runtime: a worker panicked".into(),
                        });
                    }
                }
            }
            if let Some(e) = error {
                return Err(e);
            }
            let seconds = start.elapsed().as_secs_f64();
            Ok(RunStats {
                seconds,
                pps: n as f64 / seconds.max(1e-12),
                mean_batch_latency_ns: lat_sum / n_batches as f64,
                checksum,
                batches: n_batches,
                shards,
                workers: shards * wps,
                pinned_workers,
                steered,
                generations: (gen_lo.min(gen_hi), gen_hi),
                cache,
            })
        })
    }
}

/// One worker thread: optionally pin, then serve jobs until the dispatcher
/// hangs up. Panics inside a job are caught and reported as an error chunk
/// so the dispatcher can fail the run instead of blocking forever.
fn worker_loop<P: ShardPin>(
    shard: usize,
    cpu: Option<usize>,
    rx: channel::Receiver<Job<P>>,
    tx: channel::Sender<Result<Chunk, String>>,
    raw: &[u64],
    stride: usize,
    flow_cap: usize,
) -> (CacheStats, bool) {
    let pinned = cpu.is_some_and(pin_current_thread);
    let cache = (flow_cap > 0).then(|| FlowCache::new(PinView::<P>::new(shard), flow_cap));
    let mut buf: Vec<u64> = Vec::new();
    for job in rx.iter() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // Mirrored and round-robin plans always steer a contiguous run
            // of packets; classify straight off the trace then, and only
            // gather-copy when content steering actually scattered the
            // batch (idx is built ascending, so span == len ⇔ contiguous).
            let first = job.idx.first().map_or(0, |&i| i as usize);
            let contiguous =
                job.idx.last().is_some_and(|&l| l as usize - first + 1 == job.idx.len());
            let keys: &[u64] = if contiguous {
                &raw[first * stride..(first + job.idx.len()) * stride]
            } else {
                buf.clear();
                for &i in &job.idx {
                    let i = i as usize;
                    buf.extend_from_slice(&raw[i * stride..(i + 1) * stride]);
                }
                &buf
            };
            let mut verdicts = vec![None; job.idx.len()];
            match &cache {
                Some(c) => {
                    c.inner().set(job.pin.clone());
                    c.classify_batch(keys, stride, &mut verdicts);
                }
                None => job.pin.classify_shard(shard, keys, stride, &mut verdicts),
            }
            verdicts
        }));
        let send_failed = match outcome {
            Ok(verdicts) => tx.send(Ok((job.batch, job.idx, verdicts))).is_err(),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked".to_string());
                let _ = tx.send(Err(format!("runtime worker (shard {shard}): {msg}")));
                true
            }
        };
        if send_failed {
            break;
        }
    }
    (cache.map(|c| c.stats()).unwrap_or_default(), pinned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NuevoMatchConfig, RqRmiParams};
    use crate::system::parallel::run_sequential;
    use nm_common::shard::{ShardPlanConfig, ShardStrategy};
    use nm_common::{FieldsSpec, FiveTuple, LinearSearch, RuleSet};

    fn port_set(n: u16) -> RuleSet {
        let rules: Vec<_> = (0..n)
            .map(|i| {
                FiveTuple::new().dst_port_range(i * 100, i * 100 + 99).into_rule(i as u32, i as u32)
            })
            .collect();
        RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap()
    }

    fn fast_cfg() -> NuevoMatchConfig {
        NuevoMatchConfig {
            rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
            ..Default::default()
        }
    }

    fn trace(n: u64) -> TraceBuf {
        let mut t = TraceBuf::new(5);
        for i in 0..n {
            t.push(&[i, i * 7, i % 65_536, (i * 37) % 65_536, i % 256]);
        }
        t
    }

    fn runtime(batch: usize) -> Runtime {
        Runtime::new(RuntimeConfig { batch, ..Default::default() })
    }

    #[test]
    fn sharded_run_matches_sequential() {
        let set = port_set(200);
        let handle = ClassifierHandle::new(&set, &fast_cfg(), LinearSearch::build).unwrap();
        let sharded = ShardedHandle::new(
            &set,
            &fast_cfg(),
            &ShardPlanConfig { shards: 2, dim: Some(3), strategy: ShardStrategy::Range },
            LinearSearch::build,
        )
        .unwrap();
        let t = trace(4_000);
        let seq = run_sequential(&handle, &t);
        for (batch, wps) in [(128usize, 1usize), (128, 2), (7, 1), (512, 2)] {
            let rt =
                Runtime::new(RuntimeConfig { batch, workers_per_shard: wps, ..Default::default() });
            let stats = rt.run(&sharded, &t).unwrap();
            assert_eq!(stats.checksum, seq.checksum, "batch {batch} wps {wps}");
            assert_eq!(stats.shards, 2);
            assert_eq!(stats.workers, 2 * wps);
            assert_eq!(stats.steered.iter().sum::<u64>(), 4_000);
            assert_eq!(stats.generations.0, stats.generations.1, "static run spans one gen");
        }
    }

    #[test]
    fn split_plan_matches_sequential() {
        let set = port_set(200);
        let handle = ClassifierHandle::new(&set, &fast_cfg(), LinearSearch::build).unwrap();
        let t = trace(3_000);
        let seq = run_sequential(&handle, &t);
        let stats = runtime(128).run_split(&handle, &t).unwrap();
        assert_eq!(stats.checksum, seq.checksum);
        assert_eq!(stats.shards, 2);
        // Mirrored: both stages see every packet.
        assert_eq!(stats.steered, vec![3_000, 3_000]);
        assert!(stats.mean_batch_latency_ns > 0.0);
    }

    #[test]
    fn replicated_plan_matches_sequential_at_any_width() {
        let set = port_set(150);
        let engine = LinearSearch::build(&set);
        let t = trace(2_500);
        let seq = run_sequential(&engine, &t);
        for workers in [1usize, 2, 4] {
            let stats = runtime(64).run_replicated(&engine, workers, &t).unwrap();
            assert_eq!(stats.checksum, seq.checksum, "workers {workers}");
        }
    }

    #[test]
    fn per_worker_flow_cache_is_transparent() {
        let set = port_set(120);
        let sharded = ShardedHandle::new(
            &set,
            &fast_cfg(),
            &ShardPlanConfig { shards: 2, dim: Some(3), strategy: ShardStrategy::Range },
            LinearSearch::build,
        )
        .unwrap();
        // A skewed trace: few distinct keys, many repeats.
        let mut t = TraceBuf::new(5);
        for i in 0..4_000u64 {
            let flow = i % 16;
            t.push(&[9, 9, 9, flow * 700, 17]);
        }
        let seq = run_sequential(&sharded, &t);
        let rt = Runtime::new(RuntimeConfig { flow_cache: 1 << 10, ..Default::default() });
        let stats = rt.run(&sharded, &t).unwrap();
        assert_eq!(stats.checksum, seq.checksum, "caching must not change verdicts");
        assert!(
            stats.cache.hits > stats.cache.misses,
            "hot flows must hit the per-worker caches: {:?}",
            stats.cache
        );
    }

    #[test]
    fn worker_panic_surfaces_as_error() {
        struct Bomb;
        #[derive(Clone)]
        struct BombPin;
        impl ShardPin for BombPin {
            fn generation(&self) -> Generation {
                0
            }
            fn classify_shard(
                &self,
                _s: usize,
                _k: &[u64],
                _stride: usize,
                _o: &mut [Option<MatchResult>],
            ) {
                panic!("boom");
            }
        }
        impl ShardedDataPlane for Bomb {
            type Pin<'p>
                = BombPin
            where
                Self: 'p;
            fn shards(&self) -> usize {
                1
            }
            fn pin(&self) -> BombPin {
                BombPin
            }
        }
        let t = trace(300);
        let err = runtime(64).run(&Bomb, &t).unwrap_err();
        assert!(err.to_string().contains("boom"), "{err}");
    }

    #[test]
    fn empty_trace_is_a_noop() {
        let set = port_set(50);
        let engine = LinearSearch::build(&set);
        let t = TraceBuf::new(5);
        let stats = runtime(128).run_replicated(&engine, 2, &t).unwrap();
        assert_eq!((stats.checksum, stats.batches), (0, 0));
    }

    #[test]
    fn pipeline_depth_is_honoured() {
        // Depth 1 forces strict lock-step dispatch→merge; the checksum must
        // still match (the ring never recycles a live slot).
        let set = port_set(100);
        let engine = LinearSearch::build(&set);
        let t = trace(1_111);
        let seq = run_sequential(&engine, &t);
        for depth in [1usize, 2, 8] {
            let rt = Runtime::new(RuntimeConfig {
                batch: 32,
                pipeline_depth: depth,
                ..Default::default()
            });
            let stats = rt.run_replicated(&engine, 2, &t).unwrap();
            assert_eq!(stats.checksum, seq.checksum, "depth {depth}");
        }
    }
}
