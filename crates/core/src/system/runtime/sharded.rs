//! Sharded data planes: per-shard engine replicas behind one steering stage.
//!
//! Two flavours share the [`ShardPlan`] model:
//!
//! * [`ShardedClassifier`] — static per-shard engines built once from the
//!   plan's subsets. Any [`Classifier`] works (TupleMerge, CutSplit,
//!   NeuroCuts, NuevoMatch, boxed engines); this is the form `nmctl bench
//!   --shards` and the checksum-equivalence tests use.
//! * [`ShardedHandle`] — per-shard [`ClassifierHandle`] replicas for the
//!   full control-plane lifecycle. `UpdateBatch` applies **fan out**: each
//!   op routes to the shard the plan steers its rule to (moving shards when
//!   a modify changes the steering field), and the post-apply snapshots of
//!   every shard publish together as one [`ShardEpoch`] under one logical
//!   generation. Readers pin the epoch with two atomic ops; a pinned epoch
//!   is immutable, so **no batch can ever mix generations across shards** —
//!   the coherence the runtime's checksum equivalence rests on. Retrains
//!   fan the same way: every shard retrains (concurrently), then one epoch
//!   publishes the fresh models together.
//!
//! Both implement [`Classifier`] (steer → per-shard lookup → priority
//! merge), so they drop into every existing harness, and both implement
//! [`ShardedDataPlane`] so [`Runtime::run`](super::Runtime::run) can spread
//! their shards across pinned workers.

use std::collections::HashMap;
use std::sync::Arc;

use arc_swap::ArcSwap;
use parking_lot::Mutex;

use nm_common::classifier::{Classifier, MatchResult};
use nm_common::rule::{Priority, RuleId};
use nm_common::ruleset::RuleSet;
use nm_common::shard::{ShardPlan, ShardPlanConfig, ShardRoute, ShardStrategy};
use nm_common::update::{
    BatchUpdatable, EngineBuilder, Generation, UpdateBatch, UpdateOp, UpdateReport,
};
use nm_common::Error;

use super::{ShardPin, ShardedDataPlane};
use crate::config::NuevoMatchConfig;
use crate::system::handle::{ClassifierHandle, NmSnapshot};

/// Scatters `sub`'s verdicts (computed for the gathered keys at `idx`) back
/// into `out`, merging by priority.
fn scatter_merge(idx: &[u32], sub: &[Option<MatchResult>], out: &mut [Option<MatchResult>]) {
    for (j, &i) in idx.iter().enumerate() {
        out[i as usize] = MatchResult::better(out[i as usize], sub[j]);
    }
}

/// Applies caller floors as the final filter (the `classify_with_floor ≡
/// classify().filter(p < floor)` contract, batch-wide).
pub(super) fn apply_floors(floors: Option<&[Priority]>, out: &mut [Option<MatchResult>]) {
    if let Some(f) = floors {
        for i in 0..out.len() {
            if f[i] != Priority::MAX {
                out[i] = out[i].filter(|m| m.priority < f[i]);
            }
        }
    }
}

/// Gathers the keys steered to one shard into a flat buffer.
fn gather_keys(keys: &[u64], stride: usize, idx: &[u32], buf: &mut Vec<u64>) {
    buf.clear();
    for &i in idx {
        let i = i as usize;
        buf.extend_from_slice(&keys[i * stride..(i + 1) * stride]);
    }
}

/// Sweeps the broadcast engine over the whole batch and merges its verdicts
/// into `out` by priority.
fn merge_broadcast<B: Classifier + ?Sized>(
    broadcast: &B,
    keys: &[u64],
    stride: usize,
    out: &mut [Option<MatchResult>],
) {
    let mut tmp = vec![None; out.len()];
    broadcast.classify_batch(keys, stride, &mut tmp);
    for (o, t) in out.iter_mut().zip(tmp) {
        *o = MatchResult::better(*o, t);
    }
}

/// A gathered sub-batch sweep over one home shard: `(shard, keys, out)`.
type HomeSweep<'a> = &'a mut dyn FnMut(usize, &[u64], &mut [Option<MatchResult>]);
/// A whole-batch broadcast merge: `(keys, out)`, verdicts folded by priority.
type BroadcastSweep<'a> = &'a mut dyn FnMut(&[u64], &mut [Option<MatchResult>]);

/// The steering stage every sharded batch path shares — steer per key,
/// gather per home shard, sweep each sub-batch through `classify_home`,
/// merge the broadcast engine (when present) over the whole batch, apply
/// caller floors last. One definition, so the static and handle-backed data
/// planes cannot drift apart.
fn steered_batch_lookup(
    plan: &ShardPlan,
    keys: &[u64],
    stride: usize,
    floors: Option<&[Priority]>,
    out: &mut [Option<MatchResult>],
    classify_home: HomeSweep<'_>,
    classify_broadcast: Option<BroadcastSweep<'_>>,
) {
    out.fill(None);
    if plan.strategy() == ShardStrategy::RoundRobin {
        // Whole-set replicas: no steering needed inside one call.
        classify_home(0, keys, out);
        apply_floors(floors, out);
        return;
    }
    let mut idx: Vec<Vec<u32>> = vec![Vec::new(); plan.shards()];
    for (i, key) in keys.chunks_exact(stride).enumerate() {
        idx[plan.steer(key, 0)].push(i as u32);
    }
    let mut buf = Vec::new();
    let mut sub = Vec::new();
    for (shard, ids) in idx.iter().enumerate() {
        if ids.is_empty() {
            continue;
        }
        gather_keys(keys, stride, ids, &mut buf);
        sub.clear();
        sub.resize(ids.len(), None);
        classify_home(shard, &buf, &mut sub);
        scatter_merge(ids, &sub, out);
    }
    if let Some(broadcast) = classify_broadcast {
        broadcast(keys, out);
    }
    apply_floors(floors, out);
}

// ---------------------------------------------------------------------------
// Static shards
// ---------------------------------------------------------------------------

/// Per-shard engine replicas built once from a [`ShardPlan`] — the static
/// (no-update) sharded data plane.
///
/// The steering stage lives in [`Classifier::batch_lookup`]: packets gather
/// per home shard, each shard's engine sweeps its sub-batch through its own
/// batched pipeline, the broadcast engine sweeps the whole batch, and
/// verdicts merge by priority — verdict-equivalent to one whole-set engine
/// by the plan's construction invariant.
pub struct ShardedClassifier<C> {
    plan: ShardPlan,
    home: Vec<C>,
    /// Engine over the broadcast subset; `None` when no rule broadcasts.
    broadcast: Option<C>,
}

impl<C: Classifier> ShardedClassifier<C> {
    /// Builds the plan over `set` and one engine per subset.
    pub fn build(
        set: &RuleSet,
        cfg: &ShardPlanConfig,
        builder: impl EngineBuilder<Engine = C>,
    ) -> Result<Self, Error> {
        let plan = ShardPlan::build(set, cfg)?;
        let (home_sets, broadcast_set) = plan.subsets(set);
        let home = home_sets.iter().map(|s| builder.build_engine(s)).collect();
        let broadcast = (!broadcast_set.is_empty()).then(|| builder.build_engine(&broadcast_set));
        Ok(Self { plan, home, broadcast })
    }

    /// Assembles a sharded classifier from pre-built engines — one per home
    /// shard of `plan`, plus the broadcast engine (when the plan broadcasts
    /// anything). For callers whose engine construction can fail: build the
    /// engines over [`ShardPlan::subsets`] first, then assemble.
    pub fn from_parts(plan: ShardPlan, home: Vec<C>, broadcast: Option<C>) -> Result<Self, Error> {
        if home.len() != plan.shards() {
            return Err(Error::Build {
                msg: format!(
                    "ShardedClassifier::from_parts: {} engines for {} home shards",
                    home.len(),
                    plan.shards()
                ),
            });
        }
        if broadcast.is_none() && !plan.broadcast().is_empty() {
            return Err(Error::Build {
                msg: "ShardedClassifier::from_parts: the plan broadcasts rules but no \
                      broadcast engine was supplied"
                    .to_string(),
            });
        }
        Ok(Self { plan, home, broadcast })
    }

    /// The partition this data plane steers by.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Classifies one shard's gathered sub-batch: home engine plus the
    /// broadcast engine, merged.
    fn classify_sub(
        &self,
        shard: usize,
        keys: &[u64],
        stride: usize,
        out: &mut [Option<MatchResult>],
    ) {
        self.home[shard].classify_batch(keys, stride, out);
        if let Some(b) = &self.broadcast {
            merge_broadcast(b, keys, stride, out);
        }
    }
}

impl<C: Classifier> Classifier for ShardedClassifier<C> {
    fn classify(&self, key: &[u64]) -> Option<MatchResult> {
        // Replicated plans hold the whole set in every home shard, so any
        // shard answers; keyed plans steer by content.
        let shard = self.plan.steer(key, 0);
        let mut out = [None];
        self.classify_sub(shard, key, key.len(), &mut out);
        out[0]
    }

    fn batch_lookup(
        &self,
        keys: &[u64],
        stride: usize,
        floors: Option<&[Priority]>,
        out: &mut [Option<MatchResult>],
    ) {
        let mut broadcast = self.broadcast.as_ref().map(|b| {
            move |keys: &[u64], out: &mut [Option<MatchResult>]| {
                merge_broadcast(b, keys, stride, out)
            }
        });
        steered_batch_lookup(
            &self.plan,
            keys,
            stride,
            floors,
            out,
            &mut |shard, sub_keys, sub_out| {
                self.home[shard].classify_batch(sub_keys, stride, sub_out)
            },
            broadcast.as_mut().map(|f| f as BroadcastSweep<'_>),
        );
    }

    fn memory_bytes(&self) -> usize {
        self.home.iter().map(Classifier::memory_bytes).sum::<usize>()
            + self.broadcast.as_ref().map_or(0, Classifier::memory_bytes)
    }

    fn name(&self) -> &'static str {
        "sharded"
    }

    fn num_rules(&self) -> usize {
        match self.plan.strategy() {
            ShardStrategy::RoundRobin => self.home[0].num_rules(),
            _ => {
                self.home.iter().map(Classifier::num_rules).sum::<usize>()
                    + self.broadcast.as_ref().map_or(0, Classifier::num_rules)
            }
        }
    }

    fn generation(&self) -> Generation {
        // Monotone sum over the replicas, like NuevoMatch over its parts.
        self.home.iter().map(Classifier::generation).sum::<Generation>()
            + self.broadcast.as_ref().map_or(0, Classifier::generation)
    }
}

/// Borrowing pin over a [`ShardedClassifier`] — the engines are immutable,
/// so the "pin" is just a reference.
pub struct StaticPin<'a, C>(&'a ShardedClassifier<C>);

impl<C> Clone for StaticPin<'_, C> {
    fn clone(&self) -> Self {
        StaticPin(self.0)
    }
}

impl<C: Classifier> ShardPin for StaticPin<'_, C> {
    fn generation(&self) -> Generation {
        Classifier::generation(self.0)
    }

    fn classify_shard(
        &self,
        shard: usize,
        keys: &[u64],
        stride: usize,
        out: &mut [Option<MatchResult>],
    ) {
        self.0.classify_sub(shard, keys, stride, out);
    }
}

impl<C: Classifier> ShardedDataPlane for ShardedClassifier<C> {
    type Pin<'p>
        = StaticPin<'p, C>
    where
        Self: 'p;

    fn shards(&self) -> usize {
        self.plan.shards()
    }

    fn steer(&self, key: &[u64], batch: usize) -> usize {
        self.plan.steer(key, batch)
    }

    fn pin(&self) -> Self::Pin<'_> {
        StaticPin(self)
    }
}

// ---------------------------------------------------------------------------
// Handle-backed shards (live control plane)
// ---------------------------------------------------------------------------

/// One coherent cross-shard publication: every shard's snapshot pinned
/// together under a single logical generation. Immutable once published —
/// a reader holding an epoch can never observe two shards from different
/// generations, whatever the control plane does meanwhile.
pub struct ShardEpoch<R: Classifier> {
    generation: Generation,
    home: Vec<Arc<NmSnapshot<R>>>,
    broadcast: Arc<NmSnapshot<R>>,
}

impl<R: Classifier> ShardEpoch<R> {
    /// The logical generation (bumps once per fan-out apply or retrain).
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// Number of home shards.
    pub fn shards(&self) -> usize {
        self.home.len()
    }

    /// The pinned home-shard snapshots' own generations (instrumentation:
    /// coherence tests assert one epoch always reports the same vector).
    pub fn home_generations(&self) -> Vec<Generation> {
        self.home.iter().map(|s| s.generation()).collect()
    }

    /// Classifies one shard's gathered sub-batch against this epoch.
    fn classify_sub(
        &self,
        shard: usize,
        keys: &[u64],
        stride: usize,
        out: &mut [Option<MatchResult>],
    ) {
        self.home[shard].classify_batch(keys, stride, out);
        if self.broadcast.num_rules() > 0 {
            merge_broadcast(&*self.broadcast, keys, stride, out);
        }
    }
}

struct ShardedCtl {
    /// id → slot (home shard index, or `home.len()` for broadcast). The
    /// routing truth for update fan-out; empty for replicated plans, where
    /// every op fans to every shard.
    routes: HashMap<RuleId, usize>,
}

struct SharedSharded<R: Classifier> {
    plan: ShardPlan,
    home: Vec<ClassifierHandle<R>>,
    broadcast: ClassifierHandle<R>,
    epoch: ArcSwap<ShardEpoch<R>>,
    ctl: Mutex<ShardedCtl>,
}

/// Per-shard [`ClassifierHandle`] replicas under one logical generation —
/// the sharded runtime's live control plane. Clone freely; clones address
/// the same shards.
///
/// Writers (apply / retrain) serialise on an internal lock and publish a
/// fresh [`ShardEpoch`] per effective change; readers pin epochs lock-free
/// and are never blocked by either.
pub struct ShardedHandle<R: Classifier> {
    shared: Arc<SharedSharded<R>>,
}

impl<R: Classifier> Clone for ShardedHandle<R> {
    fn clone(&self) -> Self {
        Self { shared: self.shared.clone() }
    }
}

impl<R: Classifier> ShardedHandle<R> {
    /// Builds the plan over `set` and one [`ClassifierHandle`] per subset
    /// (the broadcast handle is always built, possibly empty, so later
    /// updates can route wildcard rules to it).
    pub fn new<B>(
        set: &RuleSet,
        cfg: &NuevoMatchConfig,
        plan_cfg: &ShardPlanConfig,
        builder: B,
    ) -> Result<Self, Error>
    where
        B: EngineBuilder<Engine = R> + 'static,
        R: 'static,
    {
        let plan = ShardPlan::build(set, plan_cfg)?;
        let builder: Arc<dyn EngineBuilder<Engine = R>> = Arc::new(builder);
        let (home_sets, broadcast_set) = plan.subsets(set);
        let home: Vec<ClassifierHandle<R>> = home_sets
            .iter()
            .map(|s| ClassifierHandle::new(s, cfg, builder.clone()))
            .collect::<Result<_, _>>()?;
        let broadcast = ClassifierHandle::new(&broadcast_set, cfg, builder.clone())?;
        let mut routes = HashMap::new();
        if plan.strategy() != ShardStrategy::RoundRobin {
            for rule in set.rules() {
                let slot = match plan.route_rule(rule) {
                    ShardRoute::Home(s) => s,
                    // Keyed plans never route `All`; if one ever does, the
                    // broadcast slot is the safe home — every shard consults
                    // it, so the rule still matches everywhere.
                    ShardRoute::Broadcast | ShardRoute::All => home.len(),
                };
                routes.insert(rule.id, slot);
            }
        }
        let epoch = ShardEpoch {
            generation: 1,
            home: home.iter().map(ClassifierHandle::snapshot).collect(),
            broadcast: broadcast.snapshot(),
        };
        Ok(Self {
            shared: Arc::new(SharedSharded {
                plan,
                home,
                broadcast,
                epoch: ArcSwap::new(Arc::new(epoch)),
                ctl: Mutex::new(ShardedCtl { routes }),
            }),
        })
    }

    /// The partition this handle steers by.
    pub fn plan(&self) -> &ShardPlan {
        &self.shared.plan
    }

    /// Pins the current epoch (two atomic ops, never blocks).
    pub fn epoch(&self) -> Arc<ShardEpoch<R>> {
        self.shared.epoch.load_full()
    }

    /// The published logical generation.
    pub fn generation(&self) -> Generation {
        self.shared.epoch.load().generation()
    }

    /// Publishes the current per-shard snapshots as the next logical
    /// generation. Callers must hold the ctl lock (single-writer).
    fn publish_epoch(&self) -> Generation {
        let generation = self.shared.epoch.load().generation() + 1;
        self.shared.epoch.store(Arc::new(ShardEpoch {
            generation,
            home: self.shared.home.iter().map(ClassifierHandle::snapshot).collect(),
            broadcast: self.shared.broadcast.snapshot(),
        }));
        generation
    }

    /// Rule-weighted §3.9 remainder fraction across the shards — the drift
    /// the whole sharded data plane currently serves (replicated plans
    /// report the identical per-replica value).
    pub fn remainder_fraction(&self) -> f64 {
        let epoch = self.epoch();
        let mut rules = 0usize;
        let mut weighted = 0.0f64;
        for snap in epoch.home.iter().chain(std::iter::once(&epoch.broadcast)) {
            let n = snap.num_rules();
            rules += n;
            weighted += snap.engine().remainder_fraction() * n as f64;
        }
        if rules == 0 {
            0.0
        } else {
            weighted / rules as f64
        }
    }

    fn handle_at(&self, slot: usize) -> &ClassifierHandle<R> {
        if slot == self.shared.home.len() {
            &self.shared.broadcast
        } else {
            &self.shared.home[slot]
        }
    }

    /// Classifies a whole batch against a caller-pinned [`ShardEpoch`] —
    /// the serve path's "one generation per flushed batch" contract. Same
    /// steering and broadcast merge as the `Classifier::batch_lookup` impl,
    /// but the epoch is chosen by the caller instead of re-pinned per call,
    /// so a batch assembled before a publish still classifies coherently.
    pub fn classify_batch_at(
        &self,
        epoch: &ShardEpoch<R>,
        keys: &[u64],
        stride: usize,
        out: &mut [Option<MatchResult>],
    ) {
        let mut broadcast = (epoch.broadcast.num_rules() > 0).then_some(
            |keys: &[u64], out: &mut [Option<MatchResult>]| {
                merge_broadcast(&*epoch.broadcast, keys, stride, out)
            },
        );
        steered_batch_lookup(
            &self.shared.plan,
            keys,
            stride,
            None,
            out,
            &mut |shard, sub_keys, sub_out| {
                epoch.home[shard].classify_batch(sub_keys, stride, sub_out)
            },
            broadcast.as_mut().map(|f| f as BroadcastSweep<'_>),
        );
    }
}

impl<R: BatchUpdatable + Clone> ShardedHandle<R> {
    /// Applies one transaction across the shards and publishes the result
    /// as one new epoch.
    ///
    /// Each op routes to the shard the plan steers its rule to; a modify
    /// whose new box steers elsewhere **moves** — a remove lands on the old
    /// shard and an insert on the new one, inside the same fan-out, so the
    /// placement invariant survives churn. Readers observe the whole batch
    /// or none of it: shard snapshots change only at the epoch swap.
    pub fn apply(&self, batch: &UpdateBatch) -> UpdateReport {
        if batch.is_empty() {
            return UpdateReport::default();
        }
        let sh = &*self.shared;
        let mut ctl = sh.ctl.lock();
        if sh.plan.strategy() == ShardStrategy::RoundRobin {
            // Whole-set replicas: every shard applies the whole batch; the
            // reports are identical, so the first stands for all.
            let mut report = UpdateReport::default();
            for (i, h) in sh.home.iter().enumerate() {
                let r = h.apply(batch);
                if i == 0 {
                    report = r;
                }
            }
            if report.changed() {
                self.publish_epoch();
            }
            return report;
        }
        let slots = sh.home.len() + 1; // broadcast last
        let mut per: Vec<UpdateBatch> = (0..slots).map(|_| UpdateBatch::new()).collect();
        let mut report = UpdateReport::default();
        for op in batch.ops() {
            match op {
                UpdateOp::Insert(r) | UpdateOp::Modify(r) => {
                    let target = match sh.plan.route_rule(r) {
                        ShardRoute::Home(s) => s,
                        // As in `new`: an unexpected `All` routes to the
                        // broadcast slot, which every shard consults.
                        ShardRoute::Broadcast | ShardRoute::All => sh.home.len(),
                    };
                    let old = ctl.routes.insert(r.id, target);
                    match old {
                        Some(o) if o == target => per[target].push(op.clone()),
                        Some(o) => {
                            // The rule moved shards: delete the old version
                            // where it lives, insert the new one where
                            // steering will look for it.
                            per[o].push(UpdateOp::Remove(r.id));
                            per[target].push(UpdateOp::Insert(r.clone()));
                        }
                        None => per[target].push(UpdateOp::Insert(r.clone())),
                    }
                    // Semantic accounting from the routing truth, not the
                    // per-shard engine reports (a move shows up down there
                    // as one removal plus one fresh insert).
                    report.inserted += 1;
                    match (old.is_some(), op) {
                        (true, _) => report.replaced += 1,
                        (false, UpdateOp::Modify(_)) => report.missing += 1,
                        (false, _) => {}
                    }
                }
                UpdateOp::Remove(id) => match ctl.routes.remove(id) {
                    Some(o) => {
                        per[o].push(UpdateOp::Remove(*id));
                        report.removed += 1;
                    }
                    None => report.missing += 1,
                },
            }
        }
        if report.changed() {
            for (slot, sub) in per.iter().enumerate() {
                if !sub.is_empty() {
                    self.handle_at(slot).apply(sub);
                }
            }
            self.publish_epoch();
        }
        report
    }

    /// Retrains every shard (concurrently — each shard's train is
    /// independent) and publishes the fresh models together as one epoch.
    /// Control-plane ops serialise behind this; readers never block.
    pub fn retrain(&self) -> Result<Generation, Error> {
        let sh = &*self.shared;
        let _ctl = sh.ctl.lock();
        let handles: Vec<&ClassifierHandle<R>> =
            sh.home.iter().chain(std::iter::once(&sh.broadcast)).collect();
        let mut first_err = None;
        std::thread::scope(|scope| {
            let joins: Vec<_> = handles.iter().map(|h| scope.spawn(move || h.retrain())).collect();
            for join in joins {
                match join.join() {
                    Ok(Ok(_)) => {}
                    Ok(Err(e)) => {
                        first_err.get_or_insert(e);
                    }
                    Err(_) => {
                        first_err.get_or_insert(Error::Build {
                            msg: "ShardedHandle::retrain: a shard retrain panicked".to_string(),
                        });
                    }
                }
            }
        });
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(self.publish_epoch())
    }
}

impl<R: Classifier> Classifier for ShardedHandle<R> {
    fn classify(&self, key: &[u64]) -> Option<MatchResult> {
        let epoch = self.epoch();
        let mut out = [None];
        epoch.classify_sub(self.shared.plan.steer(key, 0), key, key.len(), &mut out);
        out[0]
    }

    /// One epoch pin per batch: every packet classifies against the same
    /// logical generation on every shard.
    fn batch_lookup(
        &self,
        keys: &[u64],
        stride: usize,
        floors: Option<&[Priority]>,
        out: &mut [Option<MatchResult>],
    ) {
        let epoch = self.epoch();
        let mut broadcast = (epoch.broadcast.num_rules() > 0).then_some(
            |keys: &[u64], out: &mut [Option<MatchResult>]| {
                merge_broadcast(&*epoch.broadcast, keys, stride, out)
            },
        );
        steered_batch_lookup(
            &self.shared.plan,
            keys,
            stride,
            floors,
            out,
            &mut |shard, sub_keys, sub_out| {
                epoch.home[shard].classify_batch(sub_keys, stride, sub_out)
            },
            broadcast.as_mut().map(|f| f as BroadcastSweep<'_>),
        );
    }

    fn memory_bytes(&self) -> usize {
        let epoch = self.epoch();
        epoch.home.iter().map(|s| s.memory_bytes()).sum::<usize>() + epoch.broadcast.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "sharded-nm"
    }

    fn num_rules(&self) -> usize {
        let epoch = self.epoch();
        match self.shared.plan.strategy() {
            ShardStrategy::RoundRobin => epoch.home[0].num_rules(),
            _ => {
                epoch.home.iter().map(|s| s.num_rules()).sum::<usize>()
                    + epoch.broadcast.num_rules()
            }
        }
    }

    fn generation(&self) -> Generation {
        ShardedHandle::generation(self)
    }
}

/// Owning pin over a [`ShardedHandle`]: one epoch Arc, cheap to clone into
/// worker jobs, immutable for as long as any worker holds it.
pub struct EpochPin<R: Classifier>(Arc<ShardEpoch<R>>);

impl<R: Classifier> Clone for EpochPin<R> {
    fn clone(&self) -> Self {
        EpochPin(self.0.clone())
    }
}

impl<R: Classifier> ShardPin for EpochPin<R> {
    fn generation(&self) -> Generation {
        self.0.generation()
    }

    fn classify_shard(
        &self,
        shard: usize,
        keys: &[u64],
        stride: usize,
        out: &mut [Option<MatchResult>],
    ) {
        self.0.classify_sub(shard, keys, stride, out);
    }
}

impl<R: Classifier> ShardedDataPlane for ShardedHandle<R> {
    type Pin<'p>
        = EpochPin<R>
    where
        Self: 'p;

    fn shards(&self) -> usize {
        self.shared.plan.shards()
    }

    fn steer(&self, key: &[u64], batch: usize) -> usize {
        self.shared.plan.steer(key, batch)
    }

    fn pin(&self) -> Self::Pin<'_> {
        EpochPin(self.epoch())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RqRmiParams;
    use nm_common::{FieldsSpec, FiveTuple, LinearSearch};

    fn port_set(n: u16) -> RuleSet {
        let rules: Vec<_> = (0..n)
            .map(|i| {
                FiveTuple::new().dst_port_range(i * 100, i * 100 + 99).into_rule(i as u32, i as u32)
            })
            .collect();
        RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap()
    }

    fn fast_cfg() -> NuevoMatchConfig {
        NuevoMatchConfig {
            rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
            ..Default::default()
        }
    }

    fn plan_cfg(shards: usize) -> ShardPlanConfig {
        ShardPlanConfig { shards, dim: Some(3), strategy: ShardStrategy::Range }
    }

    #[test]
    fn static_sharded_equals_whole_set_engine() {
        let set = port_set(300);
        let whole = LinearSearch::build(&set);
        for shards in [1usize, 2, 5] {
            let sc =
                ShardedClassifier::build(&set, &plan_cfg(shards), LinearSearch::build).unwrap();
            assert_eq!(sc.num_rules(), 300);
            for port in (0u64..40_000).step_by(37) {
                let key = [1, 2, 3, port, 6];
                assert_eq!(sc.classify(&key), whole.classify(&key), "shards {shards} port {port}");
            }
            // Batched path agrees too, with and without floors.
            let keys: Vec<u64> =
                (0..256u64).flat_map(|i| [1, 2, 3, (i * 157) % 40_000, 6]).collect();
            let mut out = vec![None; 256];
            sc.classify_batch(&keys, 5, &mut out);
            for i in 0..256 {
                assert_eq!(out[i], whole.classify(&keys[i * 5..(i + 1) * 5]), "packet {i}");
            }
        }
    }

    #[test]
    fn sharded_handle_apply_fans_and_stays_coherent_with_reference() {
        let set = port_set(200);
        let reference = ClassifierHandle::new(&set, &fast_cfg(), LinearSearch::build).unwrap();
        let sharded =
            ShardedHandle::new(&set, &fast_cfg(), &plan_cfg(3), LinearSearch::build).unwrap();
        let probe = |a: &dyn Classifier, b: &dyn Classifier| {
            for port in (0u64..30_000).step_by(23) {
                let key = [0, 0, 0, port, 0];
                assert_eq!(a.classify(&key), b.classify(&key), "port {port}");
            }
        };
        probe(&reference, &sharded);
        // A batch that inserts, removes, and moves a rule across shards.
        let batch = UpdateBatch::new()
            .insert(FiveTuple::new().dst_port_exact(50_000).into_rule(900, 0))
            .remove(5)
            .modify(FiveTuple::new().dst_port_range(19_000, 19_010).into_rule(7, 7));
        let ra = reference.apply(&batch);
        let rb = sharded.apply(&batch);
        assert_eq!(ra, rb, "fan-out accounting must match the whole-set handle");
        probe(&reference, &sharded);
        // A pure-miss batch publishes nothing.
        let g = sharded.generation();
        let r = sharded.apply(&UpdateBatch::new().remove(9_999));
        assert_eq!((r.missing, sharded.generation()), (1, g));
    }

    #[test]
    fn sharded_retrain_republishes_one_epoch() {
        let set = port_set(240);
        let sharded =
            ShardedHandle::new(&set, &fast_cfg(), &plan_cfg(2), LinearSearch::build).unwrap();
        // Drift a few rules (moves to other shards / broadcast included).
        for i in 0..10u32 {
            sharded.apply(
                &UpdateBatch::new()
                    .modify(FiveTuple::new().dst_port_exact(60_000 + i as u16).into_rule(i, i)),
            );
        }
        let oracle: Vec<_> =
            (0u64..65_536).step_by(61).map(|p| sharded.classify(&[0, 0, 0, p, 0])).collect();
        let g0 = sharded.generation();
        let g = sharded.retrain().unwrap();
        assert_eq!(g, g0 + 1, "retrain publishes exactly one logical generation");
        for (i, p) in (0u64..65_536).step_by(61).enumerate() {
            assert_eq!(sharded.classify(&[0, 0, 0, p, 0]), oracle[i], "port {p}");
        }
    }

    #[test]
    fn epoch_pin_is_immutable_under_updates() {
        let set = port_set(150);
        let sharded =
            ShardedHandle::new(&set, &fast_cfg(), &plan_cfg(2), LinearSearch::build).unwrap();
        let pinned = sharded.epoch();
        let gens = pinned.home_generations();
        sharded.apply(
            &UpdateBatch::new().insert(FiveTuple::new().dst_port_exact(61_111).into_rule(700, 0)),
        );
        assert_eq!(pinned.home_generations(), gens, "a pinned epoch must never move");
        assert!(sharded.generation() > pinned.generation());
        // The pinned epoch still serves the old content.
        let mut out = [None];
        pinned.classify_sub(
            sharded.plan().steer(&[0, 0, 0, 61_111, 0], 0),
            &[0, 0, 0, 61_111, 0],
            5,
            &mut out,
        );
        assert_eq!(out[0], None);
        assert_eq!(sharded.classify(&[0, 0, 0, 61_111, 0]).unwrap().rule, 700);
    }

    #[test]
    fn replicated_plan_fans_updates_to_every_replica() {
        let set = port_set(80);
        let cfg = ShardPlanConfig { shards: 3, dim: None, strategy: ShardStrategy::RoundRobin };
        let sharded = ShardedHandle::new(&set, &fast_cfg(), &cfg, LinearSearch::build).unwrap();
        sharded.apply(&UpdateBatch::new().remove(5));
        // Every replica must have dropped the rule: probe both the batch
        // path (replica 0) and per-replica epochs.
        assert_eq!(sharded.classify(&[0, 0, 0, 550, 0]), None);
        let epoch = sharded.epoch();
        for s in 0..3 {
            let mut out = [None];
            epoch.home[s].classify_batch(&[0, 0, 0, 550, 0], 5, &mut out);
            assert_eq!(out[0], None, "replica {s} still serves the removed rule");
        }
    }
}
