//! CPU/NUMA topology discovery and worker pinning.
//!
//! The runtime reads the machine shape from sysfs
//! (`/sys/devices/system/node/node*/cpulist`, falling back to
//! `/sys/devices/system/cpu/online`) and pins workers with
//! `sched_setaffinity(2)` — shard replicas land on one node each, so a
//! shard's model, tables and flow cache stay in node-local memory.
//!
//! Everything degrades gracefully: a box without NUMA sysfs entries (or a
//! non-Linux host) reports a single node, and a single-CPU machine — the CI
//! box this repository measures on — produces no pin assignments at all, so
//! the runtime runs exactly like the unpinned harness. Pinning failures are
//! reported, never fatal.

/// One NUMA node and the CPUs it owns.
#[derive(Clone, Debug)]
pub struct NumaNode {
    /// Node id (the `nodeN` suffix in sysfs).
    pub id: usize,
    /// CPU ids on this node, ascending.
    pub cpus: Vec<usize>,
}

/// The machine shape the runtime schedules over.
#[derive(Clone, Debug)]
pub struct Topology {
    nodes: Vec<NumaNode>,
}

impl Topology {
    /// Discovers the topology from sysfs. Fallback chain: per-node
    /// `cpulist` files → the flat online-CPU list as one node → a
    /// single node sized by `std::thread::available_parallelism`.
    pub fn discover() -> Self {
        Self::from_sysfs("/sys/devices/system")
    }

    /// [`Topology::discover`] against an alternate sysfs root (tests).
    pub fn from_sysfs(root: &str) -> Self {
        let mut nodes = Vec::new();
        if let Ok(entries) = std::fs::read_dir(format!("{root}/node")) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                let Some(id) = name.strip_prefix("node").and_then(|s| s.parse::<usize>().ok())
                else {
                    continue;
                };
                if let Ok(list) = std::fs::read_to_string(entry.path().join("cpulist")) {
                    let cpus = parse_cpulist(&list);
                    if !cpus.is_empty() {
                        nodes.push(NumaNode { id, cpus });
                    }
                }
            }
        }
        nodes.sort_by_key(|n| n.id);
        if nodes.is_empty() {
            let cpus = std::fs::read_to_string(format!("{root}/cpu/online"))
                .map(|s| parse_cpulist(&s))
                .unwrap_or_default();
            return if cpus.is_empty() {
                Self::single_node(available())
            } else {
                Self { nodes: vec![NumaNode { id: 0, cpus }] }
            };
        }
        Self { nodes }
    }

    /// A synthetic one-node topology with CPUs `0..cpus` (fallback, tests).
    pub fn single_node(cpus: usize) -> Self {
        Self { nodes: vec![NumaNode { id: 0, cpus: (0..cpus.max(1)).collect() }] }
    }

    /// The NUMA nodes, ascending by id.
    pub fn nodes(&self) -> &[NumaNode] {
        &self.nodes
    }

    /// Total CPUs across all nodes.
    pub fn num_cpus(&self) -> usize {
        self.nodes.iter().map(|n| n.cpus.len()).sum()
    }

    /// Assigns a CPU to every worker of a `shards` × `workers_per_shard`
    /// grid: shard `s` maps to node `s % nodes` (replicas spread across
    /// sockets first — the point of sharding) and its workers take that
    /// node's CPUs round-robin.
    ///
    /// Returns one row per shard. On a machine with a single CPU the grid
    /// is empty — pinning everything onto one core would only serialise
    /// the pipeline behind the dispatcher, so the runtime degrades to
    /// unpinned scheduling instead (the single-core-CI fallback).
    pub fn assign(&self, shards: usize, workers_per_shard: usize) -> Vec<Vec<usize>> {
        if self.num_cpus() <= 1 {
            return Vec::new();
        }
        let mut next = vec![0usize; self.nodes.len()];
        (0..shards)
            .map(|s| {
                let node = &self.nodes[s % self.nodes.len()];
                let cursor = &mut next[s % self.nodes.len()];
                (0..workers_per_shard)
                    .map(|_| {
                        let cpu = node.cpus[*cursor % node.cpus.len()];
                        *cursor += 1;
                        cpu
                    })
                    .collect()
            })
            .collect()
    }
}

fn available() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Parses a sysfs cpulist (`"0-3,8,10-11"`) into CPU ids. Malformed pieces
/// are skipped — sysfs is trusted but a fallback must never panic.
pub fn parse_cpulist(s: &str) -> Vec<usize> {
    let mut cpus = Vec::new();
    for part in s.trim().split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match part.split_once('-') {
            Some((lo, hi)) => {
                if let (Ok(lo), Ok(hi)) = (lo.trim().parse::<usize>(), hi.trim().parse::<usize>()) {
                    if lo <= hi && hi - lo < 4096 {
                        cpus.extend(lo..=hi);
                    }
                }
            }
            None => {
                if let Ok(v) = part.parse::<usize>() {
                    cpus.push(v);
                }
            }
        }
    }
    cpus.sort_unstable();
    cpus.dedup();
    cpus
}

/// Pins the calling thread to one CPU. Returns whether the kernel accepted
/// the mask; `false` on failure or on non-Linux hosts (callers treat a
/// failed pin as "run unpinned", never as an error).
pub fn pin_current_thread(cpu: usize) -> bool {
    pin_impl(cpu)
}

#[cfg(target_os = "linux")]
fn pin_impl(cpu: usize) -> bool {
    // Raw sched_setaffinity(2): every Linux Rust binary already links libc,
    // and binding the one symbol directly keeps the workspace free of new
    // dependencies. Mask sized for 1024 CPUs, like glibc's cpu_set_t.
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    let mut mask = [0u64; 16];
    if cpu >= mask.len() * 64 {
        return false;
    }
    mask[cpu / 64] |= 1u64 << (cpu % 64);
    // SAFETY: pid 0 targets the calling thread; `mask` outlives the call and
    // `cpusetsize` is exactly its byte length, so the kernel reads only the
    // 128 bytes we own. The syscall has no other memory effects.
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

#[cfg(not(target_os = "linux"))]
fn pin_impl(_cpu: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpulist_parses_ranges_and_singles() {
        assert_eq!(parse_cpulist("0-3,8,10-11\n"), vec![0, 1, 2, 3, 8, 10, 11]);
        assert_eq!(parse_cpulist("5"), vec![5]);
        assert_eq!(parse_cpulist(""), Vec::<usize>::new());
        // Malformed pieces are skipped, not fatal.
        assert_eq!(parse_cpulist("x,2-1,3"), vec![3]);
    }

    #[test]
    fn discover_never_returns_empty() {
        let topo = Topology::discover();
        assert!(!topo.nodes().is_empty());
        assert!(topo.num_cpus() >= 1);
    }

    #[test]
    fn synthetic_sysfs_round_trips() {
        let root = std::env::temp_dir().join(format!("nm-topo-{}", std::process::id()));
        std::fs::create_dir_all(root.join("node/node0")).unwrap();
        std::fs::create_dir_all(root.join("node/node1")).unwrap();
        std::fs::write(root.join("node/node0/cpulist"), "0-3\n").unwrap();
        std::fs::write(root.join("node/node1/cpulist"), "4-7\n").unwrap();
        let topo = Topology::from_sysfs(root.to_str().unwrap());
        assert_eq!(topo.nodes().len(), 2);
        assert_eq!(topo.num_cpus(), 8);
        // Shards spread across nodes first; workers round-robin the node.
        let grid = topo.assign(2, 2);
        assert_eq!(grid, vec![vec![0, 1], vec![4, 5]]);
        let grid = topo.assign(4, 1);
        assert_eq!(grid, vec![vec![0], vec![4], vec![1], vec![5]]);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn single_cpu_degrades_to_unpinned() {
        let topo = Topology::single_node(1);
        assert!(topo.assign(2, 2).is_empty(), "1-CPU boxes must not pin");
    }

    #[test]
    fn pinning_reports_instead_of_failing() {
        // Whatever this box supports, the call must return (not crash) and
        // pinning to an absurd CPU id must report failure.
        let _ = pin_current_thread(0);
        assert!(!pin_current_thread(100_000));
    }
}
