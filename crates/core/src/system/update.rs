//! Rule updates (paper §3.9) — the direct, `&mut self` control path.
//!
//! Four update types:
//!
//! * **action change** — external to the classifier (the action table is the
//!   caller's); no structural work.
//! * **deletion** — a tombstone in the owning iSet (validation rejects it)
//!   or a removal from the remainder engine.
//! * **matching-set change** — delete + insert: the new version always goes
//!   to the remainder, because there is no known algorithmic way to update a
//!   trained RQ-RMI in place.
//! * **insertion** — straight to the remainder.
//!
//! Updates therefore grow the remainder over time;
//! [`NuevoMatch::remainder_fraction`] tracks the drift and a retrain resets
//! it — exactly the Figure 7 model, which `nm-analysis` reproduces
//! analytically and `nm-bench --bin update_bench` measures. Two retrain
//! flavours exist: a full rebuild (`NuevoMatch::build` over
//! [`NuevoMatch::live_rules`]) and the cheaper **partial retrain**
//! ([`NuevoMatch::partial_retrain`], see [`super::retrain`]) that re-fits
//! only the drifted leaf submodels and pulls admissible remainder rules back
//! into their iSets.
//!
//! The entry point is [`NuevoMatch::apply`] with an
//! [`UpdateBatch`](nm_common::UpdateBatch) transaction; `remove` / `insert` /
//! `modify` remain as single-op conveniences. All of these require exclusive
//! access (`&mut self`) and thus a quiesced data plane — concurrent readers
//! belong to [`super::ClassifierHandle`], which applies the same batches
//! against copy-on-write snapshots instead.
//!
//! ## Report semantics
//!
//! [`UpdateReport.removed`](nm_common::UpdateReport) counts **true
//! deletions** (`Remove` hits) only. An `Insert` or `Modify` that displaces
//! a live version of the same id — tombstoning an iSet copy or upserting in
//! the remainder — counts under `replaced`. The generation stamp bumps only
//! when the report shows an effective change
//! ([`UpdateReport::changed`](nm_common::UpdateReport::changed)): a batch of
//! misses publishes nothing and invalidates no caches.

use nm_common::classifier::Classifier;
use nm_common::rule::{Rule, RuleId};
use nm_common::update::{BatchUpdatable, UpdateBatch, UpdateOp, UpdateReport};

use super::NuevoMatch;

impl<R: BatchUpdatable> NuevoMatch<R> {
    /// Applies a whole transaction: tombstones iSet rules, routes everything
    /// else to the remainder engine in a single remainder batch, and bumps
    /// the generation once. Returns the merged accounting.
    pub fn apply(&mut self, batch: &UpdateBatch) -> UpdateReport {
        let mut report = UpdateReport::default();
        let mut remainder_ops = UpdateBatch::new();
        for op in batch.ops() {
            match op {
                UpdateOp::Insert(rule) => {
                    self.moved_updates += 1;
                    // Insert is an upsert on id, like the engines' own
                    // inserts (TupleMerge replaces a re-inserted id): a live
                    // iSet copy must die, or the stale version would keep
                    // matching until a retrain silently changed verdicts.
                    // That displacement is a *replacement* — the id keeps
                    // existing — not a deletion.
                    if self.tombstone_in_iset(rule.id) {
                        report.replaced += 1;
                    }
                    remainder_ops.push(UpdateOp::Insert(rule.clone()));
                }
                UpdateOp::Remove(id) => {
                    if self.tombstone_in_iset(*id) {
                        report.removed += 1;
                    } else {
                        remainder_ops.push(UpdateOp::Remove(*id));
                    }
                }
                UpdateOp::Modify(rule) => {
                    self.moved_updates += 1;
                    if self.tombstone_in_iset(rule.id) {
                        report.replaced += 1;
                        remainder_ops.push(UpdateOp::Insert(rule.clone()));
                    } else {
                        remainder_ops.push(UpdateOp::Modify(rule.clone()));
                    }
                }
            }
        }
        report.absorb(self.remainder_mut().apply(&remainder_ops));
        // Bump only on effective change. A batch whose every op missed (e.g.
        // removes of absent ids) serves the same content; bumping for it
        // would force a needless invalidation of every FlowCache above us.
        if report.changed() {
            self.generation += 1;
        }
        report
    }

    /// Removes a rule wherever it lives. Returns true if it was present.
    pub fn remove(&mut self, id: RuleId) -> bool {
        self.apply(&UpdateBatch::new().remove(id)).removed == 1
    }

    /// Inserts a new rule; it is indexed by the remainder engine until the
    /// next rebuild.
    pub fn insert(&mut self, rule: Rule) {
        self.apply(&UpdateBatch::new().insert(rule));
    }

    /// Matching-set change: removes the old version and inserts the new one
    /// into the remainder. Returns true if the old version existed (the
    /// displacement is reported as `replaced`, not `removed`).
    pub fn modify(&mut self, rule: Rule) -> bool {
        self.apply(&UpdateBatch::new().modify(rule)).replaced == 1
    }

    /// Tombstones `id` in its owning iSet, if it lives in one and is not
    /// already tombstoned (a modify may have moved the live version to the
    /// remainder, in which case the remainder owns the removal).
    fn tombstone_in_iset(&mut self, id: RuleId) -> bool {
        if let Some(&(iset_idx, pos)) = self.loc.get(&id) {
            let iset = &mut self.isets_mut()[iset_idx as usize];
            if !iset.is_deleted(pos as usize) {
                iset.tombstone(pos as usize);
                return true;
            }
        }
        false
    }

    /// Every rule this classifier currently serves: live (non-tombstoned)
    /// iSet rules plus the remainder engine's export. This is the control
    /// plane's ground truth for retrains and snapshot persistence.
    pub fn live_rules(&self) -> Vec<Rule> {
        let mut out = self.remainder().export_rules();
        for iset in self.isets() {
            for pos in 0..iset.len() {
                if !iset.is_deleted(pos) {
                    out.push(iset.rule_at(pos));
                }
            }
        }
        out
    }
}

impl<R: Classifier> NuevoMatch<R> {
    /// Rules that migrated into the remainder via updates since build.
    pub fn moved_to_remainder(&self) -> usize {
        self.moved_updates
    }

    /// Current fraction of rules served by the remainder engine — the
    /// quantity whose growth drives the Figure 7 throughput decay.
    pub fn remainder_fraction(&self) -> f64 {
        let total = nm_common::Classifier::num_rules(self);
        if total == 0 {
            return 0.0;
        }
        self.remainder().num_rules() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{NuevoMatchConfig, RqRmiParams};
    use crate::system::NuevoMatch;
    use nm_common::{
        BatchUpdatable, Classifier, FieldsSpec, FiveTuple, LinearSearch, RuleSet, UpdateBatch,
    };

    fn build(n: u16) -> NuevoMatch<LinearSearch> {
        let rules: Vec<_> = (0..n)
            .map(|i| {
                FiveTuple::new().dst_port_range(i * 100, i * 100 + 99).into_rule(i as u32, i as u32)
            })
            .collect();
        let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
        let cfg = NuevoMatchConfig {
            rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
            ..Default::default()
        };
        NuevoMatch::build(&set, &cfg, LinearSearch::build).unwrap()
    }

    #[test]
    fn delete_from_iset_takes_effect() {
        let mut nm = build(100);
        let key = [0u64, 0, 0, 550, 0]; // rule 5
        assert_eq!(nm.classify(&key).unwrap().rule, 5);
        assert!(nm.remove(5));
        assert_eq!(nm.classify(&key), None);
        assert!(!nm.remove(5), "double delete reports absence");
    }

    #[test]
    fn insert_goes_to_remainder() {
        let mut nm = build(50);
        let key = [0u64, 0, 0, 60_000, 0];
        assert_eq!(nm.classify(&key), None);
        let g0 = nm.generation();
        nm.insert(FiveTuple::new().dst_port_range(59_000, 61_000).into_rule(999, 0));
        assert_eq!(nm.classify(&key).unwrap().rule, 999);
        assert_eq!(nm.moved_to_remainder(), 1);
        assert!(nm.remainder_fraction() > 0.0);
        assert!(nm.generation() > g0, "updates must bump the generation stamp");
    }

    #[test]
    fn modify_moves_rule_to_remainder() {
        let mut nm = build(50);
        // Rule 7 matched ports 700-799; move it to 40_000-40_099.
        let newer = FiveTuple::new().dst_port_range(40_000, 40_099).into_rule(7, 7);
        assert!(nm.modify(newer));
        assert_eq!(nm.classify(&[0, 0, 0, 750, 0]), None);
        assert_eq!(nm.classify(&[0, 0, 0, 40_050, 0]).unwrap().rule, 7);
        // Modifying it again: the live version now lives in the remainder.
        let newest = FiveTuple::new().dst_port_range(50_000, 50_099).into_rule(7, 7);
        assert!(nm.modify(newest));
        assert_eq!(nm.classify(&[0, 0, 0, 40_050, 0]), None);
        assert_eq!(nm.classify(&[0, 0, 0, 50_050, 0]).unwrap().rule, 7);
    }

    #[test]
    fn batch_apply_is_one_generation_bump() {
        let mut nm = build(60);
        let g0 = nm.generation();
        let batch = UpdateBatch::new()
            .remove(3)
            .remove(3) // second one is a miss
            .insert(FiveTuple::new().dst_port_exact(61_111).into_rule(700, 0))
            .modify(FiveTuple::new().dst_port_range(45_000, 45_100).into_rule(8, 8));
        let report = nm.apply(&batch);
        assert_eq!(report.removed, 1, "rule 3 tombstone is the only true deletion");
        assert_eq!(report.replaced, 1, "rule 8 modify displaces, not deletes");
        assert_eq!(report.inserted, 2);
        assert_eq!(report.missing, 1);
        assert!(nm.generation() > g0);
        assert_eq!(nm.classify(&[0, 0, 0, 350, 0]), None);
        assert_eq!(nm.classify(&[0, 0, 0, 61_111, 0]).unwrap().rule, 700);
        assert_eq!(nm.classify(&[0, 0, 0, 45_050, 0]).unwrap().rule, 8);
    }

    #[test]
    fn noop_batch_does_not_bump_generation() {
        // Regression: `apply` used to bump the generation for any non-empty
        // batch, even when every op was a miss — forcing FlowCache layers to
        // invalidate for content that never changed.
        let mut nm = build(30);
        let g0 = nm.generation();
        let report = nm.apply(&UpdateBatch::new().remove(9_999).remove(8_888).remove(7_777));
        assert_eq!(report.missing, 3);
        assert!(!report.changed());
        assert_eq!(nm.generation(), g0, "miss-only batch must not bump the generation");
        // An effective op in the same batch shape does bump.
        let report = nm.apply(&UpdateBatch::new().remove(9_999).remove(3));
        assert_eq!((report.missing, report.removed), (1, 1));
        assert_eq!(nm.generation(), g0 + 1);
    }

    #[test]
    fn upsert_insert_reports_replacement_not_deletion() {
        let mut nm = build(30);
        // Re-insert rule 4 with the same box: the live iSet copy dies, but
        // the id keeps existing — a replacement.
        let report = nm.apply(
            &UpdateBatch::new().insert(FiveTuple::new().dst_port_range(400, 499).into_rule(4, 4)),
        );
        assert_eq!((report.inserted, report.replaced, report.removed), (1, 1, 0));
        assert_eq!(nm.classify(&[0, 0, 0, 450, 0]).unwrap().rule, 4);
        // Modifying it again: the live version now sits in the remainder,
        // and the remainder's upsert also reports `replaced`.
        let report = nm.apply(
            &UpdateBatch::new().insert(FiveTuple::new().dst_port_range(400, 450).into_rule(4, 4)),
        );
        assert_eq!((report.inserted, report.replaced, report.removed), (1, 1, 0));
        assert_eq!(nm.classify(&[0, 0, 0, 480, 0]), None, "stale remainder copy must die");
    }

    #[test]
    fn live_rules_track_update_stream() {
        let mut nm = build(40);
        nm.apply(
            &UpdateBatch::new()
                .remove(0)
                .remove(39)
                .insert(FiveTuple::new().dst_port_exact(62_000).into_rule(100, 1)),
        );
        let mut live = nm.live_rules();
        live.sort_by_key(|r| r.id);
        assert_eq!(live.len(), 39);
        assert!(live.iter().all(|r| r.id != 0 && r.id != 39));
        assert!(live.iter().any(|r| r.id == 100));
        // The live set rebuilt as a fresh classifier agrees everywhere.
        let rebuilt = LinearSearch::from_rules(live);
        for port in (0u64..8_000).step_by(7) {
            let key = [0, 0, 0, port, 0];
            assert_eq!(nm.classify(&key), rebuilt.classify(&key), "port {port}");
        }
    }

    #[test]
    fn updated_classifier_still_agrees_with_oracle() {
        let mut nm = build(80);
        // Apply a batch of mixed updates, mirror them in a linear oracle.
        let rules: Vec<_> = (0..80u16)
            .map(|i| {
                FiveTuple::new().dst_port_range(i * 100, i * 100 + 99).into_rule(i as u32, i as u32)
            })
            .collect();
        let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
        let mut oracle = LinearSearch::build(&set);
        let mut batch = UpdateBatch::new();
        for id in [3u32, 40, 77] {
            batch = batch.remove(id);
        }
        let add = FiveTuple::new().dst_port_range(300, 420).into_rule(500, 1);
        batch = batch.insert(add);
        nm.apply(&batch);
        oracle.apply(&batch);
        for port in (0u64..8_200).step_by(13) {
            let key = [1, 1, 1, port, 6];
            assert_eq!(nm.classify(&key), oracle.classify(&key), "port {port}");
        }
    }
}
