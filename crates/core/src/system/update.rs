//! Rule updates (paper §3.9).
//!
//! Four update types:
//!
//! * **action change** — external to the classifier (the action table is the
//!   caller's); no structural work.
//! * **deletion** — a tombstone in the owning iSet (validation rejects it)
//!   or a removal from the remainder engine.
//! * **matching-set change** — delete + insert: the new version always goes
//!   to the remainder, because there is no known algorithmic way to update a
//!   trained RQ-RMI in place.
//! * **insertion** — straight to the remainder.
//!
//! Updates therefore grow the remainder over time; [`NuevoMatch::remainder_fraction`]
//! tracks the drift and the operator retrains (rebuilds) when throughput
//! degradation warrants it — exactly the Figure 7 model, which
//! `nm-analysis` reproduces analytically.

use nm_common::classifier::Updatable;
use nm_common::rule::{Rule, RuleId};

use super::NuevoMatch;

impl<R: Updatable> NuevoMatch<R> {
    /// Removes a rule wherever it lives. Returns true if it was present.
    pub fn remove(&mut self, id: RuleId) -> bool {
        self.ensure_loc();
        let loc = self.loc.as_mut().expect("ensure_loc");
        if let Some((iset_idx, pos)) = loc.remove(&id) {
            self.isets_mut()[iset_idx as usize].tombstone(pos as usize);
            true
        } else {
            self.remainder_mut().remove(id)
        }
    }

    /// Inserts a new rule; it is indexed by the remainder engine until the
    /// next rebuild.
    pub fn insert(&mut self, rule: Rule) {
        self.moved_updates += 1;
        self.remainder_mut().insert(rule);
    }

    /// Matching-set change: removes the old version and inserts the new one
    /// into the remainder. Returns true if the old version existed.
    pub fn modify(&mut self, rule: Rule) -> bool {
        let existed = self.remove(rule.id);
        self.insert(rule);
        existed
    }

    /// Rules that migrated into the remainder via updates since build.
    pub fn moved_to_remainder(&self) -> usize {
        self.moved_updates
    }

    /// Current fraction of rules served by the remainder engine — the
    /// quantity whose growth drives the Figure 7 throughput decay.
    pub fn remainder_fraction(&self) -> f64 {
        let total = nm_common::Classifier::num_rules(self);
        if total == 0 {
            return 0.0;
        }
        self.remainder().num_rules() as f64 / total as f64
    }

    fn ensure_loc(&mut self) {
        if self.loc.is_some() {
            return;
        }
        let mut map = std::collections::HashMap::new();
        for (i, iset) in self.isets().iter().enumerate() {
            for pos in 0..iset.len() {
                map.insert(iset.rule_id_at(pos), (i as u32, pos as u32));
            }
        }
        self.loc = Some(map);
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{NuevoMatchConfig, RqRmiParams};
    use crate::system::NuevoMatch;
    use nm_common::{Classifier, FieldsSpec, FiveTuple, LinearSearch, RuleSet};

    fn build(n: u16) -> NuevoMatch<LinearSearch> {
        let rules: Vec<_> = (0..n)
            .map(|i| {
                FiveTuple::new().dst_port_range(i * 100, i * 100 + 99).into_rule(i as u32, i as u32)
            })
            .collect();
        let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
        let cfg = NuevoMatchConfig {
            rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
            ..Default::default()
        };
        NuevoMatch::build(&set, &cfg, LinearSearch::build).unwrap()
    }

    #[test]
    fn delete_from_iset_takes_effect() {
        let mut nm = build(100);
        let key = [0u64, 0, 0, 550, 0]; // rule 5
        assert_eq!(nm.classify(&key).unwrap().rule, 5);
        assert!(nm.remove(5));
        assert_eq!(nm.classify(&key), None);
        assert!(!nm.remove(5), "double delete reports absence");
    }

    #[test]
    fn insert_goes_to_remainder() {
        let mut nm = build(50);
        let key = [0u64, 0, 0, 60_000, 0];
        assert_eq!(nm.classify(&key), None);
        nm.insert(FiveTuple::new().dst_port_range(59_000, 61_000).into_rule(999, 0));
        assert_eq!(nm.classify(&key).unwrap().rule, 999);
        assert_eq!(nm.moved_to_remainder(), 1);
        assert!(nm.remainder_fraction() > 0.0);
    }

    #[test]
    fn modify_moves_rule_to_remainder() {
        let mut nm = build(50);
        // Rule 7 matched ports 700-799; move it to 40_000-40_099.
        let newer = FiveTuple::new().dst_port_range(40_000, 40_099).into_rule(7, 7);
        assert!(nm.modify(newer));
        assert_eq!(nm.classify(&[0, 0, 0, 750, 0]), None);
        assert_eq!(nm.classify(&[0, 0, 0, 40_050, 0]).unwrap().rule, 7);
    }

    #[test]
    fn updated_classifier_still_agrees_with_oracle() {
        let mut nm = build(80);
        // Apply a batch of mixed updates, mirror them in a linear oracle.
        let rules: Vec<_> = (0..80u16)
            .map(|i| {
                FiveTuple::new().dst_port_range(i * 100, i * 100 + 99).into_rule(i as u32, i as u32)
            })
            .collect();
        let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
        let mut oracle = LinearSearch::build(&set);
        use nm_common::Updatable;
        for id in [3u32, 40, 77] {
            nm.remove(id);
            oracle.remove(id);
        }
        let add = FiveTuple::new().dst_port_range(300, 420).into_rule(500, 1);
        nm.insert(add.clone());
        oracle.insert(add);
        for port in (0u64..8_200).step_by(13) {
            let key = [1, 1, 1, port, 6];
            assert_eq!(nm.classify(&key), oracle.classify(&key), "port {port}");
        }
    }
}
