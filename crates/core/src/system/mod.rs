//! The end-to-end NuevoMatch classifier (paper §3.8, §4).
//!
//! Build: partition into iSets → train one RQ-RMI per iSet → hand the
//! remainder to an external classifier. Lookup: query every iSet (predict →
//! secondary search → multi-field validation), query the remainder, return
//! the highest-priority candidate. With early termination (§4) the remainder
//! is queried *after* the iSets and may prune all work that cannot beat the
//! iSets' best candidate.

pub mod breakdown;
pub mod flow_cache;
pub mod handle;
#[cfg(nm_model)]
pub mod model_port;
pub mod parallel;
pub mod retrain;
pub mod runtime;
pub mod serve;
pub mod update;

pub use breakdown::{measure_breakdown, LookupBreakdown};
pub use flow_cache::{CacheStats, FlowCache};
pub use handle::{ClassifierHandle, NmSnapshot};
pub use parallel::{run_batched, ParallelStats};
pub use retrain::PartialRetrainReport;
pub use runtime::{
    PinPolicy, RunStats, Runtime, RuntimeConfig, ShardedClassifier, ShardedHandle, Topology,
};

use std::sync::Arc;

use nm_common::prefetch::prefetch_index;

use nm_common::classifier::{Classifier, MatchResult};
use nm_common::rule::{Priority, Rule, RuleId};
use nm_common::ruleset::{FieldsSpec, RuleSet};
use nm_common::update::{EngineBuilder, Generation};
use nm_common::Error;

use crate::config::NuevoMatchConfig;
use crate::iset::{partition_isets, ISet};
use crate::rqrmi::{train_rqrmi, CompiledRqRmi, RqRmi};

/// The immutable, snapshot-shareable part of a trained iSet: the compiled
/// RQ-RMI plus the packed lookup arrays. Never mutated after training, so
/// every snapshot generation shares one copy behind an `Arc` — cloning a
/// [`TrainedISet`] for a copy-on-write update costs a pointer bump plus the
/// tombstone vector, not a model.
struct ISetCore {
    /// Field this iSet does not overlap in.
    dim: usize,
    model: CompiledRqRmi,
    reference: RqRmi,
    /// Sorted range lower bounds in `dim` (the RQ-RMI value array order).
    los: Vec<u64>,
    /// Matching upper bounds.
    his: Vec<u64>,
    /// Rule id per position.
    rule_ids: Vec<RuleId>,
    /// Rule priority per position.
    priorities: Vec<Priority>,
    /// Flattened `[lo, hi]` per field per rule (`nfields * 2` per position),
    /// packed so one rule's validation data is contiguous (§4 packs field
    /// values to minimise cache lines touched).
    boxes: Vec<u64>,
    nfields: usize,
}

/// One iSet lowered for the lookup hot path: a compiled RQ-RMI over the
/// iSet's field projection, the sorted range arrays for the secondary
/// search, and flattened rule boxes for multi-field validation.
///
/// The trained arrays live in a shared immutable core; only the per-snapshot
/// tombstone vector (§3.9 deletions) is owned, which is what makes
/// [`NuevoMatch`] cloneable at update rates.
#[derive(Clone)]
pub struct TrainedISet {
    core: Arc<ISetCore>,
    /// Tombstones for §3.9 updates: a deleted rule fails validation.
    deleted: Vec<bool>,
}

impl TrainedISet {
    /// Trains the RQ-RMI and packs the lookup arrays for one iSet.
    pub fn build(set: &RuleSet, iset: &ISet, cfg: &NuevoMatchConfig) -> Result<Self, Error> {
        let dim = iset.dim;
        let bits = set.spec().bits(dim);
        let nfields = set.num_fields();
        let n = iset.rule_ids.len();

        let mut los = Vec::with_capacity(n);
        let mut his = Vec::with_capacity(n);
        let mut rule_ids = Vec::with_capacity(n);
        let mut priorities = Vec::with_capacity(n);
        let mut boxes = Vec::with_capacity(n * nfields * 2);
        for &id in &iset.rule_ids {
            let rule = set.rule(id);
            los.push(rule.fields[dim].lo);
            his.push(rule.fields[dim].hi);
            rule_ids.push(id);
            priorities.push(rule.priority);
            for f in &rule.fields {
                boxes.push(f.lo);
                boxes.push(f.hi);
            }
        }
        let ranges: Vec<nm_common::FieldRange> =
            los.iter().zip(&his).map(|(&lo, &hi)| nm_common::FieldRange::new(lo, hi)).collect();
        let reference = train_rqrmi(&ranges, bits, &cfg.rqrmi)?;
        Ok(Self::from_parts(dim, reference, los, his, rule_ids, priorities, boxes, vec![false; n]))
    }

    /// Assembles an iSet from already-trained parts (snapshot restore; also
    /// the tail of [`TrainedISet::build`]). The arrays must be position-
    /// aligned and `los`/`his` sorted in model order.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        dim: usize,
        reference: RqRmi,
        los: Vec<u64>,
        his: Vec<u64>,
        rule_ids: Vec<RuleId>,
        priorities: Vec<Priority>,
        boxes: Vec<u64>,
        deleted: Vec<bool>,
    ) -> Self {
        let n = rule_ids.len();
        debug_assert_eq!(los.len(), n);
        debug_assert_eq!(his.len(), n);
        debug_assert_eq!(deleted.len(), n);
        let nfields = if n == 0 { 0 } else { boxes.len() / (n * 2) };
        let model = CompiledRqRmi::new(&reference);
        Self {
            core: Arc::new(ISetCore {
                dim,
                model,
                reference,
                los,
                his,
                rule_ids,
                priorities,
                boxes,
                nfields,
            }),
            deleted,
        }
    }

    /// Field this iSet does not overlap in.
    pub fn dim(&self) -> usize {
        self.core.dim
    }

    /// Number of rules in the iSet.
    pub fn len(&self) -> usize {
        self.core.rule_ids.len()
    }

    /// True when the iSet holds no rules.
    pub fn is_empty(&self) -> bool {
        self.core.rule_ids.is_empty()
    }

    /// The trained model (diagnostics: error bounds, widths).
    pub fn model(&self) -> &RqRmi {
        &self.core.reference
    }

    /// Phase 1 — RQ-RMI inference: predicted index + error bound for the
    /// key's value in this iSet's field.
    #[inline]
    pub fn predict(&self, key: &[u64]) -> (usize, u32) {
        self.core.model.predict(key[self.core.dim])
    }

    /// Phase 2 — secondary search: binary search within
    /// `[pred − err, pred + err]` for the range containing the field value.
    /// Returns the position in the iSet arrays.
    #[inline]
    pub fn search(&self, pred: usize, err: u32, key: &[u64]) -> Option<usize> {
        self.search_value(pred, err, key[self.core.dim])
    }

    /// [`TrainedISet::search`] on an already-extracted field value (the
    /// batched pipeline gathers the projection once per batch).
    #[inline]
    pub fn search_value(&self, pred: usize, err: u32, v: u64) -> Option<usize> {
        let n = self.core.los.len();
        if n == 0 {
            // An iSet emptied by updates has nothing to search; without this
            // guard the `n - 1` window clamp below underflows.
            return None;
        }
        let lo = pred.saturating_sub(err as usize);
        let hi = (pred + err as usize).min(n - 1);
        // First range in the window whose upper bound is >= v.
        let off = self.core.his[lo..=hi].partition_point(|&h| h < v);
        let pos = lo + off;
        (pos <= hi && self.core.los[pos] <= v).then_some(pos)
    }

    /// Phase 3 — multi-field validation (§3.6): checks the candidate rule's
    /// box on every field and returns the match on success.
    #[inline]
    pub fn validate(&self, pos: usize, key: &[u64]) -> Option<MatchResult> {
        if self.deleted[pos] {
            return None;
        }
        let nfields = self.core.nfields;
        let base = pos * nfields * 2;
        let b = &self.core.boxes[base..base + nfields * 2];
        for (d, &v) in key.iter().enumerate() {
            if v < b[2 * d] || v > b[2 * d + 1] {
                return None;
            }
        }
        Some(MatchResult::new(self.core.rule_ids[pos], self.core.priorities[pos]))
    }

    /// Full iSet lookup: predict → search → validate.
    #[inline]
    pub fn lookup(&self, key: &[u64]) -> Option<MatchResult> {
        let (pred, err) = self.predict(key);
        let pos = self.search(pred, err, key)?;
        self.validate(pos, key)
    }

    /// Batched iSet lookup over a flat key buffer, phase-structured (§4's
    /// three lookup phases run batch-wide instead of packet-wide):
    ///
    /// 1. **predict** — gather this iSet's field projection and run the
    ///    RQ-RMI over 8 packets per register ([`CompiledRqRmi::predict_batch`]);
    /// 2. **prefetch** — touch each packet's `his`/`los` secondary-search
    ///    window so the (data-dependent, cache-missing) loads overlap;
    /// 3. **search** — the short windowed binary searches, prefetching the
    ///    validation boxes of every hit;
    /// 4. **validate + merge** — full multi-field check, folding winners
    ///    into `best` via [`MatchResult::better`].
    ///
    /// `best[i]` is merged, not overwritten, so callers chain iSets by
    /// passing the same buffer. Results are bit-identical to per-key
    /// [`TrainedISet::lookup`] merges (see `rqrmi::simd` docs for why the
    /// batch kernels cannot change search outcomes).
    pub fn lookup_batch(&self, keys: &[u64], stride: usize, best: &mut [Option<MatchResult>]) {
        const CHUNK: usize = 64;
        let n = best.len();
        assert!(stride > 0, "lookup_batch: stride must be positive");
        assert_eq!(keys.len(), stride * n, "lookup_batch: key buffer length mismatch");
        assert!(self.core.dim < stride, "lookup_batch: iSet field outside key stride");
        let core = &*self.core;
        let mut vals = [0u64; CHUNK];
        let mut preds = [0usize; CHUNK];
        let mut errs = [0u32; CHUNK];
        let mut pos = [usize::MAX; CHUNK];
        let mut base = 0;
        // nm-lint: hotpath
        while base < n {
            let m = CHUNK.min(n - base);
            // Phase 1: gather the projection, predict across packets.
            for i in 0..m {
                vals[i] = keys[(base + i) * stride + core.dim];
            }
            core.model.predict_batch(&vals[..m], &mut preds[..m], &mut errs[..m]);
            // Phase 2: prefetch every search window before any search runs,
            // so the misses resolve in parallel. The first two binary-search
            // probe addresses are deterministic (midpoint, then one of the
            // quarter points), so prefetching ends + mid + quarters covers
            // the first three levels of every search.
            for i in 0..m {
                let lo = preds[i].saturating_sub(errs[i] as usize);
                let hi = (preds[i] + errs[i] as usize).min(core.los.len().saturating_sub(1));
                let mid = lo + (hi - lo) / 2;
                prefetch_index(&core.his, lo);
                prefetch_index(&core.his, mid);
                prefetch_index(&core.his, hi);
                prefetch_index(&core.his, lo + (mid - lo) / 2);
                prefetch_index(&core.his, mid + (hi - mid) / 2);
                prefetch_index(&core.los, mid);
            }
            // Phase 3: secondary searches; prefetch hit boxes for phase 4.
            for i in 0..m {
                pos[i] = match self.search_value(preds[i], errs[i], vals[i]) {
                    Some(p) => {
                        prefetch_index(&core.boxes, p * core.nfields * 2);
                        p
                    }
                    None => usize::MAX,
                };
            }
            // Phase 4: validate and merge.
            for i in 0..m {
                if pos[i] != usize::MAX {
                    let key = &keys[(base + i) * stride..(base + i + 1) * stride];
                    best[base + i] =
                        MatchResult::better(best[base + i], self.validate(pos[i], key));
                }
            }
            base += m;
        }
        // nm-lint: end-hotpath
    }

    /// Index memory: the RQ-RMI weights (the sorted projections and boxes
    /// are rule storage, which the paper's footprint excludes — §5.2.1).
    pub fn memory_bytes(&self) -> usize {
        self.core.reference.memory_bytes()
    }

    /// Marks the rule at `pos` deleted (updates, §3.9).
    pub(crate) fn tombstone(&mut self, pos: usize) {
        self.deleted[pos] = true;
    }

    /// True when the rule at `pos` has been tombstoned.
    pub(crate) fn is_deleted(&self, pos: usize) -> bool {
        self.deleted[pos]
    }

    /// Number of tombstoned positions — this iSet's share of the §3.9 drift.
    pub fn tombstones(&self) -> usize {
        self.deleted.iter().filter(|&&d| d).count()
    }

    /// The sorted `dim` projection of the live (non-tombstoned) positions —
    /// the occupied intervals a partial retrain admits candidates against.
    /// Reads the packed arrays directly; no per-position `Rule` is built.
    pub(crate) fn live_projection(&self) -> (Vec<u64>, Vec<u64>) {
        let mut los = Vec::with_capacity(self.live_len());
        let mut his = Vec::with_capacity(self.live_len());
        for (pos, &dead) in self.deleted.iter().enumerate() {
            if !dead {
                los.push(self.core.los[pos]);
                his.push(self.core.his[pos]);
            }
        }
        (los, his)
    }

    /// Rules still served by this iSet (len minus tombstones).
    pub fn live_len(&self) -> usize {
        self.len() - self.tombstones()
    }

    /// Tombstone count per leaf submodel of this iSet's RQ-RMI — the drift
    /// *concentration* profile. A partial retrain refits only the leaves
    /// whose key region changed, so a profile with most tombstones in a few
    /// leaves is the cheap case; `nm-bench --bin update_bench` reports the
    /// dirty fraction from this.
    pub fn leaf_tombstone_counts(&self) -> Vec<u32> {
        let leaves = self.core.reference.leaf_error_bounds().len();
        let mut counts = vec![0u32; leaves];
        for (pos, &dead) in self.deleted.iter().enumerate() {
            if dead {
                counts[self.core.reference.route(self.core.los[pos])] += 1;
            }
        }
        counts
    }

    /// Incremental (partial) retrain of this one iSet — the §3.9
    /// refinement's structural half: compacts the tombstoned positions out
    /// of the lookup arrays, splices in `admitted` rules (their `dim`
    /// projections must not overlap the survivors or each other — see
    /// [`crate::iset::admit_into_iset`]), and patches the RQ-RMI **leaf
    /// stage only** through [`crate::rqrmi::retrain_leaves`], keeping every
    /// internal submodel and the compiled routing bit-identical.
    ///
    /// Errors propagate `retrain_leaves`'s gates (empty result, drift too
    /// broad for `max_refit_fraction`); callers fall back to a full rebuild.
    pub(crate) fn partial_retrain(
        &self,
        admitted: &[Rule],
        params: &crate::config::RqRmiParams,
        max_refit_fraction: f64,
    ) -> Result<(Self, crate::rqrmi::LeafRetrainStats), Error> {
        let core = &*self.core;
        let (dim, nfields) = (core.dim, core.nfields);
        let n_new = self.live_len() + admitted.len();
        if n_new == 0 {
            return Err(Error::Build {
                msg: "partial_retrain: iSet emptied by updates (drop it instead)".into(),
            });
        }
        // Merge survivors and admitted rules in lo order (both sides are
        // individually sorted after the sort below; survivors already are).
        let mut extra: Vec<&Rule> = admitted.iter().collect();
        extra.sort_unstable_by_key(|r| r.fields[dim].lo);
        let mut los = Vec::with_capacity(n_new);
        let mut his = Vec::with_capacity(n_new);
        let mut rule_ids = Vec::with_capacity(n_new);
        let mut priorities = Vec::with_capacity(n_new);
        let mut boxes = Vec::with_capacity(n_new * nfields * 2);
        let mut push_rule = |lo: u64, hi: u64, id: RuleId, pri: Priority, rb: &[u64]| {
            los.push(lo);
            his.push(hi);
            rule_ids.push(id);
            priorities.push(pri);
            boxes.extend_from_slice(rb);
        };
        let mut e = 0usize;
        for pos in 0..core.rule_ids.len() {
            if self.deleted[pos] {
                continue;
            }
            while e < extra.len() && extra[e].fields[dim].lo < core.los[pos] {
                let r = extra[e];
                let rb: Vec<u64> = r.fields.iter().flat_map(|f| [f.lo, f.hi]).collect();
                push_rule(r.fields[dim].lo, r.fields[dim].hi, r.id, r.priority, &rb);
                e += 1;
            }
            let base = pos * nfields * 2;
            push_rule(
                core.los[pos],
                core.his[pos],
                core.rule_ids[pos],
                core.priorities[pos],
                &core.boxes[base..base + nfields * 2],
            );
        }
        while e < extra.len() {
            let r = extra[e];
            let rb: Vec<u64> = r.fields.iter().flat_map(|f| [f.lo, f.hi]).collect();
            push_rule(r.fields[dim].lo, r.fields[dim].hi, r.id, r.priority, &rb);
            e += 1;
        }
        debug_assert_eq!(rule_ids.len(), n_new);

        let old_ranges: Vec<nm_common::FieldRange> = core
            .los
            .iter()
            .zip(&core.his)
            .map(|(&lo, &hi)| nm_common::FieldRange::new(lo, hi))
            .collect();
        let new_ranges: Vec<nm_common::FieldRange> =
            los.iter().zip(&his).map(|(&lo, &hi)| nm_common::FieldRange::new(lo, hi)).collect();
        let (model, stats) = crate::rqrmi::retrain_leaves(
            &core.reference,
            &old_ranges,
            &new_ranges,
            params,
            max_refit_fraction,
        )?;
        // Belt and braces on top of the analytic bounds: the patched model
        // must place every surviving range boundary within its search
        // window, or the partial path refuses and the caller rebuilds.
        let compiled = CompiledRqRmi::new(&model);
        for (idx, r) in new_ranges.iter().enumerate() {
            for key in [r.lo, r.hi] {
                let (pred, err) = compiled.predict(key);
                if pred.abs_diff(idx) > err as usize {
                    return Err(Error::Build {
                        msg: format!(
                            "partial_retrain: validation failed at key {key} \
                             (true {idx}, predicted {pred} ± {err})"
                        ),
                    });
                }
            }
        }
        Ok((
            Self::from_parts(dim, model, los, his, rule_ids, priorities, boxes, vec![false; n_new]),
            stats,
        ))
    }

    /// Rule id at a position (updates bookkeeping; positions are sorted by
    /// the iSet field's lower bound, so neighbouring positions are
    /// neighbouring key ranges — benches use this to build concentrated
    /// drift workloads).
    pub fn rule_id_at(&self, pos: usize) -> RuleId {
        self.core.rule_ids[pos]
    }

    /// Reconstructs the full rule stored at `pos` from the packed arrays
    /// (snapshot persistence and control-plane rule exports).
    pub fn rule_at(&self, pos: usize) -> Rule {
        let nfields = self.core.nfields;
        let base = pos * nfields * 2;
        let fields = (0..nfields)
            .map(|d| {
                nm_common::FieldRange::new(
                    self.core.boxes[base + 2 * d],
                    self.core.boxes[base + 2 * d + 1],
                )
            })
            .collect();
        Rule::new(self.core.rule_ids[pos], self.core.priorities[pos], fields)
    }

    /// Raw parts for snapshot persistence: `(dim, model, los, his, rule_ids,
    /// priorities, boxes, deleted)`.
    #[allow(clippy::type_complexity)]
    pub(crate) fn parts(
        &self,
    ) -> (usize, &RqRmi, &[u64], &[u64], &[RuleId], &[Priority], &[u64], &[bool]) {
        let c = &*self.core;
        (c.dim, &c.reference, &c.los, &c.his, &c.rule_ids, &c.priorities, &c.boxes, &self.deleted)
    }
}

/// The NuevoMatch classifier: iSets + a remainder engine `R`.
///
/// `R` is any [`Classifier`]; the paper evaluates TupleMerge, CutSplit and
/// NeuroCuts remainders. Build with [`NuevoMatch::build`], passing any
/// [`EngineBuilder`] — a plain `Fn(&RuleSet) -> R` (such as
/// `TupleMerge::build`) works via the blanket impl.
///
/// `NuevoMatch` is a pure **data-plane** value: lookups take `&self`.
/// Direct `&mut self` updates exist for single-threaded callers (see
/// [`update`]); the concurrent lifecycle — lock-free readers, transactional
/// updates, background retrains — lives in [`ClassifierHandle`], which
/// publishes clones of this type. Cloning shares the trained models and
/// copies only the tombstones and the remainder engine.
#[derive(Clone)]
pub struct NuevoMatch<R> {
    isets: Vec<TrainedISet>,
    remainder: R,
    early_termination: bool,
    total_rules: usize,
    /// Schema of the rule-set this classifier was built over.
    spec: FieldsSpec,
    /// Update stamp (see [`Classifier::generation`]).
    pub(crate) generation: Generation,
    /// Rules that migrated to the remainder through updates (§3.9).
    pub(crate) moved_updates: usize,
    /// Drifted rules that a previous *partial* retrain could not re-admit
    /// (their ids fell out of `loc` when the patched iSets were
    /// reassembled, so later admission-yield gates cannot see them in the
    /// routing map). Carried forward so the gate compares against the full
    /// accumulated drift; a full rebuild resets it to zero.
    pub(crate) residual_drift: usize,
    /// id → (iset, position) routing map. Immutable after build (tombstones
    /// are recorded in the iSets, not here), so snapshots share one copy.
    pub(crate) loc: Arc<std::collections::HashMap<RuleId, (u32, u32)>>,
}

impl<R: Classifier> NuevoMatch<R> {
    /// Partitions, trains and assembles the full classifier.
    ///
    /// `remainder_builder` receives the remainder rule subset (ids and
    /// priorities preserved) and returns the external classifier. Pass the
    /// same builder to [`ClassifierHandle::new`] so background retrains can
    /// reconstruct the remainder.
    pub fn build(
        set: &RuleSet,
        cfg: &NuevoMatchConfig,
        remainder_builder: impl EngineBuilder<Engine = R>,
    ) -> Result<Self, Error> {
        let partition = partition_isets(set, cfg.max_isets, cfg.min_iset_coverage);
        let mut isets = Vec::with_capacity(partition.isets.len());
        for iset in &partition.isets {
            isets.push(TrainedISet::build(set, iset, cfg)?);
        }
        let remainder_set = set.subset(&partition.remainder);
        let remainder = remainder_builder.build_engine(&remainder_set);
        Ok(Self::assemble(isets, remainder, cfg.early_termination, set.len(), set.spec().clone()))
    }

    /// Final assembly shared by [`NuevoMatch::build`] and snapshot restore:
    /// derives the routing map from the iSets.
    pub(crate) fn assemble(
        isets: Vec<TrainedISet>,
        remainder: R,
        early_termination: bool,
        total_rules: usize,
        spec: FieldsSpec,
    ) -> Self {
        let mut loc = std::collections::HashMap::new();
        for (i, iset) in isets.iter().enumerate() {
            for pos in 0..iset.len() {
                loc.insert(iset.rule_id_at(pos), (i as u32, pos as u32));
            }
        }
        Self {
            isets,
            remainder,
            early_termination,
            total_rules,
            spec,
            generation: 0,
            moved_updates: 0,
            residual_drift: 0,
            loc: Arc::new(loc),
        }
    }

    /// Drifted rules no partial retrain has managed to re-admit so far
    /// (see [`retrain::PartialRetrainReport`]); a full rebuild folds them
    /// back into the partition and resets this to zero.
    pub fn residual_drift(&self) -> usize {
        self.residual_drift
    }

    /// The trained iSets.
    pub fn isets(&self) -> &[TrainedISet] {
        &self.isets
    }

    /// Mutable iSets (update path).
    pub(crate) fn isets_mut(&mut self) -> &mut [TrainedISet] {
        &mut self.isets
    }

    /// The schema of the rule-set this classifier serves.
    pub fn spec(&self) -> &FieldsSpec {
        &self.spec
    }

    /// Whether early termination (§4) is enabled.
    pub fn early_termination(&self) -> bool {
        self.early_termination
    }

    /// The remainder engine.
    pub fn remainder(&self) -> &R {
        &self.remainder
    }

    /// Mutable remainder engine (update path). Callers that mutate rules
    /// through this must rely on the engine's own generation bump for cache
    /// invalidation (see [`Classifier::generation`]).
    pub fn remainder_mut(&mut self) -> &mut R {
        &mut self.remainder
    }

    /// Fraction of rules indexed by iSets at build time.
    pub fn coverage(&self) -> f64 {
        if self.total_rules == 0 {
            return 0.0;
        }
        let covered: usize = self.isets.iter().map(TrainedISet::len).sum();
        covered as f64 / self.total_rules as f64
    }

    /// Best candidate across the iSets only (phase API for Figure 14).
    #[inline]
    pub fn classify_isets(&self, key: &[u64]) -> Option<MatchResult> {
        let mut best = None;
        for iset in &self.isets {
            best = MatchResult::better(best, iset.lookup(key));
        }
        best
    }

    /// Batched [`NuevoMatch::classify_isets`]: runs every iSet's phase
    /// pipeline over the whole batch (each iSet's model and arrays stay hot
    /// across all packets) and leaves the merged iSet-side candidates in
    /// `out`. The two-worker split sends this to the iSet worker.
    pub fn classify_isets_batch(
        &self,
        keys: &[u64],
        stride: usize,
        out: &mut [Option<MatchResult>],
    ) {
        assert!(stride > 0, "classify_isets_batch: stride must be positive");
        assert_eq!(
            keys.len(),
            stride * out.len(),
            "classify_isets_batch: key buffer length mismatch"
        );
        out.fill(None);
        for iset in &self.isets {
            iset.lookup_batch(keys, stride, out);
        }
    }
}

impl<R: Classifier> Classifier for NuevoMatch<R> {
    fn classify(&self, key: &[u64]) -> Option<MatchResult> {
        let best = self.classify_isets(key);
        if self.early_termination {
            match best {
                Some(b) => {
                    MatchResult::better(best, self.remainder.classify_with_floor(key, b.priority))
                }
                None => self.remainder.classify(key),
            }
        } else {
            MatchResult::better(best, self.remainder.classify(key))
        }
    }

    fn classify_with_floor(&self, key: &[u64], floor: Priority) -> Option<MatchResult> {
        self.classify(key).filter(|m| m.priority < floor)
    }

    /// The batched pipeline: all iSets sweep the batch first (phase
    /// structure inside [`TrainedISet::lookup_batch`]), then the remainder
    /// runs with **batch-wide early termination** — every key that already
    /// holds an iSet candidate hands the remainder its priority floor, so
    /// the remainder prunes exactly as in the per-key path. Caller floors
    /// are folded into the remainder's pruning floors and applied as a
    /// final filter, which together mirror the per-key
    /// `classify(key).filter(p < floor)` dispatch of
    /// [`NuevoMatch::classify_with_floor`] bit-for-bit: the fold can only
    /// suppress remainder candidates the filter would discard.
    fn batch_lookup(
        &self,
        keys: &[u64],
        stride: usize,
        caller_floors: Option<&[Priority]>,
        out: &mut [Option<MatchResult>],
    ) {
        const CHUNK: usize = 128;
        self.classify_isets_batch(keys, stride, out);
        let mut rem = [None; CHUNK];
        let mut floors = [Priority::MAX; CHUNK];
        let mut base = 0;
        while base < out.len() {
            let m = CHUNK.min(out.len() - base);
            let chunk_keys = &keys[base * stride..(base + m) * stride];
            if self.early_termination {
                // Batch-wide early termination: each key's iSet candidate
                // becomes its remainder floor (MAX = no candidate), folded
                // with the caller's floor — any remainder result at or
                // above the caller floor would be discarded by the final
                // filter anyway, so the remainder may prune against it.
                for i in 0..m {
                    let cand = out[base + i].map_or(Priority::MAX, |b| b.priority);
                    floors[i] = cand.min(caller_floors.map_or(Priority::MAX, |f| f[base + i]));
                }
                self.remainder.classify_batch_with_floors(
                    chunk_keys,
                    stride,
                    &floors[..m],
                    &mut rem[..m],
                );
                // A real candidate whose priority *is* `Priority::MAX`
                // collides with the no-candidate sentinel above (the batch
                // call ran plain `classify` for it); redo those rare keys
                // with the explicit floor the per-key path would use. Only
                // a floor that was *sent* as MAX can collide.
                for i in 0..m {
                    if floors[i] == Priority::MAX
                        && matches!(out[base + i], Some(b) if b.priority == Priority::MAX)
                    {
                        let key = &chunk_keys[i * stride..(i + 1) * stride];
                        rem[i] = self.remainder.classify_with_floor(key, Priority::MAX);
                    }
                }
            } else {
                self.remainder.classify_batch(chunk_keys, stride, &mut rem[..m]);
            }
            for i in 0..m {
                out[base + i] = MatchResult::better(out[base + i], rem[i]);
            }
            base += m;
        }
        if let Some(f) = caller_floors {
            for i in 0..out.len() {
                if f[i] != Priority::MAX {
                    out[i] = out[i].filter(|m| m.priority < f[i]);
                }
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        let isets: usize = self.isets.iter().map(TrainedISet::memory_bytes).sum();
        isets + self.remainder.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "nm"
    }

    fn num_rules(&self) -> usize {
        self.total_rules
    }

    fn generation(&self) -> Generation {
        // Sum with the remainder's own stamp so rule changes applied
        // straight through `remainder_mut` (bypassing this type's update
        // path) still invalidate caches layered above. Both terms are
        // monotone, so the sum is.
        self.generation + self.remainder.generation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RqRmiParams;
    use nm_common::{FieldsSpec, FiveTuple, LinearSearch};

    fn port_set(n: u16) -> RuleSet {
        let rules: Vec<_> = (0..n)
            .map(|i| {
                FiveTuple::new().dst_port_range(i * 100, i * 100 + 99).into_rule(i as u32, i as u32)
            })
            .collect();
        RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap()
    }

    fn fast_cfg() -> NuevoMatchConfig {
        NuevoMatchConfig {
            rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn agrees_with_linear_search() {
        let set = port_set(500);
        let nm = NuevoMatch::build(&set, &fast_cfg(), LinearSearch::build).unwrap();
        let oracle = LinearSearch::build(&set);
        for port in (0u64..65536).step_by(53) {
            let key = [1, 2, 3, port, 6];
            assert_eq!(nm.classify(&key), oracle.classify(&key), "diverged at port {port}");
        }
    }

    #[test]
    fn full_coverage_single_iset() {
        let set = port_set(400);
        let nm = NuevoMatch::build(&set, &fast_cfg(), LinearSearch::build).unwrap();
        assert_eq!(nm.isets().len(), 1);
        assert_eq!(nm.coverage(), 1.0);
        assert_eq!(nm.remainder().num_rules(), 0);
    }

    #[test]
    fn early_termination_equivalence() {
        let set = port_set(300);
        let mut cfg = fast_cfg();
        cfg.early_termination = true;
        let with_et = NuevoMatch::build(&set, &cfg, LinearSearch::build).unwrap();
        cfg.early_termination = false;
        let without = NuevoMatch::build(&set, &cfg, LinearSearch::build).unwrap();
        for port in (0u64..65536).step_by(101) {
            let key = [9, 9, 9, port, 17];
            assert_eq!(with_et.classify(&key), without.classify(&key));
        }
    }

    #[test]
    fn memory_is_dominated_by_model_not_rules() {
        let set = port_set(600);
        let nm = NuevoMatch::build(&set, &fast_cfg(), LinearSearch::build).unwrap();
        // The RQ-RMI index for 600 rules must be way below the raw rule data.
        let iset_bytes: usize = nm.isets().iter().map(TrainedISet::memory_bytes).sum();
        assert!(iset_bytes < set.storage_bytes() / 2, "{iset_bytes} vs {}", set.storage_bytes());
    }

    #[test]
    fn classify_batch_bit_identical_to_per_key() {
        use nm_common::Classifier as _;
        let set = port_set(400);
        for et in [true, false] {
            let cfg = NuevoMatchConfig { early_termination: et, ..fast_cfg() };
            let nm = NuevoMatch::build(&set, &cfg, LinearSearch::build).unwrap();
            let keys: Vec<u64> =
                (0..600u64).flat_map(|i| [i, i * 3, i % 7, (i * 131) % 65_536, i % 256]).collect();
            let n = keys.len() / 5;
            // Ragged batch sizes exercise both the 8-lane groups and tails.
            for batch in [1usize, 3, 8, 127, 128, 600] {
                let mut out = vec![None; n];
                let mut lo = 0;
                while lo < n {
                    let hi = (lo + batch).min(n);
                    nm.classify_batch(&keys[lo * 5..hi * 5], 5, &mut out[lo..hi]);
                    lo = hi;
                }
                for i in 0..n {
                    let expect = nm.classify(&keys[i * 5..(i + 1) * 5]);
                    assert_eq!(out[i], expect, "et={et} batch={batch} packet {i}");
                }
            }
        }
    }

    #[test]
    fn classify_batch_handles_priority_max_candidates() {
        use nm_common::Classifier as _;
        // A wildcard rule (remainder, smaller id) and an iSet rule share
        // priority MAX — the batch path must not let the no-candidate floor
        // sentinel swallow the iSet candidate's floor. max_isets = 1 keeps
        // the wildcard in the remainder (with more iSets allowed it would
        // become a trivial single-rule iSet of its own).
        let mut rules = vec![FiveTuple::new().into_rule(0, Priority::MAX)];
        for i in 0..60u16 {
            let pri = if i == 30 { Priority::MAX } else { i as u32 };
            rules.push(
                FiveTuple::new().dst_port_range(i * 100, i * 100 + 99).into_rule(1 + i as u32, pri),
            );
        }
        let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
        let cfg = NuevoMatchConfig {
            early_termination: true,
            max_isets: 1,
            min_iset_coverage: 0.0,
            ..fast_cfg()
        };
        let nm = NuevoMatch::build(&set, &cfg, LinearSearch::build).unwrap();
        assert!(nm.remainder().num_rules() > 0, "wildcard must stay in the remainder");
        let keys: Vec<u64> = (0..60u64).flat_map(|i| [1, 2, 3, i * 100 + 50, 6]).collect();
        let mut out = vec![None; 60];
        nm.classify_batch(&keys, 5, &mut out);
        for i in 0..60 {
            let key = &keys[i * 5..(i + 1) * 5];
            assert_eq!(out[i], nm.classify(key), "packet {i} (port {})", key[3]);
        }
    }

    #[test]
    fn phase_api_consistent_with_lookup() {
        let set = port_set(200);
        let nm = NuevoMatch::build(&set, &fast_cfg(), LinearSearch::build).unwrap();
        let iset = &nm.isets()[0];
        let key = [0u64, 0, 0, 12_345, 0];
        let (pred, err) = iset.predict(&key);
        let pos = iset.search(pred, err, &key).unwrap();
        let m = iset.validate(pos, &key).unwrap();
        assert_eq!(iset.lookup(&key), Some(m));
        assert_eq!(m.rule, 123);
    }
}
