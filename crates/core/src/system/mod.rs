//! The end-to-end NuevoMatch classifier (paper §3.8, §4).
//!
//! Build: partition into iSets → train one RQ-RMI per iSet → hand the
//! remainder to an external classifier. Lookup: query every iSet (predict →
//! secondary search → multi-field validation), query the remainder, return
//! the highest-priority candidate. With early termination (§4) the remainder
//! is queried *after* the iSets and may prune all work that cannot beat the
//! iSets' best candidate.

pub mod breakdown;
pub mod flow_cache;
pub mod parallel;
pub mod update;

pub use breakdown::{measure_breakdown, LookupBreakdown};
pub use flow_cache::{CacheStats, FlowCache};
pub use parallel::{run_replicated, run_two_workers, ParallelStats};

use nm_common::classifier::{Classifier, MatchResult};
use nm_common::rule::{Priority, RuleId};
use nm_common::ruleset::RuleSet;
use nm_common::Error;

use crate::config::NuevoMatchConfig;
use crate::iset::{partition_isets, ISet};
use crate::rqrmi::{train_rqrmi, CompiledRqRmi, RqRmi};

/// One iSet lowered for the lookup hot path: a compiled RQ-RMI over the
/// iSet's field projection, the sorted range arrays for the secondary
/// search, and flattened rule boxes for multi-field validation.
pub struct TrainedISet {
    /// Field this iSet does not overlap in.
    pub dim: usize,
    model: CompiledRqRmi,
    reference: RqRmi,
    /// Sorted range lower bounds in `dim` (the RQ-RMI value array order).
    los: Vec<u64>,
    /// Matching upper bounds.
    his: Vec<u64>,
    /// Rule id per position.
    rule_ids: Vec<RuleId>,
    /// Rule priority per position.
    priorities: Vec<Priority>,
    /// Flattened `[lo, hi]` per field per rule (`nfields * 2` per position),
    /// packed so one rule's validation data is contiguous (§4 packs field
    /// values to minimise cache lines touched).
    boxes: Vec<u64>,
    /// Tombstones for §3.9 updates: a deleted rule fails validation.
    deleted: Vec<bool>,
    nfields: usize,
}

impl TrainedISet {
    /// Trains the RQ-RMI and packs the lookup arrays for one iSet.
    pub fn build(set: &RuleSet, iset: &ISet, cfg: &NuevoMatchConfig) -> Result<Self, Error> {
        let dim = iset.dim;
        let bits = set.spec().bits(dim);
        let nfields = set.num_fields();
        let n = iset.rule_ids.len();

        let mut los = Vec::with_capacity(n);
        let mut his = Vec::with_capacity(n);
        let mut rule_ids = Vec::with_capacity(n);
        let mut priorities = Vec::with_capacity(n);
        let mut boxes = Vec::with_capacity(n * nfields * 2);
        for &id in &iset.rule_ids {
            let rule = set.rule(id);
            los.push(rule.fields[dim].lo);
            his.push(rule.fields[dim].hi);
            rule_ids.push(id);
            priorities.push(rule.priority);
            for f in &rule.fields {
                boxes.push(f.lo);
                boxes.push(f.hi);
            }
        }
        let ranges: Vec<nm_common::FieldRange> = los
            .iter()
            .zip(&his)
            .map(|(&lo, &hi)| nm_common::FieldRange::new(lo, hi))
            .collect();
        let reference = train_rqrmi(&ranges, bits, &cfg.rqrmi)?;
        let model = CompiledRqRmi::new(&reference);
        Ok(Self {
            dim,
            model,
            reference,
            los,
            his,
            rule_ids,
            priorities,
            boxes,
            deleted: vec![false; n],
            nfields,
        })
    }

    /// Number of rules in the iSet.
    pub fn len(&self) -> usize {
        self.rule_ids.len()
    }

    /// True when the iSet holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rule_ids.is_empty()
    }

    /// The trained model (diagnostics: error bounds, widths).
    pub fn model(&self) -> &RqRmi {
        &self.reference
    }

    /// Phase 1 — RQ-RMI inference: predicted index + error bound for the
    /// key's value in this iSet's field.
    #[inline]
    pub fn predict(&self, key: &[u64]) -> (usize, u32) {
        self.model.predict(key[self.dim])
    }

    /// Phase 2 — secondary search: binary search within
    /// `[pred − err, pred + err]` for the range containing the field value.
    /// Returns the position in the iSet arrays.
    #[inline]
    pub fn search(&self, pred: usize, err: u32, key: &[u64]) -> Option<usize> {
        let v = key[self.dim];
        let n = self.los.len();
        let lo = pred.saturating_sub(err as usize);
        let hi = (pred + err as usize).min(n - 1);
        // First range in the window whose upper bound is >= v.
        let off = self.his[lo..=hi].partition_point(|&h| h < v);
        let pos = lo + off;
        (pos <= hi && self.los[pos] <= v).then_some(pos)
    }

    /// Phase 3 — multi-field validation (§3.6): checks the candidate rule's
    /// box on every field and returns the match on success.
    #[inline]
    pub fn validate(&self, pos: usize, key: &[u64]) -> Option<MatchResult> {
        if self.deleted[pos] {
            return None;
        }
        let base = pos * self.nfields * 2;
        let b = &self.boxes[base..base + self.nfields * 2];
        for (d, &v) in key.iter().enumerate() {
            if v < b[2 * d] || v > b[2 * d + 1] {
                return None;
            }
        }
        Some(MatchResult::new(self.rule_ids[pos], self.priorities[pos]))
    }

    /// Full iSet lookup: predict → search → validate.
    #[inline]
    pub fn lookup(&self, key: &[u64]) -> Option<MatchResult> {
        let (pred, err) = self.predict(key);
        let pos = self.search(pred, err, key)?;
        self.validate(pos, key)
    }

    /// Index memory: the RQ-RMI weights (the sorted projections and boxes
    /// are rule storage, which the paper's footprint excludes — §5.2.1).
    pub fn memory_bytes(&self) -> usize {
        self.reference.memory_bytes()
    }

    /// Marks the rule at `pos` deleted (updates, §3.9).
    pub(crate) fn tombstone(&mut self, pos: usize) {
        self.deleted[pos] = true;
    }

    /// Rule id at a position (updates bookkeeping).
    pub(crate) fn rule_id_at(&self, pos: usize) -> RuleId {
        self.rule_ids[pos]
    }
}

/// The NuevoMatch classifier: iSets + a remainder engine `R`.
///
/// `R` is any [`Classifier`]; the paper evaluates TupleMerge, CutSplit and
/// NeuroCuts remainders. Build with [`NuevoMatch::build`], passing a closure
/// that constructs the remainder engine from the remainder rule subset.
pub struct NuevoMatch<R> {
    isets: Vec<TrainedISet>,
    remainder: R,
    early_termination: bool,
    total_rules: usize,
    /// Rules that migrated to the remainder through updates (§3.9).
    pub(crate) moved_updates: usize,
    /// Lazy id → (iset, position) map for update routing.
    pub(crate) loc: Option<std::collections::HashMap<RuleId, (u32, u32)>>,
}

impl<R: Classifier> NuevoMatch<R> {
    /// Partitions, trains and assembles the full classifier.
    ///
    /// `make_remainder` receives the remainder rule subset (ids and
    /// priorities preserved) and returns the external classifier.
    pub fn build(
        set: &RuleSet,
        cfg: &NuevoMatchConfig,
        make_remainder: impl FnOnce(&RuleSet) -> R,
    ) -> Result<Self, Error> {
        let partition = partition_isets(set, cfg.max_isets, cfg.min_iset_coverage);
        let mut isets = Vec::with_capacity(partition.isets.len());
        for iset in &partition.isets {
            isets.push(TrainedISet::build(set, iset, cfg)?);
        }
        let remainder_set = set.subset(&partition.remainder);
        let remainder = make_remainder(&remainder_set);
        Ok(Self {
            isets,
            remainder,
            early_termination: cfg.early_termination,
            total_rules: set.len(),
            moved_updates: 0,
            loc: None,
        })
    }

    /// The trained iSets.
    pub fn isets(&self) -> &[TrainedISet] {
        &self.isets
    }

    /// Mutable iSets (update path).
    pub(crate) fn isets_mut(&mut self) -> &mut [TrainedISet] {
        &mut self.isets
    }

    /// The remainder engine.
    pub fn remainder(&self) -> &R {
        &self.remainder
    }

    /// Mutable remainder engine (update path).
    pub fn remainder_mut(&mut self) -> &mut R {
        &mut self.remainder
    }

    /// Fraction of rules indexed by iSets at build time.
    pub fn coverage(&self) -> f64 {
        if self.total_rules == 0 {
            return 0.0;
        }
        let covered: usize = self.isets.iter().map(TrainedISet::len).sum();
        covered as f64 / self.total_rules as f64
    }

    /// Best candidate across the iSets only (phase API for Figure 14).
    #[inline]
    pub fn classify_isets(&self, key: &[u64]) -> Option<MatchResult> {
        let mut best = None;
        for iset in &self.isets {
            best = MatchResult::better(best, iset.lookup(key));
        }
        best
    }
}

impl<R: Classifier> Classifier for NuevoMatch<R> {
    fn classify(&self, key: &[u64]) -> Option<MatchResult> {
        let best = self.classify_isets(key);
        if self.early_termination {
            match best {
                Some(b) => {
                    MatchResult::better(best, self.remainder.classify_with_floor(key, b.priority))
                }
                None => self.remainder.classify(key),
            }
        } else {
            MatchResult::better(best, self.remainder.classify(key))
        }
    }

    fn classify_with_floor(&self, key: &[u64], floor: Priority) -> Option<MatchResult> {
        self.classify(key).filter(|m| m.priority < floor)
    }

    fn memory_bytes(&self) -> usize {
        let isets: usize = self.isets.iter().map(TrainedISet::memory_bytes).sum();
        isets + self.remainder.memory_bytes()
    }

    fn name(&self) -> &'static str {
        "nm"
    }

    fn num_rules(&self) -> usize {
        self.total_rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RqRmiParams;
    use nm_common::{FieldsSpec, FiveTuple, LinearSearch};

    fn port_set(n: u16) -> RuleSet {
        let rules: Vec<_> = (0..n)
            .map(|i| {
                FiveTuple::new()
                    .dst_port_range(i * 100, i * 100 + 99)
                    .into_rule(i as u32, i as u32)
            })
            .collect();
        RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap()
    }

    fn fast_cfg() -> NuevoMatchConfig {
        NuevoMatchConfig {
            rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn agrees_with_linear_search() {
        let set = port_set(500);
        let nm = NuevoMatch::build(&set, &fast_cfg(), LinearSearch::build).unwrap();
        let oracle = LinearSearch::build(&set);
        for port in (0u64..65536).step_by(53) {
            let key = [1, 2, 3, port, 6];
            assert_eq!(
                nm.classify(&key),
                oracle.classify(&key),
                "diverged at port {port}"
            );
        }
    }

    #[test]
    fn full_coverage_single_iset() {
        let set = port_set(400);
        let nm = NuevoMatch::build(&set, &fast_cfg(), LinearSearch::build).unwrap();
        assert_eq!(nm.isets().len(), 1);
        assert_eq!(nm.coverage(), 1.0);
        assert_eq!(nm.remainder().num_rules(), 0);
    }

    #[test]
    fn early_termination_equivalence() {
        let set = port_set(300);
        let mut cfg = fast_cfg();
        cfg.early_termination = true;
        let with_et = NuevoMatch::build(&set, &cfg, LinearSearch::build).unwrap();
        cfg.early_termination = false;
        let without = NuevoMatch::build(&set, &cfg, LinearSearch::build).unwrap();
        for port in (0u64..65536).step_by(101) {
            let key = [9, 9, 9, port, 17];
            assert_eq!(with_et.classify(&key), without.classify(&key));
        }
    }

    #[test]
    fn memory_is_dominated_by_model_not_rules() {
        let set = port_set(600);
        let nm = NuevoMatch::build(&set, &fast_cfg(), LinearSearch::build).unwrap();
        // The RQ-RMI index for 600 rules must be way below the raw rule data.
        let iset_bytes: usize = nm.isets().iter().map(TrainedISet::memory_bytes).sum();
        assert!(iset_bytes < set.storage_bytes() / 2, "{iset_bytes} vs {}", set.storage_bytes());
    }

    #[test]
    fn phase_api_consistent_with_lookup() {
        let set = port_set(200);
        let nm = NuevoMatch::build(&set, &fast_cfg(), LinearSearch::build).unwrap();
        let iset = &nm.isets()[0];
        let key = [0u64, 0, 0, 12_345, 0];
        let (pred, err) = iset.predict(&key);
        let pos = iset.search(pred, err, &key).unwrap();
        let m = iset.validate(pos, &key).unwrap();
        assert_eq!(iset.lookup(&key), Some(m));
        assert_eq!(m.rule, 123);
    }
}
