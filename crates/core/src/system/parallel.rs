//! Batched execution reference loops and the legacy multi-worker entry
//! points (paper §4 "Parallelization" and §5.1).
//!
//! The multi-worker machinery lives in [`crate::system::runtime`] since the
//! sharded-runtime refactor: a [`Runtime`] executes *plans* —
//! [`SplitPlan`](crate::system::runtime::SplitPlan) (NuevoMatch's
//! iSet/remainder two-worker split),
//! [`Replicated`](crate::system::runtime::Replicated) (N whole-set shards,
//! the baselines' mode), and the sharded data planes
//! ([`ShardedHandle`](crate::system::runtime::ShardedHandle) /
//! [`ShardedClassifier`](crate::system::runtime::ShardedClassifier)) — with
//! NUMA-aware worker pinning, a configurable pipeline depth, per-worker
//! flow caches and propagated worker errors. The old `run_two_workers` /
//! `run_replicated` free functions are gone — call
//! [`Runtime::run_split`] / [`Runtime::run_replicated`] directly.
//!
//! This module keeps the two single-threaded reference loops —
//! [`run_sequential`] (the §5.2 per-key methodology) and [`run_batched`]
//! (the `classify_batch` path) — which every parallel checksum is validated
//! against, plus the [`ParallelStats`] shape the wrappers and benches
//! consume.
//!
//! **Single-core CI fallback.** This repository's CI machine has a single
//! physical core. The runtime's [`Topology`](crate::system::runtime::Topology)
//! reports that shape and schedules every worker unpinned (pinning a
//! pipeline onto one core would only serialise it behind the dispatcher),
//! so the measured *numbers* time-share; the harness structure is identical
//! to the paper's and scales on real multi-core hardware. EXPERIMENTS.md
//! discusses the caveat.

use nm_common::classifier::{Classifier, MatchResult};
use nm_common::packet::TraceBuf;

use super::runtime::{fold_checksum, RunStats};

/// Default batch size from the paper.
pub const BATCH: usize = 128;

/// Result of a parallel run (the legacy stats shape; the runtime's richer
/// [`RunStats`] converts into it).
#[derive(Clone, Copy, Debug)]
pub struct ParallelStats {
    /// Wall-clock seconds for the whole trace.
    pub seconds: f64,
    /// Packets per second.
    pub pps: f64,
    /// Mean per-batch latency in nanoseconds (dispatch → merged).
    pub mean_batch_latency_ns: f64,
    /// Fold of matched rule ids (sequential-equivalence checks).
    pub checksum: u64,
}

impl From<RunStats> for ParallelStats {
    fn from(s: RunStats) -> Self {
        Self {
            seconds: s.seconds,
            pps: s.pps,
            mean_batch_latency_ns: s.mean_batch_latency_ns,
            checksum: s.checksum,
        }
    }
}

/// Single-core **batched** run: the trace flows through
/// [`Classifier::classify_batch`] in batches of `batch` packets on the
/// caller's thread. The checksum folds per-packet results in trace order, so
/// it must equal [`run_sequential`]'s — the batch-size sweep in
/// `nm-bench --bin batch` measures exactly this path against `batch = 1`.
pub fn run_batched(c: &dyn Classifier, trace: &TraceBuf, batch: usize) -> ParallelStats {
    let n = trace.len();
    if n == 0 {
        return ParallelStats { seconds: 0.0, pps: 0.0, mean_batch_latency_ns: 0.0, checksum: 0 };
    }
    let batch = batch.max(1);
    let stride = trace.stride();
    let raw = trace.raw();
    let mut out: Vec<Option<MatchResult>> = vec![None; batch];
    let mut checksum = 0u64;
    let n_batches = n.div_ceil(batch);
    let start = std::time::Instant::now();
    let mut lo = 0usize;
    while lo < n {
        let hi = (lo + batch).min(n);
        c.classify_batch(&raw[lo * stride..hi * stride], stride, &mut out[..hi - lo]);
        for &m in &out[..hi - lo] {
            fold_checksum(&mut checksum, m);
        }
        lo = hi;
    }
    let seconds = start.elapsed().as_secs_f64();
    ParallelStats {
        seconds,
        pps: n as f64 / seconds.max(1e-12),
        mean_batch_latency_ns: seconds * 1e9 / n_batches as f64,
        checksum,
    }
}

/// Sequential reference run (single core, early termination as configured) —
/// the §5.2 single-core methodology, also used to validate the parallel
/// paths' checksums.
pub fn run_sequential(c: &dyn Classifier, trace: &TraceBuf) -> ParallelStats {
    let n = trace.len();
    let start = std::time::Instant::now();
    let mut checksum = 0u64;
    for key in trace.iter() {
        fold_checksum(&mut checksum, c.classify(key));
    }
    let seconds = start.elapsed().as_secs_f64();
    ParallelStats {
        seconds,
        pps: n as f64 / seconds.max(1e-12),
        mean_batch_latency_ns: seconds * 1e9 / n.max(1) as f64,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NuevoMatchConfig, RqRmiParams};
    use crate::system::handle::ClassifierHandle;
    use crate::system::runtime::{Runtime, RuntimeConfig};
    use nm_common::{FieldsSpec, FiveTuple, LinearSearch, RuleSet};

    fn setup() -> (ClassifierHandle<LinearSearch>, TraceBuf) {
        let rules: Vec<_> = (0..200u16)
            .map(|i| {
                FiveTuple::new()
                    .dst_port_range(i * 300, i * 300 + 250)
                    .into_rule(i as u32, i as u32)
            })
            .collect();
        let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
        let cfg = NuevoMatchConfig {
            rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
            ..Default::default()
        };
        let nm = ClassifierHandle::new(&set, &cfg, LinearSearch::build).unwrap();
        let mut trace = TraceBuf::new(5);
        for i in 0..4_000u64 {
            trace.push(&[i, i * 7, i % 65_536, (i * 37) % 65_536, (i % 256)]);
        }
        (nm, trace)
    }

    #[test]
    fn batched_matches_sequential_checksum() {
        let (nm, trace) = setup();
        let seq = run_sequential(&nm, &trace);
        for batch in [1, 8, 128, 512, 4096, 10_000] {
            let b = run_batched(&nm, &trace, batch);
            assert_eq!(seq.checksum, b.checksum, "diverged at batch {batch}");
        }
    }

    fn rt(batch: usize) -> Runtime {
        Runtime::new(RuntimeConfig { batch, ..Default::default() })
    }

    #[test]
    fn split_runtime_matches_sequential() {
        let (nm, trace) = setup();
        let seq = run_sequential(&nm, &trace);
        let par: ParallelStats = rt(128).run_split(&nm, &trace).unwrap().into();
        assert_eq!(seq.checksum, par.checksum);
        assert!(par.pps > 0.0);
        assert!(par.mean_batch_latency_ns > 0.0);
    }

    #[test]
    fn replicated_runtime_matches_sequential_at_any_width() {
        let (nm, trace) = setup();
        let seq = run_sequential(&nm, &trace);
        // The plan-based runtime merges in trace order: the checksum is
        // comparable at every thread count, not only at one.
        for threads in [1usize, 2] {
            let rep = rt(128).run_replicated(&nm, threads, &trace).unwrap();
            assert_eq!(rep.checksum, seq.checksum, "threads {threads}");
            assert!(rep.pps > 0.0);
        }
    }

    #[test]
    fn empty_trace() {
        let (nm, _) = setup();
        let empty = TraceBuf::new(5);
        let s = rt(128).run_split(&nm, &empty).unwrap();
        assert_eq!(s.checksum, 0);
        assert_eq!(rt(128).run_replicated(&nm, 2, &empty).unwrap().checksum, 0);
    }

    #[test]
    fn two_workers_survive_concurrent_updates_and_retrain() {
        // A run under live control-plane traffic must complete (readers
        // never block) and every batch must stay internally consistent —
        // generation pinning means the run equals *some* interleaving of
        // the update stream, so we assert structural health, not a fixed
        // checksum.
        use nm_common::{FiveTuple, UpdateBatch};
        let (handle, trace) = setup();
        let writer = handle.clone();
        let done = std::sync::atomic::AtomicBool::new(false);
        crossbeam::thread::scope(|scope| {
            scope.spawn(|_| {
                let mut i = 0u32;
                while !done.load(std::sync::atomic::Ordering::SeqCst) {
                    writer.apply(
                        &UpdateBatch::new().modify(
                            FiveTuple::new()
                                .dst_port_exact(50_000 + (i % 1_000) as u16)
                                .into_rule(i % 200, i % 200),
                        ),
                    );
                    i += 1;
                    if i % 64 == 0 {
                        let _ = writer.retrain();
                    }
                }
            });
            for _ in 0..5 {
                let s = rt(128).run_split(&handle, &trace).unwrap();
                assert!(s.pps > 0.0);
            }
            done.store(true, std::sync::atomic::Ordering::SeqCst);
        })
        .expect("scope");
        assert!(handle.generation() > 1, "updates must have published");
    }
}
