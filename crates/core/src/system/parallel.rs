//! Batched multi-worker execution (paper §4 "Parallelization" and §5.1).
//!
//! Two execution modes from the paper's methodology:
//!
//! * [`run_two_workers`] — NuevoMatch's split: one worker runs all RQ-RMI
//!   iSets, the other runs the remainder classifier, results merge per
//!   batch. Each worker's working set stays small (the RQ-RMIs fit in L1
//!   even when the remainder does not).
//! * [`run_replicated`] — the baselines' best case: `t` instances of the
//!   same classifier (no rule duplication — shared reference), batches
//!   split between them round-robin, "almost linear scaling with perfect
//!   load balancing".
//!
//! Batches of 128 packets amortise the synchronisation, as in §5.1.
//!
//! The runtime consumes [`ClassifierHandle`]s, not `&NuevoMatch`: workers
//! classify against generation-pinned snapshots, so a control-plane update
//! or retrain can land mid-run without stalling a single batch. The
//! dispatcher pins one snapshot per batch and hands the *same* snapshot to
//! both workers, which keeps the split halves of a batch on one generation
//! (merging candidates from two generations would not be a classifier any
//! sequential run could produce). [`run_batched`] / [`run_replicated`] /
//! [`run_sequential`] take `&dyn Classifier` — pass a handle to serve under
//! updates (its `classify_batch` pins per batch), or a bare engine for
//! static workloads.
//!
//! This repository's CI machine has a single physical core, so the measured
//! *numbers* time-share; the harness structure is identical to the paper's
//! and scales on real multi-core hardware. EXPERIMENTS.md discusses the
//! caveat.

use std::sync::Arc;

use crossbeam::channel;
use nm_common::classifier::{Classifier, MatchResult};
use nm_common::packet::TraceBuf;

use super::handle::{ClassifierHandle, NmSnapshot};

/// Default batch size from the paper.
pub const BATCH: usize = 128;

/// Result of a parallel run.
#[derive(Clone, Copy, Debug)]
pub struct ParallelStats {
    /// Wall-clock seconds for the whole trace.
    pub seconds: f64,
    /// Packets per second.
    pub pps: f64,
    /// Mean per-batch latency in nanoseconds (dispatch → merged).
    pub mean_batch_latency_ns: f64,
    /// Fold of matched rule ids (sequential-equivalence checks).
    pub checksum: u64,
}

fn fold(checksum: &mut u64, m: Option<MatchResult>) {
    let v = m.map_or(u64::MAX, |r| r.rule as u64);
    *checksum = checksum.wrapping_mul(0x100_0000_01b3).wrapping_add(v);
}

/// Runs NuevoMatch with the paper's two-worker split: worker A executes the
/// iSet RQ-RMIs, worker B the remainder classifier; the caller's thread
/// merges per-batch candidates in order.
///
/// Takes a [`ClassifierHandle`], not `&NuevoMatch`: the dispatcher pins one
/// snapshot per batch and ships it to both workers, so updates and retrain
/// swaps landing mid-run never stall a batch and never split one batch
/// across generations.
pub fn run_two_workers<R: Classifier>(
    handle: &ClassifierHandle<R>,
    trace: &TraceBuf,
    batch: usize,
) -> ParallelStats {
    let n = trace.len();
    if n == 0 {
        return ParallelStats { seconds: 0.0, pps: 0.0, mean_batch_latency_ns: 0.0, checksum: 0 };
    }
    let batch = batch.max(1);
    let n_batches = n.div_ceil(batch);
    type Job<R> = (usize, Arc<NmSnapshot<R>>);
    // Bounded channels keep a small pipeline in flight, like a NIC queue.
    let (a_tx, a_rx) = channel::bounded::<Job<R>>(4);
    let (b_tx, b_rx) = channel::bounded::<Job<R>>(4);
    let (ra_tx, ra_rx) = channel::bounded::<(usize, Vec<Option<MatchResult>>)>(4);
    let (rb_tx, rb_rx) = channel::bounded::<(usize, Vec<Option<MatchResult>>)>(4);

    let mut checksum = 0u64;
    let mut latency_sum = 0.0f64;
    let start = std::time::Instant::now();

    let stride = trace.stride();
    let raw = trace.raw();
    crossbeam::thread::scope(|scope| {
        // Worker A: iSets, whole batches through the phase pipeline.
        scope.spawn(|_| {
            for (b, snap) in a_rx.iter() {
                let lo = b * batch;
                let hi = ((b + 1) * batch).min(n);
                let mut out = vec![None; hi - lo];
                snap.engine().classify_isets_batch(
                    &raw[lo * stride..hi * stride],
                    stride,
                    &mut out,
                );
                if ra_tx.send((b, out)).is_err() {
                    break;
                }
            }
        });
        // Worker B: remainder, batched through the engine's own path.
        scope.spawn(|_| {
            for (b, snap) in b_rx.iter() {
                let lo = b * batch;
                let hi = ((b + 1) * batch).min(n);
                let mut out = vec![None; hi - lo];
                snap.engine().remainder().classify_batch(
                    &raw[lo * stride..hi * stride],
                    stride,
                    &mut out,
                );
                if rb_tx.send((b, out)).is_err() {
                    break;
                }
            }
        });

        let mut dispatch_times = vec![std::time::Instant::now(); n_batches];
        let mut next = 0usize;
        let mut merged = 0usize;
        // Prime the pipeline, then merge in order.
        while merged < n_batches {
            while next < n_batches && next - merged < 4 {
                dispatch_times[next] = std::time::Instant::now();
                // One pin per batch, shared by both workers.
                let snap = handle.snapshot();
                if a_tx.send((next, snap.clone())).is_err() || b_tx.send((next, snap)).is_err() {
                    unreachable!("worker exited before channel close");
                }
                next += 1;
            }
            let (ba, va) = ra_rx.recv().unwrap();
            let (bb, vb) = rb_rx.recv().unwrap();
            debug_assert_eq!(ba, bb, "workers must stay in lock-step batch order");
            for (a, b) in va.into_iter().zip(vb) {
                fold(&mut checksum, MatchResult::better(a, b));
            }
            latency_sum += dispatch_times[ba].elapsed().as_nanos() as f64;
            merged += 1;
        }
        drop(a_tx);
        drop(b_tx);
    })
    .expect("worker panicked");

    let seconds = start.elapsed().as_secs_f64();
    ParallelStats {
        seconds,
        pps: n as f64 / seconds,
        mean_batch_latency_ns: latency_sum / n_batches as f64,
        checksum,
    }
}

/// Runs `threads` instances of any classifier over the trace, batches
/// distributed round-robin (the baselines' multi-core mode in §5.1).
pub fn run_replicated(
    c: &dyn Classifier,
    trace: &TraceBuf,
    threads: usize,
    batch: usize,
) -> ParallelStats {
    let n = trace.len();
    if n == 0 {
        return ParallelStats { seconds: 0.0, pps: 0.0, mean_batch_latency_ns: 0.0, checksum: 0 };
    }
    let threads = threads.max(1);
    let batch = batch.max(1);
    let n_batches = n.div_ceil(batch);
    let start = std::time::Instant::now();
    let mut partials: Vec<(u64, f64, usize)> = Vec::new();

    let stride = trace.stride();
    let raw = trace.raw();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            handles.push(scope.spawn(move |_| {
                let mut checksum = 0u64;
                let mut lat = 0.0f64;
                let mut batches = 0usize;
                let mut out: Vec<Option<MatchResult>> = vec![None; batch];
                let mut b = t;
                while b < n_batches {
                    let t0 = std::time::Instant::now();
                    let lo = b * batch;
                    let hi = ((b + 1) * batch).min(n);
                    c.classify_batch(&raw[lo * stride..hi * stride], stride, &mut out[..hi - lo]);
                    for &m in &out[..hi - lo] {
                        fold(&mut checksum, m);
                    }
                    lat += t0.elapsed().as_nanos() as f64;
                    batches += 1;
                    b += threads;
                }
                (checksum, lat, batches)
            }));
        }
        for h in handles {
            partials.push(h.join().unwrap());
        }
    })
    .expect("worker panicked");

    let seconds = start.elapsed().as_secs_f64();
    let total_batches: usize = partials.iter().map(|p| p.2).sum();
    let lat_sum: f64 = partials.iter().map(|p| p.1).sum();
    // Order-independent combination so the checksum is reproducible.
    let checksum = partials.iter().fold(0u64, |acc, p| acc ^ p.0);
    ParallelStats {
        seconds,
        pps: n as f64 / seconds,
        mean_batch_latency_ns: lat_sum / total_batches.max(1) as f64,
        checksum,
    }
}

/// Single-core **batched** run: the trace flows through
/// [`Classifier::classify_batch`] in batches of `batch` packets on the
/// caller's thread. The checksum folds per-packet results in trace order, so
/// it must equal [`run_sequential`]'s — the batch-size sweep in
/// `nm-bench --bin batch` measures exactly this path against `batch = 1`.
pub fn run_batched(c: &dyn Classifier, trace: &TraceBuf, batch: usize) -> ParallelStats {
    let n = trace.len();
    if n == 0 {
        return ParallelStats { seconds: 0.0, pps: 0.0, mean_batch_latency_ns: 0.0, checksum: 0 };
    }
    let batch = batch.max(1);
    let stride = trace.stride();
    let raw = trace.raw();
    let mut out: Vec<Option<MatchResult>> = vec![None; batch];
    let mut checksum = 0u64;
    let n_batches = n.div_ceil(batch);
    let start = std::time::Instant::now();
    let mut lo = 0usize;
    while lo < n {
        let hi = (lo + batch).min(n);
        c.classify_batch(&raw[lo * stride..hi * stride], stride, &mut out[..hi - lo]);
        for &m in &out[..hi - lo] {
            fold(&mut checksum, m);
        }
        lo = hi;
    }
    let seconds = start.elapsed().as_secs_f64();
    ParallelStats {
        seconds,
        pps: n as f64 / seconds.max(1e-12),
        mean_batch_latency_ns: seconds * 1e9 / n_batches as f64,
        checksum,
    }
}

/// Sequential reference run (single core, early termination as configured) —
/// the §5.2 single-core methodology, also used to validate the parallel
/// paths' checksums.
pub fn run_sequential(c: &dyn Classifier, trace: &TraceBuf) -> ParallelStats {
    let n = trace.len();
    let start = std::time::Instant::now();
    let mut checksum = 0u64;
    for key in trace.iter() {
        fold(&mut checksum, c.classify(key));
    }
    let seconds = start.elapsed().as_secs_f64();
    ParallelStats {
        seconds,
        pps: n as f64 / seconds.max(1e-12),
        mean_batch_latency_ns: seconds * 1e9 / n.max(1) as f64,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NuevoMatchConfig, RqRmiParams};
    use nm_common::{FieldsSpec, FiveTuple, LinearSearch, RuleSet};

    fn setup() -> (ClassifierHandle<LinearSearch>, TraceBuf) {
        let rules: Vec<_> = (0..200u16)
            .map(|i| {
                FiveTuple::new()
                    .dst_port_range(i * 300, i * 300 + 250)
                    .into_rule(i as u32, i as u32)
            })
            .collect();
        let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
        let cfg = NuevoMatchConfig {
            rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
            ..Default::default()
        };
        let nm = ClassifierHandle::new(&set, &cfg, LinearSearch::build).unwrap();
        let mut trace = TraceBuf::new(5);
        for i in 0..4_000u64 {
            trace.push(&[i, i * 7, i % 65_536, (i * 37) % 65_536, (i % 256)]);
        }
        (nm, trace)
    }

    #[test]
    fn batched_matches_sequential_checksum() {
        let (nm, trace) = setup();
        let seq = run_sequential(&nm, &trace);
        for batch in [1, 8, 128, 512, 4096, 10_000] {
            let b = run_batched(&nm, &trace, batch);
            assert_eq!(seq.checksum, b.checksum, "diverged at batch {batch}");
        }
    }

    #[test]
    fn two_workers_match_sequential() {
        let (nm, trace) = setup();
        let seq = run_sequential(&nm, &trace);
        let par = run_two_workers(&nm, &trace, 128);
        assert_eq!(seq.checksum, par.checksum);
        assert!(par.pps > 0.0);
        assert!(par.mean_batch_latency_ns > 0.0);
    }

    #[test]
    fn replicated_covers_all_packets() {
        let (nm, trace) = setup();
        let a = run_replicated(&nm, &trace, 1, 128);
        let b = run_replicated(&nm, &trace, 2, 128);
        // XOR-combined checksums depend on batch split, so compare against
        // a single-thread replicated run with the same fold order per thread
        // count is not meaningful; instead check totals via pps > 0 and that
        // the 1-thread checksum matches the sequential fold.
        let seq = run_sequential(&nm, &trace);
        assert_eq!(a.checksum, seq.checksum);
        assert!(b.pps > 0.0);
    }

    #[test]
    fn empty_trace() {
        let (nm, _) = setup();
        let empty = TraceBuf::new(5);
        let s = run_two_workers(&nm, &empty, 128);
        assert_eq!(s.checksum, 0);
        assert_eq!(run_replicated(&nm, &empty, 2, 128).checksum, 0);
    }

    #[test]
    fn two_workers_survive_concurrent_updates_and_retrain() {
        // A run under live control-plane traffic must complete (readers
        // never block) and every batch must stay internally consistent —
        // generation pinning means the run equals *some* interleaving of
        // the update stream, so we assert structural health, not a fixed
        // checksum.
        use nm_common::{FiveTuple, UpdateBatch};
        let (handle, trace) = setup();
        let writer = handle.clone();
        let done = std::sync::atomic::AtomicBool::new(false);
        crossbeam::thread::scope(|scope| {
            scope.spawn(|_| {
                let mut i = 0u32;
                while !done.load(std::sync::atomic::Ordering::SeqCst) {
                    writer.apply(
                        &UpdateBatch::new().modify(
                            FiveTuple::new()
                                .dst_port_exact(50_000 + (i % 1_000) as u16)
                                .into_rule(i % 200, i % 200),
                        ),
                    );
                    i += 1;
                    if i % 64 == 0 {
                        let _ = writer.retrain();
                    }
                }
            });
            for _ in 0..5 {
                let s = run_two_workers(&handle, &trace, 128);
                assert!(s.pps > 0.0);
            }
            done.store(true, std::sync::atomic::Ordering::SeqCst);
        })
        .expect("scope");
        assert!(handle.generation() > 1, "updates must have published");
    }
}
