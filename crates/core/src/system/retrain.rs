//! Incremental (partial) retraining — the §3.9 refinement.
//!
//! The paper's update model lets rules drift to the remainder until a
//! background retrain resets the drift; with only *full* rebuilds the
//! publish period (and hence the Figure 7 drift floor) is bounded by
//! whole-ruleset training time. When the drift is concentrated in a few
//! leaves of a few iSets, [`NuevoMatch::partial_retrain`] resets it at a
//! fraction of that cost:
//!
//! 1. **Plan admissions** — remainder rules whose projection fits an iSet's
//!    surviving (non-tombstoned) ranges without overlap are pulled back in
//!    ([`crate::iset::admit_into_iset`] — greedy interval scheduling against
//!    the fixed survivors). Everything else simply stays in the remainder.
//! 2. **Patch each touched iSet** — tombstones are compacted out, admitted
//!    rules spliced in, and only the *leaf* submodels of the iSet's RQ-RMI
//!    whose key region changed are re-fitted
//!    ([`crate::rqrmi::retrain_leaves`]); leaves whose ranges merely shifted
//!    index are patched in closed form, untouched leaves carry over
//!    bit-identically. Untouched iSets share their trained core via `Arc` —
//!    zero work.
//! 3. **Shrink the remainder** — admitted ids are removed from a
//!    copy-on-write clone of the remainder engine through the ordinary
//!    [`BatchUpdatable`] path; no [`EngineBuilder`] is needed.
//!
//! The result serves exactly [`NuevoMatch::live_rules`] — verdicts are
//! bit-identical to a from-scratch rebuild (both resolve the same rule
//! multiset by `(priority, id)`), which `tests/it_partial_retrain.rs`
//! property-checks against every updatable engine. Gates (drift too broad,
//! admission yield too low, validation failure) surface as errors so
//! [`super::ClassifierHandle::retrain`] can fall back to a full rebuild.

use std::collections::HashSet;

use nm_common::rule::{Rule, RuleId};
use nm_common::update::{BatchUpdatable, UpdateBatch};
use nm_common::Error;

use crate::config::NuevoMatchConfig;
use crate::rqrmi::LeafRetrainStats;
use crate::system::{NuevoMatch, TrainedISet};

/// What a [`NuevoMatch::partial_retrain`] pass did (observability: the
/// update bench and `nmctl` report these).
#[derive(Clone, Copy, Debug, Default)]
pub struct PartialRetrainReport {
    /// iSets rebuilt with patched arrays/models.
    pub isets_patched: usize,
    /// iSets shared untouched (`Arc` bump, zero work).
    pub isets_shared: usize,
    /// iSets dropped because updates emptied them.
    pub isets_dropped: usize,
    /// Rules pulled back from the remainder into iSets.
    pub readmitted: usize,
    /// Remainder rules that had drifted out of an iSet (admission targets).
    pub drifted: usize,
    /// Leaf submodels re-fitted from fresh samples, across all iSets.
    pub leaves_refit: usize,
    /// Leaf submodels patched by the closed-form rescale.
    pub leaves_rescaled: usize,
    /// Reachable leaf submodels across all patched iSets.
    pub leaves_total: usize,
}

impl PartialRetrainReport {
    fn absorb_leaf_stats(&mut self, s: LeafRetrainStats) {
        self.leaves_refit += s.refit;
        self.leaves_rescaled += s.rescaled;
        self.leaves_total += s.leaves;
    }
}

impl<R: BatchUpdatable + Clone> NuevoMatch<R> {
    /// Incremental (partial) retrain: resets the §3.9 drift by re-admitting
    /// remainder rules into their iSets and re-fitting only the affected
    /// leaf submodels, instead of rebuilding every iSet from scratch.
    ///
    /// Returns a patched classifier (the original is untouched — trained
    /// cores are `Arc`-shared, so this is copy-on-write like the handle's
    /// update path) and a [`PartialRetrainReport`]. Errors when the
    /// configured [`crate::config::PartialRetrainPolicy`] gates fire —
    /// drift too broad (`max_refit_fraction`), admission yield too low
    /// (`min_readmit_fraction`) — or when post-patch validation fails;
    /// callers treat any error as "do a full rebuild instead".
    ///
    /// The returned classifier's verdicts are bit-identical to a full
    /// rebuild from [`NuevoMatch::live_rules`]: both serve the same rule
    /// multiset and resolve matches by `(priority, id)`.
    pub fn partial_retrain(
        &self,
        cfg: &NuevoMatchConfig,
    ) -> Result<(Self, PartialRetrainReport), Error> {
        let policy = cfg.partial_retrain;
        let mut report = PartialRetrainReport::default();

        // Plan admissions: each remainder rule may be claimed by the first
        // iSet (largest first, mirroring build order) it fits into.
        let remainder_rules = self.remainder().export_rules();
        // Drift visible in the routing map, plus drift a *previous* partial
        // retrain left behind (whose ids fell out of `loc` when it
        // reassembled) — without the carried term the yield gate would keep
        // choosing the partial path while unadmittable drift accumulated in
        // the remainder, and the full rebuild that reclaims it would never
        // fire.
        let drifted_now = remainder_rules.iter().filter(|r| self.loc.contains_key(&r.id)).count();
        report.drifted = drifted_now + self.residual_drift;
        let mut claimed: HashSet<RuleId> = HashSet::new();
        let mut admitted_per_iset: Vec<Vec<Rule>> = Vec::with_capacity(self.isets().len());
        for iset in self.isets() {
            let (live_los, live_his) = iset.live_projection();
            let candidates: Vec<(RuleId, u64, u64)> = remainder_rules
                .iter()
                .filter(|r| !claimed.contains(&r.id))
                .map(|r| (r.id, r.fields[iset.dim()].lo, r.fields[iset.dim()].hi))
                .collect();
            let ids = crate::iset::admit_into_iset(&live_los, &live_his, &candidates);
            claimed.extend(ids.iter().copied());
            let id_set: HashSet<RuleId> = ids.into_iter().collect();
            admitted_per_iset
                .push(remainder_rules.iter().filter(|r| id_set.contains(&r.id)).cloned().collect());
        }
        report.readmitted = claimed.len();
        // Gate on like-for-like populations: of the rules that *drifted out
        // of an iSet* (remainder ids the build-time routing map knows), how
        // many come back? Fresh inserts that happen to fit an iSet inflate
        // `readmitted` but never reduced iSet coverage, so they must not
        // mask a drift floor that is not actually moving.
        let readmitted_drifted = claimed.iter().filter(|id| self.loc.contains_key(id)).count();
        if (readmitted_drifted as f64) < policy.min_readmit_fraction * report.drifted as f64 {
            return Err(Error::Build {
                msg: format!(
                    "partial_retrain: admission yield too low ({readmitted_drifted} of {} \
                     drifted rules re-admittable; min fraction {})",
                    report.drifted, policy.min_readmit_fraction
                ),
            });
        }

        // Patch the iSets: untouched ones share their core, emptied ones
        // drop, the rest go through the leaf-level retrain.
        let mut isets = Vec::with_capacity(self.isets().len());
        for (iset, admitted) in self.isets().iter().zip(&admitted_per_iset) {
            if iset.tombstones() == 0 && admitted.is_empty() {
                report.isets_shared += 1;
                isets.push(iset.clone());
                continue;
            }
            if iset.live_len() + admitted.len() == 0 {
                report.isets_dropped += 1;
                continue;
            }
            let (patched, stats) =
                iset.partial_retrain(admitted, &cfg.rqrmi, policy.max_refit_fraction)?;
            report.absorb_leaf_stats(stats);
            report.isets_patched += 1;
            isets.push(patched);
        }

        // Shrink the remainder copy-on-write through the ordinary batch
        // path (no EngineBuilder needed — nothing is rebuilt).
        let mut remainder = self.remainder().clone();
        if !claimed.is_empty() {
            let mut removals = UpdateBatch::new();
            for &id in &claimed {
                removals = removals.remove(id);
            }
            remainder.apply(&removals);
        }

        let total_rules =
            isets.iter().map(TrainedISet::live_len).sum::<usize>() + remainder.num_rules();
        let mut fresh = NuevoMatch::assemble(
            isets,
            remainder,
            self.early_termination(),
            total_rules,
            self.spec().clone(),
        );
        // Keep the inner stamp monotone across the swap, like an update
        // would (a full rebuild restarts at 0; partial publishes in place of
        // the original, so callers comparing generations must not see it
        // rewind).
        fresh.generation = self.generation + 1;
        // Carry the drift this pass could not reclaim: conservative (a
        // straggler admitted in a later pass still counts until a full
        // rebuild resets it), which only makes the yield gate fall back to
        // the full path sooner — never lets drift hide.
        fresh.residual_drift = report.drifted - readmitted_drifted;
        Ok((fresh, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PartialRetrainPolicy, RqRmiParams};
    use nm_common::{Classifier, FieldsSpec, FiveTuple, LinearSearch, RuleSet, UpdateBatch};

    fn port_set(n: u16) -> RuleSet {
        let rules: Vec<_> = (0..n)
            .map(|i| {
                FiveTuple::new().dst_port_range(i * 100, i * 100 + 99).into_rule(i as u32, i as u32)
            })
            .collect();
        RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap()
    }

    fn cfg(policy: PartialRetrainPolicy) -> NuevoMatchConfig {
        NuevoMatchConfig {
            rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
            partial_retrain: policy,
            ..Default::default()
        }
    }

    /// Drift a handful of neighbouring rules (concentrated, §3.9's cheap
    /// case) by re-inserting them with unchanged boxes.
    fn drift_concentrated(nm: &mut NuevoMatch<LinearSearch>, set: &RuleSet, ids: &[u32]) {
        let mut batch = UpdateBatch::new();
        for &id in ids {
            batch = batch.modify(set.rule(id).clone());
        }
        nm.apply(&batch);
    }

    #[test]
    fn partial_retrain_restores_structure_and_verdicts() {
        let set = port_set(300);
        let c = cfg(PartialRetrainPolicy::always());
        let mut nm = NuevoMatch::build(&set, &c, LinearSearch::build).unwrap();
        drift_concentrated(&mut nm, &set, &[3, 4, 5, 6]);
        assert!(nm.remainder_fraction() > 0.0);
        let before: Vec<_> =
            (0u64..40_000).step_by(37).map(|p| nm.classify(&[0, 0, 0, p, 0])).collect();

        let (fresh, report) = nm.partial_retrain(&c).unwrap();
        assert_eq!(report.readmitted, 4, "unchanged boxes must all re-admit: {report:?}");
        assert_eq!(report.isets_patched, 1);
        assert!(report.leaves_refit <= report.leaves_total / 2, "{report:?}");
        assert_eq!(fresh.remainder().num_rules(), 0, "drift fully reset");
        assert_eq!(fresh.num_rules(), 300);
        assert!(fresh.generation() > nm.generation(), "inner stamp must not rewind");
        for (i, p) in (0u64..40_000).step_by(37).enumerate() {
            assert_eq!(fresh.classify(&[0, 0, 0, p, 0]), before[i], "port {p}");
        }
    }

    #[test]
    fn partial_retrain_leaves_unadmittable_rules_in_remainder() {
        let set = port_set(200);
        let c = cfg(PartialRetrainPolicy::always());
        let mut nm = NuevoMatch::build(&set, &c, LinearSearch::build).unwrap();
        // Rule 7 moves to a range overlapping live rule 10 — it cannot
        // rejoin the iSet and must stay in the remainder.
        let clash = FiveTuple::new().dst_port_range(1_000, 1_050).into_rule(7, 7);
        assert!(nm.modify(clash));
        let before: Vec<_> =
            (0u64..22_000).step_by(13).map(|p| nm.classify(&[0, 0, 0, p, 0])).collect();
        let (fresh, report) = nm.partial_retrain(&c).unwrap();
        assert_eq!(report.readmitted, 0);
        assert_eq!(fresh.remainder().num_rules(), 1);
        for (i, p) in (0u64..22_000).step_by(13).enumerate() {
            assert_eq!(fresh.classify(&[0, 0, 0, p, 0]), before[i], "port {p}");
        }
    }

    #[test]
    fn partial_retrain_gates_on_admission_yield() {
        let set = port_set(120);
        let c = cfg(PartialRetrainPolicy::always());
        let mut nm = NuevoMatch::build(&set, &c, LinearSearch::build).unwrap();
        let clash = FiveTuple::new().dst_port_range(2_000, 2_050).into_rule(9, 9);
        assert!(nm.modify(clash));
        // With a yield floor, the same drift is refused (fallback to full).
        let strict = cfg(PartialRetrainPolicy {
            enabled: true,
            max_refit_fraction: 1.0,
            min_readmit_fraction: 0.5,
        });
        assert!(nm.partial_retrain(&strict).is_err());
    }

    #[test]
    fn residual_drift_accumulates_until_the_yield_gate_falls_back() {
        // Regression: drift a partial retrain cannot re-admit falls out of
        // `loc` on reassembly, so a gate looking only at the routing map
        // would approve the partial path forever while stragglers piled up
        // in the remainder. The carried `residual_drift` term must trip the
        // gate on a later cycle instead.
        let set = port_set(120);
        let policy = PartialRetrainPolicy {
            enabled: true,
            max_refit_fraction: 1.0,
            min_readmit_fraction: 0.5,
        };
        let c = cfg(policy);
        let mut nm = NuevoMatch::build(&set, &c, LinearSearch::build).unwrap();
        // Cycle 1: one re-admittable drift (unchanged box) + one straggler
        // (new box overlaps live rule 10) — yield exactly 1/2, gate passes.
        nm.apply(
            &UpdateBatch::new()
                .modify(set.rule(20).clone())
                .modify(FiveTuple::new().dst_port_range(1_000, 1_050).into_rule(9, 9)),
        );
        let (fresh, report) = nm.partial_retrain(&c).unwrap();
        assert_eq!((report.drifted, report.readmitted), (2, 1), "{report:?}");
        assert_eq!(fresh.residual_drift(), 1, "the straggler must be carried forward");
        // Cycle 2: same shape again. Without the carried term the yield
        // would read 1/2 and pass; with it, 1 of 3 falls below 0.5.
        let mut nm = fresh;
        nm.apply(
            &UpdateBatch::new()
                .modify(set.rule(25).clone())
                .modify(FiveTuple::new().dst_port_range(3_100, 3_150).into_rule(30, 30)),
        );
        let err = nm.partial_retrain(&c);
        assert!(err.is_err(), "accumulated residual drift must force the full-rebuild fallback");
    }

    #[test]
    fn partial_retrain_after_pure_deletions() {
        let set = port_set(250);
        let c = cfg(PartialRetrainPolicy::always());
        let mut nm = NuevoMatch::build(&set, &c, LinearSearch::build).unwrap();
        nm.apply(&UpdateBatch::new().remove(10).remove(11).remove(12));
        let (fresh, report) = nm.partial_retrain(&c).unwrap();
        assert_eq!(report.readmitted, 0);
        assert_eq!(fresh.num_rules(), 247);
        assert_eq!(fresh.isets()[0].tombstones(), 0, "tombstones compacted away");
        let oracle = LinearSearch::from_rules(nm.live_rules());
        for p in (0u64..30_000).step_by(17) {
            let key = [0, 0, 0, p, 0];
            assert_eq!(fresh.classify(&key), oracle.classify(&key), "port {p}");
        }
    }
}
