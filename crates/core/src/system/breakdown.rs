//! Lookup-phase breakdown measurement (Figure 14).
//!
//! The paper splits NuevoMatch lookup time into four phases: RQ-RMI
//! inference, secondary search, validation, and remainder classification.
//! Inline per-packet timers would distort nanosecond-scale phases, so the
//! harness measures *cumulative* phase prefixes over a whole trace and
//! differences them: `inference`, `+search`, `+validate`, `+remainder`.

use nm_common::classifier::Classifier;
use nm_common::packet::TraceBuf;
use std::hint::black_box;
use std::time::Instant;

use super::NuevoMatch;

/// Per-packet phase costs in nanoseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LookupBreakdown {
    /// RQ-RMI model inference across all iSets.
    pub inference_ns: f64,
    /// Secondary search in the iSet range arrays.
    pub search_ns: f64,
    /// Multi-field validation of candidates.
    pub validation_ns: f64,
    /// Remainder classification (including the selector).
    pub remainder_ns: f64,
}

impl LookupBreakdown {
    /// Total per-packet cost.
    pub fn total_ns(&self) -> f64 {
        self.inference_ns + self.search_ns + self.validation_ns + self.remainder_ns
    }
}

/// Measures the phase breakdown of `nm` over `trace`.
///
/// Phases are timed as cumulative prefixes and differenced, so each number
/// includes only its own incremental work. Negative differences from timer
/// jitter are clamped to zero.
pub fn measure_breakdown<R: Classifier>(nm: &NuevoMatch<R>, trace: &TraceBuf) -> LookupBreakdown {
    let n = trace.len().max(1) as f64;

    // Prefix 1: inference only.
    let t0 = Instant::now();
    for key in trace.iter() {
        for iset in nm.isets() {
            black_box(iset.predict(key));
        }
    }
    let p1 = t0.elapsed().as_nanos() as f64 / n;

    // Prefix 2: inference + search.
    let t0 = Instant::now();
    for key in trace.iter() {
        for iset in nm.isets() {
            let (pred, err) = iset.predict(key);
            black_box(iset.search(pred, err, key));
        }
    }
    let p2 = t0.elapsed().as_nanos() as f64 / n;

    // Prefix 3: + validation (full iSet path incl. selector fold).
    let t0 = Instant::now();
    for key in trace.iter() {
        black_box(nm.classify_isets(key));
    }
    let p3 = t0.elapsed().as_nanos() as f64 / n;

    // Prefix 4: + remainder (the complete classifier).
    let t0 = Instant::now();
    for key in trace.iter() {
        black_box(nm.classify(key));
    }
    let p4 = t0.elapsed().as_nanos() as f64 / n;

    LookupBreakdown {
        inference_ns: p1,
        search_ns: (p2 - p1).max(0.0),
        validation_ns: (p3 - p2).max(0.0),
        remainder_ns: (p4 - p3).max(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NuevoMatchConfig, RqRmiParams};
    use nm_common::{FieldsSpec, FiveTuple, LinearSearch, RuleSet};

    #[test]
    fn breakdown_is_positive_and_ordered() {
        let rules: Vec<_> = (0..100u16)
            .map(|i| {
                FiveTuple::new()
                    .dst_port_range(i * 500, i * 500 + 400)
                    .into_rule(i as u32, i as u32)
            })
            .collect();
        let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
        let cfg = NuevoMatchConfig {
            rqrmi: RqRmiParams { samples_init: 128, ..Default::default() },
            ..Default::default()
        };
        let nm = NuevoMatch::build(&set, &cfg, LinearSearch::build).unwrap();
        let mut trace = TraceBuf::new(5);
        for i in 0..2_000u64 {
            trace.push(&[i, i, i % 65_536, (i * 13) % 65_536, 6]);
        }
        let b = measure_breakdown(&nm, &trace);
        assert!(b.inference_ns > 0.0);
        assert!(b.total_ns() >= b.inference_ns);
    }
}
