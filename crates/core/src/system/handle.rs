//! `ClassifierHandle` — the control-plane/data-plane split for NuevoMatch.
//!
//! The paper's §3.9 lifecycle (updates drift rules to the remainder until a
//! background retrain swaps in a fresh model, Figure 7) needs three roles
//! running *concurrently*:
//!
//! * **Readers** classify packets continuously. They must never block — not
//!   on updates and not on the retrain swap.
//! * A single **writer** applies [`UpdateBatch`] transactions: tombstones in
//!   the iSets, inserts/removes in the remainder. A batch is published only
//!   when its report shows an effective change — pure-miss batches bump
//!   nothing and invalidate nothing.
//! * A **retrainer** periodically resets the remainder drift and publishes
//!   the result. Two paths exist: the **full rebuild**
//!   ([`ClassifierHandle::retrain_full`]) retrains every iSet from the rule
//!   truth; the **partial retrain** ([`ClassifierHandle::retrain_partial`],
//!   §3.9 refinement) patches only the drifted RQ-RMI leaf submodels and
//!   re-admits remainder rules in place, publishing orders of magnitude
//!   sooner. [`ClassifierHandle::retrain`] picks partial when the
//!   configured [`PartialRetrainPolicy`](crate::config::PartialRetrainPolicy)
//!   gates pass and falls back to full otherwise (drift too broad, too few
//!   rules re-admittable, or validation failure) — both paths are
//!   verdict-equivalent, so readers cannot tell which one published.
//!
//! The handle implements this with epoch-style snapshot publication: the
//! live classifier is an immutable [`NmSnapshot`] behind an
//! [`arc_swap::ArcSwap`]. Readers [`ClassifierHandle::snapshot`] (two atomic
//! ops, never a lock) and classify against the pinned generation; the writer
//! clones the current `NuevoMatch` — cheap, because the trained models and
//! packed arrays sit behind `Arc`s and only tombstones + remainder are
//! copied — applies the batch to the clone, and publishes it under the next
//! generation. A batch is therefore **atomic**: readers observe all of it or
//! none of it.
//!
//! Retraining pins the rule truth under the control lock, trains *without*
//! the lock (readers and the writer proceed untouched), then replays the
//! updates that arrived during training and publishes. The swap itself is
//! one atomic pointer store; readers pinned to the old generation finish
//! their batches on it and drop it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Arc;

use arc_swap::ArcSwap;
use parking_lot::Mutex;

use nm_common::classifier::{Classifier, MatchResult};
use nm_common::packet::TraceBuf;
use nm_common::rule::{Priority, Rule, RuleId};
use nm_common::ruleset::RuleSet;
use nm_common::update::{
    BatchUpdatable, EngineBuilder, Generation, Snapshot, UpdateBatch, UpdateOp, UpdateReport,
};
use nm_common::Error;

use crate::config::NuevoMatchConfig;
use crate::system::NuevoMatch;

/// A generation-stamped immutable NuevoMatch — what the handle publishes and
/// readers pin.
pub type NmSnapshot<R> = Snapshot<NuevoMatch<R>>;

/// How to rebuild the classifier from scratch: the build parameters plus the
/// remainder [`EngineBuilder`], held by the control plane for every retrain.
struct RetrainRecipe<R> {
    cfg: NuevoMatchConfig,
    builder: Arc<dyn EngineBuilder<Engine = R>>,
}

/// Control-plane state, touched only by writers (apply / retrain).
struct Control<R> {
    recipe: Option<RetrainRecipe<R>>,
    /// Current rule truth (id → live version). `None` on handles constructed
    /// from a bare classifier — those never maintain a map; a retrain
    /// re-derives the truth from the live snapshot at its pin instead.
    rules: Option<HashMap<RuleId, Rule>>,
    /// Ops applied while a retrain is in flight; replayed onto the fresh
    /// classifier before it is published.
    pending: Vec<UpdateOp>,
}

struct Shared<R: Classifier> {
    live: ArcSwap<NmSnapshot<R>>,
    ctl: Mutex<Control<R>>,
    retraining: AtomicBool,
    retrains: AtomicU64,
    /// How many completed retrains took the partial (leaf-level) path.
    partial_retrains: AtomicU64,
}

/// Shared handle to a live NuevoMatch classifier: lock-free reads against an
/// atomically swapped immutable snapshot, transactional writes, background
/// retrains. Clone it freely — clones address the same classifier.
///
/// ```
/// use nm_common::{Classifier, FieldsSpec, FiveTuple, LinearSearch, RuleSet, UpdateBatch};
/// use nuevomatch::{ClassifierHandle, NuevoMatchConfig, RqRmiParams};
///
/// let rules: Vec<_> = (0..300u16)
///     .map(|i| FiveTuple::new().dst_port_range(i * 100, i * 100 + 99).into_rule(i as u32, i as u32))
///     .collect();
/// let set = RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap();
/// let cfg = NuevoMatchConfig {
///     rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
///     ..Default::default()
/// };
/// let handle = ClassifierHandle::new(&set, &cfg, LinearSearch::build).unwrap();
///
/// // Reader side: pin a snapshot, classify lock-free.
/// let snap = handle.snapshot();
/// assert_eq!(snap.classify(&[0, 0, 0, 550, 0]).unwrap().rule, 5);
///
/// // Writer side: one transaction, atomically visible.
/// handle.apply(&UpdateBatch::new().remove(5));
/// assert_eq!(handle.classify(&[0, 0, 0, 550, 0]), None);
/// assert_eq!(snap.classify(&[0, 0, 0, 550, 0]).unwrap().rule, 5); // pinned view unchanged
///
/// // Control side: retrain folds the drift back into fresh models.
/// handle.retrain().unwrap();
/// assert_eq!(handle.classify(&[0, 0, 0, 550, 0]), None);
/// ```
pub struct ClassifierHandle<R: Classifier> {
    shared: Arc<Shared<R>>,
}

impl<R: Classifier> Clone for ClassifierHandle<R> {
    fn clone(&self) -> Self {
        Self { shared: self.shared.clone() }
    }
}

impl<R: Classifier> ClassifierHandle<R> {
    /// Builds the classifier from `set` and wraps it in a handle that can
    /// update and retrain. The builder is retained: every retrain re-invokes
    /// it on the then-current rule truth.
    pub fn new<B>(set: &RuleSet, cfg: &NuevoMatchConfig, builder: B) -> Result<Self, Error>
    where
        B: EngineBuilder<Engine = R> + 'static,
    {
        let builder: Arc<dyn EngineBuilder<Engine = R>> = Arc::new(builder);
        let nm = NuevoMatch::build(set, cfg, builder.clone())?;
        let rules = set.rules().iter().map(|r| (r.id, r.clone())).collect();
        Ok(Self::assemble(nm, 1, Some(RetrainRecipe { cfg: cfg.clone(), builder }), Some(rules)))
    }

    /// Wraps an already-built classifier in a read/serve-only handle:
    /// snapshots, generation tracking, updates and the parallel runtime all
    /// work, but no rule truth is tracked and no builder retained, so
    /// [`ClassifierHandle::retrain`] reports an error.
    pub fn read_only(nm: NuevoMatch<R>) -> Self {
        Self::assemble(nm, 1, None, None)
    }

    /// Restores a handle around a classifier that already carries history
    /// (snapshot warm-start): `generation` seeds the published stamp and the
    /// rule truth comes from `rules`.
    pub(crate) fn restore<B>(
        nm: NuevoMatch<R>,
        generation: Generation,
        cfg: &NuevoMatchConfig,
        builder: B,
        rules: Vec<Rule>,
    ) -> Self
    where
        B: EngineBuilder<Engine = R> + 'static,
    {
        let builder: Arc<dyn EngineBuilder<Engine = R>> = Arc::new(builder);
        Self::assemble(
            nm,
            generation.max(1),
            Some(RetrainRecipe { cfg: cfg.clone(), builder }),
            Some(rules.into_iter().map(|r| (r.id, r)).collect()),
        )
    }

    fn assemble(
        nm: NuevoMatch<R>,
        generation: Generation,
        recipe: Option<RetrainRecipe<R>>,
        rules: Option<HashMap<RuleId, Rule>>,
    ) -> Self {
        debug_assert!(
            recipe.is_none() || rules.is_some(),
            "a handle that can retrain must track the rule truth"
        );
        Self {
            shared: Arc::new(Shared {
                live: ArcSwap::new(Arc::new(Snapshot::new(nm, generation))),
                ctl: Mutex::new(Control { recipe, rules, pending: Vec::new() }),
                retraining: AtomicBool::new(false),
                retrains: AtomicU64::new(0),
                partial_retrains: AtomicU64::new(0),
            }),
        }
    }

    /// Pins the current snapshot. Never blocks (two atomic ops); the
    /// returned `Arc` keeps that generation's models alive for as long as
    /// the reader holds it, regardless of concurrent updates and retrains.
    pub fn snapshot(&self) -> Arc<NmSnapshot<R>> {
        self.shared.live.load_full()
    }

    /// The published generation (bumps on every effective applied batch and
    /// every retrain publish).
    ///
    /// Derived from the live snapshot itself, so it can never disagree with
    /// what a subsequently pinned snapshot reports: pin first, and
    /// `generation() >= snapshot.generation()` holds at every instant. (A
    /// separate atomic mirror — the previous design — was updated after the
    /// snapshot store and could briefly *under-report* the live snapshot's
    /// stamp; and the reverse store order would let a cache observe the new
    /// generation, compute a verdict against the still-published old
    /// snapshot, and keep serving it under the new tag.)
    pub fn generation(&self) -> Generation {
        self.shared.live.load().generation()
    }

    /// True while a retrain is between pin and publish.
    pub fn retrain_in_progress(&self) -> bool {
        self.shared.retraining.load(SeqCst)
    }

    /// Completed retrain publishes since construction (partial + full).
    pub fn retrains_completed(&self) -> u64 {
        self.shared.retrains.load(SeqCst)
    }

    /// Completed retrains that took the partial (leaf-level) path.
    pub fn partial_retrains_completed(&self) -> u64 {
        self.shared.partial_retrains.load(SeqCst)
    }

    /// Publishes `snap` as the next generation. Caller must hold the ctl
    /// lock (single-writer discipline). The stamp lives inside the snapshot
    /// — one atomic store makes both visible together, which is what keeps
    /// [`ClassifierHandle::generation`] and the published view consistent.
    fn publish(&self, nm: NuevoMatch<R>) -> Generation {
        let generation = self.shared.live.load().generation() + 1;
        self.shared.live.store(Arc::new(Snapshot::new(nm, generation)));
        generation
    }
}

impl<R: BatchUpdatable + Clone> ClassifierHandle<R> {
    /// Warm-starts a handle from a [`crate::persist::save_snapshot`] image:
    /// models, iSet tables, tombstones and remainder rules all load as
    /// persisted — no retraining — and the handle resumes at the persisted
    /// generation, ready to update and retrain.
    pub fn from_snapshot<B>(data: &[u8], cfg: &NuevoMatchConfig, builder: B) -> Result<Self, Error>
    where
        B: EngineBuilder<Engine = R> + 'static,
    {
        let (nm, generation) = crate::persist::load_snapshot(data, &builder)?;
        let rules = nm.live_rules();
        Ok(Self::restore(nm, generation, cfg, builder, rules))
    }

    /// Serialises the live snapshot (see [`crate::persist::save_snapshot`]);
    /// a later [`ClassifierHandle::from_snapshot`] resumes from it without
    /// retraining.
    pub fn save(&self) -> Vec<u8> {
        let snap = self.snapshot();
        crate::persist::save_snapshot(snap.engine(), snap.generation())
    }

    /// Applies one transaction and publishes the result as a new snapshot.
    ///
    /// Concurrent readers never see a partially-applied batch: they keep
    /// classifying against the previous snapshot until the atomic swap, then
    /// see all of it. Writers are serialised by the control lock; returns
    /// the same accounting as [`NuevoMatch::apply`].
    pub fn apply(&self, batch: &UpdateBatch) -> UpdateReport {
        if batch.is_empty() {
            // Nothing to publish: cloning the engine and bumping the
            // generation for zero ops would only stampede the caches layered
            // above (the generation contract is "bumps when content
            // changes").
            return UpdateReport::default();
        }
        let mut ctl = self.shared.ctl.lock();
        Self::fold_truth(&mut ctl.rules, batch);
        if self.shared.retraining.load(SeqCst) {
            ctl.pending.extend(batch.ops().iter().cloned());
        }
        // Copy-on-write: clone the live engine (Arc-shared models +
        // tombstones and remainder), mutate the clone, publish.
        let mut next = self.snapshot().engine().clone();
        let report = next.apply(batch);
        if report.changed() {
            self.publish(next);
        }
        // A batch of pure misses changed nothing: drop the clone and keep
        // the published snapshot (and its generation) as they are.
        report
    }

    /// Retrains and atomically swaps in the result, resetting the §3.9
    /// remainder drift. Returns the published generation.
    ///
    /// When the retained config's
    /// [`PartialRetrainPolicy`](crate::config::PartialRetrainPolicy) allows
    /// it, this first attempts the **partial** (leaf-level) path —
    /// [`ClassifierHandle::retrain_partial`] — and falls back to the full
    /// rebuild ([`ClassifierHandle::retrain_full`]) when a gate fires:
    /// drift spread over too many leaf submodels, too few drifted rules
    /// re-admittable, or post-patch validation failure. Either way the
    /// published snapshot serves exactly the current rule truth; the two
    /// paths are verdict-equivalent.
    ///
    /// Errors if the handle was built [`ClassifierHandle::read_only`], if a
    /// retrain is already in flight, or if training fails.
    pub fn retrain(&self) -> Result<Generation, Error> {
        let partial_enabled = {
            let ctl = self.shared.ctl.lock();
            match ctl.recipe.as_ref() {
                Some(recipe) => recipe.cfg.partial_retrain.enabled,
                None => false, // retrain_full reports the read-only error
            }
        };
        if partial_enabled {
            // A gate error falls back to the full rebuild; an "in flight"
            // error resurfaces there unchanged (the flag is still set).
            if let Ok(generation) = self.retrain_partial() {
                return Ok(generation);
            }
        }
        self.retrain_full()
    }

    /// Incremental (partial) retrain: patches the pinned snapshot through
    /// [`NuevoMatch::partial_retrain`] — re-admitting drifted remainder
    /// rules into their iSets and re-fitting only the affected RQ-RMI leaf
    /// submodels — and publishes the result. The patch runs *without* the
    /// control lock; batches applied meanwhile are replayed before the
    /// publish, exactly like the full path. Because only a few leaves
    /// train, the publish period (and hence the Figure 7 drift floor) drops
    /// by the measured partial/full latency ratio.
    ///
    /// Errors — **without** falling back — when the policy gates refuse
    /// (use [`ClassifierHandle::retrain`] for automatic fallback), when the
    /// handle is read-only, or when a retrain is already in flight.
    pub fn retrain_partial(&self) -> Result<Generation, Error> {
        // Pin: snapshot + config under the lock, so no batch lands between
        // the pending-queue reset and the pin.
        let (cfg, pinned) = {
            let mut ctl = self.shared.ctl.lock();
            let cfg = ctl.recipe.as_ref().map(|recipe| recipe.cfg.clone()).ok_or_else(|| {
                Error::Build {
                    msg: "ClassifierHandle::retrain_partial: read-only handle (no config retained)"
                        .to_string(),
                }
            })?;
            if self.shared.retraining.swap(true, SeqCst) {
                return Err(Error::Build {
                    msg: "ClassifierHandle::retrain_partial: a retrain is already in flight"
                        .to_string(),
                });
            }
            ctl.pending.clear();
            (cfg, self.snapshot())
        };
        // Patch: leaf-level work, no locks held.
        let result = pinned.engine().partial_retrain(&cfg);
        // Publish: replay what arrived during the patch, swap, unmark.
        let mut ctl = self.shared.ctl.lock();
        let (mut fresh, _report) = match result {
            Ok(patched) => patched,
            Err(e) => {
                self.shared.retraining.store(false, SeqCst);
                return Err(e);
            }
        };
        if !ctl.pending.is_empty() {
            let replay: UpdateBatch = ctl.pending.drain(..).collect();
            fresh.apply(&replay);
        }
        let generation = self.publish(fresh);
        self.shared.retraining.store(false, SeqCst);
        self.shared.retrains.fetch_add(1, SeqCst);
        self.shared.partial_retrains.fetch_add(1, SeqCst);
        Ok(generation)
    }

    /// Rebuilds the classifier from scratch over the current rule truth and
    /// atomically swaps it in, resetting the §3.9 remainder drift
    /// completely (including the iSet partition). Training runs *without*
    /// the control lock, so the writer keeps applying batches (they are
    /// replayed onto the fresh classifier before it publishes) and readers
    /// never block. Returns the published generation.
    ///
    /// Errors if the handle was built [`ClassifierHandle::read_only`], if a
    /// retrain is already in flight, or if training fails.
    pub fn retrain_full(&self) -> Result<Generation, Error> {
        // Pin: capture the truth and the recipe under the lock.
        let (set, cfg, builder) = {
            let mut ctl = self.shared.ctl.lock();
            let recipe = ctl.recipe.as_ref().ok_or_else(|| Error::Build {
                msg: "ClassifierHandle::retrain: read-only handle (no EngineBuilder retained)"
                    .to_string(),
            })?;
            if self.shared.retraining.swap(true, SeqCst) {
                return Err(Error::Build {
                    msg: "ClassifierHandle::retrain: a retrain is already in flight".to_string(),
                });
            }
            let (cfg, builder) = (recipe.cfg.clone(), recipe.builder.clone());
            let snapshot = self.snapshot();
            // Invariant (held by every constructor): a handle with a
            // retrain recipe also tracks the rule truth.
            let mut rules: Vec<Rule> = ctl
                .rules
                .as_ref()
                .expect("recipe-bearing handles always track rule truth")
                .values()
                .cloned()
                .collect();
            // Rebuild in priority order, not map order: engines whose build
            // is insertion-order-sensitive (TupleMerge's table formation)
            // degrade badly on a randomised rule order, and determinism
            // makes retrains reproducible.
            rules.sort_by_key(|r| (r.priority, r.id));
            ctl.pending.clear();
            let spec = snapshot.engine().spec().clone();
            match RuleSet::new(spec, rules) {
                Ok(set) => (set, cfg, builder),
                Err(e) => {
                    self.shared.retraining.store(false, SeqCst);
                    return Err(e);
                }
            }
        };
        // Train: the long pole, executed with no locks held.
        let fresh = match NuevoMatch::build(&set, &cfg, builder) {
            Ok(nm) => nm,
            Err(e) => {
                self.shared.retraining.store(false, SeqCst);
                return Err(e);
            }
        };
        // Publish: replay what arrived during training, swap, unmark.
        let mut ctl = self.shared.ctl.lock();
        let mut fresh = fresh;
        if !ctl.pending.is_empty() {
            let replay: UpdateBatch = ctl.pending.drain(..).collect();
            fresh.apply(&replay);
        }
        let generation = self.publish(fresh);
        self.shared.retraining.store(false, SeqCst);
        self.shared.retrains.fetch_add(1, SeqCst);
        Ok(generation)
    }

    /// Folds a batch into the truth map. Handles without a map (started from
    /// a bare classifier) skip this — their retrains re-derive the truth
    /// from the live snapshot instead of maintaining it incrementally.
    fn fold_truth(rules: &mut Option<HashMap<RuleId, Rule>>, batch: &UpdateBatch) {
        let Some(map) = rules.as_mut() else { return };
        for op in batch.ops() {
            match op {
                UpdateOp::Insert(r) | UpdateOp::Modify(r) => {
                    map.insert(r.id, r.clone());
                }
                UpdateOp::Remove(id) => {
                    map.remove(id);
                }
            }
        }
    }
}

impl<R: BatchUpdatable + Clone + Send + Sync + 'static> ClassifierHandle<R> {
    /// Kicks a retrain off on a background thread and returns its join
    /// handle. Dropping the join handle detaches the retrain; its publish
    /// still lands.
    pub fn spawn_retrain(&self) -> std::thread::JoinHandle<Result<Generation, Error>> {
        let handle = self.clone();
        std::thread::spawn(move || handle.retrain())
    }
}

impl<R: Classifier> Classifier for ClassifierHandle<R> {
    fn classify(&self, key: &[u64]) -> Option<MatchResult> {
        self.snapshot().classify(key)
    }

    fn classify_with_floor(&self, key: &[u64], floor: Priority) -> Option<MatchResult> {
        self.snapshot().classify_with_floor(key, floor)
    }

    /// One snapshot pin per batch: every packet in the batch is classified
    /// against the same generation.
    fn batch_lookup(
        &self,
        keys: &[u64],
        stride: usize,
        floors: Option<&[Priority]>,
        out: &mut [Option<MatchResult>],
    ) {
        self.snapshot().batch_lookup(keys, stride, floors, out);
    }

    fn memory_bytes(&self) -> usize {
        self.snapshot().memory_bytes()
    }

    fn name(&self) -> &'static str {
        self.snapshot().name()
    }

    fn num_rules(&self) -> usize {
        self.snapshot().num_rules()
    }

    fn generation(&self) -> Generation {
        ClassifierHandle::generation(self)
    }
}

/// Parameters for [`measure_update_curve`] — the measured analogue of the
/// paper's Figure 7 experiment.
#[derive(Clone, Copy, Debug)]
pub struct UpdateBenchConfig {
    /// Total measurement horizon (seconds).
    pub duration_s: f64,
    /// Sampling period for throughput points (seconds).
    pub sample_every_s: f64,
    /// Target update rate (rule updates per second).
    pub updates_per_s: f64,
    /// Updates grouped per [`UpdateBatch`] transaction.
    pub ops_per_batch: usize,
    /// Retrain trigger period (seconds); `0.0` disables retraining.
    pub retrain_period_s: f64,
    /// Classification batch size for the reader (paper: 128).
    pub batch: usize,
}

impl Default for UpdateBenchConfig {
    fn default() -> Self {
        Self {
            duration_s: 10.0,
            sample_every_s: 0.25,
            updates_per_s: 1_000.0,
            ops_per_batch: 32,
            retrain_period_s: 4.0,
            batch: 128,
        }
    }
}

/// One sample of the measured Figure 7 curve.
#[derive(Clone, Copy, Debug)]
pub struct UpdateCurvePoint {
    /// Sample time since measurement start (seconds).
    pub t_s: f64,
    /// Reader throughput over the sample window (packets per second).
    pub pps: f64,
    /// Published generation at the sample instant.
    pub generation: Generation,
    /// Fraction of rules served by the remainder at the sample instant.
    pub remainder_fraction: f64,
    /// Retrains completed so far.
    pub retrains: u64,
}

/// Paces a live-serving control plane: applies update transactions at a
/// target ops/second (grouped into batches) and spawns background retrains
/// on a fixed period, tracking their join handles so [`UpdatePacer::drain`]
/// can wait out every retrain it started.
///
/// This is the writer-side loop body shared by [`measure_update_curve`] and
/// `nmctl serve`: call [`UpdatePacer::tick`] repeatedly from the writer
/// thread; it either applies one due batch or sleeps a beat.
pub struct UpdatePacer {
    interval: Option<std::time::Duration>,
    next_fire: std::time::Instant,
    retrain_period_s: f64,
    last_retrain: std::time::Instant,
    seq: u64,
    ops_applied: u64,
}

impl UpdatePacer {
    /// A pacer firing `ops_per_batch`-op transactions so that roughly
    /// `updates_per_s` ops land per second (`<= 0.0` disables updates), and
    /// triggering a background retrain every `retrain_period_s` seconds
    /// (`<= 0.0` disables retrains).
    pub fn new(updates_per_s: f64, ops_per_batch: usize, retrain_period_s: f64) -> Self {
        let interval = (updates_per_s > 0.0).then(|| {
            std::time::Duration::from_secs_f64(ops_per_batch.max(1) as f64 / updates_per_s)
        });
        let now = std::time::Instant::now();
        Self {
            interval,
            next_fire: now,
            retrain_period_s,
            last_retrain: now,
            seq: 0,
            ops_applied: 0,
        }
    }

    /// One pacing step against `handle`: applies `make_batch(seq)` if a
    /// transaction is due (otherwise sleeps ~200µs), and spawns a retrain if
    /// the period elapsed and none is in flight. Returns the ops applied by
    /// this tick. `joins` collects the handles of spawned retrains — pass
    /// the same vector to every tick and hand it to [`UpdatePacer::drain`]
    /// when the serving loop stops.
    pub fn tick<R, F>(
        &mut self,
        handle: &ClassifierHandle<R>,
        joins: &mut Vec<std::thread::JoinHandle<Result<Generation, Error>>>,
        make_batch: F,
    ) -> usize
    where
        R: BatchUpdatable + Clone + Send + Sync + 'static,
        F: FnOnce(u64) -> UpdateBatch,
    {
        let mut applied = 0;
        match self.interval {
            Some(interval) if std::time::Instant::now() >= self.next_fire => {
                let batch = make_batch(self.seq);
                self.seq += 1;
                applied = batch.len();
                self.ops_applied += applied as u64;
                handle.apply(&batch);
                self.next_fire += interval;
            }
            _ => std::thread::sleep(std::time::Duration::from_micros(200)),
        }
        if self.retrain_period_s > 0.0
            && self.last_retrain.elapsed().as_secs_f64() >= self.retrain_period_s
            && !handle.retrain_in_progress()
        {
            self.last_retrain = std::time::Instant::now();
            joins.push(handle.spawn_retrain());
        }
        applied
    }

    /// Total update ops applied across all ticks.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Joins every retrain this pacer spawned (results discarded — an
    /// "already in flight" loss is benign). Without this, a retrain spawned
    /// on the final tick could still be warming up when the caller reads its
    /// "settled" stats, or be killed mid-train by process exit.
    pub fn drain(joins: Vec<std::thread::JoinHandle<Result<Generation, Error>>>) {
        for join in joins {
            let _ = join.join();
        }
    }
}

/// Builds the §3.9 *concentrated* (single-leaf) drift batch: `ops` modifies
/// that re-insert — boxes unchanged — the rules at the lowest positions of
/// the classifier's largest iSet. Positions are sorted by the iSet field's
/// lower bound, so the drift lands in one or two neighbouring leaf
/// submodels: the cheap case for a partial retrain, and the workload the
/// retrain-latency comparison is defined over.
pub fn concentrated_drift<R: Classifier>(
    nm: &NuevoMatch<R>,
    set: &RuleSet,
    ops: usize,
) -> Result<UpdateBatch, Error> {
    let iset = nm.isets().first().ok_or_else(|| Error::Build {
        msg: "concentrated_drift: no iSet formed (nothing to drift from)".to_string(),
    })?;
    let mut batch = UpdateBatch::new();
    for pos in 0..ops.min(iset.len()) {
        batch = batch.modify(set.rule(iset.rule_id_at(pos)).clone());
    }
    Ok(batch)
}

/// Latencies of the two retrain flavours under the same reproducible
/// concentrated drift (see [`measure_retrain_latencies`]).
#[derive(Clone, Copy, Debug)]
pub struct RetrainLatencies {
    /// Seconds to republish via the partial (leaf-level) path.
    pub partial_s: f64,
    /// Seconds to republish via the full rebuild.
    pub full_s: f64,
    /// Update ops in the concentrated drift batch.
    pub drift_ops: usize,
    /// Fraction of the drifted iSet's leaf submodels holding tombstones
    /// just before the partial retrain (the drift-concentration profile
    /// from [`crate::TrainedISet::leaf_tombstone_counts`]).
    pub dirty_leaf_fraction: f64,
}

impl RetrainLatencies {
    /// How many times faster the partial path republished.
    pub fn speedup(&self) -> f64 {
        self.full_s / self.partial_s.max(1e-9)
    }
}

/// Measures partial vs full retrain latency on `handle` (built over `set`)
/// under a [`concentrated_drift`] workload — the §3.9 refinement's
/// headline number, shared by `nm-bench --bin update_bench` and
/// `nmctl update-bench --bench-json` so the two artifacts can never drift
/// apart in methodology.
///
/// Protocol: full retrain to reach a drift-free baseline, apply the
/// concentrated drift and time [`ClassifierHandle::retrain_partial`], then
/// apply the same drift again and time [`ClassifierHandle::retrain_full`].
/// The handle ends drift-free. The drifted rules are re-inserted with
/// unchanged boxes, so they are always fully re-admittable and the default
/// partial-retrain gates pass.
pub fn measure_retrain_latencies<R>(
    handle: &ClassifierHandle<R>,
    set: &RuleSet,
) -> Result<RetrainLatencies, Error>
where
    R: BatchUpdatable + Clone,
{
    use std::time::Instant;
    handle.retrain_full()?;
    let drift_ops = (set.len() / 100).clamp(4, 512);
    let drift = concentrated_drift(handle.snapshot().engine(), set, drift_ops)?;
    handle.apply(&drift);
    let dirty_leaf_fraction = {
        let snap = handle.snapshot();
        let counts = snap.engine().isets()[0].leaf_tombstone_counts();
        counts.iter().filter(|&&c| c > 0).count() as f64 / counts.len().max(1) as f64
    };
    let t0 = Instant::now();
    handle.retrain_partial()?;
    let partial_s = t0.elapsed().as_secs_f64();
    handle.apply(&drift);
    let t0 = Instant::now();
    handle.retrain_full()?;
    let full_s = t0.elapsed().as_secs_f64();
    Ok(RetrainLatencies { partial_s, full_s, drift_ops, dirty_leaf_fraction })
}

/// What [`measure_update_curve`] measured: the sampled throughput curve
/// plus the per-batch service-latency histogram (one sample per
/// `classify_batch` call, nanoseconds), replacing the ad-hoc derived
/// latency numbers older callers computed from `pps`.
#[derive(Clone, Debug, Default)]
pub struct UpdateCurve {
    /// Windowed throughput samples over the run.
    pub points: Vec<UpdateCurvePoint>,
    /// Reader-side per-batch classification latency.
    pub batch_latency: nm_common::LatencyHistogram,
}

/// Measures throughput-under-updates (Figure 7, §3.9) against a live
/// [`ClassifierHandle`]: one reader thread classifies the trace in batches
/// continuously, an updater thread applies `make_batch(i)` transactions at
/// the configured rate, and retrains fire on their period in the background.
/// Readers never block on any of it — that is the property under test.
///
/// Returns the sampled curve plus the per-batch latency histogram;
/// validate the curve against `nm_analysis::throughput_at` to close the
/// loop with the analytic model.
pub fn measure_update_curve<R, F>(
    handle: &ClassifierHandle<R>,
    trace: &TraceBuf,
    cfg: &UpdateBenchConfig,
    make_batch: F,
) -> UpdateCurve
where
    R: BatchUpdatable + Clone + Send + Sync + 'static,
    F: FnMut(u64) -> UpdateBatch + Send,
{
    use std::time::Instant;
    let n = trace.len();
    if n == 0 || cfg.duration_s <= 0.0 {
        return UpdateCurve::default();
    }
    let stride = trace.stride();
    let raw = trace.raw();
    let batch = cfg.batch.max(1);
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let mut curve = Vec::new();
    let mut batch_latency = nm_common::LatencyHistogram::new();
    let mut make_batch = make_batch;

    crossbeam::thread::scope(|scope| {
        // Updater: paced transactions + periodic background retrains, all
        // through the shared pacer. The spawned-retrain joins are drained
        // before the thread exits so the caller reads settled stats.
        scope.spawn(|_| {
            let mut pacer =
                UpdatePacer::new(cfg.updates_per_s, cfg.ops_per_batch, cfg.retrain_period_s);
            let mut joins = Vec::new();
            while !stop.load(SeqCst) {
                pacer.tick(handle, &mut joins, &mut make_batch);
            }
            UpdatePacer::drain(joins);
        });

        // Reader: the measured data plane. One snapshot pin per batch.
        let mut out: Vec<Option<MatchResult>> = vec![None; batch];
        let mut lo = 0usize;
        let mut window_packets = 0u64;
        let mut window_start = start;
        loop {
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= cfg.duration_s {
                break;
            }
            let hi = (lo + batch).min(n);
            let t0 = Instant::now();
            handle.classify_batch(&raw[lo * stride..hi * stride], stride, &mut out[..hi - lo]);
            batch_latency.record_duration(t0.elapsed());
            window_packets += (hi - lo) as u64;
            lo = if hi == n { 0 } else { hi };
            let window_s = window_start.elapsed().as_secs_f64();
            if window_s >= cfg.sample_every_s {
                let snap = handle.snapshot();
                curve.push(UpdateCurvePoint {
                    t_s: start.elapsed().as_secs_f64(),
                    pps: window_packets as f64 / window_s,
                    generation: snap.generation(),
                    remainder_fraction: snap.engine().remainder_fraction(),
                    retrains: handle.retrains_completed(),
                });
                window_packets = 0;
                window_start = Instant::now();
            }
        }
        stop.store(true, SeqCst);
    })
    .expect("update-bench worker panicked");
    // Every retrain the pacer spawned was joined inside the scope, so the
    // stats are settled the moment this returns.
    UpdateCurve { points: curve, batch_latency }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RqRmiParams;
    use nm_common::{FieldsSpec, FiveTuple, LinearSearch};

    fn port_set(n: u16) -> RuleSet {
        let rules: Vec<_> = (0..n)
            .map(|i| {
                FiveTuple::new().dst_port_range(i * 100, i * 100 + 99).into_rule(i as u32, i as u32)
            })
            .collect();
        RuleSet::new(FieldsSpec::five_tuple(), rules).unwrap()
    }

    fn fast_cfg() -> NuevoMatchConfig {
        NuevoMatchConfig {
            rqrmi: RqRmiParams { samples_init: 256, ..Default::default() },
            ..Default::default()
        }
    }

    fn handle(n: u16) -> ClassifierHandle<LinearSearch> {
        ClassifierHandle::new(&port_set(n), &fast_cfg(), LinearSearch::build).unwrap()
    }

    #[test]
    fn apply_is_atomic_and_pinned_snapshots_are_stable() {
        let h = handle(200);
        let pinned = h.snapshot();
        let g0 = h.generation();
        let report = h.apply(
            &UpdateBatch::new()
                .remove(5)
                .insert(FiveTuple::new().dst_port_exact(61_000).into_rule(900, 0)),
        );
        assert_eq!((report.removed, report.inserted), (1, 1));
        assert_eq!(h.generation(), g0 + 1);
        // New reads see the whole batch.
        assert_eq!(h.classify(&[0, 0, 0, 550, 0]), None);
        assert_eq!(h.classify(&[0, 0, 0, 61_000, 0]).unwrap().rule, 900);
        // The pinned generation is frozen.
        assert_eq!(pinned.generation(), g0);
        assert_eq!(pinned.classify(&[0, 0, 0, 550, 0]).unwrap().rule, 5);
        assert_eq!(pinned.classify(&[0, 0, 0, 61_000, 0]), None);
        // An empty transaction publishes nothing and bumps nothing (the
        // generation contract: bumps only when content changes).
        assert_eq!(h.apply(&UpdateBatch::new()), UpdateReport::default());
        assert_eq!(h.generation(), g0 + 1);
    }

    #[test]
    fn generation_mirror_never_under_reports_the_live_snapshot() {
        // Regression: `publish` used to store the snapshot first and update
        // a separate atomic generation mirror afterwards, so a reader that
        // pinned the fresh snapshot could still see `handle.generation()`
        // reporting the previous stamp. The stamp now lives inside the
        // snapshot itself: once a snapshot is visible, `generation()` must
        // already reflect it (pin first, then compare).
        let h = handle(150);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let mut joins = Vec::new();
            for _ in 0..2 {
                let h = h.clone();
                let stop = &stop;
                joins.push(scope.spawn(move || {
                    while !stop.load(SeqCst) {
                        let snap = h.snapshot();
                        let g = h.generation();
                        assert!(
                            g >= snap.generation(),
                            "generation() {g} trails the already-visible snapshot {}",
                            snap.generation()
                        );
                    }
                }));
            }
            for i in 0..400u32 {
                let port = 40_000 + (i % 20_000) as u16;
                h.apply(
                    &UpdateBatch::new()
                        .modify(FiveTuple::new().dst_port_exact(port).into_rule(i % 150, i % 150)),
                );
            }
            stop.store(true, SeqCst);
            for j in joins {
                j.join().unwrap();
            }
        });
        // And a snapshot pinned after any quiescent point agrees exactly.
        assert_eq!(h.generation(), h.snapshot().generation());
    }

    #[test]
    fn noop_batch_publishes_nothing() {
        let h = handle(100);
        let g0 = h.generation();
        let pinned = h.snapshot();
        let report = h.apply(&UpdateBatch::new().remove(9_999).remove(8_888));
        assert_eq!((report.missing, report.changed()), (2, false));
        assert_eq!(h.generation(), g0, "miss-only batch must not bump");
        assert!(
            Arc::ptr_eq(&pinned, &h.snapshot()),
            "miss-only batch must not publish a new snapshot"
        );
    }

    #[test]
    fn retrain_partial_resets_concentrated_drift() {
        let set = port_set(300);
        let cfg = NuevoMatchConfig {
            partial_retrain: crate::config::PartialRetrainPolicy::always(),
            ..fast_cfg()
        };
        let h = ClassifierHandle::new(&set, &cfg, LinearSearch::build).unwrap();
        // Concentrated drift: re-insert a few neighbouring rules unchanged.
        let mut batch = UpdateBatch::new();
        for i in 40..48u32 {
            batch = batch.modify(
                FiveTuple::new()
                    .dst_port_range(i as u16 * 100, i as u16 * 100 + 99)
                    .into_rule(i, i),
            );
        }
        h.apply(&batch);
        assert!(h.snapshot().engine().remainder_fraction() > 0.0);
        let oracle: Vec<_> =
            (0u64..40_000).step_by(41).map(|p| h.classify(&[0, 0, 0, p, 0])).collect();
        let g = h.retrain_partial().unwrap();
        assert_eq!(g, h.generation());
        assert_eq!(h.partial_retrains_completed(), 1);
        assert_eq!(h.retrains_completed(), 1);
        assert_eq!(
            h.snapshot().engine().remainder_fraction(),
            0.0,
            "unchanged boxes must fully re-admit"
        );
        for (i, p) in (0u64..40_000).step_by(41).enumerate() {
            assert_eq!(h.classify(&[0, 0, 0, p, 0]), oracle[i], "port {p}");
        }
    }

    #[test]
    fn auto_retrain_falls_back_to_full_when_partial_is_gated() {
        let set = port_set(200);
        // min_readmit_fraction 1.0: any unadmittable drifted rule gates the
        // partial path, forcing the full rebuild.
        let cfg = NuevoMatchConfig {
            partial_retrain: crate::config::PartialRetrainPolicy {
                enabled: true,
                max_refit_fraction: 1.0,
                min_readmit_fraction: 1.0,
            },
            ..fast_cfg()
        };
        let h = ClassifierHandle::new(&set, &cfg, LinearSearch::build).unwrap();
        // Rule 7 drifts to a range overlapping live rule 10: unadmittable.
        h.apply(
            &UpdateBatch::new()
                .modify(FiveTuple::new().dst_port_range(1_000, 1_050).into_rule(7, 7)),
        );
        let oracle: Vec<_> =
            (0u64..21_000).step_by(23).map(|p| h.classify(&[0, 0, 0, p, 0])).collect();
        h.retrain().unwrap();
        assert_eq!(h.retrains_completed(), 1);
        assert_eq!(h.partial_retrains_completed(), 0, "gated partial must not count");
        for (i, p) in (0u64..21_000).step_by(23).enumerate() {
            assert_eq!(h.classify(&[0, 0, 0, p, 0]), oracle[i], "port {p}");
        }
    }

    #[test]
    fn updates_during_partial_retrain_are_replayed() {
        let set = port_set(300);
        let cfg = NuevoMatchConfig {
            partial_retrain: crate::config::PartialRetrainPolicy::always(),
            ..fast_cfg()
        };
        let h = ClassifierHandle::new(&set, &cfg, LinearSearch::build).unwrap();
        let mut batch = UpdateBatch::new();
        for i in 10..20u32 {
            batch = batch.modify(
                FiveTuple::new()
                    .dst_port_range(i as u16 * 100, i as u16 * 100 + 99)
                    .into_rule(i, i),
            );
        }
        h.apply(&batch);
        // Race inserts against background auto-retrains (partial-first).
        let join = h.spawn_retrain();
        for i in 0..20u32 {
            h.apply(&UpdateBatch::new().insert(
                FiveTuple::new().dst_port_exact(50_000 + i as u16).into_rule(10_000 + i, 0),
            ));
        }
        join.join().unwrap().unwrap();
        for i in 0..20u32 {
            let key = [0u64, 0, 0, 50_000 + i as u64, 0];
            assert_eq!(h.classify(&key).unwrap().rule, 10_000 + i, "update {i} lost by retrain");
        }
    }

    #[test]
    fn retrain_resets_drift_and_preserves_semantics() {
        let h = handle(300);
        // Drift a quarter of the rules to the remainder.
        for i in 0..75u32 {
            let port = 40_000 + i as u16;
            h.apply(
                &UpdateBatch::new()
                    .modify(FiveTuple::new().dst_port_range(port, port).into_rule(i, i)),
            );
        }
        let drifted = h.snapshot().engine().remainder_fraction();
        assert!(drifted > 0.2, "expected drift, got {drifted}");
        let oracle_before: Vec<_> =
            (0u64..65_536).step_by(97).map(|p| h.classify(&[0, 0, 0, p, 0])).collect();
        let gen = h.retrain().unwrap();
        assert_eq!(gen, h.generation());
        assert_eq!(h.retrains_completed(), 1);
        let fresh = h.snapshot().engine().remainder_fraction();
        assert!(fresh < drifted, "retrain must shrink the remainder: {drifted} -> {fresh}");
        // Same classification behaviour, new structure. Priorities are
        // unique here, so rule identity must be preserved exactly.
        for (i, p) in (0u64..65_536).step_by(97).enumerate() {
            assert_eq!(h.classify(&[0, 0, 0, p, 0]), oracle_before[i], "port {p}");
        }
    }

    #[test]
    fn updates_during_retrain_are_replayed() {
        let h = handle(300);
        // Start a slow-ish retrain on a background thread, then race updates
        // against it.
        let join = h.spawn_retrain();
        for i in 0..20u32 {
            h.apply(&UpdateBatch::new().insert(
                FiveTuple::new().dst_port_exact(50_000 + i as u16).into_rule(10_000 + i, 0),
            ));
        }
        join.join().unwrap().unwrap();
        // Whether an update landed before the pin or during training, the
        // published classifier must serve it.
        for i in 0..20u32 {
            let key = [0u64, 0, 0, 50_000 + i as u64, 0];
            assert_eq!(h.classify(&key).unwrap().rule, 10_000 + i, "update {i} lost by retrain");
        }
    }

    #[test]
    fn read_only_handle_serves_but_refuses_retrain() {
        let set = port_set(100);
        let nm = NuevoMatch::build(&set, &fast_cfg(), LinearSearch::build).unwrap();
        let h = ClassifierHandle::read_only(nm);
        assert_eq!(h.classify(&[0, 0, 0, 550, 0]).unwrap().rule, 5);
        assert!(h.retrain().is_err());
        // Updates still work (truth is simply not tracked for retrains).
        h.apply(&UpdateBatch::new().remove(5));
        assert_eq!(h.classify(&[0, 0, 0, 550, 0]), None);
    }

    #[test]
    fn concurrent_retrain_attempts_do_not_stack() {
        let h = handle(250);
        let a = h.spawn_retrain();
        let b = h.spawn_retrain();
        let (ra, rb) = (a.join().unwrap(), b.join().unwrap());
        // At least one must succeed; both may if they did not overlap.
        assert!(ra.is_ok() || rb.is_ok());
        assert!(h.retrains_completed() >= 1);
        assert!(!h.retrain_in_progress());
    }

    #[test]
    fn measure_update_curve_samples_under_load() {
        let h = handle(200);
        let mut trace = TraceBuf::new(5);
        let mut s = nm_common::SplitMix64::new(7);
        for _ in 0..4_000 {
            trace.push(&[0, 0, 0, s.below(20_000), 0]);
        }
        let cfg = UpdateBenchConfig {
            duration_s: 0.6,
            sample_every_s: 0.1,
            updates_per_s: 2_000.0,
            ops_per_batch: 16,
            retrain_period_s: 0.2,
            batch: 128,
        };
        let mut next_port = 30_000u16;
        let curve = measure_update_curve(&h, &trace, &cfg, |seq| {
            let mut b = UpdateBatch::new();
            for k in 0..16u64 {
                next_port = next_port.wrapping_add(1).max(30_000);
                let id = (seq * 16 + k) as u32 % 200;
                b = b.modify(FiveTuple::new().dst_port_exact(next_port).into_rule(id, id));
            }
            b
        });
        let points = &curve.points;
        assert!(points.len() >= 3, "expected several samples, got {}", points.len());
        assert!(points.iter().all(|p| p.pps > 0.0));
        let last = points.last().unwrap();
        assert!(last.generation > 1, "updates must have published generations");
        // The set drifts under modify load...
        assert!(points.iter().any(|p| p.remainder_fraction > 0.0));
        assert!(!h.retrain_in_progress(), "no retrain left dangling");
        // One latency sample per classify_batch call, with sane tails.
        assert!(curve.batch_latency.count() > 0);
        assert!(curve.batch_latency.percentile(0.99) >= curve.batch_latency.percentile(0.50));
    }
}
